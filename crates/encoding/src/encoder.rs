//! Record-level encoding: field Bloom filters and CLKs.
//!
//! Two granularities from the literature (§3.4, refs \[12, 33]):
//!
//! * **Field-level** — one Bloom filter per QID; comparison averages
//!   per-field Dice scores (more information, more attack surface).
//! * **CLK** (cryptographic long-term key, Schnell et al.) — all QIDs
//!   hashed into a *single* record-level filter; tokens are
//!   domain-separated by field name so "ann" as a first name and "ann" as
//!   a city set different bits.
//!
//! The encoder handles tokenisation per QID type (q-grams for text,
//! neighbourhood tokens for numerics, component tokens for dates, a single
//! token for categoricals), optional salting by a stable field, and a
//! hardening pipeline applied to every output filter.

use crate::bloom::{BloomEncoder, BloomParams};
use crate::hardening::{apply_pipeline, salted_key, Hardening};
use crate::numeric_bf::NeighbourhoodParams;
use pprl_core::bitvec::BitVec;
use pprl_core::error::{PprlError, Result};
use pprl_core::normalize::normalize_default;
use pprl_core::qgram::{qgram_set, QGramConfig};
use pprl_core::record::Dataset;
use pprl_core::schema::Schema;
use pprl_core::value::Value;
use pprl_similarity::bitvec_sim::dice_bits;

/// How one field's value becomes tokens.
#[derive(Debug, Clone)]
pub enum FieldEncoding {
    /// Normalise then q-gram tokenise (text QIDs).
    TextQGram(QGramConfig),
    /// Neighbourhood tokens (numeric QIDs).
    Numeric(NeighbourhoodParams),
    /// Date components: full date plus year, month, day tokens, so close
    /// dates get partial credit.
    DateComponents,
    /// Single token (categorical QIDs).
    Categorical,
}

impl FieldEncoding {
    /// Tokenises `value` for field `field_name` (tokens are domain-separated
    /// by the field name). Missing values produce no tokens.
    pub fn tokens(&self, field_name: &str, value: &Value) -> Result<Vec<String>> {
        if value.is_missing() {
            return Ok(Vec::new());
        }
        let prefix = |t: String| format!("{field_name}|{t}");
        match self {
            FieldEncoding::TextQGram(cfg) => {
                let normalised = normalize_default(&value.as_text());
                Ok(qgram_set(&normalised, cfg)
                    .into_iter()
                    .map(prefix)
                    .collect())
            }
            FieldEncoding::Numeric(params) => Ok(params
                .tokens(value.as_f64()?)?
                .into_iter()
                .map(prefix)
                .collect()),
            FieldEncoding::DateComponents => match value {
                Value::Date(d) => Ok(vec![
                    prefix(format!("full:{d}")),
                    prefix(format!("y:{}", d.year())),
                    prefix(format!("m:{}", d.month())),
                    prefix(format!("d:{}", d.day())),
                ]),
                _ => Err(PprlError::ValueError(
                    "DateComponents encoding needs a Date value".into(),
                )),
            },
            FieldEncoding::Categorical => {
                let normalised = normalize_default(&value.as_text());
                if normalised.is_empty() {
                    Ok(Vec::new())
                } else {
                    Ok(vec![prefix(normalised)])
                }
            }
        }
    }
}

/// One encoded field of a record-encoder configuration.
#[derive(Debug, Clone)]
pub struct FieldSpec {
    /// Field name in the schema.
    pub field: String,
    /// Tokenisation.
    pub encoding: FieldEncoding,
    /// Attribute weight: the number of hash functions used for this field
    /// is `weight × k` (Durham-style weighted CLK). Discriminating fields
    /// (names, dob) get higher weights so they dominate the Dice score.
    /// Must be ≥ 1; the default is 1.
    pub weight: usize,
}

impl FieldSpec {
    /// Shorthand constructor with weight 1.
    pub fn new(field: impl Into<String>, encoding: FieldEncoding) -> Self {
        FieldSpec {
            field: field.into(),
            encoding,
            weight: 1,
        }
    }

    /// Sets the attribute weight (hash-count multiplier).
    pub fn weighted(mut self, weight: usize) -> Self {
        self.weight = weight;
        self
    }
}

/// Record-level vs field-level encoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EncodingMode {
    /// One CLK filter per record.
    Clk,
    /// One filter per field.
    FieldLevel,
}

/// Configuration of a [`RecordEncoder`].
#[derive(Debug, Clone)]
pub struct RecordEncoderConfig {
    /// Bloom parameters (length, hashes, scheme, shared key).
    pub params: BloomParams,
    /// CLK or field-level.
    pub mode: EncodingMode,
    /// Which fields to encode and how.
    pub fields: Vec<FieldSpec>,
    /// Optional salting field: its canonical text is mixed into the HMAC
    /// key per record (must be error-free and stable, e.g. year of birth).
    pub salt_field: Option<String>,
    /// Hardening pipeline applied to each output filter.
    pub hardening: Vec<Hardening>,
}

impl RecordEncoderConfig {
    /// Sensible defaults for [`Schema::person`]: CLK over names, street,
    /// city, postcode (bigrams), dob (components), gender (categorical) and
    /// age (neighbourhood ±2 years); l = 1000, k = 20, no hardening.
    pub fn person_clk(key: impl Into<Vec<u8>>) -> Self {
        let q = QGramConfig::default();
        RecordEncoderConfig {
            params: BloomParams {
                len: 1000,
                num_hashes: 10,
                scheme: crate::bloom::HashingScheme::DoubleHashing,
                key: key.into(),
            },
            mode: EncodingMode::Clk,
            fields: vec![
                FieldSpec::new("first_name", FieldEncoding::TextQGram(q)),
                FieldSpec::new("last_name", FieldEncoding::TextQGram(q)),
                FieldSpec::new("street", FieldEncoding::TextQGram(q)),
                FieldSpec::new("city", FieldEncoding::TextQGram(q)),
                FieldSpec::new("postcode", FieldEncoding::TextQGram(q)),
                FieldSpec::new("dob", FieldEncoding::DateComponents),
                FieldSpec::new("gender", FieldEncoding::Categorical),
                FieldSpec::new(
                    "age",
                    FieldEncoding::Numeric(NeighbourhoodParams {
                        step: 1.0,
                        neighbours: 2,
                    }),
                ),
            ],
            salt_field: None,
            hardening: Vec::new(),
        }
    }
}

/// An encoded record: one or several Bloom filters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EncodedRecord {
    /// Record-level CLK.
    Clk(BitVec),
    /// Field-level filters, aligned with the encoder's field specs.
    Fields(Vec<BitVec>),
}

impl EncodedRecord {
    /// The CLK filter, if record-level.
    pub fn clk(&self) -> Option<&BitVec> {
        match self {
            EncodedRecord::Clk(bv) => Some(bv),
            EncodedRecord::Fields(_) => None,
        }
    }

    /// The per-field filters, if field-level.
    pub fn fields(&self) -> Option<&[BitVec]> {
        match self {
            EncodedRecord::Clk(_) => None,
            EncodedRecord::Fields(f) => Some(f),
        }
    }

    /// The CLK filter, or a typed error for field-level records. Use this
    /// instead of matching-and-panicking when CLK encoding is required.
    pub fn try_clk(&self) -> Result<&BitVec> {
        self.clk()
            .ok_or_else(|| PprlError::Unsupported("record is field-level encoded, not CLK".into()))
    }

    /// The per-field filters, or a typed error for CLK records.
    pub fn try_fields(&self) -> Result<&[BitVec]> {
        self.fields()
            .ok_or_else(|| PprlError::Unsupported("record is CLK encoded, not field-level".into()))
    }

    /// Dice similarity to another encoded record: CLK Dice, or the mean of
    /// per-field Dice scores.
    pub fn dice(&self, other: &EncodedRecord) -> Result<f64> {
        match (self, other) {
            (EncodedRecord::Clk(a), EncodedRecord::Clk(b)) => dice_bits(a, b),
            (EncodedRecord::Fields(a), EncodedRecord::Fields(b)) => {
                if a.len() != b.len() {
                    return Err(PprlError::shape(
                        format!("{} field filters", a.len()),
                        format!("{} field filters", b.len()),
                    ));
                }
                if a.is_empty() {
                    return Ok(0.0);
                }
                let mut sum = 0.0;
                for (x, y) in a.iter().zip(b) {
                    sum += dice_bits(x, y)?;
                }
                Ok(sum / a.len() as f64)
            }
            _ => Err(PprlError::shape(
                "matching encoding modes".to_string(),
                "CLK vs field-level".to_string(),
            )),
        }
    }
}

/// A dataset's worth of encoded records (row-aligned with the source).
#[derive(Debug, Clone)]
pub struct EncodedDataset {
    /// Encoded rows.
    pub records: Vec<EncodedRecord>,
}

impl EncodedDataset {
    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The CLK filters as a vector (errors if field-level).
    pub fn clks(&self) -> Result<Vec<&BitVec>> {
        self.records
            .iter()
            .map(|r| {
                r.clk().ok_or_else(|| {
                    PprlError::Unsupported("dataset is field-level encoded, not CLK".into())
                })
            })
            .collect()
    }
}

/// Encodes datasets according to a [`RecordEncoderConfig`].
///
/// ```
/// use pprl_encoding::encoder::{RecordEncoder, RecordEncoderConfig};
/// use pprl_core::schema::Schema;
/// use pprl_core::record::{Dataset, Record};
/// use pprl_core::value::{Date, Value};
///
/// let schema = Schema::person();
/// let record = Record::new(1, vec![
///     Value::Text("anna".into()), Value::Text("smith".into()),
///     Value::Text("1 main st".into()), Value::Text("oxford".into()),
///     Value::Text("1234".into()), Value::Date(Date::new(1990, 6, 5).unwrap()),
///     Value::Categorical("f".into()), Value::Integer(36),
/// ]);
/// let dataset = Dataset::from_records(schema.clone(), vec![record]).unwrap();
/// let encoder = RecordEncoder::new(
///     RecordEncoderConfig::person_clk(b"shared-key".to_vec()), &schema).unwrap();
/// let encoded = encoder.encode_dataset(&dataset).unwrap();
/// assert_eq!(encoded.records[0].clk().unwrap().len(), 1000);
/// ```
#[derive(Debug, Clone)]
pub struct RecordEncoder {
    config: RecordEncoderConfig,
}

impl RecordEncoder {
    /// Validates the configuration against a schema.
    pub fn new(config: RecordEncoderConfig, schema: &Schema) -> Result<Self> {
        if config.fields.is_empty() {
            return Err(PprlError::invalid("fields", "need at least one field spec"));
        }
        for spec in &config.fields {
            schema.index_of(&spec.field)?;
            if spec.weight == 0 {
                return Err(PprlError::invalid(
                    "weight",
                    format!("field `{}` has weight 0", spec.field),
                ));
            }
        }
        if let Some(salt) = &config.salt_field {
            schema.index_of(salt)?;
        }
        // Validate Bloom parameters eagerly.
        BloomEncoder::new(config.params.clone())?;
        Ok(RecordEncoder { config })
    }

    /// The configured output filter length after hardening.
    pub fn output_len(&self) -> usize {
        let mut len = self.config.params.len;
        for h in &self.config.hardening {
            len = h.output_len(len);
        }
        len
    }

    /// Encodes every record of `dataset`.
    pub fn encode_dataset(&self, dataset: &Dataset) -> Result<EncodedDataset> {
        let schema = dataset.schema();
        let field_idx: Vec<usize> = self
            .config
            .fields
            .iter()
            .map(|s| schema.index_of(&s.field))
            .collect::<Result<_>>()?;
        let salt_idx = match &self.config.salt_field {
            Some(f) => Some(schema.index_of(f)?),
            None => None,
        };
        // One encoder per field honours the attribute weight (hash-count
        // multiplier) of the weighted-CLK construction.
        let build_encoders = |key: &[u8]| -> Result<Vec<BloomEncoder>> {
            self.config
                .fields
                .iter()
                .map(|spec| {
                    let mut params = self.config.params.clone();
                    params.key = key.to_vec();
                    params.num_hashes = self.config.params.num_hashes * spec.weight;
                    BloomEncoder::new(params)
                })
                .collect()
        };
        let base_encoders = build_encoders(&self.config.params.key)?;
        let mut records = Vec::with_capacity(dataset.len());
        for (row, record) in dataset.records().iter().enumerate() {
            // Per-record encoders when salting; the shared ones otherwise.
            let salted_encoders;
            let encoders = if let Some(si) = salt_idx {
                let salt = record.values[si].as_text();
                salted_encoders = build_encoders(&salted_key(&self.config.params.key, &salt))?;
                &salted_encoders
            } else {
                &base_encoders
            };
            let nonce = row as u64;
            let encoded = match self.config.mode {
                EncodingMode::Clk => {
                    let mut filter = BitVec::zeros(self.config.params.len);
                    for ((spec, &idx), enc) in
                        self.config.fields.iter().zip(&field_idx).zip(encoders)
                    {
                        let tokens = spec.encoding.tokens(&spec.field, &record.values[idx])?;
                        enc.encode_tokens_into(&tokens, &mut filter)?;
                    }
                    EncodedRecord::Clk(apply_pipeline(&filter, &self.config.hardening, nonce)?)
                }
                EncodingMode::FieldLevel => {
                    let mut filters = Vec::with_capacity(self.config.fields.len());
                    for ((spec, &idx), enc) in
                        self.config.fields.iter().zip(&field_idx).zip(encoders)
                    {
                        let tokens = spec.encoding.tokens(&spec.field, &record.values[idx])?;
                        let filter = enc.encode_tokens(&tokens);
                        filters.push(apply_pipeline(&filter, &self.config.hardening, nonce)?);
                    }
                    EncodedRecord::Fields(filters)
                }
            };
            records.push(encoded);
        }
        Ok(EncodedDataset { records })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pprl_core::record::Record;
    use pprl_core::value::Date;

    fn person_at(
        first: &str,
        last: &str,
        dob: (i32, u8, u8),
        age: i64,
        street: &str,
        city: &str,
        postcode: &str,
    ) -> Record {
        Record::new(
            0,
            vec![
                Value::Text(first.into()),
                Value::Text(last.into()),
                Value::Text(street.into()),
                Value::Text(city.into()),
                Value::Text(postcode.into()),
                Value::Date(Date::new(dob.0, dob.1, dob.2).unwrap()),
                Value::Categorical("f".into()),
                Value::Integer(age),
            ],
        )
    }

    fn person(first: &str, last: &str, dob: (i32, u8, u8), age: i64) -> Record {
        person_at(first, last, dob, age, "12 main st", "springfield", "1234")
    }

    fn dataset(records: Vec<Record>) -> Dataset {
        Dataset::from_records(Schema::person(), records).unwrap()
    }

    #[test]
    fn config_validation() {
        let schema = Schema::person();
        let mut cfg = RecordEncoderConfig::person_clk(b"k".to_vec());
        cfg.fields
            .push(FieldSpec::new("nope", FieldEncoding::Categorical));
        assert!(RecordEncoder::new(cfg, &schema).is_err());
        let mut cfg = RecordEncoderConfig::person_clk(b"k".to_vec());
        cfg.salt_field = Some("nope".into());
        assert!(RecordEncoder::new(cfg, &schema).is_err());
        let mut cfg = RecordEncoderConfig::person_clk(b"k".to_vec());
        cfg.fields.clear();
        assert!(RecordEncoder::new(cfg, &schema).is_err());
    }

    #[test]
    fn clk_similarity_separates_matches_from_nonmatches() {
        let cfg = RecordEncoderConfig::person_clk(b"shared-key".to_vec());
        let enc = RecordEncoder::new(cfg, &Schema::person()).unwrap();
        let ds_a = dataset(vec![person("anna", "smith", (1987, 6, 5), 39)]);
        let ds_b = dataset(vec![
            person("anna", "smyth", (1987, 6, 5), 39), // near match (same address)
            person_at(
                "greg",
                "jones",
                (1960, 2, 2),
                66,
                "7 oak avenue",
                "shelbyville",
                "9876",
            ), // non-match
        ]);
        let ea = enc.encode_dataset(&ds_a).unwrap();
        let eb = enc.encode_dataset(&ds_b).unwrap();
        let sim_match = ea.records[0].dice(&eb.records[0]).unwrap();
        let sim_non = ea.records[0].dice(&eb.records[1]).unwrap();
        assert!(sim_match > 0.75, "near match scored {sim_match}");
        assert!(sim_non < 0.55, "non-match scored {sim_non}");
        assert!(sim_match > sim_non);
    }

    #[test]
    fn field_level_mode_produces_per_field_filters() {
        let mut cfg = RecordEncoderConfig::person_clk(b"k".to_vec());
        cfg.mode = EncodingMode::FieldLevel;
        let enc = RecordEncoder::new(cfg, &Schema::person()).unwrap();
        let ds = dataset(vec![person("anna", "smith", (1987, 6, 5), 39)]);
        let e = enc.encode_dataset(&ds).unwrap();
        let fields = e.records[0].try_fields().expect("field-level encoding");
        assert_eq!(fields.len(), 8);
        // The typed accessors reject the wrong granularity without panicking.
        let err = e.records[0].try_clk().unwrap_err();
        assert!(matches!(err, PprlError::Unsupported(_)), "{err}");
        assert!(e.records[0].clk().is_none());
        // Self similarity is 1.
        assert_eq!(e.records[0].dice(&e.records[0]).unwrap(), 1.0);
    }

    #[test]
    fn mode_mismatch_is_error() {
        let clk_cfg = RecordEncoderConfig::person_clk(b"k".to_vec());
        let mut fl_cfg = RecordEncoderConfig::person_clk(b"k".to_vec());
        fl_cfg.mode = EncodingMode::FieldLevel;
        let schema = Schema::person();
        let ds = dataset(vec![person("anna", "smith", (1987, 6, 5), 39)]);
        let a = RecordEncoder::new(clk_cfg, &schema)
            .unwrap()
            .encode_dataset(&ds)
            .unwrap();
        let b = RecordEncoder::new(fl_cfg, &schema)
            .unwrap()
            .encode_dataset(&ds)
            .unwrap();
        assert!(a.records[0].dice(&b.records[0]).is_err());
    }

    #[test]
    fn salting_breaks_cross_salt_similarity() {
        let mut cfg = RecordEncoderConfig::person_clk(b"k".to_vec());
        cfg.salt_field = Some("dob".into());
        let enc = RecordEncoder::new(cfg, &Schema::person()).unwrap();
        // Same name, different dob → different salt → dissimilar filters.
        let ds = dataset(vec![
            person("anna", "smith", (1987, 6, 5), 39),
            person("anna", "smith", (1988, 7, 6), 38),
            person("anna", "smith", (1987, 6, 5), 39),
        ]);
        let e = enc.encode_dataset(&ds).unwrap();
        let same_salt = e.records[0].dice(&e.records[2]).unwrap();
        let diff_salt = e.records[0].dice(&e.records[1]).unwrap();
        assert_eq!(same_salt, 1.0);
        assert!(diff_salt < 0.5, "cross-salt similarity {diff_salt}");
    }

    #[test]
    fn hardening_changes_output_length() {
        let mut cfg = RecordEncoderConfig::person_clk(b"k".to_vec());
        cfg.hardening = vec![Hardening::XorFold];
        let enc = RecordEncoder::new(cfg, &Schema::person()).unwrap();
        assert_eq!(enc.output_len(), 500);
        let ds = dataset(vec![person("anna", "smith", (1987, 6, 5), 39)]);
        let e = enc.encode_dataset(&ds).unwrap();
        assert_eq!(e.records[0].clk().unwrap().len(), 500);
    }

    #[test]
    fn missing_values_encode_to_no_tokens() {
        let cfg = RecordEncoderConfig::person_clk(b"k".to_vec());
        let enc = RecordEncoder::new(cfg, &Schema::person()).unwrap();
        let mut r = person("anna", "smith", (1987, 6, 5), 39);
        for v in r.values.iter_mut() {
            *v = Value::Missing;
        }
        let ds = dataset(vec![r]);
        let e = enc.encode_dataset(&ds).unwrap();
        assert_eq!(e.records[0].clk().unwrap().count_ones(), 0);
    }

    #[test]
    fn clks_accessor() {
        let cfg = RecordEncoderConfig::person_clk(b"k".to_vec());
        let enc = RecordEncoder::new(cfg, &Schema::person()).unwrap();
        let ds = dataset(vec![person("anna", "smith", (1987, 6, 5), 39)]);
        let e = enc.encode_dataset(&ds).unwrap();
        assert_eq!(e.clks().unwrap().len(), 1);
        assert_eq!(e.len(), 1);
        assert!(!e.is_empty());
        assert!(e.records[0].try_clk().is_ok());
        assert!(matches!(
            e.records[0].try_fields().unwrap_err(),
            PprlError::Unsupported(_)
        ));
        assert!(e.records[0].fields().is_none());
    }

    #[test]
    fn date_component_tokens_give_partial_credit() {
        let cfg = RecordEncoderConfig {
            fields: vec![FieldSpec::new("dob", FieldEncoding::DateComponents)],
            ..RecordEncoderConfig::person_clk(b"k".to_vec())
        };
        let enc = RecordEncoder::new(cfg, &Schema::person()).unwrap();
        let ds = dataset(vec![
            person("a", "b", (1987, 6, 5), 39),
            person("a", "b", (1987, 6, 6), 39), // day differs
            person("a", "b", (1950, 1, 1), 76), // all components differ
        ]);
        let e = enc.encode_dataset(&ds).unwrap();
        let close = e.records[0].dice(&e.records[1]).unwrap();
        let far = e.records[0].dice(&e.records[2]).unwrap();
        assert!(close > far, "close {close} vs far {far}");
        assert!(close > 0.4);
    }

    #[test]
    fn wrong_value_type_for_date_errors() {
        let spec = FieldEncoding::DateComponents;
        assert!(spec
            .tokens("dob", &Value::Text("1987-06-05".into()))
            .is_err());
        assert!(spec.tokens("dob", &Value::Missing).unwrap().is_empty());
    }
}

#[cfg(test)]
mod weight_tests {
    use super::*;
    use pprl_core::record::Record;
    use pprl_core::value::Date;

    fn two_field_schema() -> Schema {
        pprl_core::schema::Schema::new(vec![
            pprl_core::schema::FieldDef::qid("name", pprl_core::schema::FieldType::Text),
            pprl_core::schema::FieldDef::qid("city", pprl_core::schema::FieldType::Text),
        ])
        .unwrap()
    }

    fn cfg(weight_name: usize) -> RecordEncoderConfig {
        RecordEncoderConfig {
            params: crate::bloom::BloomParams {
                len: 1000,
                num_hashes: 4,
                scheme: crate::bloom::HashingScheme::DoubleHashing,
                key: b"w".to_vec(),
            },
            mode: EncodingMode::Clk,
            fields: vec![
                FieldSpec::new(
                    "name",
                    FieldEncoding::TextQGram(pprl_core::qgram::QGramConfig::default()),
                )
                .weighted(weight_name),
                FieldSpec::new(
                    "city",
                    FieldEncoding::TextQGram(pprl_core::qgram::QGramConfig::default()),
                ),
            ],
            salt_field: None,
            hardening: Vec::new(),
        }
    }

    fn rec(name: &str, city: &str) -> Record {
        Record::new(0, vec![Value::Text(name.into()), Value::Text(city.into())])
    }

    fn ds(records: Vec<Record>) -> Dataset {
        Dataset::from_records(two_field_schema(), records).unwrap()
    }

    #[test]
    fn zero_weight_rejected() {
        let mut c = cfg(1);
        c.fields[0].weight = 0;
        assert!(RecordEncoder::new(c, &two_field_schema()).is_err());
    }

    #[test]
    fn higher_weight_makes_field_dominate_similarity() {
        // Same name / different city vs different name / same city.
        let data = ds(vec![
            rec("jonathan", "springfield"),
            rec("jonathan", "riverside"),   // name agrees
            rec("margaret", "springfield"), // city agrees
        ]);
        let sims = |weight: usize| {
            let enc = RecordEncoder::new(cfg(weight), &two_field_schema()).unwrap();
            let e = enc.encode_dataset(&data).unwrap();
            (
                e.records[0].dice(&e.records[1]).unwrap(), // name-agree pair
                e.records[0].dice(&e.records[2]).unwrap(), // city-agree pair
            )
        };
        let (name_w1, city_w1) = sims(1);
        let (name_w4, city_w4) = sims(4);
        // With weight 4 on the name, the name-agreeing pair gains relative
        // to the city-agreeing pair.
        assert!(
            name_w4 - city_w4 > name_w1 - city_w1,
            "weighting should widen the gap: w1 ({name_w1:.3},{city_w1:.3}) w4 ({name_w4:.3},{city_w4:.3})"
        );
        assert!(name_w4 > 0.6);
    }

    #[test]
    fn weighting_keeps_self_similarity_one() {
        let data = ds(vec![rec("anna", "oxford")]);
        let enc = RecordEncoder::new(cfg(3), &two_field_schema()).unwrap();
        let e = enc.encode_dataset(&data).unwrap();
        assert_eq!(e.records[0].dice(&e.records[0]).unwrap(), 1.0);
    }

    #[test]
    fn date_unused_helper_still_compiles() {
        // Keep the Date import exercised for the weighted module.
        let _ = Date::new(2000, 1, 1).unwrap();
    }
}
