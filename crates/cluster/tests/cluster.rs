//! End-to-end tests for `pprl-cluster`: 3-shard scatter–gather results
//! bit-identical to a single node holding the union corpus, degraded
//! merges after a shard dies mid-query, quorum enforcement, `Busy`
//! absorption within the deadline, snapshot-shipped replicas, and the
//! TCP front end speaking the stock client protocol.

use pprl_cluster::coordinator::{route_id, ClusterConfig, Coordinator};
use pprl_cluster::server::{serve_cluster, ClusterServerConfig};
use pprl_core::bitvec::BitVec;
use pprl_core::error::PprlError;
use pprl_index::manifest::IndexConfig;
use pprl_index::query::Hit;
use pprl_index::store::IndexStore;
use pprl_server::client::Client;
use pprl_server::server::{serve, ServerConfig, ServerHandle};
use pprl_server::wire::{read_payload, write_payload, Incoming, Request, Response};
use pprl_session::suite::SuiteOffer;
use std::path::{Path, PathBuf};
use std::time::Duration;

const FILTER_LEN: usize = 256;
const SHARDS: usize = 3;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "pprl-cluster-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Deterministic pseudo-random filter for record `id`.
fn filter_for(id: u64) -> BitVec {
    let mut positions = Vec::new();
    let mut x = id.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(17);
    for _ in 0..40 {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        positions.push((x % FILTER_LEN as u64) as usize);
    }
    positions.sort_unstable();
    positions.dedup();
    BitVec::from_positions(FILTER_LEN, &positions).unwrap()
}

/// Creates an index at `dir` holding exactly `records`.
fn build_store(dir: &Path, records: &[(u64, BitVec)]) {
    let mut store = IndexStore::create(dir, IndexConfig::new(FILTER_LEN, 4)).unwrap();
    if !records.is_empty() {
        store.insert_batch(records).unwrap();
        store.flush().unwrap();
    }
}

fn serve_shard(dir: &Path) -> ServerHandle {
    serve(
        dir,
        "127.0.0.1:0",
        ServerConfig {
            workers: 2,
            queue_capacity: 16,
            compact_interval: None,
            ..ServerConfig::default()
        },
    )
    .unwrap()
}

/// The union corpus: ids 0..180 routed across shards by `route_id`,
/// plus six records over three shards sharing one filter (equal Dice
/// score against it from every shard) to exercise cross-shard
/// tie-breaking in the merge.
fn union_corpus() -> Vec<(u64, BitVec)> {
    let mut records: Vec<(u64, BitVec)> = (0..180u64).map(|id| (id, filter_for(id))).collect();
    let tie_filter = filter_for(999_999);
    for id in [10_001u64, 10_002, 10_003, 10_004, 10_005, 10_006] {
        records.push((id, tie_filter.clone()));
    }
    records
}

/// Partitions `records` by the coordinator's routing function.
fn partition(records: &[(u64, BitVec)]) -> Vec<Vec<(u64, BitVec)>> {
    let mut parts = vec![Vec::new(); SHARDS];
    for (id, f) in records {
        parts[route_id(*id, SHARDS)].push((*id, f.clone()));
    }
    parts
}

/// Offline single-node oracle answers over an arbitrary record set.
fn oracle_top_k(
    tag: &str,
    records: &[(u64, BitVec)],
    probes: &[BitVec],
    k: usize,
) -> Vec<Vec<Hit>> {
    let dir = temp_dir(tag);
    build_store(&dir, records);
    let store = IndexStore::open(&dir).unwrap();
    let reader = store.reader().unwrap();
    let out = probes
        .iter()
        .map(|p| reader.top_k(p, k, 1).unwrap())
        .collect();
    drop(store);
    std::fs::remove_dir_all(&dir).ok();
    out
}

struct TestCluster {
    shards: Vec<ServerHandle>,
    dirs: Vec<PathBuf>,
}

impl TestCluster {
    /// 3 shard nodes over a routed partition of `records`.
    fn start(tag: &str, records: &[(u64, BitVec)]) -> TestCluster {
        let parts = partition(records);
        let dirs: Vec<PathBuf> = (0..SHARDS)
            .map(|i| temp_dir(&format!("{tag}-s{i}")))
            .collect();
        let shards = dirs
            .iter()
            .zip(&parts)
            .map(|(dir, part)| {
                build_store(dir, part);
                serve_shard(dir)
            })
            .collect();
        TestCluster { shards, dirs }
    }

    fn addrs(&self) -> Vec<String> {
        self.shards.iter().map(|h| h.addr().to_string()).collect()
    }

    fn stop(self) {
        for shard in self.shards {
            shard.shutdown_now();
        }
        for dir in self.dirs {
            std::fs::remove_dir_all(&dir).ok();
        }
    }
}

/// The headline acceptance criterion: a 3-shard cluster answers query
/// and link bit-identically to a single node holding the union corpus,
/// including crafted cross-shard score ties.
#[test]
fn cluster_matches_single_node_union_oracle() {
    let records = union_corpus();
    // The tie records must actually land on distinct shards for the
    // cross-shard tie-break to be exercised.
    let tie_shards: std::collections::HashSet<usize> = (10_001u64..=10_006)
        .map(|id| route_id(id, SHARDS))
        .collect();
    assert!(tie_shards.len() >= 2, "tie ids all routed to one shard");

    let cluster = TestCluster::start("oracle", &records);
    let coordinator = Coordinator::connect(ClusterConfig {
        shards: cluster.addrs(),
        min_shards: SHARDS,
        deadline: Duration::from_secs(10),
        shard_auth: None,
    })
    .unwrap();

    // Probes: in-corpus records, unseen records, and the tie filter.
    let mut probes: Vec<BitVec> = (0..10u64).map(filter_for).collect();
    probes.extend((5000..5010u64).map(filter_for));
    probes.push(filter_for(999_999));

    for k in [1usize, 5, 17] {
        let expected = oracle_top_k("oracle-ref", &records, &probes, k);
        for (probe, want) in probes.iter().zip(&expected) {
            let got = coordinator.query(probe, k).unwrap();
            assert_eq!(&got, want, "k={k}: cluster diverged from union oracle");
        }
    }

    // The tie probe must rank the six equal-score records by id.
    let ties = coordinator.query(&filter_for(999_999), 6).unwrap();
    assert_eq!(
        ties.iter().map(|h| h.id).collect::<Vec<_>>(),
        [10_001, 10_002, 10_003, 10_004, 10_005, 10_006]
    );
    let first_score = ties[0].score;
    assert!(ties.iter().all(|h| h.score == first_score));

    // Batch link with a threshold merges identically too.
    let min_score = 0.55;
    let k = 6;
    let expected: Vec<Vec<Hit>> = oracle_top_k("oracle-link", &records, &probes, k)
        .into_iter()
        .map(|mut hits| {
            hits.retain(|h| h.score >= min_score);
            hits
        })
        .collect();
    let got = coordinator.link(&probes, k, min_score).unwrap();
    assert_eq!(got, expected, "cluster link diverged from union oracle");

    assert!(coordinator.missing_shards().is_empty());
    assert_eq!(
        coordinator
            .metrics
            .degraded_replies
            .load(std::sync::atomic::Ordering::Relaxed),
        0
    );
    cluster.stop();
}

/// Inserts through the coordinator route by id hash, are acknowledged
/// with the summed count, and are immediately visible to broadcast
/// queries — from every shard they landed on.
#[test]
fn routed_inserts_are_visible_cluster_wide() {
    let records = union_corpus();
    let cluster = TestCluster::start("insert", &records);
    let coordinator = Coordinator::connect(ClusterConfig {
        shards: cluster.addrs(),
        min_shards: SHARDS,
        deadline: Duration::from_secs(10),
        shard_auth: None,
    })
    .unwrap();

    let fresh: Vec<(u64, BitVec)> = (20_000..20_030u64).map(|id| (id, filter_for(id))).collect();
    // The batch must split across at least two shards to test routing.
    let routed: std::collections::HashSet<usize> =
        fresh.iter().map(|(id, _)| route_id(*id, SHARDS)).collect();
    assert!(routed.len() >= 2);

    let (count, generation) = coordinator.insert(&fresh).unwrap();
    assert_eq!(count, 30);
    assert!(generation >= 1);

    for (id, filter) in &fresh {
        let hits = coordinator.query(filter, 1).unwrap();
        assert_eq!(
            hits[0].id, *id,
            "inserted record not the top hit for its own filter"
        );
        assert!((hits[0].score - 1.0).abs() < 1e-12);
    }

    // The stats surface sums the shard corpora: originals + the batch.
    let stats = coordinator.stats(0);
    assert_eq!(stats.records, records.len() as u64 + 30);
    assert_eq!(stats.cluster_shards, SHARDS as u32);
    assert_eq!(stats.shards_down, 0);
    assert!(!stats.degraded);
    cluster.stop();
}

/// Killing a shard degrades reads instead of failing them: queries
/// merge the survivors exactly (bit-identical to an oracle over the
/// surviving sub-corpus), stats reports the missing shard, and losing
/// quorum turns reads into typed errors.
#[test]
fn killed_shard_degrades_merge_and_stats_then_quorum_fails() {
    let records = union_corpus();
    let parts = partition(&records);
    let cluster = TestCluster::start("degraded", &records);
    let addrs = cluster.addrs();
    let coordinator = Coordinator::connect(ClusterConfig {
        shards: addrs.clone(),
        min_shards: 1,
        deadline: Duration::from_secs(5),
        shard_auth: None,
    })
    .unwrap();

    let probes: Vec<BitVec> = (0..8u64).map(filter_for).collect();
    let full = oracle_top_k("degraded-full", &records, &probes, 5);
    for (probe, want) in probes.iter().zip(&full) {
        assert_eq!(&coordinator.query(probe, 5).unwrap(), want);
    }

    // Kill shard 1 out from under the coordinator.
    let mut killer = Client::connect(&addrs[1]).unwrap();
    killer.shutdown().unwrap();
    drop(killer);
    std::thread::sleep(Duration::from_millis(300));

    // Reads still succeed, now exactly over shards 0 and 2.
    let survivors: Vec<(u64, BitVec)> = parts[0].iter().chain(&parts[2]).cloned().collect();
    let degraded = oracle_top_k("degraded-rest", &survivors, &probes, 5);
    for (probe, want) in probes.iter().zip(&degraded) {
        assert_eq!(
            &coordinator.query(probe, 5).unwrap(),
            want,
            "degraded merge diverged from the surviving sub-corpus"
        );
    }
    assert_eq!(coordinator.missing_shards(), vec![1]);
    assert!(
        coordinator
            .metrics
            .degraded_replies
            .load(std::sync::atomic::Ordering::Relaxed)
            >= probes.len() as u64
    );

    // Stats never fails on lost shards; it reports them.
    let stats = coordinator.stats(0);
    assert!(stats.degraded);
    assert_eq!(stats.cluster_shards, 3);
    assert_eq!(stats.shards_down, 1);
    assert_eq!(stats.missing_shards, vec![1]);
    assert_eq!(
        stats.records,
        (parts[0].len() + parts[2].len()) as u64,
        "degraded stats must count the surviving corpus only"
    );

    // Writes routed to the dead shard fail loudly — no silent loss.
    let doomed_id = (0..u64::MAX).find(|id| route_id(*id, SHARDS) == 1).unwrap();
    let err = coordinator
        .insert(&[(doomed_id, filter_for(doomed_id))])
        .unwrap_err();
    assert!(
        matches!(err, PprlError::Transport(_) | PprlError::Timeout(_)),
        "got {err:?}"
    );

    // Below quorum (min_shards back up to 2 conceptually): kill another
    // shard with a 2-survivor quorum coordinator and reads must error.
    let strict = Coordinator::new(ClusterConfig {
        shards: addrs.clone(),
        min_shards: 2,
        deadline: Duration::from_secs(5),
        shard_auth: None,
    })
    .unwrap();
    let mut killer = Client::connect(&addrs[2]).unwrap();
    killer.shutdown().unwrap();
    drop(killer);
    std::thread::sleep(Duration::from_millis(300));
    match strict.query(&probes[0], 5) {
        Err(PprlError::Transport(msg)) => assert!(msg.contains("quorum"), "{msg}"),
        other => panic!("expected a quorum error, got {other:?}"),
    }
    cluster.stop();
}

/// A scripted wire-speaking shard that answers the first request with
/// `Busy` (closing the connection, as the real server does) and the
/// second with real hits: the coordinator's client absorbs the
/// rejection with backoff and the scatter still succeeds within its
/// deadline.
#[test]
fn busy_shard_is_retried_within_the_deadline() {
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let hits = vec![
        Hit {
            id: 7,
            score: 0.875,
        },
        Hit { id: 9, score: 0.5 },
    ];
    let scripted = hits.clone();
    let fake = std::thread::spawn(move || {
        // Connection 1: read the request, reject with Busy, close.
        let (mut conn, _) = listener.accept().unwrap();
        loop {
            match read_payload(&mut conn).unwrap() {
                Incoming::Payload(p) => {
                    assert!(matches!(
                        Request::decode(&p).unwrap(),
                        Request::Query { .. }
                    ));
                    break;
                }
                Incoming::TimedOut => continue,
                Incoming::Eof => panic!("client hung up before sending"),
            }
        }
        let busy = Response::Busy { retry_after_ms: 5 };
        write_payload(&mut conn, &busy.encode()).unwrap();
        drop(conn);
        // Connection 2: the retried request gets real hits.
        let (mut conn, _) = listener.accept().unwrap();
        loop {
            match read_payload(&mut conn).unwrap() {
                Incoming::Payload(p) => {
                    assert!(matches!(
                        Request::decode(&p).unwrap(),
                        Request::Query { .. }
                    ));
                    break;
                }
                Incoming::TimedOut => continue,
                Incoming::Eof => panic!("client never retried after Busy"),
            }
        }
        write_payload(&mut conn, &Response::Hits(scripted).encode()).unwrap();
    });

    let coordinator = Coordinator::new(ClusterConfig {
        shards: vec![addr],
        min_shards: 1,
        deadline: Duration::from_secs(5),
        shard_auth: None,
    })
    .unwrap();
    let got = coordinator.query(&filter_for(1), 2).unwrap();
    assert_eq!(got, hits);
    fake.join().unwrap();
    // The Busy bounce was absorbed inside the client, not surfaced as a
    // shard failure.
    assert!(coordinator.missing_shards().is_empty());
}

/// Snapshot shipping: a replica built by `export_snapshot` from a
/// donor store serves as a drop-in shard — the rebuilt cluster answers
/// bit-identically to the union oracle.
#[test]
fn snapshot_shipped_replica_serves_as_a_shard() {
    let records = union_corpus();
    let parts = partition(&records);

    // Donor for shard 1: includes an unflushed WAL tail, which the
    // export must carry over.
    let donor_dir = temp_dir("ship-donor");
    let (flushed, tail) = parts[1].split_at(parts[1].len() - 3);
    let mut donor = IndexStore::create(&donor_dir, IndexConfig::new(FILTER_LEN, 4)).unwrap();
    donor.insert_batch(flushed).unwrap();
    donor.flush().unwrap();
    donor.insert_batch(tail).unwrap(); // pending, not flushed

    let replica_dir = temp_dir("ship-replica");
    std::fs::remove_dir_all(&replica_dir).ok(); // export wants a fresh dir
    std::fs::create_dir_all(&replica_dir).unwrap();
    let shipped = donor.export_snapshot(&replica_dir).unwrap();
    assert!(shipped.records >= flushed.len());
    drop(donor);
    std::fs::remove_dir_all(&donor_dir).ok();

    // Shards 0 and 2 from the routed partition; shard 1 is the replica.
    let dir0 = temp_dir("ship-s0");
    let dir2 = temp_dir("ship-s2");
    build_store(&dir0, &parts[0]);
    build_store(&dir2, &parts[2]);
    let shards = [
        serve_shard(&dir0),
        serve_shard(&replica_dir),
        serve_shard(&dir2),
    ];
    let coordinator = Coordinator::connect(ClusterConfig {
        shards: shards.iter().map(|h| h.addr().to_string()).collect(),
        min_shards: 3,
        deadline: Duration::from_secs(10),
        shard_auth: None,
    })
    .unwrap();

    let probes: Vec<BitVec> = (0..6u64)
        .map(filter_for)
        .chain(parts[1].iter().take(4).map(|(_, f)| f.clone()))
        .collect();
    let expected = oracle_top_k("ship-oracle", &records, &probes, 5);
    for (probe, want) in probes.iter().zip(&expected) {
        assert_eq!(
            &coordinator.query(probe, 5).unwrap(),
            want,
            "replica-backed cluster diverged from the union oracle"
        );
    }

    for shard in shards {
        shard.shutdown_now();
    }
    for dir in [dir0, replica_dir, dir2] {
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// The TCP front end: a stock client talks to the cluster exactly as
/// to one node — same results, cluster-shaped stats, and `Shutdown`
/// stopping only the coordinator while shards keep serving.
#[test]
fn front_end_speaks_the_stock_client_protocol() {
    let records = union_corpus();
    let cluster = TestCluster::start("front", &records);
    let coordinator = std::sync::Arc::new(
        Coordinator::connect(ClusterConfig {
            shards: cluster.addrs(),
            min_shards: SHARDS,
            deadline: Duration::from_secs(10),
            shard_auth: None,
        })
        .unwrap(),
    );
    let front = serve_cluster(
        std::sync::Arc::clone(&coordinator),
        "127.0.0.1:0",
        ClusterServerConfig {
            workers: 2,
            queue_capacity: 8,
            ..ClusterServerConfig::default()
        },
    )
    .unwrap();
    let front_addr = front.addr().to_string();

    let probes: Vec<BitVec> = (0..6u64).map(filter_for).collect();
    let expected = oracle_top_k("front-oracle", &records, &probes, 4);
    let mut client = Client::connect_retry(&front_addr, 20, Duration::from_millis(10)).unwrap();
    for (probe, want) in probes.iter().zip(&expected) {
        assert_eq!(&client.query(probe, 4).unwrap(), want);
    }

    let stats = client.stats().unwrap();
    assert_eq!(stats.cluster_shards, SHARDS as u32);
    assert_eq!(stats.shards_down, 0);
    assert!(!stats.degraded);
    assert_eq!(stats.records, records.len() as u64);
    assert_eq!(stats.queries, probes.len() as u64);
    assert_eq!(stats.workers, 2);
    assert_eq!(stats.queue_capacity, 8);

    // Shutdown through the wire stops the coordinator only.
    client.shutdown().unwrap();
    front.join();
    for addr in cluster.addrs() {
        let mut direct = Client::connect(&addr).unwrap();
        assert!(direct.stats().is_ok(), "shard died with the coordinator");
    }
    cluster.stop();
}

/// A timed-out call on a pooled connection must NOT fall through to a
/// fresh dial: the request may be fully written to a slow-but-alive
/// shard that applies it after the deadline, so resending the insert
/// on a new connection could append the same records twice (shard
/// stores are append-only with no id dedup). Scripted shard: it acks
/// the first insert (populating the pool), then answers the second
/// with a `Busy` whose backoff cannot fit in the deadline — the client
/// gives up with a `Timeout` — and watches for a forbidden redial.
#[test]
fn timed_out_insert_is_not_redialed() {
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let accepts = Arc::new(AtomicUsize::new(0));
    let fake_accepts = Arc::clone(&accepts);
    let fake = std::thread::spawn(move || {
        let (mut conn, _) = listener.accept().unwrap();
        fake_accepts.fetch_add(1, Ordering::SeqCst);
        let script = [
            Response::Inserted {
                count: 1,
                generation: 1,
            },
            Response::Busy {
                retry_after_ms: 5000,
            },
        ];
        for response in script {
            loop {
                match read_payload(&mut conn).unwrap() {
                    Incoming::Payload(p) => {
                        assert!(matches!(
                            Request::decode(&p).unwrap(),
                            Request::Insert { .. }
                        ));
                        break;
                    }
                    Incoming::TimedOut => continue,
                    Incoming::Eof => panic!("coordinator hung up before sending"),
                }
            }
            write_payload(&mut conn, &response.encode()).unwrap();
        }
        // The timed-out insert must not arrive again on a fresh dial.
        listener.set_nonblocking(true).unwrap();
        let end = std::time::Instant::now() + Duration::from_millis(800);
        while std::time::Instant::now() < end {
            if listener.accept().is_ok() {
                fake_accepts.fetch_add(1, Ordering::SeqCst);
            }
            std::thread::sleep(Duration::from_millis(10));
        }
    });

    let coordinator = Coordinator::new(ClusterConfig {
        shards: vec![addr],
        min_shards: 1,
        deadline: Duration::from_millis(200),
        shard_auth: None,
    })
    .unwrap();
    let (count, _) = coordinator.insert(&[(1, filter_for(1))]).unwrap();
    assert_eq!(count, 1);
    let err = coordinator.insert(&[(2, filter_for(2))]).unwrap_err();
    assert!(matches!(err, PprlError::Timeout(_)), "got {err:?}");
    fake.join().unwrap();
    assert_eq!(
        accepts.load(Ordering::SeqCst),
        1,
        "coordinator redialed after a timeout — a slow shard could have \
         applied the first send, and the resend would duplicate it"
    );
    // The timeout marks the shard down (health is re-probed on use).
    assert_eq!(coordinator.missing_shards(), vec![0]);
}

/// Killing a shard mid-batch: the insert still waits for every
/// sub-batch outcome, then names exactly which shards applied theirs
/// and which failed, so a caller retries only the failed subset
/// instead of duplicating the applied records.
#[test]
fn partial_insert_names_applied_and_failed_shards() {
    let records = union_corpus();
    let cluster = TestCluster::start("partial", &records);
    let addrs = cluster.addrs();
    let coordinator = Coordinator::connect(ClusterConfig {
        shards: addrs.clone(),
        min_shards: 1,
        deadline: Duration::from_secs(5),
        shard_auth: None,
    })
    .unwrap();

    let batch: Vec<(u64, BitVec)> = (50_000..50_030u64).map(|id| (id, filter_for(id))).collect();
    let routed: Vec<usize> = batch.iter().map(|(id, _)| route_id(*id, SHARDS)).collect();
    assert!(
        (0..SHARDS).all(|s| routed.contains(&s)),
        "batch must span all shards"
    );
    let survivors_share = routed.iter().filter(|&&s| s != 1).count() as u32;

    let mut killer = Client::connect(&addrs[1]).unwrap();
    killer.shutdown().unwrap();
    drop(killer);
    std::thread::sleep(Duration::from_millis(300));

    match coordinator.insert(&batch).unwrap_err() {
        PprlError::PartialWrite {
            applied,
            applied_shards,
            failed_shards,
            cause,
        } => {
            assert_eq!(applied, survivors_share);
            assert_eq!(applied_shards, vec![0, 2]);
            assert_eq!(failed_shards, vec![1]);
            assert!(!cause.is_empty());
        }
        other => panic!("expected PartialWrite, got {other:?}"),
    }

    // The acked sub-batches are really there, served degraded by the
    // surviving shards.
    for (id, filter) in batch.iter().filter(|(id, _)| route_id(*id, SHARDS) != 1) {
        let hits = coordinator.query(filter, 1).unwrap();
        assert_eq!(hits[0].id, *id, "applied record missing from its shard");
    }
    cluster.stop();
}

/// The startup probe exchanges a real Stats round-trip, so a listener
/// that accepts TCP but does not speak the pprl protocol (here: it
/// hangs up on every connection) cannot satisfy the startup quorum.
#[test]
fn connect_probe_rejects_a_non_pprl_listener() {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    let records = union_corpus();
    let cluster = TestCluster::start("probe", &records);

    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let fake_addr = listener.local_addr().unwrap().to_string();
    listener.set_nonblocking(true).unwrap();
    let stop = Arc::new(AtomicBool::new(false));
    let fake_stop = Arc::clone(&stop);
    let fake = std::thread::spawn(move || {
        while !fake_stop.load(Ordering::SeqCst) {
            match listener.accept() {
                Ok((conn, _)) => drop(conn), // accept, then hang up
                Err(_) => std::thread::sleep(Duration::from_millis(5)),
            }
        }
    });

    let mut addrs = cluster.addrs();
    addrs.push(fake_addr);

    // All four must answer: the impostor cannot, so startup fails.
    let err = Coordinator::connect(ClusterConfig {
        shards: addrs.clone(),
        min_shards: 4,
        deadline: Duration::from_secs(5),
        shard_auth: None,
    })
    .unwrap_err();
    match err {
        PprlError::Transport(msg) => assert!(msg.contains("quorum"), "{msg}"),
        other => panic!("expected a startup quorum error, got {other:?}"),
    }

    // With quorum 3 the real shards carry the cluster, and the
    // impostor starts out marked down instead of lurking until first
    // use.
    let coordinator = Coordinator::connect(ClusterConfig {
        shards: addrs,
        min_shards: 3,
        deadline: Duration::from_secs(5),
        shard_auth: None,
    })
    .unwrap();
    assert_eq!(coordinator.missing_shards(), vec![3]);

    stop.store(true, Ordering::SeqCst);
    fake.join().unwrap();
    cluster.stop();
}

/// Shard nodes close sessions idle past their `idle_timeout`, so a
/// coordinator that sat quiet holds a pool of dead sockets. The first
/// call on such a socket must fall through to a fresh dial instead of
/// declaring the (perfectly healthy) shard down.
#[test]
fn stale_pooled_connections_are_redialed_not_degraded() {
    let records = union_corpus();
    let parts = partition(&records);
    let dirs: Vec<PathBuf> = (0..SHARDS)
        .map(|i| temp_dir(&format!("stale-s{i}")))
        .collect();
    let shards: Vec<ServerHandle> = dirs
        .iter()
        .zip(&parts)
        .map(|(dir, part)| {
            build_store(dir, part);
            serve(
                dir,
                "127.0.0.1:0",
                ServerConfig {
                    workers: 2,
                    queue_capacity: 16,
                    compact_interval: None,
                    // Aggressive reaping: pooled coordinator
                    // connections go stale almost immediately.
                    idle_timeout: Duration::from_millis(300),
                    ..ServerConfig::default()
                },
            )
            .unwrap()
        })
        .collect();
    let addrs: Vec<String> = shards.iter().map(|h| h.addr().to_string()).collect();

    let coordinator = Coordinator::connect(ClusterConfig {
        shards: addrs,
        min_shards: SHARDS,
        deadline: Duration::from_secs(10),
        shard_auth: None,
    })
    .unwrap();
    let probes: Vec<BitVec> = (0..4u64).map(filter_for).collect();
    let expected = oracle_top_k("stale-ref", &records, &probes, 5);

    // Populate the pool, let every shard reap the idle sessions, then
    // query again: answers stay exact, no shard is reported missing,
    // and no reply is counted degraded. Quorum is ALL shards, so a
    // single wrongly-degraded node would fail the whole query.
    for round in 0..3 {
        for (probe, want) in probes.iter().zip(&expected) {
            let got = coordinator.query(probe, 5).unwrap();
            assert_eq!(&got, want, "round {round}: stale pool changed answers");
        }
        std::thread::sleep(Duration::from_millis(700));
    }
    let (count, _) = coordinator
        .insert(&[(40_000, filter_for(40_000))])
        .expect("insert over a stale pool");
    assert_eq!(count, 1);
    assert!(coordinator.missing_shards().is_empty());
    assert_eq!(
        coordinator
            .metrics
            .degraded_replies
            .load(std::sync::atomic::Ordering::Relaxed),
        0
    );

    for shard in shards {
        shard.shutdown_now();
    }
    for dir in dirs {
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// The fully authenticated topology: shards demand wire v4 from the
/// coordinator, the coordinator authenticates to them with a
/// privileged identity (encrypted frames on the shard leg), and the
/// front end authenticates stock clients against its own registry.
/// Results stay bit-identical to the plaintext union oracle; plaintext
/// and wrong-key clients are rejected; `Shutdown` needs privilege at
/// every layer.
#[test]
fn authenticated_cluster_end_to_end() {
    use pprl_server::server::serve_auth;
    use pprl_session::handshake::ClientAuth;
    use pprl_session::keys::PartyKey;
    use pprl_session::registry::{AuthRegistry, TenantGrant};

    let coord_key = PartyKey::from_bytes([0xC0; 32]);
    let alice_key = PartyKey::from_bytes([0xA1; 32]);
    let admin_key = PartyKey::from_bytes([0xAD; 32]);

    // Shard-side registry: only the coordinator's identity, privileged
    // so shutdown_shards can tear the fleet down.
    let mut shard_registry = AuthRegistry::new();
    shard_registry
        .insert("coordinator", coord_key.clone(), TenantGrant::Any)
        .unwrap();

    // Front-end registry: a stock tenant client plus an operator.
    let mut front_registry = AuthRegistry::new();
    front_registry
        .insert(
            "alice",
            alice_key.clone(),
            TenantGrant::One("default".into()),
        )
        .unwrap();
    front_registry
        .insert("admin", admin_key.clone(), TenantGrant::Any)
        .unwrap();

    let records = union_corpus();
    let parts = partition(&records);
    let dirs: Vec<PathBuf> = (0..SHARDS)
        .map(|i| temp_dir(&format!("auth-s{i}")))
        .collect();
    let shards: Vec<ServerHandle> = dirs
        .iter()
        .zip(&parts)
        .map(|(dir, part)| {
            build_store(dir, part);
            serve_auth(
                dir,
                "127.0.0.1:0",
                ServerConfig {
                    workers: 2,
                    queue_capacity: 16,
                    compact_interval: None,
                    ..ServerConfig::default()
                },
                shard_registry.clone(),
            )
            .unwrap()
        })
        .collect();
    let shard_addrs: Vec<String> = shards.iter().map(|h| h.addr().to_string()).collect();

    let coordinator = std::sync::Arc::new(
        Coordinator::connect(ClusterConfig {
            shards: shard_addrs.clone(),
            min_shards: SHARDS,
            deadline: Duration::from_secs(10),
            shard_auth: Some(ClientAuth {
                identity: "coordinator".into(),
                key: coord_key.clone(),
                tenant: "default".into(),
                encrypt: true,
                suites: SuiteOffer::default(),
            }),
        })
        .unwrap(),
    );

    let front = pprl_cluster::server::serve_cluster_auth(
        std::sync::Arc::clone(&coordinator),
        "127.0.0.1:0",
        ClusterServerConfig {
            workers: 2,
            queue_capacity: 8,
            ..ClusterServerConfig::default()
        },
        front_registry,
    )
    .unwrap();
    let front_addr = front.addr().to_string();

    // A coordinator with the wrong shard key fails fast with the typed
    // auth error instead of a quorum error that hides it.
    match Coordinator::connect(ClusterConfig {
        shards: shard_addrs.clone(),
        min_shards: SHARDS,
        deadline: Duration::from_secs(5),
        shard_auth: Some(ClientAuth {
            identity: "coordinator".into(),
            key: PartyKey::from_bytes([0xEE; 32]),
            tenant: "default".into(),
            encrypt: false,
            suites: SuiteOffer::default(),
        }),
    }) {
        Err(PprlError::Auth(_)) => {}
        other => panic!("expected a typed auth error, got {other:?}"),
    }

    // The authorized client sees results bit-identical to the union
    // oracle, through two authenticated hops.
    let alice_auth = ClientAuth {
        identity: "alice".into(),
        key: alice_key.clone(),
        tenant: "default".into(),
        encrypt: true,
        suites: SuiteOffer::default(),
    };
    let probes: Vec<BitVec> = (0..6u64).map(filter_for).collect();
    let expected = oracle_top_k("auth-oracle", &records, &probes, 4);
    let mut alice = Client::connect_retry_with(
        &front_addr,
        Some(alice_auth.clone()),
        20,
        Duration::from_millis(10),
    )
    .unwrap();
    for (probe, want) in probes.iter().zip(&expected) {
        assert_eq!(&alice.query(probe, 4).unwrap(), want);
    }
    let stats = alice.stats().unwrap();
    assert_eq!(stats.cluster_shards, SHARDS as u32);
    assert_eq!(stats.shards_down, 0);
    assert_eq!(stats.records, records.len() as u64);

    // Routed inserts work over the authenticated shard leg too.
    let fresh: Vec<(u64, BitVec)> = (70_000..70_010u64).map(|id| (id, filter_for(id))).collect();
    let (count, _) = alice.insert(&fresh).unwrap();
    assert_eq!(count, 10);
    for (id, filter) in &fresh {
        assert_eq!(alice.query(filter, 1).unwrap()[0].id, *id);
    }

    // A plaintext client is refused before any request is interpreted.
    let mut plain = Client::connect(&front_addr).unwrap();
    match plain.stats() {
        Err(PprlError::ProtocolError(msg)) => {
            assert!(msg.contains("authentication required"), "{msg}")
        }
        other => panic!("expected an authentication-required error, got {other:?}"),
    }

    // A wrong-key client fails the handshake at connect.
    let wrong = Client::connect_with(
        &front_addr,
        Some(ClientAuth {
            identity: "alice".into(),
            key: PartyKey::from_bytes([0x5A; 32]),
            tenant: "default".into(),
            encrypt: false,
            suites: SuiteOffer::default(),
        }),
    );
    match wrong {
        Err(PprlError::Auth(_)) => {}
        other => panic!(
            "expected a handshake auth error, got {:?}",
            other.map(|_| ())
        ),
    }

    // Shutdown through the front end needs a privileged identity.
    match alice.shutdown() {
        Err(PprlError::ProtocolError(msg)) => assert!(msg.contains("not privileged"), "{msg}"),
        other => panic!("expected a privilege error, got {other:?}"),
    }
    let mut admin = Client::connect_with(
        &front_addr,
        Some(ClientAuth {
            identity: "admin".into(),
            key: admin_key,
            tenant: "default".into(),
            encrypt: false,
            suites: SuiteOffer::default(),
        }),
    )
    .unwrap();
    admin.shutdown().unwrap();
    front.join();

    // Shards are still up behind their own auth wall; the coordinator's
    // privileged identity tears them down.
    let shut = coordinator.shutdown_shards();
    assert_eq!(shut, SHARDS, "coordinator failed to shut down its shards");
    for shard in shards {
        shard.join();
    }
    for dir in dirs {
        std::fs::remove_dir_all(&dir).ok();
    }
}
