//! Exact k-way merge of per-shard top-k hit lists.
//!
//! The coordinator's correctness hinges on one invariant: merging the
//! per-shard top-k lists must give *exactly* the list a single node
//! holding the union corpus would return. Dice scores are deterministic
//! functions of the filters, so the only freedom is ordering — pinned
//! down here by the total order of [`hit_order`]: score descending
//! (IEEE-754 `total_cmp`, so even exotic bit patterns order
//! consistently), ties broken by ascending record id. This is the same
//! order `pprl_index::query::IndexReader::top_k` sorts by, which is
//! what makes cluster-vs-single-node bit-equivalence a testable
//! property rather than an aspiration.

use pprl_index::query::Hit;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// The total order of the final ranking: score descending, then record
/// id ascending. `Less` means `a` ranks *before* `b`. Total even under
/// NaN/-0.0 score bit patterns thanks to `f64::total_cmp`.
pub fn hit_order(a: &Hit, b: &Hit) -> Ordering {
    b.score.total_cmp(&a.score).then(a.id.cmp(&b.id))
}

/// One list head waiting in the merge heap. `BinaryHeap` is a max-heap,
/// so `Ord` is "better ranks greater"; equal `(score, id)` pairs from
/// different shards tie-break by ascending list index, making the merge
/// deterministic regardless of how shards are numbered or how their
/// replies interleave.
struct Head<'a> {
    hit: &'a Hit,
    list: usize,
    pos: usize,
}

impl PartialEq for Head<'_> {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for Head<'_> {}
impl PartialOrd for Head<'_> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Head<'_> {
    fn cmp(&self, other: &Self) -> Ordering {
        // hit_order(a, b) == Less ⇔ a ranks first ⇔ a is "greater" here.
        hit_order(other.hit, self.hit).then(other.list.cmp(&self.list))
    }
}

/// Merges per-shard top-k lists into the global top `k`.
///
/// Each input list must already be sorted by [`hit_order`] (the order
/// every `pprl-server` node returns); the output is the first `k` of
/// the merged sequence in that same order. A k-way heap of list heads
/// does it in `O(total · log(lists))` without concatenating, and —
/// because every shard already truncated to its local top k — the
/// global top k is guaranteed to be among the inputs.
pub fn merge_top_k(lists: &[Vec<Hit>], k: usize) -> Vec<Hit> {
    if k == 0 {
        return Vec::new();
    }
    debug_assert!(lists.iter().all(|l| l
        .windows(2)
        .all(|w| hit_order(&w[0], &w[1]) != Ordering::Greater)));
    let mut heap: BinaryHeap<Head<'_>> = lists
        .iter()
        .enumerate()
        .filter_map(|(list, hits)| hits.first().map(|hit| Head { hit, list, pos: 0 }))
        .collect();
    let mut out = Vec::with_capacity(k.min(lists.iter().map(Vec::len).sum()));
    while out.len() < k {
        let Some(head) = heap.pop() else { break };
        out.push(*head.hit);
        if let Some(hit) = lists[head.list].get(head.pos + 1) {
            heap.push(Head {
                hit,
                list: head.list,
                pos: head.pos + 1,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pprl_core::rng::SplitMix64;

    fn sorted(mut hits: Vec<Hit>) -> Vec<Hit> {
        hits.sort_by(hit_order);
        hits
    }

    /// Reference merge: concatenate, sort by the total order, truncate.
    fn reference(lists: &[Vec<Hit>], k: usize) -> Vec<Hit> {
        let mut all: Vec<Hit> = lists.iter().flatten().copied().collect();
        all.sort_by(hit_order);
        all.truncate(k);
        all
    }

    #[test]
    fn merge_matches_concat_sort_truncate() {
        let mut rng = SplitMix64::new(0xC1u64);
        for trial in 0..50 {
            let lists: Vec<Vec<Hit>> = (0..1 + rng.next_below(5))
                .map(|_| {
                    sorted(
                        (0..rng.next_below(20))
                            .map(|_| Hit {
                                id: rng.next_below(1000),
                                // Quantised scores force plenty of ties.
                                score: rng.next_below(8) as f64 / 8.0,
                            })
                            .collect(),
                    )
                })
                .collect();
            for k in [0, 1, 3, 10, 100] {
                assert_eq!(
                    merge_top_k(&lists, k),
                    reference(&lists, k),
                    "trial={trial} k={k}"
                );
            }
        }
    }

    #[test]
    fn equal_scores_order_by_ascending_id() {
        // Three shards answering the same score: the merged order must
        // be by id, regardless of which shard held which record.
        let lists = vec![
            vec![Hit { id: 30, score: 0.5 }],
            vec![Hit { id: 10, score: 0.5 }],
            vec![Hit { id: 20, score: 0.5 }],
        ];
        let merged = merge_top_k(&lists, 3);
        assert_eq!(
            merged.iter().map(|h| h.id).collect::<Vec<_>>(),
            [10, 20, 30]
        );
    }

    #[test]
    fn merge_is_invariant_under_shard_permutation() {
        let a = vec![
            Hit { id: 1, score: 0.9 },
            Hit { id: 4, score: 0.5 },
            Hit { id: 9, score: 0.5 },
        ];
        let b = vec![Hit { id: 2, score: 0.9 }, Hit { id: 3, score: 0.5 }];
        let c = vec![Hit { id: 0, score: 0.5 }];
        let orders: [Vec<Vec<Hit>>; 3] = [
            vec![a.clone(), b.clone(), c.clone()],
            vec![c.clone(), a.clone(), b.clone()],
            vec![b.clone(), c.clone(), a.clone()],
        ];
        let expected = merge_top_k(&orders[0], 4);
        for lists in &orders[1..] {
            assert_eq!(merge_top_k(lists, 4), expected);
        }
        assert_eq!(
            expected.iter().map(|h| h.id).collect::<Vec<_>>(),
            [1, 2, 0, 3],
            "0.9 pair by id first, then the 0.5 tie broken by id"
        );
    }

    #[test]
    fn hit_order_is_total_on_funny_floats() {
        let zero_pos = Hit { id: 1, score: 0.0 };
        let zero_neg = Hit { id: 1, score: -0.0 };
        // total_cmp: +0.0 > -0.0, so the order is defined (not Equal)
        // and antisymmetric — the property a comparator must have.
        assert_eq!(hit_order(&zero_pos, &zero_neg), Ordering::Less);
        assert_eq!(hit_order(&zero_neg, &zero_pos), Ordering::Greater);
        let same = Hit { id: 7, score: 0.25 };
        assert_eq!(hit_order(&same, &same), Ordering::Equal);
    }

    #[test]
    fn empty_and_short_inputs() {
        assert!(merge_top_k(&[], 5).is_empty());
        assert!(merge_top_k(&[vec![], vec![]], 5).is_empty());
        let one = vec![vec![Hit { id: 3, score: 1.0 }]];
        assert_eq!(merge_top_k(&one, 5), one[0]);
        assert!(merge_top_k(&one, 0).is_empty());
    }
}
