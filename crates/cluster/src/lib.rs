//! `pprl-cluster`: scatter–gather distributed linkage over sharded
//! `pprl-server` nodes.
//!
//! A cluster is N independent shard nodes — each a stock `pprl-server`
//! over its own persistent index — fronted by a [`Coordinator`] that
//! speaks the same framed, checksummed wire protocol on both sides:
//!
//! - **Reads** (Query/Link) broadcast to every shard; each shard
//!   answers its local top-k and the coordinator merges the lists
//!   *exactly* with a k-way heap under the total order (score
//!   descending by `f64::total_cmp`, ties by ascending record id) —
//!   the merged result is bit-identical to a single node holding the
//!   union corpus.
//! - **Writes** (Insert) route each record to one shard by a stable
//!   FNV-1a hash of its id, so placement is a pure function of the id.
//! - **Failures** degrade instead of erroring, down to the configured
//!   read quorum: a lost shard is dropped from the merge, the reply is
//!   counted degraded, and the Stats surface reports `degraded`,
//!   `shards_down`, and the missing shard indices. Writes never
//!   degrade — every routed target shard must acknowledge.
//! - **Rebalancing** rides on `pprl_index::store::IndexStore`'s
//!   snapshot export/import: sealed checksummed segments plus the WAL
//!   tail are copied to a fresh directory, verified by the usual
//!   open-time checks, and served by a new node.
//!
//! [`serve_cluster`] wraps the coordinator in the same TCP front end a
//! single node uses, so existing clients need no changes to talk to a
//! cluster.

pub mod coordinator;
pub mod merge;
pub mod server;

pub use coordinator::{route_id, ClusterConfig, ClusterMetrics, Coordinator};
pub use merge::{hit_order, merge_top_k};
pub use server::{serve_cluster, serve_cluster_auth, ClusterHandle, ClusterServerConfig};
