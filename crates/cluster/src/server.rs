//! The cluster TCP front end: the coordinator served over the same
//! wire protocol as a single `pprl-server` node.
//!
//! This mirrors `pprl_server::server` deliberately — non-blocking
//! acceptor, bounded connection queue with `Busy` overflow rejection,
//! polling workers, idle-timeout sessions — so every existing client
//! (the [`pprl_server::client::Client`] struct, the `pprl client` CLI,
//! the bench drivers) talks to a cluster exactly as it talks to one
//! node. The only behavioural differences are behind the dispatch:
//! requests scatter to shards and gather through the coordinator, and
//! `Shutdown` stops *only the coordinator* — shard nodes are separate
//! processes with their own lifecycles (use
//! [`Coordinator::shutdown_shards`] for orderly full-cluster teardown).
//!
//! [`Coordinator::shutdown_shards`]: crate::coordinator::Coordinator::shutdown_shards

use crate::coordinator::Coordinator;
use pprl_core::error::{PprlError, Result};
use pprl_server::pool::BoundedQueue;
use pprl_server::wire::{read_payload, write_payload, Incoming, Request, Response};
use pprl_session::channel::{IncomingRef, SESSION_WIRE_VERSION};
use pprl_session::handshake::{server_handshake, ServerSession};
use pprl_session::keys::entropy_rng;
use pprl_session::registry::AuthRegistry;
use pprl_session::suite::SuiteOffer;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How long blocked reads/pops wait before re-checking the shutdown
/// flag (same cadence as the single-node server).
const POLL_INTERVAL: Duration = Duration::from_millis(100);

/// Tunables for [`serve_cluster`].
#[derive(Debug, Clone, Copy)]
pub struct ClusterServerConfig {
    /// Worker threads serving client sessions (each scatter fans out to
    /// every shard from its worker, so a handful go a long way).
    pub workers: usize,
    /// Bounded connection-queue capacity; overflow is rejected with
    /// `Busy` rather than buffered.
    pub queue_capacity: usize,
    /// Back-off hint sent with `Busy` rejections, in milliseconds.
    pub retry_after_ms: u32,
    /// Write timeout on accepted sockets.
    pub write_timeout: Duration,
    /// Sessions idle past this are closed.
    pub idle_timeout: Duration,
    /// Record-layer cipher suites the front end will negotiate with
    /// clients. Defaults to all; shard hops negotiate independently via
    /// `ClusterConfig::shard_auth` (default offer → the fast suite).
    pub suites: SuiteOffer,
}

impl Default for ClusterServerConfig {
    fn default() -> Self {
        ClusterServerConfig {
            workers: 2,
            queue_capacity: 32,
            retry_after_ms: 50,
            write_timeout: Duration::from_secs(10),
            idle_timeout: Duration::from_secs(30),
            suites: SuiteOffer::all(),
        }
    }
}

impl ClusterServerConfig {
    fn validate(&self) -> Result<()> {
        if self.workers == 0 {
            return Err(PprlError::invalid("workers", "must be at least 1"));
        }
        if self.queue_capacity == 0 {
            return Err(PprlError::invalid("queue_capacity", "must be at least 1"));
        }
        if self.write_timeout.is_zero() {
            return Err(PprlError::invalid("write_timeout", "must be non-zero"));
        }
        if self.idle_timeout.is_zero() {
            return Err(PprlError::invalid("idle_timeout", "must be non-zero"));
        }
        if self.suites.is_empty() {
            return Err(PprlError::invalid(
                "suites",
                "must allow at least one cipher suite",
            ));
        }
        Ok(())
    }
}

/// Everything a session needs, shared across threads.
struct ClusterContext {
    coordinator: Arc<Coordinator>,
    registry: Option<AuthRegistry>,
    shutdown: Arc<AtomicBool>,
    workers: u32,
    queue_capacity: u32,
    retry_after_ms: u32,
    write_timeout: Duration,
    idle_timeout: Duration,
    suites: SuiteOffer,
    started: Instant,
}

/// A running cluster front end; dropping the handle does **not** stop
/// it — call [`ClusterHandle::shutdown_now`] or send `Shutdown`.
pub struct ClusterHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    coordinator: Arc<Coordinator>,
    threads: Vec<JoinHandle<()>>,
}

impl ClusterHandle {
    /// The address actually bound (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared coordinator (for in-process inspection and tests).
    pub fn coordinator(&self) -> &Arc<Coordinator> {
        &self.coordinator
    }

    /// True once a shutdown has been requested.
    pub fn is_shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Requests an orderly shutdown without waiting for it.
    pub fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
    }

    /// Waits for every front-end thread to exit. Returns the
    /// coordinator so callers can read final metrics.
    pub fn join(self) -> Arc<Coordinator> {
        for t in self.threads {
            let _ = t.join();
        }
        self.coordinator
    }

    /// Requests shutdown and waits for it to complete. Shard nodes
    /// keep running.
    pub fn shutdown_now(self) -> Arc<Coordinator> {
        self.request_shutdown();
        self.join()
    }
}

/// Serves `coordinator` on `addr` (e.g. `"127.0.0.1:0"` for an
/// ephemeral port). Returns immediately; the handle owns the acceptor
/// and worker threads.
pub fn serve_cluster(
    coordinator: Arc<Coordinator>,
    addr: &str,
    config: ClusterServerConfig,
) -> Result<ClusterHandle> {
    serve_cluster_backend(coordinator, addr, config, None)
}

/// [`serve_cluster`] with client authentication: every front-end
/// connection must complete the wire v4 handshake against `registry`
/// before any request is dispatched to the shards. The cluster fronts a
/// single logical corpus, so the only tenant namespace it serves is
/// `default` — identities need a `default` (or `*`) grant, and only
/// privileged identities may send `Shutdown`. Shard-facing credentials
/// are configured separately via
/// [`ClusterConfig::shard_auth`](crate::coordinator::ClusterConfig).
pub fn serve_cluster_auth(
    coordinator: Arc<Coordinator>,
    addr: &str,
    config: ClusterServerConfig,
    registry: AuthRegistry,
) -> Result<ClusterHandle> {
    if registry.is_empty() {
        return Err(PprlError::Auth(
            "refusing to serve with an empty auth registry: every client \
             would be rejected"
                .into(),
        ));
    }
    serve_cluster_backend(coordinator, addr, config, Some(registry))
}

fn serve_cluster_backend(
    coordinator: Arc<Coordinator>,
    addr: &str,
    config: ClusterServerConfig,
    registry: Option<AuthRegistry>,
) -> Result<ClusterHandle> {
    config.validate()?;
    let listener = TcpListener::bind(addr)
        .map_err(|e| PprlError::Transport(format!("binding {addr}: {e}")))?;
    let local_addr = listener
        .local_addr()
        .map_err(|e| PprlError::Transport(format!("resolving bound address: {e}")))?;
    listener
        .set_nonblocking(true)
        .map_err(|e| PprlError::Transport(format!("setting listener non-blocking: {e}")))?;

    let shutdown = Arc::new(AtomicBool::new(false));
    let queue: Arc<BoundedQueue<TcpStream>> = Arc::new(BoundedQueue::new(config.queue_capacity));
    let context = Arc::new(ClusterContext {
        coordinator: Arc::clone(&coordinator),
        registry,
        shutdown: Arc::clone(&shutdown),
        workers: config.workers as u32,
        queue_capacity: config.queue_capacity as u32,
        retry_after_ms: config.retry_after_ms,
        write_timeout: config.write_timeout,
        idle_timeout: config.idle_timeout,
        suites: config.suites,
        started: Instant::now(),
    });

    let mut threads = Vec::with_capacity(config.workers + 1);
    for _ in 0..config.workers {
        let queue = Arc::clone(&queue);
        let context = Arc::clone(&context);
        threads.push(std::thread::spawn(move || worker_loop(&queue, &context)));
    }
    {
        let queue = Arc::clone(&queue);
        let context = Arc::clone(&context);
        threads.push(std::thread::spawn(move || {
            accept_loop(&listener, &queue, &context);
        }));
    }

    Ok(ClusterHandle {
        addr: local_addr,
        shutdown,
        coordinator,
        threads,
    })
}

fn add(counter: &AtomicU64, n: u64) {
    counter.fetch_add(n, Ordering::Relaxed);
}

fn accept_loop(listener: &TcpListener, queue: &BoundedQueue<TcpStream>, context: &ClusterContext) {
    while !context.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                let _ = stream.set_nodelay(true);
                let _ = stream.set_read_timeout(Some(POLL_INTERVAL));
                let _ = stream.set_write_timeout(Some(context.write_timeout));
                if let Err(mut rejected) = queue.try_push(stream) {
                    add(&context.coordinator.metrics.busy_rejected, 1);
                    let busy = Response::Busy {
                        retry_after_ms: context.retry_after_ms,
                    };
                    let _ = write_payload(&mut rejected, &busy.encode());
                }
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::Interrupted =>
            {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    }
    queue.close();
}

fn worker_loop(queue: &BoundedQueue<TcpStream>, context: &ClusterContext) {
    loop {
        match queue.pop_timeout(POLL_INTERVAL) {
            Some(stream) => handle_session(stream, context),
            None => {
                if context.shutdown.load(Ordering::SeqCst) {
                    return;
                }
            }
        }
    }
}

/// Serves one connection until EOF, shutdown, or a framing error —
/// same first-frame routing as a single node: a payload leading with
/// the session version byte enters the wire v4 handshake (when the
/// front end has a registry), anything else is a plaintext wire v3
/// request (only accepted when it does not).
fn handle_session(mut stream: TcpStream, context: &ClusterContext) {
    let mut idle = Duration::ZERO;
    let first = loop {
        if context.shutdown.load(Ordering::SeqCst) {
            return;
        }
        match read_payload(&mut stream) {
            Ok(Incoming::TimedOut) => {
                idle += POLL_INTERVAL;
                if idle >= context.idle_timeout {
                    return;
                }
            }
            Ok(Incoming::Eof) => return,
            Ok(Incoming::Payload(payload)) => break payload,
            Err(e) => {
                let err = Response::ServerError {
                    message: e.to_string(),
                };
                let _ = write_payload(&mut stream, &err.encode());
                return;
            }
        }
    };

    match (context.registry.as_ref(), first.first()) {
        (Some(registry), Some(&SESSION_WIRE_VERSION)) => {
            let mut rng = entropy_rng();
            // On failure the handshake has already sent the typed
            // AUTH_ERROR where one is safe to send; just close.
            if let Ok(session) =
                server_handshake(&mut stream, &first, registry, &mut rng, context.suites)
            {
                serve_authenticated(stream, session, context);
            }
        }
        (Some(_), _) => {
            let err = Response::ServerError {
                message: "authentication required: this cluster front end only \
                          accepts wire v4 sessions (connect with an identity \
                          and key)"
                    .into(),
            };
            let _ = write_payload(&mut stream, &err.encode());
        }
        (None, Some(&SESSION_WIRE_VERSION)) => {
            let err = Response::ServerError {
                message: "this cluster front end is not configured for \
                          authenticated sessions (start it with an auth \
                          directory)"
                    .into(),
            };
            let _ = write_payload(&mut stream, &err.encode());
        }
        (None, _) => serve_plain(stream, first, context, idle),
    }
}

/// The plaintext wire v3 session loop, starting from an already-read
/// first payload.
fn serve_plain(
    mut stream: TcpStream,
    first: Vec<u8>,
    context: &ClusterContext,
    mut idle: Duration,
) {
    let mut pending = Some(first);
    loop {
        if context.shutdown.load(Ordering::SeqCst) {
            return;
        }
        let payload = match pending.take() {
            Some(p) => p,
            None => match read_payload(&mut stream) {
                Ok(Incoming::TimedOut) => {
                    idle += POLL_INTERVAL;
                    if idle >= context.idle_timeout {
                        return;
                    }
                    continue;
                }
                Ok(Incoming::Eof) => return,
                Ok(Incoming::Payload(p)) => p,
                Err(e) => {
                    let err = Response::ServerError {
                        message: e.to_string(),
                    };
                    let _ = write_payload(&mut stream, &err.encode());
                    return;
                }
            },
        };
        idle = Duration::ZERO;
        let response = match Request::decode(&payload) {
            Ok(Request::Shutdown) => {
                let _ = write_payload(&mut stream, &Response::Bye.encode());
                context.shutdown.store(true, Ordering::SeqCst);
                return;
            }
            Err(e) => Response::ServerError {
                message: e.to_string(),
            },
            Ok(request) => dispatch(request, context),
        };
        if write_payload(&mut stream, &response.encode()).is_err() {
            return;
        }
    }
}

/// The authenticated session loop: every frame must open under the
/// session's keys before its inner opcode is even looked at, and a
/// frame that fails its MAC or sequence check closes the connection
/// without a reply. The cluster serves exactly one tenant namespace
/// (`default`); `Shutdown` — which stops only the coordinator front
/// end — additionally requires a privileged identity.
fn serve_authenticated(
    mut stream: TcpStream,
    mut session: ServerSession,
    context: &ClusterContext,
) {
    let mut idle = Duration::ZERO;
    loop {
        if context.shutdown.load(Ordering::SeqCst) {
            return;
        }
        // Decode while the frame is still borrowed from the channel's
        // receive buffer; `Request` owns its fields, so the borrow ends
        // here and the channel is free to send the response.
        let decoded = match session.channel.recv_ref(&mut stream) {
            Ok(IncomingRef::TimedOut) => {
                idle += POLL_INTERVAL;
                if idle >= context.idle_timeout {
                    return;
                }
                continue;
            }
            Ok(IncomingRef::Eof) => return,
            Ok(IncomingRef::Payload(inner)) => Request::decode(inner),
            Err(_) => return,
        };
        idle = Duration::ZERO;
        if session.tenant != "default" {
            // A privileged identity may name any tenant at handshake,
            // but the cluster fronts one logical corpus.
            let err = Response::ServerError {
                message: format!(
                    "tenant `{}` has no index namespace on this cluster \
                     front end (only `default`)",
                    session.tenant
                ),
            };
            let _ = session.channel.send(&mut stream, &err.encode());
            return;
        }
        let response = match decoded {
            Ok(Request::Shutdown) => {
                if session.privileged {
                    let _ = session.channel.send(&mut stream, &Response::Bye.encode());
                    context.shutdown.store(true, Ordering::SeqCst);
                    return;
                }
                Response::ServerError {
                    message: PprlError::Auth(format!(
                        "identity `{}` is not privileged to shut down the \
                         cluster front end",
                        session.identity
                    ))
                    .to_string(),
                }
            }
            Err(e) => Response::ServerError {
                message: e.to_string(),
            },
            Ok(request) => dispatch(request, context),
        };
        if session
            .channel
            .send(&mut stream, &response.encode())
            .is_err()
        {
            return;
        }
    }
}

fn dispatch(request: Request, context: &ClusterContext) -> Response {
    let coordinator = &context.coordinator;
    let result = match request {
        Request::Query { filter, k } => coordinator.query(&filter, k as usize).map(Response::Hits),
        Request::Link {
            probes,
            k,
            min_score,
        } => coordinator
            .link(&probes, k as usize, min_score)
            .map(Response::LinkHits),
        Request::Insert { records } => coordinator
            .insert(&records)
            .map(|(count, generation)| Response::Inserted { count, generation }),
        Request::Stats => {
            let mut report = coordinator.stats(context.started.elapsed().as_millis() as u64);
            report.workers = context.workers;
            report.queue_capacity = context.queue_capacity;
            Ok(Response::Stats(report))
        }
        Request::Shutdown => unreachable!("handled by the session loop"),
    };
    result.unwrap_or_else(|e| Response::ServerError {
        message: e.to_string(),
    })
}
