//! The scatter–gather coordinator: shard connections, routing, quorum,
//! and degraded-mode bookkeeping.
//!
//! Topology is deliberately dumb: N independent `pprl-server` shard
//! nodes, each holding a disjoint slice of the corpus, fronted by one
//! coordinator that speaks the same wire protocol downstream (through
//! the stock [`Client`], inheriting its jittered `Busy` backoff and
//! per-call deadline) and upstream (see [`crate::server`]). Reads
//! (Query/Link) are broadcast to every shard and the per-shard top-k
//! lists merged exactly by [`crate::merge::merge_top_k`]; writes
//! (Insert) are routed to a single shard by a stable hash of the record
//! id, so a record always lands — and is always found — on the same
//! node.
//!
//! Failure handling follows the quorum/degraded-mode semantics of
//! `protocols::session`: a shard whose call fails at the transport
//! layer is marked down and the operation proceeds over the survivors,
//! as long as at least [`ClusterConfig::min_shards`] answered.
//! Degradation is never silent — it is surfaced through the Stats
//! opcode (`degraded`, `shards_down`, `missing_shards`), the CLI
//! banner, and the coordinator's own metrics. A down shard is probed
//! again on the next request; recovery is automatic once it answers.

use crate::merge::merge_top_k;
use pprl_core::bitvec::BitVec;
use pprl_core::error::{PprlError, Result};
use pprl_index::query::Hit;
use pprl_server::client::Client;
use pprl_server::metrics::LatencyHistogram;
use pprl_server::wire::{StatsReport, WIRE_VERSION};
use pprl_session::handshake::ClientAuth;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Tunables for a [`Coordinator`].
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Shard node addresses (`host:port`), in shard-index order. The
    /// order is part of the cluster's identity: insert routing hashes
    /// record ids onto *indices* of this list.
    pub shards: Vec<String>,
    /// Read quorum: a broadcast read succeeds as long as at least this
    /// many shards answered; fewer is a typed error, not a silently
    /// partial result. Writes always require their routed shard.
    pub min_shards: usize,
    /// Per shard-call deadline (request + shard think time + `Busy`
    /// backoff cycles), enforced by the underlying [`Client`].
    pub deadline: Duration,
    /// Credentials the coordinator presents to its shard nodes. `None`
    /// speaks plaintext wire v3 (shards must be running without an auth
    /// registry); `Some` runs the wire v4 handshake on every shard
    /// connection — including redials after stale pooled sockets. The
    /// identity should be privileged (`*` grant) on the shards so
    /// [`Coordinator::shutdown_shards`] can tear the fleet down.
    pub shard_auth: Option<ClientAuth>,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            shards: Vec::new(),
            min_shards: 1,
            deadline: Duration::from_secs(10),
            shard_auth: None,
        }
    }
}

impl ClusterConfig {
    /// A config fronting `shards` with default quorum and deadline.
    pub fn new(shards: Vec<String>) -> Self {
        ClusterConfig {
            shards,
            ..ClusterConfig::default()
        }
    }

    fn validate(&self) -> Result<()> {
        if self.shards.is_empty() {
            return Err(PprlError::invalid("shards", "need at least one address"));
        }
        if self.min_shards == 0 || self.min_shards > self.shards.len() {
            return Err(PprlError::invalid(
                "min_shards",
                format!("must be in 1..={}", self.shards.len()),
            ));
        }
        Ok(())
    }
}

/// Coordinator-level counters: requests as seen at the coordinator
/// (one broadcast query counts once here, once per shard downstream).
#[derive(Debug, Default)]
pub struct ClusterMetrics {
    /// Broadcast queries answered.
    pub queries: AtomicU64,
    /// Broadcast link batches answered.
    pub links: AtomicU64,
    /// Routed insert batches applied.
    pub inserts: AtomicU64,
    /// Shard calls that failed at the transport layer.
    pub shard_failures: AtomicU64,
    /// Reads answered from a strict subset of shards.
    pub degraded_replies: AtomicU64,
    /// Connections the coordinator front end rejected with `Busy`.
    pub busy_rejected: AtomicU64,
    /// Coordinator-side request latency (scatter + gather + merge).
    pub latency: LatencyHistogram,
}

fn add(counter: &AtomicU64, n: u64) {
    counter.fetch_add(n, Ordering::Relaxed);
}

fn get(counter: &AtomicU64) -> u64 {
    counter.load(Ordering::Relaxed)
}

/// One shard node: its address, a small pool of idle connections
/// (workers return connections after successful calls, so concurrent
/// requests multiplex without a global lock), and the last known
/// health, updated by every call outcome.
#[derive(Debug)]
struct ShardSlot {
    addr: String,
    idle: Mutex<Vec<Client>>,
    down: AtomicBool,
}

/// Stable routing of a record id onto `shards` buckets: FNV-1a over the
/// id's little-endian bytes. Not the Hamming-LSH sharding `pprl-index`
/// uses *inside* each node — cluster routing must depend only on the
/// id, so a client can later locate a record without knowing its
/// filter.
pub fn route_id(id: u64, shards: usize) -> usize {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in id.to_le_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    (h % shards.max(1) as u64) as usize
}

/// True for errors that mean "this shard is unreachable or unusable"
/// (connect failures, broken frames, deadline exhaustion, version
/// skew) as opposed to "the shard is fine but rejected this request"
/// (e.g. a filter-length mismatch), which must surface to the caller
/// rather than degrade the cluster.
fn is_shard_failure(e: &PprlError) -> bool {
    matches!(
        e,
        PprlError::Transport(_) | PprlError::Timeout(_) | PprlError::UnsupportedVersion { .. }
    )
}

/// The scatter–gather coordinator. All methods take `&self`; concurrent
/// requests from the front end's worker threads share the per-shard
/// connection pools.
#[derive(Debug)]
pub struct Coordinator {
    shards: Vec<ShardSlot>,
    config: ClusterConfig,
    /// Coordinator-level counters and latency histogram.
    pub metrics: ClusterMetrics,
}

impl Coordinator {
    /// Builds a coordinator over `config.shards`. Connections are opened
    /// lazily per call, so a cluster can be assembled before every
    /// shard is up — health is discovered (and re-discovered) on use.
    pub fn new(config: ClusterConfig) -> Result<Coordinator> {
        config.validate()?;
        let shards = config
            .shards
            .iter()
            .map(|addr| ShardSlot {
                addr: addr.clone(),
                idle: Mutex::new(Vec::new()),
                down: AtomicBool::new(false),
            })
            .collect();
        Ok(Coordinator {
            shards,
            config,
            metrics: ClusterMetrics::default(),
        })
    }

    /// [`Coordinator::new`] plus an eager health probe: connects to
    /// every shard (retrying briefly, for shards still binding their
    /// port) and exchanges one real request — a Stats round-trip — so a
    /// version-skewed shard, or some non-pprl service that happens to
    /// accept on the configured port, fails fast at startup instead of
    /// on first use. Fails unless at least the read quorum answered
    /// the probe.
    pub fn connect(config: ClusterConfig) -> Result<Coordinator> {
        let coordinator = Self::new(config)?;
        let mut up = 0usize;
        for slot in &coordinator.shards {
            let probed = Client::connect_retry_with(
                &slot.addr,
                coordinator.config.shard_auth.clone(),
                20,
                Duration::from_millis(50),
            )
            .and_then(|mut client| {
                client.set_deadline(coordinator.config.deadline);
                client.stats().map(|_| client)
            });
            match probed {
                Ok(client) => {
                    slot.idle.lock().expect("idle lock").push(client);
                    up += 1;
                }
                // Bad credentials are a configuration error, not a down
                // shard: every node would reject them identically, so
                // fail fast with the real reason instead of a quorum
                // error that hides it.
                Err(e @ (PprlError::Auth(_) | PprlError::CrossTenant { .. })) => return Err(e),
                Err(_) => {
                    slot.down.store(true, Ordering::SeqCst);
                    add(&coordinator.metrics.shard_failures, 1);
                }
            }
        }
        if up < coordinator.config.min_shards {
            return Err(PprlError::Transport(format!(
                "cluster below quorum at startup: {up} of {} shards answered \
                 the stats probe (quorum {})",
                coordinator.shards.len(),
                coordinator.config.min_shards
            )));
        }
        Ok(coordinator)
    }

    /// Shard addresses, in shard-index order.
    pub fn shard_addrs(&self) -> Vec<String> {
        self.shards.iter().map(|s| s.addr.clone()).collect()
    }

    /// Number of shards this coordinator fronts.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Indices of shards whose last call failed (down as of the most
    /// recent contact; a later successful call clears the mark).
    pub fn missing_shards(&self) -> Vec<u32> {
        self.shards
            .iter()
            .enumerate()
            .filter(|(_, s)| s.down.load(Ordering::SeqCst))
            .map(|(i, _)| i as u32)
            .collect()
    }

    /// Runs one call against shard `i` on a pooled (or fresh)
    /// connection, updating the shard's health mark from the outcome.
    /// Connections survive successful calls; a failed call's connection
    /// is dropped so the next attempt starts clean.
    ///
    /// A connection-level `Transport` failure (EOF, reset) on a
    /// *pooled* connection proves nothing about the shard — nodes close
    /// sessions idle past their `idle_timeout`, so a pool that sat
    /// quiet holds dead sockets. Only that failure falls through to one
    /// fresh dial before the shard is declared down, and the redial
    /// cannot double-apply an insert: a node that reads a request
    /// always writes the acknowledgement on the same connection before
    /// closing it, so an EOF with no response means the request was
    /// never processed. A `Timeout` carries no such proof — the request
    /// may be fully written to a slow-but-alive shard that applies it
    /// after we give up, so resending would double-apply non-idempotent
    /// calls — and a version-skewed shard answers a redial identically;
    /// both are terminal here.
    fn call_shard<T>(&self, i: usize, f: impl Fn(&mut Client) -> Result<T>) -> Result<T> {
        let slot = &self.shards[i];
        // Bind the pop before matching on it: an `if let` on the locked
        // pool would hold the mutex guard across the call below and
        // self-deadlock when the success path re-locks to return the
        // connection.
        let pooled = slot.idle.lock().expect("idle lock").pop();
        if let Some(mut pooled) = pooled {
            match f(&mut pooled) {
                Ok(v) => {
                    slot.down.store(false, Ordering::SeqCst);
                    slot.idle.lock().expect("idle lock").push(pooled);
                    return Ok(v);
                }
                // The shard answered with a typed rejection: it is up,
                // and retrying the same request would not help. Drop
                // the connection (it may hold a half-read response).
                Err(e) if !is_shard_failure(&e) => return Err(e),
                // Possibly-stale pooled socket (EOF/reset before any
                // response): provably unprocessed, safe to redial.
                Err(PprlError::Transport(_)) => {}
                // Timeout (maybe applied — resending could duplicate)
                // or version skew (redial answers the same): terminal.
                Err(e) => {
                    slot.down.store(true, Ordering::SeqCst);
                    add(&self.metrics.shard_failures, 1);
                    return Err(e);
                }
            }
        }
        let mut client = match Client::connect_with(&slot.addr, self.config.shard_auth.clone()) {
            Ok(mut c) => {
                c.set_deadline(self.config.deadline);
                c
            }
            Err(e) => {
                slot.down.store(true, Ordering::SeqCst);
                add(&self.metrics.shard_failures, 1);
                return Err(e);
            }
        };
        match f(&mut client) {
            Ok(v) => {
                slot.down.store(false, Ordering::SeqCst);
                slot.idle.lock().expect("idle lock").push(client);
                Ok(v)
            }
            Err(e) => {
                if is_shard_failure(&e) {
                    slot.down.store(true, Ordering::SeqCst);
                    add(&self.metrics.shard_failures, 1);
                }
                // Drop the connection: the stream may hold a half-read
                // response.
                Err(e)
            }
        }
    }

    /// Scatters `f` to every shard concurrently (one scoped thread per
    /// shard) and gathers the per-shard outcomes in shard order.
    fn scatter<T: Send>(&self, f: impl Fn(&mut Client) -> Result<T> + Sync) -> Vec<Result<T>> {
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..self.shards.len())
                .map(|i| {
                    let f = &f;
                    scope.spawn(move || self.call_shard(i, f))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("shard call panicked"))
                .collect()
        })
    }

    /// Splits gather results into per-shard successes and a missing
    /// count, enforcing the read quorum. Non-shard-failure errors (the
    /// shard answered, but with a typed rejection) abort the whole
    /// operation — they indicate a caller bug, not a down node.
    fn gather<T>(&self, results: Vec<Result<T>>) -> Result<(Vec<T>, usize)> {
        let total = results.len();
        let mut values = Vec::with_capacity(total);
        let mut missing = 0usize;
        for r in results {
            match r {
                Ok(v) => values.push(v),
                Err(e) if is_shard_failure(&e) => missing += 1,
                Err(e) => return Err(e),
            }
        }
        if values.len() < self.config.min_shards {
            return Err(PprlError::Transport(format!(
                "cluster below quorum: {} of {total} shards answered \
                 (quorum {})",
                values.len(),
                self.config.min_shards
            )));
        }
        if missing > 0 {
            add(&self.metrics.degraded_replies, 1);
        }
        Ok((values, missing))
    }

    /// Broadcast top-k query: every reachable shard computes its local
    /// top k, and the lists merge exactly into the global top k. With
    /// every shard up the result is bit-identical to a single node
    /// holding the union corpus; with shards down it is the exact
    /// answer over the surviving sub-corpus (and the reply is counted
    /// as degraded).
    pub fn query(&self, filter: &BitVec, k: usize) -> Result<Vec<Hit>> {
        let started = Instant::now();
        let results = self.scatter(|c| c.query(filter, k));
        let (lists, _missing) = self.gather(results)?;
        let merged = merge_top_k(&lists, k);
        add(&self.metrics.queries, 1);
        self.metrics
            .latency
            .record_us(started.elapsed().as_micros() as u64);
        Ok(merged)
    }

    /// Broadcast batch link: per-probe top-k at or above `min_score`,
    /// merged per probe with the same exact k-way merge as
    /// [`Coordinator::query`].
    pub fn link(&self, probes: &[BitVec], k: usize, min_score: f64) -> Result<Vec<Vec<Hit>>> {
        let started = Instant::now();
        let results = self.scatter(|c| c.link(probes, k, min_score));
        let (per_shard, _missing) = self.gather(results)?;
        let merged = (0..probes.len())
            .map(|pi| {
                let lists: Vec<Vec<Hit>> = per_shard
                    .iter()
                    .map(|shard| shard.get(pi).cloned().unwrap_or_default())
                    .collect();
                merge_top_k(&lists, k)
            })
            .collect();
        add(&self.metrics.links, 1);
        self.metrics
            .latency
            .record_us(started.elapsed().as_micros() as u64);
        Ok(merged)
    }

    /// Routed insert: each record goes to the shard chosen by
    /// [`route_id`] of its id, so lookups and future inserts agree on
    /// placement. Unlike reads there is no quorum forgiveness — every
    /// shard that owns part of the batch must acknowledge, because a
    /// dropped sub-batch would silently lose acknowledged records.
    /// Returns the total count and the highest shard generation
    /// observed in the acknowledgements.
    ///
    /// # Partial application
    ///
    /// Sub-batches land on their shards independently, and shard stores
    /// are append-only with no id-level dedup. When some shards ack and
    /// others fail, the acked sub-batches **are** durably applied; the
    /// call waits for every sub-batch outcome and then returns
    /// [`PprlError::PartialWrite`] naming the applied and failed shard
    /// indices — retrying the whole batch would duplicate the applied
    /// records, so retry only the records whose [`route_id`] falls in
    /// `failed_shards`. (A shard that failed with a timeout may still
    /// apply its sub-batch late; verify — e.g. query one of its records
    /// — before resending to it.) When no shard acked anything, the
    /// first underlying error is returned unchanged.
    pub fn insert(&self, records: &[(u64, BitVec)]) -> Result<(u32, u64)> {
        let started = Instant::now();
        let n = self.shards.len();
        let mut groups: Vec<Vec<(u64, BitVec)>> = vec![Vec::new(); n];
        for (id, filter) in records {
            groups[route_id(*id, n)].push((*id, filter.clone()));
        }
        let outcomes: Vec<(usize, Result<(u32, u64)>)> = std::thread::scope(|scope| {
            let handles: Vec<_> = groups
                .iter()
                .enumerate()
                .filter(|(_, g)| !g.is_empty())
                .map(|(i, group)| scope.spawn(move || (i, self.call_shard(i, |c| c.insert(group)))))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("shard insert panicked"))
                .collect()
        });
        let mut count = 0u32;
        let mut generation = 0u64;
        let mut applied_shards = Vec::new();
        let mut failed_shards = Vec::new();
        let mut first_error = None;
        for (shard, outcome) in outcomes {
            match outcome {
                Ok((c, g)) => {
                    count += c;
                    generation = generation.max(g);
                    applied_shards.push(shard as u32);
                }
                Err(e) => {
                    failed_shards.push(shard as u32);
                    if first_error.is_none() {
                        first_error = Some(e);
                    }
                }
            }
        }
        if let Some(cause) = first_error {
            // Nothing acked: the caller may retry the whole batch
            // (modulo the timeout caveat above), so the underlying
            // error speaks for itself.
            if applied_shards.is_empty() {
                return Err(cause);
            }
            return Err(PprlError::PartialWrite {
                applied: count,
                applied_shards,
                failed_shards,
                cause: cause.to_string(),
            });
        }
        add(&self.metrics.inserts, 1);
        self.metrics
            .latency
            .record_us(started.elapsed().as_micros() as u64);
        Ok((count, generation))
    }

    /// The cluster stats surface. Corpus-shaped fields (`records`,
    /// `generation`, cache/plan counters, compaction counters,
    /// `quarantined_segments`, `busy_rejected`) are summed over the
    /// shards that answered — `generation` in particular is the *sum*
    /// of shard generations, a counter that bumps whenever any shard
    /// changes. `workers`/`queue_capacity` are left 0 for the serving
    /// front end to fill with its own pool size. Request-shaped
    /// fields (`queries`, `links`, `inserts`, latency quantiles,
    /// uptime) are the coordinator's own, since one broadcast query
    /// would otherwise count N times. Unlike reads, stats never fails
    /// on lost shards: operators need this surface *most* when the
    /// cluster is degraded, so it reports whatever subset answered,
    /// with `degraded`/`shards_down`/`missing_shards` telling the
    /// truth about the rest.
    pub fn stats(&self, uptime_ms: u64) -> StatsReport {
        let results = self.scatter(|c| c.stats());
        let mut report = StatsReport::default();
        let mut missing_shards = Vec::new();
        for (i, r) in results.into_iter().enumerate() {
            match r {
                Ok(s) => {
                    report.records += s.records;
                    report.generation += s.generation;
                    report.cache_hits += s.cache_hits;
                    report.cache_misses += s.cache_misses;
                    report.plan_hits += s.plan_hits;
                    report.plan_misses += s.plan_misses;
                    report.busy_rejected += s.busy_rejected;
                    report.compactions += s.compactions;
                    report.segments_merged += s.segments_merged;
                    report.bytes_read += s.bytes_read;
                    report.quarantined_segments += s.quarantined_segments;
                    report.degraded |= s.degraded;
                    report.merge_rows += s.merge_rows;
                    // One kernel name when every shard agrees; "mixed"
                    // flags heterogeneous fleets (worth knowing when
                    // chasing a per-shard throughput gap).
                    if report.kernel.is_empty() {
                        report.kernel = s.kernel;
                    } else if report.kernel != s.kernel {
                        report.kernel = "mixed".to_string();
                    }
                }
                Err(_) => missing_shards.push(i as u32),
            }
        }
        report.queries = get(&self.metrics.queries);
        report.links = get(&self.metrics.links);
        report.inserts = get(&self.metrics.inserts);
        report.busy_rejected += get(&self.metrics.busy_rejected);
        report.latency_p50_us = self.metrics.latency.quantile_us(0.50);
        report.latency_p99_us = self.metrics.latency.quantile_us(0.99);
        report.uptime_ms = uptime_ms;
        report.cluster_shards = self.shards.len() as u32;
        report.shards_down = missing_shards.len() as u32;
        report.degraded |= !missing_shards.is_empty();
        report.missing_shards = missing_shards;
        report
    }

    /// Asks every reachable shard to shut down; returns how many
    /// acknowledged. Used by orderly cluster teardown (the coordinator
    /// front end itself is stopped separately).
    pub fn shutdown_shards(&self) -> usize {
        let results = self.scatter(|c| c.shutdown());
        results.into_iter().filter(Result::is_ok).count()
    }

    /// The wire version this coordinator speaks to its shards — shards
    /// built at a different version answer every call with a typed
    /// [`PprlError::UnsupportedVersion`] instead of garbage.
    pub fn wire_version(&self) -> u8 {
        WIRE_VERSION
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn route_is_stable_and_in_range() {
        for shards in [1usize, 2, 3, 5, 16] {
            for id in 0..200u64 {
                let a = route_id(id, shards);
                let b = route_id(id, shards);
                assert_eq!(a, b);
                assert!(a < shards);
            }
        }
    }

    #[test]
    fn route_spreads_ids_over_shards() {
        let shards = 4usize;
        let mut counts = vec![0usize; shards];
        for id in 0..4000u64 {
            counts[route_id(id, shards)] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            assert!(
                (600..=1400).contains(&c),
                "shard {i} got {c} of 4000 ids — routing is badly skewed"
            );
        }
    }

    #[test]
    fn config_validation() {
        assert!(ClusterConfig::new(vec![]).validate().is_err());
        let mut c = ClusterConfig::new(vec!["a:1".into(), "b:2".into()]);
        assert!(c.validate().is_ok());
        c.min_shards = 3;
        assert!(c.validate().is_err());
        c.min_shards = 0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn shard_failure_classification() {
        assert!(is_shard_failure(&PprlError::Transport("x".into())));
        assert!(is_shard_failure(&PprlError::Timeout("x".into())));
        assert!(is_shard_failure(&PprlError::UnsupportedVersion {
            found: 1,
            expected: 2
        }));
        assert!(!is_shard_failure(&PprlError::ProtocolError("x".into())));
        assert!(!is_shard_failure(&PprlError::shape("a", "b")));
    }
}
