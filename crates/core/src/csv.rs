//! CSV import/export for datasets.
//!
//! Real deployments exchange extracts as CSV; this is a small, dependency-
//! free RFC-4180-style reader/writer so the toolkit can load actual data.
//! Quoted fields (with embedded commas, quotes, and newlines) are
//! supported. Values are parsed according to the schema's field types;
//! cells are trimmed, and empty (or all-whitespace) cells become
//! [`Value::Missing`].

use crate::error::{PprlError, Result};
use crate::record::{Dataset, Record};
use crate::schema::{FieldType, Schema};
use crate::value::{Date, Value};

/// Splits one CSV document into rows of cells (RFC-4180 quoting).
fn parse_rows(input: &str) -> Result<Vec<Vec<String>>> {
    let mut rows = Vec::new();
    let mut row: Vec<String> = Vec::new();
    let mut cell = String::new();
    let mut chars = input.chars().peekable();
    let mut in_quotes = false;
    let mut any = false;
    while let Some(c) = chars.next() {
        any = true;
        if in_quotes {
            match c {
                '"' => {
                    if chars.peek() == Some(&'"') {
                        chars.next();
                        cell.push('"');
                    } else {
                        in_quotes = false;
                    }
                }
                other => cell.push(other),
            }
        } else {
            match c {
                '"' => {
                    if !cell.is_empty() {
                        return Err(PprlError::ValueError(
                            "quote in the middle of an unquoted cell".into(),
                        ));
                    }
                    in_quotes = true;
                }
                ',' => {
                    row.push(std::mem::take(&mut cell));
                }
                '\r' => {} // tolerate CRLF
                '\n' => {
                    row.push(std::mem::take(&mut cell));
                    rows.push(std::mem::take(&mut row));
                }
                other => cell.push(other),
            }
        }
    }
    if in_quotes {
        return Err(PprlError::ValueError("unterminated quoted cell".into()));
    }
    if any && (!cell.is_empty() || !row.is_empty()) {
        row.push(cell);
        rows.push(row);
    }
    Ok(rows)
}

/// Quotes a cell when needed.
fn quote(cell: &str) -> String {
    if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
        format!("\"{}\"", cell.replace('"', "\"\""))
    } else {
        cell.to_string()
    }
}

fn parse_value(text: &str, field_type: FieldType) -> Result<Value> {
    let trimmed = text.trim();
    if trimmed.is_empty() {
        return Ok(Value::Missing);
    }
    Ok(match field_type {
        FieldType::Text => Value::Text(trimmed.to_string()),
        FieldType::Categorical => Value::Categorical(trimmed.to_string()),
        FieldType::Integer => Value::Integer(
            trimmed
                .parse()
                .map_err(|_| PprlError::ValueError(format!("`{trimmed}` is not an integer")))?,
        ),
        FieldType::Float => Value::Float(
            trimmed
                .parse()
                .map_err(|_| PprlError::ValueError(format!("`{trimmed}` is not a number")))?,
        ),
        FieldType::Date => Value::Date(Date::parse(trimmed)?),
    })
}

impl Dataset {
    /// Parses a CSV document with a header row against `schema`.
    ///
    /// The header must contain every schema field (extra columns are
    /// ignored); column order is free. An optional `entity_id` column
    /// populates the evaluation ground truth (0 otherwise).
    pub fn from_csv(input: &str, schema: Schema) -> Result<Dataset> {
        let rows = parse_rows(input)?;
        let Some(header) = rows.first() else {
            return Err(PprlError::ValueError("empty CSV document".into()));
        };
        let col_of = |name: &str| header.iter().position(|h| h.trim() == name);
        let columns: Vec<usize> = schema
            .fields()
            .iter()
            .map(|f| col_of(&f.name).ok_or_else(|| PprlError::UnknownField(f.name.clone())))
            .collect::<Result<_>>()?;
        let entity_col = col_of("entity_id");
        let mut records = Vec::with_capacity(rows.len() - 1);
        for (line, row) in rows.iter().enumerate().skip(1) {
            if row.len() == 1 && row[0].trim().is_empty() {
                continue; // trailing blank line
            }
            if row.len() < header.len() {
                return Err(PprlError::ValueError(format!(
                    "line {}: expected {} cells, got {}",
                    line + 1,
                    header.len(),
                    row.len()
                )));
            }
            let entity_id = match entity_col {
                Some(c) => row[c].trim().parse().map_err(|_| {
                    PprlError::ValueError(format!("line {}: bad entity_id", line + 1))
                })?,
                None => 0,
            };
            let values: Vec<Value> = schema
                .fields()
                .iter()
                .zip(&columns)
                .map(|(f, &c)| parse_value(&row[c], f.field_type))
                .collect::<Result<_>>()?;
            records.push(Record::new(entity_id, values));
        }
        Dataset::from_records(schema, records)
    }

    /// Renders the dataset to CSV, including an `entity_id` column, in
    /// schema order.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str("entity_id");
        for f in self.schema().fields() {
            out.push(',');
            out.push_str(&quote(&f.name));
        }
        out.push('\n');
        for r in self.records() {
            out.push_str(&r.entity_id.to_string());
            for v in &r.values {
                out.push(',');
                out.push_str(&quote(&v.as_text()));
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::FieldDef;

    fn schema() -> Schema {
        Schema::new(vec![
            FieldDef::qid("name", FieldType::Text),
            FieldDef::qid("age", FieldType::Integer),
            FieldDef::qid("dob", FieldType::Date),
            FieldDef::qid("gender", FieldType::Categorical),
        ])
        .unwrap()
    }

    #[test]
    fn round_trip() {
        let csv = "entity_id,name,age,dob,gender\n7,Ann Smith,30,1990-01-02,f\n8,\"O'Brien, Bob\",41,1980-12-31,m\n";
        let ds = Dataset::from_csv(csv, schema()).unwrap();
        assert_eq!(ds.len(), 2);
        assert_eq!(ds.records()[0].entity_id, 7);
        assert_eq!(ds.text(1, "name").unwrap(), "O'Brien, Bob");
        assert_eq!(ds.value(0, "age").unwrap(), &Value::Integer(30));
        let back = Dataset::from_csv(&ds.to_csv(), schema()).unwrap();
        assert_eq!(back.records(), ds.records());
    }

    #[test]
    fn column_order_free_and_extras_ignored() {
        let csv = "gender,extra,dob,age,name\nf,zzz,1990-01-02,30,Ann\n";
        let ds = Dataset::from_csv(csv, schema()).unwrap();
        assert_eq!(ds.text(0, "name").unwrap(), "Ann");
        assert_eq!(ds.records()[0].entity_id, 0); // no entity_id column
    }

    #[test]
    fn missing_cells_become_missing_values() {
        let csv = "name,age,dob,gender\nAnn,,1990-01-02,\n";
        let ds = Dataset::from_csv(csv, schema()).unwrap();
        assert!(ds.value(0, "age").unwrap().is_missing());
        assert!(ds.value(0, "gender").unwrap().is_missing());
    }

    #[test]
    fn quoted_quotes_and_newlines() {
        let csv = "name,age,dob,gender\n\"say \"\"hi\"\"\nthere\",1,2000-01-01,f\n";
        let ds = Dataset::from_csv(csv, schema()).unwrap();
        assert_eq!(ds.text(0, "name").unwrap(), "say \"hi\"\nthere");
        // writer re-quotes correctly
        let back = Dataset::from_csv(&ds.to_csv(), schema()).unwrap();
        assert_eq!(back.text(0, "name").unwrap(), "say \"hi\"\nthere");
    }

    #[test]
    fn errors_reported_with_context() {
        assert!(Dataset::from_csv("", schema()).is_err());
        // missing schema column
        assert!(Dataset::from_csv("name,age\nx,1\n", schema()).is_err());
        // bad integer
        let bad = "name,age,dob,gender\nAnn,abc,1990-01-02,f\n";
        assert!(Dataset::from_csv(bad, schema()).is_err());
        // bad date
        let bad = "name,age,dob,gender\nAnn,1,01/02/1990,f\n";
        assert!(Dataset::from_csv(bad, schema()).is_err());
        // short row
        let bad = "name,age,dob,gender\nAnn,1\n";
        assert!(Dataset::from_csv(bad, schema()).is_err());
        // unterminated quote
        assert!(
            Dataset::from_csv("name,age,dob,gender\n\"Ann,1,2000-01-01,f\n", schema()).is_err()
        );
        // stray quote
        assert!(
            Dataset::from_csv("name,age,dob,gender\nAn\"n,1,2000-01-01,f\n", schema()).is_err()
        );
    }

    #[test]
    fn crlf_tolerated() {
        let csv = "name,age,dob,gender\r\nAnn,30,1990-01-02,f\r\n";
        let ds = Dataset::from_csv(csv, schema()).unwrap();
        assert_eq!(ds.len(), 1);
    }
}
