//! Records, datasets, and party identifiers.
//!
//! A [`Record`] is a row of [`Value`]s under a [`Schema`]; a [`Dataset`] is a
//! schema plus rows, owned by one party. [`RecordRef`] globally names a record
//! as `(party, row)` so that match results and clusters can span databases.

use crate::error::{PprlError, Result};
use crate::schema::Schema;
use crate::value::Value;

/// Identifier of a database owner / party in a linkage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PartyId(pub u32);

impl std::fmt::Display for PartyId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "P{}", self.0)
    }
}

/// A `(party, row-index)` pair globally identifying a record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RecordRef {
    /// Owning party.
    pub party: PartyId,
    /// Row index within the party's dataset.
    pub row: usize,
}

impl RecordRef {
    /// Creates a record reference.
    pub fn new(party: u32, row: usize) -> Self {
        RecordRef {
            party: PartyId(party),
            row,
        }
    }
}

impl std::fmt::Display for RecordRef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}#{}", self.party, self.row)
    }
}

/// One row of values. `entity_id` is the hidden ground-truth entity the row
/// belongs to; it is available to evaluation code only and never used by
/// linkage algorithms.
#[derive(Debug, Clone, PartialEq)]
pub struct Record {
    /// Ground-truth entity identifier (for evaluation only).
    pub entity_id: u64,
    /// Field values, aligned with the dataset schema.
    pub values: Vec<Value>,
}

impl Record {
    /// Creates a record.
    pub fn new(entity_id: u64, values: Vec<Value>) -> Self {
        Record { entity_id, values }
    }
}

/// A schema plus rows, as held by one database owner.
#[derive(Debug, Clone)]
pub struct Dataset {
    schema: Schema,
    records: Vec<Record>,
}

impl Dataset {
    /// Creates an empty dataset with the given schema.
    pub fn new(schema: Schema) -> Self {
        Dataset {
            schema,
            records: Vec::new(),
        }
    }

    /// Creates a dataset from rows, validating row widths.
    pub fn from_records(schema: Schema, records: Vec<Record>) -> Result<Self> {
        for (i, r) in records.iter().enumerate() {
            if r.values.len() != schema.len() {
                return Err(PprlError::shape(
                    format!("{} values per record", schema.len()),
                    format!("{} values in record {i}", r.values.len()),
                ));
            }
        }
        Ok(Dataset { schema, records })
    }

    /// Appends a record, validating its width.
    pub fn push(&mut self, record: Record) -> Result<()> {
        if record.values.len() != self.schema.len() {
            return Err(PprlError::shape(
                format!("{} values", self.schema.len()),
                format!("{} values", record.values.len()),
            ));
        }
        self.records.push(record);
        Ok(())
    }

    /// The dataset schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// All records.
    pub fn records(&self) -> &[Record] {
        &self.records
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when the dataset has no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Record by row index.
    pub fn record(&self, row: usize) -> Result<&Record> {
        self.records.get(row).ok_or_else(|| {
            PprlError::invalid(
                "row",
                format!("row {row} out of range {}", self.records.len()),
            )
        })
    }

    /// Value of `field` in row `row`.
    pub fn value(&self, row: usize, field: &str) -> Result<&Value> {
        let idx = self.schema.index_of(field)?;
        Ok(&self.record(row)?.values[idx])
    }

    /// Canonical text of `field` in row `row` (missing → empty string).
    pub fn text(&self, row: usize, field: &str) -> Result<String> {
        Ok(self.value(row, field)?.as_text())
    }

    /// Extracts one column as text, in row order.
    pub fn column_text(&self, field: &str) -> Result<Vec<String>> {
        let idx = self.schema.index_of(field)?;
        Ok(self
            .records
            .iter()
            .map(|r| r.values[idx].as_text())
            .collect())
    }

    /// True ground-truth match pairs between this dataset and `other`:
    /// all cross pairs with equal `entity_id`. For evaluation only.
    pub fn ground_truth_pairs(&self, other: &Dataset) -> Vec<(usize, usize)> {
        use std::collections::HashMap;
        let mut by_entity: HashMap<u64, Vec<usize>> = HashMap::new();
        for (j, r) in other.records.iter().enumerate() {
            by_entity.entry(r.entity_id).or_default().push(j);
        }
        let mut pairs = Vec::new();
        for (i, r) in self.records.iter().enumerate() {
            if let Some(rows) = by_entity.get(&r.entity_id) {
                for &j in rows {
                    pairs.push((i, j));
                }
            }
        }
        pairs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{FieldDef, FieldType};

    fn tiny_schema() -> Schema {
        Schema::new(vec![
            FieldDef::qid("name", FieldType::Text),
            FieldDef::qid("age", FieldType::Integer),
        ])
        .unwrap()
    }

    #[test]
    fn push_validates_width() {
        let mut ds = Dataset::new(tiny_schema());
        assert!(ds
            .push(Record::new(1, vec!["ann".into(), Value::Integer(30)]))
            .is_ok());
        assert!(ds.push(Record::new(2, vec!["bob".into()])).is_err());
        assert_eq!(ds.len(), 1);
    }

    #[test]
    fn from_records_validates_width() {
        let r = Dataset::from_records(tiny_schema(), vec![Record::new(1, vec!["x".into()])]);
        assert!(r.is_err());
    }

    #[test]
    fn value_access() {
        let ds = Dataset::from_records(
            tiny_schema(),
            vec![Record::new(7, vec!["ann".into(), Value::Integer(30)])],
        )
        .unwrap();
        assert_eq!(ds.text(0, "name").unwrap(), "ann");
        assert_eq!(ds.value(0, "age").unwrap(), &Value::Integer(30));
        assert!(ds.value(0, "zzz").is_err());
        assert!(ds.value(1, "name").is_err());
        assert_eq!(ds.column_text("name").unwrap(), vec!["ann".to_string()]);
    }

    #[test]
    fn ground_truth_pairs_cross_product_per_entity() {
        let mk = |ids: &[u64]| {
            Dataset::from_records(
                tiny_schema(),
                ids.iter()
                    .map(|&e| Record::new(e, vec!["x".into(), Value::Integer(1)]))
                    .collect(),
            )
            .unwrap()
        };
        let a = mk(&[1, 2, 3, 2]);
        let b = mk(&[2, 4, 2]);
        let mut pairs = a.ground_truth_pairs(&b);
        pairs.sort_unstable();
        assert_eq!(pairs, vec![(1, 0), (1, 2), (3, 0), (3, 2)]);
    }

    #[test]
    fn record_ref_display() {
        assert_eq!(RecordRef::new(2, 5).to_string(), "P2#5");
    }
}
