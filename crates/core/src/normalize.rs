//! String pre-processing for linkage.
//!
//! The first step of every (PP)RL pipeline is normalising the quasi-identifier
//! strings so that superficial formatting differences ("O'Brien " vs
//! "obrien") do not defeat matching. The functions here implement the
//! standard normalisation pipeline used by data-matching systems:
//! lower-casing, accent folding for Latin-1 characters, punctuation removal,
//! and whitespace collapsing.

/// Configuration for [`normalize`].
#[derive(Debug, Clone)]
pub struct NormalizeConfig {
    /// Convert to lower case.
    pub lowercase: bool,
    /// Fold common accented Latin characters to their ASCII base letters.
    pub fold_accents: bool,
    /// Remove punctuation characters entirely.
    pub strip_punctuation: bool,
    /// Collapse runs of whitespace to a single space, and trim the ends.
    pub collapse_whitespace: bool,
    /// Remove all whitespace (useful for compact keys such as postcodes).
    pub remove_whitespace: bool,
}

impl Default for NormalizeConfig {
    fn default() -> Self {
        NormalizeConfig {
            lowercase: true,
            fold_accents: true,
            strip_punctuation: true,
            collapse_whitespace: true,
            remove_whitespace: false,
        }
    }
}

/// Folds one accented character to its ASCII base, or returns it unchanged.
fn fold_accent(c: char) -> char {
    match c {
        'à' | 'á' | 'â' | 'ã' | 'ä' | 'å' => 'a',
        'è' | 'é' | 'ê' | 'ë' => 'e',
        'ì' | 'í' | 'î' | 'ï' => 'i',
        'ò' | 'ó' | 'ô' | 'õ' | 'ö' | 'ø' => 'o',
        'ù' | 'ú' | 'û' | 'ü' => 'u',
        'ý' | 'ÿ' => 'y',
        'ç' => 'c',
        'ñ' => 'n',
        'À' | 'Á' | 'Â' | 'Ã' | 'Ä' | 'Å' => 'A',
        'È' | 'É' | 'Ê' | 'Ë' => 'E',
        'Ì' | 'Í' | 'Î' | 'Ï' => 'I',
        'Ò' | 'Ó' | 'Ô' | 'Õ' | 'Ö' | 'Ø' => 'O',
        'Ù' | 'Ú' | 'Û' | 'Ü' => 'U',
        'Ç' => 'C',
        'Ñ' => 'N',
        other => other,
    }
}

/// Normalises a string according to `config`.
pub fn normalize(input: &str, config: &NormalizeConfig) -> String {
    let mut out = String::with_capacity(input.len());
    for mut c in input.chars() {
        if config.fold_accents {
            c = fold_accent(c);
            if c == 'ß' {
                out.push_str("ss");
                continue;
            }
        }
        if config.lowercase {
            for lc in c.to_lowercase() {
                push_char(&mut out, lc, config);
            }
        } else {
            push_char(&mut out, c, config);
        }
    }
    if config.collapse_whitespace || config.remove_whitespace {
        let mut collapsed = String::with_capacity(out.len());
        let mut last_space = true; // trims leading whitespace
        for c in out.chars() {
            if c.is_whitespace() {
                if config.remove_whitespace {
                    continue;
                }
                if !last_space {
                    collapsed.push(' ');
                }
                last_space = true;
            } else {
                collapsed.push(c);
                last_space = false;
            }
        }
        while collapsed.ends_with(' ') {
            collapsed.pop();
        }
        collapsed
    } else {
        out
    }
}

fn push_char(out: &mut String, c: char, config: &NormalizeConfig) {
    if config.strip_punctuation && (c.is_ascii_punctuation() || c == '’' || c == '‘') {
        return;
    }
    out.push(c);
}

/// Normalises with the default configuration.
pub fn normalize_default(input: &str) -> String {
    normalize(input, &NormalizeConfig::default())
}

/// Normalises a name-like field: default pipeline, whitespace removed.
pub fn normalize_compact(input: &str) -> String {
    normalize(
        input,
        &NormalizeConfig {
            remove_whitespace: true,
            ..NormalizeConfig::default()
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_pipeline() {
        assert_eq!(normalize_default("  O'Brien   SMITH "), "obrien smith");
    }

    #[test]
    fn accent_folding() {
        assert_eq!(normalize_default("Müller"), "muller");
        assert_eq!(normalize_default("José-María"), "josemaria");
        assert_eq!(normalize_default("Łukasz"), "łukasz"); // non-latin1 left alone
    }

    #[test]
    fn eszett_expands() {
        assert_eq!(normalize_default("Straße"), "strasse");
    }

    #[test]
    fn punctuation_stripping_optional() {
        let cfg = NormalizeConfig {
            strip_punctuation: false,
            ..NormalizeConfig::default()
        };
        assert_eq!(normalize("O'Brien", &cfg), "o'brien");
    }

    #[test]
    fn compact_removes_all_whitespace() {
        assert_eq!(normalize_compact("12 Main  St"), "12mainst");
    }

    #[test]
    fn no_lowercase() {
        let cfg = NormalizeConfig {
            lowercase: false,
            ..NormalizeConfig::default()
        };
        assert_eq!(normalize("ABC def", &cfg), "ABC def");
    }

    #[test]
    fn empty_and_whitespace_only() {
        assert_eq!(normalize_default(""), "");
        assert_eq!(normalize_default("   "), "");
    }

    #[test]
    fn unicode_quotes_removed() {
        assert_eq!(normalize_default("D’Angelo"), "dangelo");
    }
}
