//! Phonetic encodings used as blocking keys.
//!
//! Phonetic codes group names that sound alike, tolerating spelling
//! variation; they are the classical choice of blocking key in record
//! linkage (and remain common in PPRL, where the *code* rather than the name
//! is hashed). Implemented: Soundex (the census standard) and NYSIIS (the
//! New York State Identification and Intelligence System code, better for
//! non-Anglo names).

/// Maps a letter to its Soundex digit, or `None` for vowels/ignored letters.
fn soundex_digit(c: char) -> Option<char> {
    match c {
        'b' | 'f' | 'p' | 'v' => Some('1'),
        'c' | 'g' | 'j' | 'k' | 'q' | 's' | 'x' | 'z' => Some('2'),
        'd' | 't' => Some('3'),
        'l' => Some('4'),
        'm' | 'n' => Some('5'),
        'r' => Some('6'),
        _ => None,
    }
}

/// American Soundex: a letter followed by three digits (e.g. `robert → r163`).
///
/// Returns the empty string when the input contains no ASCII letter.
/// `h` and `w` are transparent (adjacent same-coded consonants separated only
/// by them still collapse), per the standard algorithm.
pub fn soundex(name: &str) -> String {
    let letters: Vec<char> = name
        .chars()
        .filter(|c| c.is_ascii_alphabetic())
        .map(|c| c.to_ascii_lowercase())
        .collect();
    let Some(&first) = letters.first() else {
        return String::new();
    };
    let mut code = String::with_capacity(4);
    code.push(first);
    let mut last_digit = soundex_digit(first);
    for &c in &letters[1..] {
        match soundex_digit(c) {
            Some(d) => {
                if last_digit != Some(d) {
                    code.push(d);
                    if code.len() == 4 {
                        break;
                    }
                }
                last_digit = Some(d);
            }
            None => {
                // h/w are transparent; vowels reset the adjacency.
                if c != 'h' && c != 'w' {
                    last_digit = None;
                }
            }
        }
    }
    while code.len() < 4 {
        code.push('0');
    }
    code
}

/// NYSIIS phonetic code, truncated to the conventional 6 characters.
///
/// Returns the empty string when the input contains no ASCII letter.
pub fn nysiis(name: &str) -> String {
    let mut s: Vec<char> = name
        .chars()
        .filter(|c| c.is_ascii_alphabetic())
        .map(|c| c.to_ascii_lowercase())
        .collect();
    if s.is_empty() {
        return String::new();
    }

    // Step 1: transcode first characters.
    let prefix_rules: [(&str, &str); 5] = [
        ("mac", "mcc"),
        ("kn", "nn"),
        ("k", "c"),
        ("ph", "ff"),
        ("pf", "ff"),
    ];
    let joined: String = s.iter().collect();
    for (from, to) in prefix_rules {
        if joined.starts_with(from) {
            let mut new: Vec<char> = to.chars().collect();
            new.extend_from_slice(&s[from.len()..]);
            s = new;
            break;
        }
    }
    if s.starts_with(&['s', 'c', 'h']) {
        s.splice(0..3, "sss".chars());
    }

    // Step 2: transcode last characters.
    let n = s.len();
    if n >= 2 {
        let tail: String = s[n - 2..].iter().collect();
        match tail.as_str() {
            "ee" | "ie" => {
                s.truncate(n - 2);
                s.push('y');
            }
            "dt" | "rt" | "rd" | "nt" | "nd" => {
                s.truncate(n - 2);
                s.push('d');
            }
            _ => {}
        }
    }

    // Step 3: first character of the key is the first character of the name.
    let mut key = String::new();
    key.push(s[0]);

    // Step 4: scan the remaining characters applying the rewrite rules.
    let is_vowel = |c: char| matches!(c, 'a' | 'e' | 'i' | 'o' | 'u');
    let mut prev_original = s[0];
    let mut i = 1;
    let mut last_key_char = s[0];
    while i < s.len() {
        let mut current: Vec<char> = Vec::new();
        let c = s[i];
        if i + 1 < s.len() && c == 'e' && s[i + 1] == 'v' {
            current.extend("af".chars());
            i += 2;
        } else if is_vowel(c) {
            current.push('a');
            i += 1;
        } else if c == 'q' {
            current.push('g');
            i += 1;
        } else if c == 'z' {
            current.push('s');
            i += 1;
        } else if c == 'm' {
            current.push('n');
            i += 1;
        } else if i + 1 < s.len() && c == 'k' && s[i + 1] == 'n' {
            current.extend("nn".chars());
            i += 2;
        } else if c == 'k' {
            current.push('c');
            i += 1;
        } else if i + 2 < s.len() && c == 's' && s[i + 1] == 'c' && s[i + 2] == 'h' {
            current.extend("sss".chars());
            i += 3;
        } else if i + 1 < s.len() && c == 'p' && s[i + 1] == 'h' {
            current.extend("ff".chars());
            i += 2;
        } else if (c == 'h'
            && (!is_vowel(prev_original) || (i + 1 < s.len() && !is_vowel(s[i + 1]))))
            || (c == 'w' && is_vowel(prev_original))
        {
            // h between non-vowels and w after a vowel both echo the
            // previous character.
            current.push(prev_original);
            i += 1;
        } else {
            current.push(c);
            i += 1;
        }
        prev_original = c;
        for cc in current {
            if cc != last_key_char {
                key.push(cc);
                last_key_char = cc;
            }
        }
    }

    // Step 5: trim trailing 's' and 'ay' → 'y', trailing 'a' removed.
    if key.len() > 1 && key.ends_with('s') {
        key.pop();
    }
    if key.ends_with("ay") {
        key.truncate(key.len() - 2);
        key.push('y');
    }
    if key.len() > 1 && key.ends_with('a') {
        key.pop();
    }

    key.truncate(6);
    key
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn soundex_classic_values() {
        assert_eq!(soundex("Robert"), "r163");
        assert_eq!(soundex("Rupert"), "r163");
        assert_eq!(soundex("Ashcraft"), "a261"); // h transparent
        assert_eq!(soundex("Ashcroft"), "a261");
        assert_eq!(soundex("Tymczak"), "t522");
        assert_eq!(soundex("Pfister"), "p236");
        assert_eq!(soundex("Honeyman"), "h555");
    }

    #[test]
    fn soundex_similar_names_collide() {
        assert_eq!(soundex("Smith"), soundex("Smyth"));
        assert_eq!(soundex("Gail"), soundex("Gayle"));
        assert_ne!(soundex("Smith"), soundex("Jones"));
    }

    #[test]
    fn soundex_short_and_empty() {
        assert_eq!(soundex("A"), "a000");
        assert_eq!(soundex(""), "");
        assert_eq!(soundex("123"), "");
        assert_eq!(soundex("Lee"), "l000");
    }

    #[test]
    fn soundex_ignores_non_letters() {
        assert_eq!(soundex("O'Brien"), soundex("OBrien"));
    }

    #[test]
    fn nysiis_stable_values() {
        // Pinned outputs of this implementation (NYSIIS variants differ in
        // minor rules across toolkits; what matters for blocking is that the
        // code is stable and groups spelling variants).
        assert_eq!(nysiis("Smith"), "snat");
        assert_eq!(nysiis("KNIGHT"), nysiis("Night"));
    }

    #[test]
    fn nysiis_similar_names_collide() {
        assert_eq!(nysiis("Smith"), nysiis("Smithe"));
        assert_eq!(nysiis("Peterson"), nysiis("Petersen"));
        assert_eq!(nysiis("Clark"), nysiis("Clarke"));
        assert_ne!(nysiis("Smith"), nysiis("Jones"));
    }

    #[test]
    fn nysiis_empty_and_nonletter() {
        assert_eq!(nysiis(""), "");
        assert_eq!(nysiis("42"), "");
    }

    #[test]
    fn nysiis_truncates_to_six() {
        assert!(nysiis("Wolfeschlegelstein").len() <= 6);
    }

    #[test]
    fn codes_are_deterministic() {
        assert_eq!(soundex("garcia"), soundex("Garcia"));
        assert_eq!(nysiis("garcia"), nysiis("GARCIA"));
    }
}
