//! Q-gram (character n-gram) tokenisation.
//!
//! Bloom-filter PPRL encodes the *q-gram set* of a string (Figure 2, left, of
//! the paper): the set of all substrings of length `q`. Padding the string
//! with sentinel characters weights the first and last characters more
//! heavily, which empirically improves name matching. Positional q-grams
//! append the gram's index so transpositions of entire tokens are
//! distinguished.

use std::collections::BTreeMap;

/// Padding sentinel prepended/appended when `padded` is set.
pub const PAD_CHAR: char = '#';

/// Configuration for q-gram extraction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QGramConfig {
    /// Gram length (`q >= 1`). Bigrams (`q = 2`) are the PPRL default.
    pub q: usize,
    /// Pad with `q - 1` sentinels on each side.
    pub padded: bool,
    /// Append the gram position, making repeated grams distinct by position.
    pub positional: bool,
}

impl Default for QGramConfig {
    fn default() -> Self {
        QGramConfig {
            q: 2,
            padded: true,
            positional: false,
        }
    }
}

impl QGramConfig {
    /// Standard unpadded bigram configuration.
    pub fn bigrams() -> Self {
        QGramConfig {
            q: 2,
            padded: false,
            positional: false,
        }
    }
}

/// Extracts the q-gram multiset of `s` as a sorted `(gram, count)` map.
///
/// Returns an empty map for the empty string. A string shorter than `q`
/// without padding yields the string itself as a single gram, following the
/// convention used by data-matching toolkits (so very short names still
/// produce a token).
pub fn qgram_counts(s: &str, config: &QGramConfig) -> BTreeMap<String, usize> {
    let mut out = BTreeMap::new();
    if s.is_empty() || config.q == 0 {
        return out;
    }
    let mut chars: Vec<char> = Vec::with_capacity(s.len() + 2 * (config.q - 1));
    if config.padded {
        chars.extend(std::iter::repeat_n(PAD_CHAR, config.q - 1));
    }
    chars.extend(s.chars());
    if config.padded {
        chars.extend(std::iter::repeat_n(PAD_CHAR, config.q - 1));
    }
    if chars.len() < config.q {
        let gram: String = chars.iter().collect();
        *out.entry(gram).or_insert(0) += 1;
        return out;
    }
    for (pos, window) in chars.windows(config.q).enumerate() {
        let mut gram: String = window.iter().collect();
        if config.positional {
            gram.push('_');
            gram.push_str(&pos.to_string());
        }
        *out.entry(gram).or_insert(0) += 1;
    }
    out
}

/// Extracts the q-gram *set* (duplicates collapsed) of `s`, sorted.
pub fn qgram_set(s: &str, config: &QGramConfig) -> Vec<String> {
    qgram_counts(s, config).into_keys().collect()
}

/// Extracts the q-gram list in order of occurrence (duplicates kept).
pub fn qgram_list(s: &str, config: &QGramConfig) -> Vec<String> {
    if s.is_empty() || config.q == 0 {
        return Vec::new();
    }
    let mut chars: Vec<char> = Vec::new();
    if config.padded {
        chars.extend(std::iter::repeat_n(PAD_CHAR, config.q - 1));
    }
    chars.extend(s.chars());
    if config.padded {
        chars.extend(std::iter::repeat_n(PAD_CHAR, config.q - 1));
    }
    if chars.len() < config.q {
        return vec![chars.iter().collect()];
    }
    chars
        .windows(config.q)
        .enumerate()
        .map(|(pos, w)| {
            let mut g: String = w.iter().collect();
            if config.positional {
                g.push('_');
                g.push_str(&pos.to_string());
            }
            g
        })
        .collect()
}

/// Dice coefficient between the q-gram sets of two strings.
///
/// `2·|A∩B| / (|A|+|B|)`, in `[0,1]`; `1.0` when both strings are empty.
pub fn qgram_dice(a: &str, b: &str, config: &QGramConfig) -> f64 {
    let sa = qgram_set(a, config);
    let sb = qgram_set(b, config);
    if sa.is_empty() && sb.is_empty() {
        return 1.0;
    }
    if sa.is_empty() || sb.is_empty() {
        return 0.0;
    }
    let common = sorted_intersection_size(&sa, &sb);
    2.0 * common as f64 / (sa.len() + sb.len()) as f64
}

/// Jaccard coefficient between the q-gram sets of two strings.
pub fn qgram_jaccard(a: &str, b: &str, config: &QGramConfig) -> f64 {
    let sa = qgram_set(a, config);
    let sb = qgram_set(b, config);
    if sa.is_empty() && sb.is_empty() {
        return 1.0;
    }
    let common = sorted_intersection_size(&sa, &sb);
    let union = sa.len() + sb.len() - common;
    if union == 0 {
        1.0
    } else {
        common as f64 / union as f64
    }
}

/// Intersection size of two sorted, deduplicated slices.
pub fn sorted_intersection_size<T: Ord>(a: &[T], b: &[T]) -> usize {
    let (mut i, mut j, mut n) = (0, 0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                n += 1;
                i += 1;
                j += 1;
            }
        }
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unpadded() -> QGramConfig {
        QGramConfig::bigrams()
    }

    #[test]
    fn bigrams_of_peter() {
        let grams = qgram_list("peter", &unpadded());
        assert_eq!(grams, vec!["pe", "et", "te", "er"]);
    }

    #[test]
    fn padded_bigrams_include_sentinels() {
        let grams = qgram_list("ab", &QGramConfig::default());
        assert_eq!(grams, vec!["#a", "ab", "b#"]);
    }

    #[test]
    fn counts_keep_duplicates() {
        let counts = qgram_counts("aaa", &unpadded());
        assert_eq!(counts.get("aa"), Some(&2));
        let set = qgram_set("aaa", &unpadded());
        assert_eq!(set, vec!["aa"]);
    }

    #[test]
    fn positional_distinguishes_repeats() {
        let cfg = QGramConfig {
            positional: true,
            ..QGramConfig::bigrams()
        };
        let set = qgram_set("aaa", &cfg);
        assert_eq!(set, vec!["aa_0", "aa_1"]);
    }

    #[test]
    fn short_string_yields_itself() {
        assert_eq!(qgram_list("a", &unpadded()), vec!["a"]);
        let trigram = QGramConfig {
            q: 3,
            padded: false,
            positional: false,
        };
        assert_eq!(qgram_list("ab", &trigram), vec!["ab"]);
    }

    #[test]
    fn empty_string_yields_nothing() {
        assert!(qgram_list("", &QGramConfig::default()).is_empty());
        assert!(qgram_set("", &QGramConfig::default()).is_empty());
    }

    #[test]
    fn dice_identical_is_one() {
        assert!((qgram_dice("smith", "smith", &QGramConfig::default()) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn dice_disjoint_is_zero() {
        assert_eq!(qgram_dice("abc", "xyz", &unpadded()), 0.0);
    }

    #[test]
    fn dice_known_value() {
        // smith vs smyth, unpadded bigrams: {sm,mi,it,th} vs {sm,my,yt,th};
        // common = 2, dice = 2*2/8 = 0.5
        let d = qgram_dice("smith", "smyth", &unpadded());
        assert!((d - 0.5).abs() < 1e-12);
    }

    #[test]
    fn jaccard_leq_dice() {
        for (a, b) in [("peter", "pedro"), ("smith", "smyth"), ("ann", "anne")] {
            let d = qgram_dice(a, b, &QGramConfig::default());
            let j = qgram_jaccard(a, b, &QGramConfig::default());
            assert!(j <= d + 1e-12, "jaccard {j} > dice {d}");
        }
    }

    #[test]
    fn both_empty_similarity_one() {
        assert_eq!(qgram_dice("", "", &QGramConfig::default()), 1.0);
        assert_eq!(qgram_jaccard("", "", &QGramConfig::default()), 1.0);
    }

    #[test]
    fn intersection_size() {
        assert_eq!(sorted_intersection_size(&[1, 2, 3], &[2, 3, 4]), 2);
        assert_eq!(sorted_intersection_size::<i32>(&[], &[1]), 0);
    }
}
