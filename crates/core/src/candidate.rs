//! The candidate-generation abstraction shared by every blocking engine
//! and the persistent index backend.
//!
//! The paper's complexity-reduction taxonomy (standard blocking, sorted
//! neighbourhood, canopy clustering, LSH, meta-blocking, filtering) and a
//! pre-built on-disk index all answer the same question: *which record
//! pairs are worth comparing?* [`CandidateSource`] captures exactly that
//! contract. A source is bound to the **target** side (dataset B, or the
//! stored population of a persistent index) at construction; each call to
//! [`CandidateSource::candidates`] takes a batch of **probe** records
//! (dataset A, or records arriving on a stream) and returns candidate
//! `(probe_row, target_row)` pairs. The pipeline then scores the pairs —
//! candidate generation and comparison stay separate stages.
//!
//! Probes carry every modality a source might consume ([`Probes`]):
//! encoded Bloom filters, blocking keys, q-gram token sets, MinHash
//! signatures. A source that needs a modality the caller did not supply
//! fails with a typed [`InvalidParameter`] error instead of guessing.
//!
//! Every source also reports [`SourceStats`]: candidates emitted,
//! pairwise comparisons saved relative to the full cross product, and —
//! for disk-backed sources — bytes read from storage. These flow into
//! `LinkageResult` and the `--json` CLI output so backends can be
//! compared on equal terms (experiment E4a).
//!
//! [`InvalidParameter`]: crate::error::PprlError::InvalidParameter

use crate::bitvec::BitVec;
use crate::error::{PprlError, Result};

/// A candidate record pair `(probe_row, target_row)`.
pub type CandidatePair = (usize, usize);

/// Cumulative statistics of a [`CandidateSource`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SourceStats {
    /// Candidate pairs emitted so far.
    pub candidates: usize,
    /// Pairwise comparisons avoided relative to the full cross product
    /// (`probes · targets − candidates`, accumulated over calls).
    pub comparisons_saved: usize,
    /// Bytes read from persistent storage (0 for in-memory sources).
    pub bytes_read: u64,
    /// True when the source is serving over a partially available
    /// backing store (e.g. segments quarantined at open). Results are
    /// exact over what survives, but may be missing records.
    pub degraded: bool,
    /// Backing-store units (segments) excluded from service, when the
    /// source tracks them (0 for in-memory sources).
    pub quarantined_segments: usize,
}

impl SourceStats {
    /// Accounts one `candidates` call: `emitted` pairs out of a
    /// `probes × targets` cross product.
    pub fn record_call(&mut self, probes: usize, targets: usize, emitted: usize) {
        self.candidates += emitted;
        self.comparisons_saved += probes.saturating_mul(targets).saturating_sub(emitted);
    }
}

/// One batch of probe records, in the modalities sources consume. All
/// populated modalities must be row-aligned (same length, same order);
/// [`Probes::len`] is taken from the first populated one.
#[derive(Debug, Clone, Copy, Default)]
pub struct Probes<'a> {
    /// Encoded Bloom filters, one per probe row.
    pub filters: Option<&'a [&'a BitVec]>,
    /// Blocking key per probe row.
    pub keys: Option<&'a [String]>,
    /// Sorted, deduplicated q-gram token sets per probe row.
    pub tokens: Option<&'a [Vec<String>]>,
    /// MinHash signatures per probe row.
    pub signatures: Option<&'a [Vec<u64>]>,
}

impl<'a> Probes<'a> {
    /// Probes carrying only encoded filters.
    pub fn from_filters(filters: &'a [&'a BitVec]) -> Self {
        Probes {
            filters: Some(filters),
            ..Probes::default()
        }
    }

    /// Number of probe rows (from the first populated modality).
    pub fn len(&self) -> usize {
        self.filters
            .map(<[_]>::len)
            .or(self.keys.map(<[_]>::len))
            .or(self.tokens.map(<[_]>::len))
            .or(self.signatures.map(<[_]>::len))
            .unwrap_or(0)
    }

    /// True when no probe rows are present.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The filters, or a typed error naming the requesting source.
    pub fn require_filters(&self, source: &str) -> Result<&'a [&'a BitVec]> {
        self.filters
            .ok_or_else(|| PprlError::invalid("probes", format!("{source} needs probe filters")))
    }

    /// The blocking keys, or a typed error naming the requesting source.
    pub fn require_keys(&self, source: &str) -> Result<&'a [String]> {
        self.keys
            .ok_or_else(|| PprlError::invalid("probes", format!("{source} needs probe keys")))
    }

    /// The token sets, or a typed error naming the requesting source.
    pub fn require_tokens(&self, source: &str) -> Result<&'a [Vec<String>]> {
        self.tokens
            .ok_or_else(|| PprlError::invalid("probes", format!("{source} needs probe tokens")))
    }

    /// The MinHash signatures, or a typed error naming the source.
    pub fn require_signatures(&self, source: &str) -> Result<&'a [Vec<u64>]> {
        self.signatures
            .ok_or_else(|| PprlError::invalid("probes", format!("{source} needs probe signatures")))
    }
}

/// A pluggable candidate-pair generator bound to a target record set.
///
/// Implementations must be deterministic: the same probes against the
/// same target state yield the same pairs (sorted ascending, no
/// duplicates), so pipeline runs are reproducible across backends.
pub trait CandidateSource {
    /// Short stable name (`"hamming-lsh"`, `"index"`, …) used in stats
    /// output.
    fn name(&self) -> &'static str;

    /// Number of target records candidates can refer to.
    fn target_len(&self) -> usize;

    /// Candidate `(probe_row, target_row)` pairs for one probe batch,
    /// sorted ascending and deduplicated.
    fn candidates(&mut self, probes: &Probes<'_>) -> Result<Vec<CandidatePair>>;

    /// Cumulative statistics over every `candidates` call so far.
    fn stats(&self) -> SourceStats;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_accumulate_and_saturate() {
        let mut s = SourceStats::default();
        s.record_call(10, 100, 40);
        assert_eq!(s.candidates, 40);
        assert_eq!(s.comparisons_saved, 960);
        s.record_call(1, 100, 100);
        assert_eq!(s.candidates, 140);
        assert_eq!(s.comparisons_saved, 960);
        // Emitting more than the cross product never underflows.
        s.record_call(1, 1, 5);
        assert_eq!(s.comparisons_saved, 960);
    }

    #[test]
    fn probes_len_prefers_first_modality() {
        let keys = vec!["a".to_string(), "b".to_string()];
        let p = Probes {
            keys: Some(&keys),
            ..Probes::default()
        };
        assert_eq!(p.len(), 2);
        assert!(!p.is_empty());
        assert!(Probes::default().is_empty());
    }

    #[test]
    fn missing_modalities_are_typed_errors() {
        let p = Probes::default();
        for err in [
            p.require_filters("x").unwrap_err(),
            p.require_keys("x").unwrap_err(),
            p.require_tokens("x").unwrap_err(),
            p.require_signatures("x").unwrap_err(),
        ] {
            assert!(matches!(err, PprlError::InvalidParameter { .. }), "{err}");
        }
    }

    #[test]
    fn from_filters_round_trip() {
        let f = BitVec::zeros(8);
        let refs = vec![&f];
        let p = Probes::from_filters(&refs);
        assert_eq!(p.len(), 1);
        assert_eq!(p.require_filters("x").unwrap().len(), 1);
        assert!(p.require_keys("x").is_err());
    }
}
