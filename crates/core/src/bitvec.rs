//! A compact, fixed-length bit vector.
//!
//! [`BitVec`] is the carrier type for every bit-pattern encoding in the
//! workspace: Bloom filters, hardened Bloom filters, LSH keys, and the
//! bit-sampling projections used by Hamming LSH. It stores bits in `u64`
//! words, supports the set-algebra operations similarity functions need
//! (AND/OR/XOR popcounts without materialising intermediates), and keeps the
//! trailing bits of the last word zeroed as an invariant so popcounts are
//! exact.

use crate::error::{PprlError, Result};

const WORD_BITS: usize = 64;

/// Fixed-length vector of bits backed by `u64` words.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct BitVec {
    words: Vec<u64>,
    len: usize,
}

impl std::fmt::Debug for BitVec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "BitVec(len={}, ones={})", self.len, self.count_ones())
    }
}

impl BitVec {
    /// Creates an all-zero bit vector of `len` bits.
    pub fn zeros(len: usize) -> Self {
        BitVec {
            words: vec![0u64; len.div_ceil(WORD_BITS)],
            len,
        }
    }

    /// Creates an all-one bit vector of `len` bits.
    pub fn ones(len: usize) -> Self {
        let mut v = BitVec {
            words: vec![u64::MAX; len.div_ceil(WORD_BITS)],
            len,
        };
        v.mask_tail();
        v
    }

    /// Builds a bit vector from an iterator of booleans.
    pub fn from_bools<I: IntoIterator<Item = bool>>(bits: I) -> Self {
        let bits: Vec<bool> = bits.into_iter().collect();
        let mut v = BitVec::zeros(bits.len());
        for (i, b) in bits.iter().enumerate() {
            if *b {
                v.set(i);
            }
        }
        v
    }

    /// Builds a bit vector of `len` bits with the given positions set.
    ///
    /// Returns an error if any position is out of range.
    pub fn from_positions(len: usize, positions: &[usize]) -> Result<Self> {
        let mut v = BitVec::zeros(len);
        for &p in positions {
            if p >= len {
                return Err(PprlError::invalid(
                    "positions",
                    format!("position {p} out of range for length {len}"),
                ));
            }
            v.set(p);
        }
        Ok(v)
    }

    /// Number of bits.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the vector has zero bits.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Sets bit `i` to 1.
    ///
    /// # Panics
    /// Panics if `i >= len` (index invariant).
    #[inline]
    pub fn set(&mut self, i: usize) {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        self.words[i / WORD_BITS] |= 1u64 << (i % WORD_BITS);
    }

    /// Clears bit `i` to 0.
    ///
    /// # Panics
    /// Panics if `i >= len`.
    #[inline]
    pub fn clear(&mut self, i: usize) {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        self.words[i / WORD_BITS] &= !(1u64 << (i % WORD_BITS));
    }

    /// Flips bit `i`.
    ///
    /// # Panics
    /// Panics if `i >= len`.
    #[inline]
    pub fn flip(&mut self, i: usize) {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        self.words[i / WORD_BITS] ^= 1u64 << (i % WORD_BITS);
    }

    /// Returns bit `i`.
    ///
    /// # Panics
    /// Panics if `i >= len`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        (self.words[i / WORD_BITS] >> (i % WORD_BITS)) & 1 == 1
    }

    /// Assigns bit `i`.
    #[inline]
    pub fn assign(&mut self, i: usize, value: bool) {
        if value {
            self.set(i);
        } else {
            self.clear(i);
        }
    }

    /// Number of `u64` words backing a vector of `len` bits.
    #[inline]
    pub const fn words_for_len(len: usize) -> usize {
        len.div_ceil(WORD_BITS)
    }

    /// The backing words, little-endian bit order (bit `i` is bit
    /// `i % 64` of word `i / 64`). Trailing bits of the last word are
    /// guaranteed zero, so word-level popcounts are exact.
    #[inline]
    pub fn as_words(&self) -> &[u64] {
        &self.words
    }

    /// Rebuilds a vector from backing words as produced by
    /// [`BitVec::as_words`]. The word count must match `len` and bits
    /// beyond `len` must be zero (the tail invariant).
    pub fn from_words(words: Vec<u64>, len: usize) -> Result<Self> {
        if words.len() != Self::words_for_len(len) {
            return Err(PprlError::shape(
                format!("{} words for {len} bits", Self::words_for_len(len)),
                format!("{} words", words.len()),
            ));
        }
        let v = BitVec { words, len };
        let rem = len % WORD_BITS;
        if rem != 0 {
            if let Some(&last) = v.words.last() {
                if last & !((1u64 << rem) - 1) != 0 {
                    return Err(PprlError::ValueError(
                        "word-backed bit vector has bits set beyond its length".into(),
                    ));
                }
            }
        }
        Ok(v)
    }

    /// Number of set bits.
    #[inline]
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Popcount of `self AND other` without materialising the intersection.
    pub fn and_count(&self, other: &BitVec) -> usize {
        debug_assert_eq!(self.len, other.len);
        self.words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| (a & b).count_ones() as usize)
            .sum()
    }

    /// Popcount of `self OR other`.
    pub fn or_count(&self, other: &BitVec) -> usize {
        debug_assert_eq!(self.len, other.len);
        self.words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| (a | b).count_ones() as usize)
            .sum()
    }

    /// Popcount of `self XOR other` — the Hamming distance.
    pub fn xor_count(&self, other: &BitVec) -> usize {
        debug_assert_eq!(self.len, other.len);
        self.words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| (a ^ b).count_ones() as usize)
            .sum()
    }

    /// Bitwise AND, requiring equal lengths.
    pub fn and(&self, other: &BitVec) -> Result<BitVec> {
        self.check_len(other)?;
        Ok(BitVec {
            words: self
                .words
                .iter()
                .zip(&other.words)
                .map(|(a, b)| a & b)
                .collect(),
            len: self.len,
        })
    }

    /// Bitwise OR, requiring equal lengths.
    pub fn or(&self, other: &BitVec) -> Result<BitVec> {
        self.check_len(other)?;
        Ok(BitVec {
            words: self
                .words
                .iter()
                .zip(&other.words)
                .map(|(a, b)| a | b)
                .collect(),
            len: self.len,
        })
    }

    /// Bitwise XOR, requiring equal lengths.
    pub fn xor(&self, other: &BitVec) -> Result<BitVec> {
        self.check_len(other)?;
        Ok(BitVec {
            words: self
                .words
                .iter()
                .zip(&other.words)
                .map(|(a, b)| a ^ b)
                .collect(),
            len: self.len,
        })
    }

    /// In-place OR (used when accumulating Bloom filter unions).
    pub fn or_assign(&mut self, other: &BitVec) -> Result<()> {
        self.check_len(other)?;
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
        Ok(())
    }

    /// Iterator over the indices of set bits, ascending.
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut w = w;
            std::iter::from_fn(move || {
                if w == 0 {
                    None
                } else {
                    let tz = w.trailing_zeros() as usize;
                    w &= w - 1;
                    Some(wi * WORD_BITS + tz)
                }
            })
        })
    }

    /// Extracts the bits at `positions` into a new (shorter) bit vector.
    ///
    /// This is the bit-sampling projection used by Hamming LSH.
    pub fn sample(&self, positions: &[usize]) -> Result<BitVec> {
        let mut out = BitVec::zeros(positions.len());
        for (j, &p) in positions.iter().enumerate() {
            if p >= self.len {
                return Err(PprlError::invalid(
                    "positions",
                    format!("position {p} out of range for length {}", self.len),
                ));
            }
            if self.get(p) {
                out.set(j);
            }
        }
        Ok(out)
    }

    /// Folds the vector in half with XOR, halving its length.
    ///
    /// XOR-folding is a Bloom filter hardening technique: it superimposes the
    /// two halves so that individual q-gram bit patterns are no longer
    /// directly observable.
    pub fn xor_fold(&self) -> BitVec {
        let half = self.len / 2;
        let mut out = BitVec::zeros(half);
        for i in 0..half {
            if self.get(i) ^ self.get(i + half) {
                out.set(i);
            }
        }
        out
    }

    /// Serialises to big-endian-free little-endian bytes (LSB of bit 0 first).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.len.div_ceil(8));
        for byte_idx in 0..self.len.div_ceil(8) {
            let word = self.words[byte_idx * 8 / WORD_BITS];
            let shift = (byte_idx * 8) % WORD_BITS;
            out.push(((word >> shift) & 0xFF) as u8);
        }
        out
    }

    /// Deserialises from bytes produced by [`BitVec::to_bytes`].
    pub fn from_bytes(bytes: &[u8], len: usize) -> Result<Self> {
        if bytes.len() != len.div_ceil(8) {
            return Err(PprlError::shape(
                format!("{} bytes for {len} bits", len.div_ceil(8)),
                format!("{} bytes", bytes.len()),
            ));
        }
        let mut v = BitVec::zeros(len);
        for (byte_idx, &b) in bytes.iter().enumerate() {
            let shift = (byte_idx * 8) % WORD_BITS;
            v.words[byte_idx * 8 / WORD_BITS] |= (b as u64) << shift;
        }
        v.mask_tail();
        // Reject set bits beyond `len`.
        let expect_ones: usize = bytes.iter().map(|b| b.count_ones() as usize).sum();
        if v.count_ones() != expect_ones {
            return Err(PprlError::ValueError(
                "serialized bit vector has bits set beyond its length".into(),
            ));
        }
        Ok(v)
    }

    /// A permutation of the bits given by `perm` (output bit `i` takes input
    /// bit `perm[i]`). `perm` must be a permutation of `0..len`.
    pub fn permute(&self, perm: &[usize]) -> Result<BitVec> {
        if perm.len() != self.len {
            return Err(PprlError::shape(
                format!("permutation of length {}", self.len),
                format!("length {}", perm.len()),
            ));
        }
        let mut out = BitVec::zeros(self.len);
        for (i, &src) in perm.iter().enumerate() {
            if src >= self.len {
                return Err(PprlError::invalid(
                    "perm",
                    format!("index {src} out of range"),
                ));
            }
            if self.get(src) {
                out.set(i);
            }
        }
        Ok(out)
    }

    /// Fraction of bits set (the *fill* of a Bloom filter).
    pub fn fill_ratio(&self) -> f64 {
        if self.len == 0 {
            0.0
        } else {
            self.count_ones() as f64 / self.len as f64
        }
    }

    fn check_len(&self, other: &BitVec) -> Result<()> {
        if self.len != other.len {
            return Err(PprlError::shape(
                format!("{} bits", self.len),
                format!("{} bits", other.len),
            ));
        }
        Ok(())
    }

    fn mask_tail(&mut self) {
        let rem = self.len % WORD_BITS;
        if rem != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << rem) - 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_ones() {
        let z = BitVec::zeros(130);
        assert_eq!(z.len(), 130);
        assert_eq!(z.count_ones(), 0);
        let o = BitVec::ones(130);
        assert_eq!(o.count_ones(), 130);
    }

    #[test]
    fn set_get_clear_flip() {
        let mut v = BitVec::zeros(70);
        v.set(0);
        v.set(63);
        v.set(64);
        v.set(69);
        assert!(v.get(0) && v.get(63) && v.get(64) && v.get(69));
        assert!(!v.get(1));
        assert_eq!(v.count_ones(), 4);
        v.clear(63);
        assert!(!v.get(63));
        v.flip(63);
        assert!(v.get(63));
        v.assign(63, false);
        assert!(!v.get(63));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn get_out_of_range_panics() {
        let v = BitVec::zeros(8);
        v.get(8);
    }

    #[test]
    fn from_positions_and_iter_ones() {
        let v = BitVec::from_positions(100, &[3, 64, 99]).unwrap();
        let ones: Vec<usize> = v.iter_ones().collect();
        assert_eq!(ones, vec![3, 64, 99]);
        assert!(BitVec::from_positions(10, &[10]).is_err());
    }

    #[test]
    fn set_algebra_counts() {
        let a = BitVec::from_positions(128, &[0, 1, 2, 64]).unwrap();
        let b = BitVec::from_positions(128, &[1, 2, 3, 127]).unwrap();
        assert_eq!(a.and_count(&b), 2);
        assert_eq!(a.or_count(&b), 6);
        assert_eq!(a.xor_count(&b), 4);
        assert_eq!(a.and(&b).unwrap().count_ones(), 2);
        assert_eq!(a.or(&b).unwrap().count_ones(), 6);
        assert_eq!(a.xor(&b).unwrap().count_ones(), 4);
    }

    #[test]
    fn length_mismatch_is_error() {
        let a = BitVec::zeros(10);
        let b = BitVec::zeros(11);
        assert!(a.and(&b).is_err());
        assert!(a.or(&b).is_err());
        assert!(a.xor(&b).is_err());
    }

    #[test]
    fn or_assign_accumulates() {
        let mut a = BitVec::from_positions(16, &[1]).unwrap();
        let b = BitVec::from_positions(16, &[2]).unwrap();
        a.or_assign(&b).unwrap();
        assert_eq!(a.iter_ones().collect::<Vec<_>>(), vec![1, 2]);
    }

    #[test]
    fn sample_projects_bits() {
        let v = BitVec::from_positions(32, &[1, 5, 9]).unwrap();
        let s = v.sample(&[1, 2, 5, 30]).unwrap();
        assert_eq!(s.len(), 4);
        assert!(s.get(0) && !s.get(1) && s.get(2) && !s.get(3));
        assert!(v.sample(&[32]).is_err());
    }

    #[test]
    fn xor_fold_halves() {
        let v = BitVec::from_positions(8, &[0, 4, 1]).unwrap();
        // halves: [1,1,0,0] and [1,0,0,0] -> fold [0,1,0,0]
        let f = v.xor_fold();
        assert_eq!(f.len(), 4);
        assert!(!f.get(0) && f.get(1) && !f.get(2) && !f.get(3));
    }

    #[test]
    fn bytes_round_trip() {
        let v = BitVec::from_positions(20, &[0, 7, 8, 19]).unwrap();
        let bytes = v.to_bytes();
        assert_eq!(bytes.len(), 3);
        let back = BitVec::from_bytes(&bytes, 20).unwrap();
        assert_eq!(v, back);
        assert!(BitVec::from_bytes(&bytes, 32).is_err());
        // bits beyond len rejected
        assert!(BitVec::from_bytes(&[0xFF, 0xFF, 0xFF], 20).is_err());
    }

    #[test]
    fn permute_round_trip() {
        let v = BitVec::from_positions(6, &[0, 3]).unwrap();
        let perm = [5, 4, 3, 2, 1, 0];
        let p = v.permute(&perm).unwrap();
        assert_eq!(p.iter_ones().collect::<Vec<_>>(), vec![2, 5]);
        let back = p.permute(&perm).unwrap();
        assert_eq!(back, v);
        assert!(v.permute(&[0, 1]).is_err());
    }

    #[test]
    fn fill_ratio() {
        let v = BitVec::from_positions(10, &[0, 1, 2, 3, 4]).unwrap();
        assert!((v.fill_ratio() - 0.5).abs() < 1e-12);
        assert_eq!(BitVec::zeros(0).fill_ratio(), 0.0);
    }

    #[test]
    fn words_round_trip_and_reject_tail_bits() {
        let v = BitVec::from_positions(100, &[0, 63, 64, 99]).unwrap();
        assert_eq!(v.as_words().len(), BitVec::words_for_len(100));
        let back = BitVec::from_words(v.as_words().to_vec(), 100).unwrap();
        assert_eq!(back, v);
        // Wrong word count.
        assert!(BitVec::from_words(vec![0u64; 3], 100).is_err());
        // A bit set beyond `len` violates the tail invariant.
        let mut words = v.as_words().to_vec();
        words[1] |= 1u64 << 40; // bit 104 of a 100-bit vector
        assert!(BitVec::from_words(words, 100).is_err());
        // Word-aligned lengths have no tail to validate.
        let w = BitVec::ones(128);
        assert_eq!(BitVec::from_words(w.as_words().to_vec(), 128).unwrap(), w);
    }

    #[test]
    fn ones_respects_tail_mask() {
        let o = BitVec::ones(65);
        assert_eq!(o.count_ones(), 65);
        let bytes = o.to_bytes();
        let back = BitVec::from_bytes(&bytes, 65).unwrap();
        assert_eq!(back.count_ones(), 65);
    }
}
