//! Error type shared across the PPRL workspace.

use std::fmt;

/// Errors produced by the PPRL toolkit.
///
/// Library code never panics on bad user input; every fallible public entry
/// point returns `Result<_, PprlError>`. Panics are reserved for violated
/// internal invariants (programmer errors).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PprlError {
    /// A parameter was outside its documented domain.
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// Human-readable description of the violation.
        reason: String,
    },
    /// Two inputs that must agree in shape (length, schema, …) did not.
    ShapeMismatch {
        /// What was expected.
        expected: String,
        /// What was provided.
        actual: String,
    },
    /// A referenced field does not exist in the schema.
    UnknownField(String),
    /// A value could not be parsed or converted to the requested type.
    ValueError(String),
    /// A cryptographic operation failed (bad key, ciphertext out of range, …).
    CryptoError(String),
    /// A protocol step was invoked out of order or with a missing message.
    ProtocolError(String),
    /// The operation is not supported for the given configuration.
    Unsupported(String),
    /// A transport-level failure: corrupted frame, malformed wire data, or
    /// a send to/through a crashed party that could not be routed.
    Transport(String),
    /// The peer speaks a different wire-protocol version. Distinct from
    /// [`PprlError::Transport`] so a mixed-version deployment (say an old
    /// shard behind a new coordinator) fails with a clear upgrade message
    /// instead of a checksum or decode error.
    UnsupportedVersion {
        /// Version byte found in the frame.
        found: u8,
        /// Version this peer speaks.
        expected: u8,
    },
    /// A send (or an entire exchange) exceeded its deadline even after all
    /// configured retries.
    Timeout(String),
    /// A multi-shard write landed on some shards but not others. The
    /// shards that acknowledged have durably applied their sub-batch —
    /// shard stores are append-only with no id-level dedup — so
    /// retrying the *whole* batch would duplicate those records. Retry
    /// only the records routed to `failed_shards`.
    PartialWrite {
        /// Records acknowledged by the shards that succeeded.
        applied: u32,
        /// Shard indices whose sub-batches were acknowledged.
        applied_shards: Vec<u32>,
        /// Shard indices whose sub-batches failed. A shard that failed
        /// with a timeout may still apply its sub-batch late (it was
        /// slow, not provably dead) — verify before resending to it.
        failed_shards: Vec<u32>,
        /// The first underlying shard error, rendered.
        cause: String,
    },
    /// A persistent-store failure: an I/O error, or a segment/manifest/log
    /// file that is corrupted, truncated, or structurally malformed.
    Storage(String),
    /// A session-security failure: a failed or malformed handshake, an
    /// unknown identity, a wrong party key, a frame whose MAC does not
    /// verify, or a replayed/stale sequence number. Distinct from
    /// [`PprlError::Transport`] (accidental corruption) because the
    /// correct reaction differs: transport errors may be retried,
    /// authentication failures mean the peer or its key is wrong.
    Auth(String),
    /// An authenticated identity asked for a tenant namespace it is not
    /// mapped to. The request was *understood* and the caller's key was
    /// valid — this is an authorisation boundary, not a garbled frame,
    /// so it names both sides for the operator.
    CrossTenant {
        /// The authenticated client identity.
        identity: String,
        /// The tenant namespace the client requested.
        requested: String,
    },
}

impl PprlError {
    /// Convenience constructor for [`PprlError::InvalidParameter`].
    pub fn invalid(name: &'static str, reason: impl Into<String>) -> Self {
        PprlError::InvalidParameter {
            name,
            reason: reason.into(),
        }
    }

    /// Convenience constructor for [`PprlError::ShapeMismatch`].
    pub fn shape(expected: impl Into<String>, actual: impl Into<String>) -> Self {
        PprlError::ShapeMismatch {
            expected: expected.into(),
            actual: actual.into(),
        }
    }
}

impl fmt::Display for PprlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PprlError::InvalidParameter { name, reason } => {
                write!(f, "invalid parameter `{name}`: {reason}")
            }
            PprlError::ShapeMismatch { expected, actual } => {
                write!(f, "shape mismatch: expected {expected}, got {actual}")
            }
            PprlError::UnknownField(name) => write!(f, "unknown field `{name}`"),
            PprlError::ValueError(msg) => write!(f, "value error: {msg}"),
            PprlError::CryptoError(msg) => write!(f, "crypto error: {msg}"),
            PprlError::ProtocolError(msg) => write!(f, "protocol error: {msg}"),
            PprlError::Unsupported(msg) => write!(f, "unsupported operation: {msg}"),
            PprlError::Transport(msg) => write!(f, "transport error: {msg}"),
            PprlError::UnsupportedVersion { found, expected } => write!(
                f,
                "unsupported wire protocol version {found} (this peer speaks \
                 version {expected}); upgrade the older side"
            ),
            PprlError::Timeout(msg) => write!(f, "timeout: {msg}"),
            PprlError::PartialWrite {
                applied,
                applied_shards,
                failed_shards,
                cause,
            } => write!(
                f,
                "partial write: {applied} record(s) applied on shard(s) \
                 {applied_shards:?}, failed on shard(s) {failed_shards:?} \
                 ({cause}); retrying the whole batch would duplicate the \
                 applied records — retry only records routed to the failed \
                 shards"
            ),
            PprlError::Storage(msg) => write!(f, "storage error: {msg}"),
            PprlError::Auth(msg) => write!(f, "authentication error: {msg}"),
            PprlError::CrossTenant {
                identity,
                requested,
            } => write!(
                f,
                "cross-tenant access denied: identity `{identity}` is not \
                 authorised for tenant `{requested}`"
            ),
        }
    }
}

impl std::error::Error for PprlError {}

/// Workspace-wide result alias.
pub type Result<T> = std::result::Result<T, PprlError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_invalid_parameter() {
        let e = PprlError::invalid("epsilon", "must be positive");
        assert_eq!(
            e.to_string(),
            "invalid parameter `epsilon`: must be positive"
        );
    }

    #[test]
    fn display_shape_mismatch() {
        let e = PprlError::shape("1000 bits", "512 bits");
        assert_eq!(
            e.to_string(),
            "shape mismatch: expected 1000 bits, got 512 bits"
        );
    }

    #[test]
    fn display_other_variants() {
        assert_eq!(
            PprlError::UnknownField("surname".into()).to_string(),
            "unknown field `surname`"
        );
        assert!(PprlError::ValueError("bad date".into())
            .to_string()
            .contains("bad date"));
        assert!(PprlError::CryptoError("x".into())
            .to_string()
            .starts_with("crypto"));
        assert!(PprlError::ProtocolError("x".into())
            .to_string()
            .starts_with("protocol"));
        assert!(PprlError::Unsupported("x".into())
            .to_string()
            .starts_with("unsupported"));
        assert!(PprlError::Transport("x".into())
            .to_string()
            .starts_with("transport"));
        assert!(PprlError::Timeout("x".into())
            .to_string()
            .starts_with("timeout"));
        assert!(PprlError::Storage("x".into())
            .to_string()
            .starts_with("storage"));
        let v = PprlError::UnsupportedVersion {
            found: 1,
            expected: 2,
        }
        .to_string();
        assert!(v.contains("version 1") || v.contains("version 2"), "{v}");
        assert!(v.starts_with("unsupported wire protocol version"));
    }

    #[test]
    fn display_partial_write() {
        let e = PprlError::PartialWrite {
            applied: 20,
            applied_shards: vec![0, 2],
            failed_shards: vec![1],
            cause: "transport error: connection reset".into(),
        };
        let msg = e.to_string();
        assert!(msg.starts_with("partial write"), "{msg}");
        assert!(msg.contains("20 record(s)"), "{msg}");
        assert!(msg.contains("[0, 2]"), "{msg}");
        assert!(msg.contains("[1]"), "{msg}");
        assert!(msg.contains("duplicate"), "{msg}");
        assert!(msg.contains("connection reset"), "{msg}");
    }

    #[test]
    fn display_auth_and_cross_tenant() {
        assert!(PprlError::Auth("frame MAC mismatch".into())
            .to_string()
            .starts_with("authentication error"));
        let e = PprlError::CrossTenant {
            identity: "alice".into(),
            requested: "org-b".into(),
        };
        let msg = e.to_string();
        assert!(msg.starts_with("cross-tenant access denied"), "{msg}");
        assert!(msg.contains("`alice`"), "{msg}");
        assert!(msg.contains("`org-b`"), "{msg}");
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&PprlError::UnknownField("x".into()));
    }
}
