//! # pprl-core
//!
//! Foundation types for the PPRL (privacy-preserving record linkage)
//! workspace: errors, typed values and dates, schemas, records/datasets,
//! q-gram tokenisation, bit vectors, phonetic codes, string normalisation,
//! a small deterministic PRNG, the [`candidate::CandidateSource`]
//! abstraction every blocking engine and index backend implements, and a
//! minimal JSON writer shared by the CLI, pipeline and bench harness.
//!
//! Everything here is dependency-free and shared by every other crate in the
//! workspace. See the workspace `DESIGN.md` for the system inventory.

#![forbid(unsafe_code)]
// `!(x > 0.0)`-style comparisons are deliberate: they reject NaN, which
// `x <= 0.0` would accept.
#![allow(clippy::neg_cmp_op_on_partial_ord)]
#![warn(missing_docs)]

pub mod bitvec;
pub mod candidate;
pub mod csv;
pub mod error;
pub mod json;
pub mod normalize;
pub mod phonetic;
pub mod qgram;
pub mod record;
pub mod rng;
pub mod schema;
pub mod value;

pub use bitvec::BitVec;
pub use candidate::{CandidatePair, CandidateSource, Probes, SourceStats};
pub use error::{PprlError, Result};
pub use json::Json;
pub use record::{Dataset, PartyId, Record, RecordRef};
pub use rng::SplitMix64;
pub use schema::{FieldDef, FieldType, Schema};
pub use value::{Date, Value};
