//! A minimal JSON value and serialiser (std-only; the build environment
//! cannot fetch serde). Shared by the CLI (`--json` output), the pipeline
//! (machine-readable linkage stats) and the experiment harness: objects,
//! arrays, strings, finite numbers and booleans, with correct string
//! escaping.

use std::fmt::Write;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number (non-finite values serialise as `null`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// A string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// A number value.
    pub fn num(n: impl Into<f64>) -> Json {
        Json::Num(n.into())
    }

    /// A number if `s` parses as one (what table cells mostly hold),
    /// otherwise the string itself.
    pub fn cell(s: &str) -> Json {
        match s.parse::<f64>() {
            Ok(n) if n.is_finite() => Json::Num(n),
            _ => Json::str(s),
        }
    }

    /// Serialises with 2-space indentation.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if n.is_finite() {
                    if *n == n.trunc() && n.abs() < 1e15 {
                        write!(out, "{}", *n as i64).expect("write to string");
                    } else {
                        write!(out, "{n}").expect("write to string");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    indent(out, depth + 1);
                    item.write(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    indent(out, depth + 1);
                    write_escaped(out, key);
                    out.push_str(": ");
                    value.write(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push('}');
            }
        }
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                write!(out, "\\u{:04x}", c as u32).expect("write to string");
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_structure() {
        let v = Json::Obj(vec![
            ("name".into(), Json::str("exp")),
            ("n".into(), Json::num(3.0)),
            ("frac".into(), Json::Num(0.25)),
            ("ok".into(), Json::Bool(true)),
            ("none".into(), Json::Null),
            (
                "rows".into(),
                Json::Arr(vec![Json::num(1.0), Json::str("a")]),
            ),
        ]);
        let s = v.render();
        assert!(s.contains("\"name\": \"exp\""));
        assert!(s.contains("\"n\": 3"));
        assert!(s.contains("\"frac\": 0.25"));
        assert!(s.contains("\"ok\": true"));
        assert!(s.contains("\"none\": null"));
        assert!(s.ends_with("}\n"));
    }

    #[test]
    fn escapes_strings() {
        let s = Json::str("a\"b\\c\nd\u{1}").render();
        assert_eq!(s, "\"a\\\"b\\\\c\\nd\\u0001\"\n");
    }

    #[test]
    fn cell_parses_numbers() {
        assert_eq!(Json::cell("42"), Json::Num(42.0));
        assert_eq!(Json::cell("0.125"), Json::Num(0.125));
        assert_eq!(Json::cell("12/20"), Json::str("12/20"));
        assert_eq!(Json::cell("NaN"), Json::str("NaN"));
    }

    #[test]
    fn non_finite_numbers_become_null() {
        assert_eq!(Json::Num(f64::INFINITY).render(), "null\n");
    }

    #[test]
    fn empty_collections() {
        assert_eq!(Json::Arr(vec![]).render(), "[]\n");
        assert_eq!(Json::Obj(vec![]).render(), "{}\n");
    }
}
