//! Typed field values for quasi-identifiers.
//!
//! The paper's linkage-schema dimension (§3.1) lists the QID types used in
//! practice: strings (name, address), numerics (age), categoricals (gender)
//! and dates (date of birth). [`Value`] is the dynamically-typed cell, and
//! [`Date`] a dependency-free calendar date with day-arithmetic (needed by
//! numeric/date comparators and neighbourhood encodings).

use crate::error::{PprlError, Result};
use std::fmt;

/// A calendar date in the proleptic Gregorian calendar.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Date {
    year: i32,
    month: u8,
    day: u8,
}

const DAYS_IN_MONTH: [u8; 12] = [31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31];

impl Date {
    /// Constructs a date, validating month/day ranges and leap years.
    pub fn new(year: i32, month: u8, day: u8) -> Result<Self> {
        if !(1..=12).contains(&month) {
            return Err(PprlError::ValueError(format!("month {month} out of range")));
        }
        let max_day = Self::days_in_month(year, month);
        if day == 0 || day > max_day {
            return Err(PprlError::ValueError(format!(
                "day {day} out of range for {year}-{month:02}"
            )));
        }
        Ok(Date { year, month, day })
    }

    /// Parses `YYYY-MM-DD` or `YYYYMMDD`.
    pub fn parse(s: &str) -> Result<Self> {
        let digits: String = s.chars().filter(|c| c.is_ascii_digit()).collect();
        if digits.len() != 8 || s.chars().any(|c| !c.is_ascii_digit() && c != '-') {
            return Err(PprlError::ValueError(format!("cannot parse date `{s}`")));
        }
        let year: i32 = digits[0..4]
            .parse()
            .map_err(|_| PprlError::ValueError(format!("bad year in `{s}`")))?;
        let month: u8 = digits[4..6]
            .parse()
            .map_err(|_| PprlError::ValueError(format!("bad month in `{s}`")))?;
        let day: u8 = digits[6..8]
            .parse()
            .map_err(|_| PprlError::ValueError(format!("bad day in `{s}`")))?;
        Date::new(year, month, day)
    }

    /// Year component.
    pub fn year(&self) -> i32 {
        self.year
    }
    /// Month component (1–12).
    pub fn month(&self) -> u8 {
        self.month
    }
    /// Day component (1–31).
    pub fn day(&self) -> u8 {
        self.day
    }

    /// True for Gregorian leap years.
    pub fn is_leap_year(year: i32) -> bool {
        (year % 4 == 0 && year % 100 != 0) || year % 400 == 0
    }

    /// Number of days in the given month of the given year.
    pub fn days_in_month(year: i32, month: u8) -> u8 {
        if month == 2 && Self::is_leap_year(year) {
            29
        } else {
            DAYS_IN_MONTH[(month - 1) as usize]
        }
    }

    /// Days since 1970-01-01 (negative before the epoch).
    ///
    /// Uses the standard civil-from-days algorithm (Howard Hinnant).
    pub fn to_epoch_days(&self) -> i64 {
        let y = if self.month <= 2 {
            self.year - 1
        } else {
            self.year
        } as i64;
        let era = if y >= 0 { y } else { y - 399 } / 400;
        let yoe = y - era * 400; // [0, 399]
        let m = self.month as i64;
        let d = self.day as i64;
        let doy = (153 * (m + if m > 2 { -3 } else { 9 }) + 2) / 5 + d - 1;
        let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
        era * 146097 + doe - 719468
    }

    /// Inverse of [`Date::to_epoch_days`].
    pub fn from_epoch_days(days: i64) -> Self {
        let z = days + 719468;
        let era = if z >= 0 { z } else { z - 146096 } / 146097;
        let doe = z - era * 146097; // [0, 146096]
        let yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
        let y = yoe + era * 400;
        let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
        let mp = (5 * doy + 2) / 153;
        let d = (doy - (153 * mp + 2) / 5 + 1) as u8;
        let m = (if mp < 10 { mp + 3 } else { mp - 9 }) as u8;
        let year = (y + if m <= 2 { 1 } else { 0 }) as i32;
        Date {
            year,
            month: m,
            day: d,
        }
    }

    /// Absolute difference in days between two dates.
    pub fn days_between(&self, other: &Date) -> i64 {
        (self.to_epoch_days() - other.to_epoch_days()).abs()
    }
}

impl fmt::Display for Date {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:04}-{:02}-{:02}", self.year, self.month, self.day)
    }
}

/// A dynamically-typed QID cell value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Free-text value (name, address, …).
    Text(String),
    /// Integer value (age, house number, …).
    Integer(i64),
    /// Floating-point value (weight, income, …).
    Float(f64),
    /// Calendar date (date of birth, admission date, …).
    Date(Date),
    /// Categorical code (gender, blood type, …).
    Categorical(String),
    /// Missing / null.
    Missing,
}

impl Value {
    /// True when the value is [`Value::Missing`].
    pub fn is_missing(&self) -> bool {
        matches!(self, Value::Missing)
    }

    /// Canonical string rendering used by encoders and blockers.
    ///
    /// Missing values render to the empty string so encoders produce empty
    /// token sets rather than failing.
    pub fn as_text(&self) -> String {
        match self {
            Value::Text(s) | Value::Categorical(s) => s.clone(),
            Value::Integer(i) => i.to_string(),
            Value::Float(x) => format!("{x}"),
            Value::Date(d) => d.to_string(),
            Value::Missing => String::new(),
        }
    }

    /// Numeric view: integers, floats, and dates (as epoch days) convert;
    /// other variants return an error.
    pub fn as_f64(&self) -> Result<f64> {
        match self {
            Value::Integer(i) => Ok(*i as f64),
            Value::Float(x) => Ok(*x),
            Value::Date(d) => Ok(d.to_epoch_days() as f64),
            other => Err(PprlError::ValueError(format!(
                "value {other:?} is not numeric"
            ))),
        }
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Text(s.to_string())
    }
}
impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Text(s)
    }
}
impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Integer(i)
    }
}
impl From<f64> for Value {
    fn from(x: f64) -> Self {
        Value::Float(x)
    }
}
impl From<Date> for Value {
    fn from(d: Date) -> Self {
        Value::Date(d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn date_validation() {
        assert!(Date::new(2020, 2, 29).is_ok());
        assert!(Date::new(2021, 2, 29).is_err());
        assert!(Date::new(1900, 2, 29).is_err()); // 1900 not a leap year
        assert!(Date::new(2000, 2, 29).is_ok()); // 2000 is
        assert!(Date::new(2020, 13, 1).is_err());
        assert!(Date::new(2020, 0, 1).is_err());
        assert!(Date::new(2020, 4, 31).is_err());
        assert!(Date::new(2020, 4, 0).is_err());
    }

    #[test]
    fn date_parse_formats() {
        assert_eq!(
            Date::parse("1987-06-05").unwrap(),
            Date::new(1987, 6, 5).unwrap()
        );
        assert_eq!(
            Date::parse("19870605").unwrap(),
            Date::new(1987, 6, 5).unwrap()
        );
        assert!(Date::parse("1987/06/05").is_err());
        assert!(Date::parse("87-06-05").is_err());
        assert!(Date::parse("").is_err());
    }

    #[test]
    fn epoch_day_round_trip() {
        for &(y, m, d) in &[
            (1970, 1, 1),
            (1969, 12, 31),
            (2000, 2, 29),
            (1900, 3, 1),
            (2026, 7, 5),
            (1850, 11, 17),
        ] {
            let date = Date::new(y, m, d).unwrap();
            assert_eq!(Date::from_epoch_days(date.to_epoch_days()), date);
        }
        assert_eq!(Date::new(1970, 1, 1).unwrap().to_epoch_days(), 0);
        assert_eq!(Date::new(1970, 1, 2).unwrap().to_epoch_days(), 1);
    }

    #[test]
    fn days_between_symmetric() {
        let a = Date::new(2020, 1, 1).unwrap();
        let b = Date::new(2020, 3, 1).unwrap();
        assert_eq!(a.days_between(&b), 60); // leap year: 31 + 29
        assert_eq!(b.days_between(&a), 60);
    }

    #[test]
    fn date_display() {
        assert_eq!(Date::new(1987, 6, 5).unwrap().to_string(), "1987-06-05");
    }

    #[test]
    fn date_ordering() {
        assert!(Date::new(1987, 6, 5).unwrap() < Date::new(1987, 6, 6).unwrap());
        assert!(Date::new(1987, 6, 5).unwrap() < Date::new(1988, 1, 1).unwrap());
    }

    #[test]
    fn value_as_text() {
        assert_eq!(Value::from("Anna").as_text(), "Anna");
        assert_eq!(Value::from(42i64).as_text(), "42");
        assert_eq!(Value::Missing.as_text(), "");
        assert_eq!(
            Value::Date(Date::new(1987, 6, 5).unwrap()).as_text(),
            "1987-06-05"
        );
        assert_eq!(Value::Categorical("f".into()).as_text(), "f");
    }

    #[test]
    fn value_as_f64() {
        assert_eq!(Value::from(42i64).as_f64().unwrap(), 42.0);
        assert_eq!(Value::from(1.5f64).as_f64().unwrap(), 1.5);
        assert_eq!(
            Value::Date(Date::new(1970, 1, 2).unwrap())
                .as_f64()
                .unwrap(),
            1.0
        );
        assert!(Value::from("x").as_f64().is_err());
        assert!(Value::Missing.as_f64().is_err());
    }

    #[test]
    fn missing_detection() {
        assert!(Value::Missing.is_missing());
        assert!(!Value::from("").is_missing());
    }
}
