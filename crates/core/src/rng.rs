//! A small deterministic PRNG used inside library algorithms.
//!
//! Core algorithms (salting, permutation generation, LSH position sampling)
//! need reproducible randomness derived from a caller-supplied seed, but the
//! core crate must not depend on external crates. [`SplitMix64`] is the
//! standard 64-bit mixer recommended for seeding; it is more than adequate
//! for non-adversarial structural randomness. Cryptographic randomness is
//! *not* provided here — key generation lives in `pprl-crypto`.

/// SplitMix64 deterministic pseudo-random generator.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)` via Lemire's multiply-shift rejection.
    ///
    /// # Panics
    /// Panics if `bound == 0`.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Rejection sampling to remove modulo bias.
        let threshold = bound.wrapping_neg() % bound;
        loop {
            let r = self.next_u64();
            let (hi, lo) = {
                let wide = (r as u128) * (bound as u128);
                ((wide >> 64) as u64, wide as u64)
            };
            if lo >= threshold {
                return hi;
            }
        }
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli draw with probability `p` (clamped to `[0,1]`).
    pub fn next_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p.clamp(0.0, 1.0)
    }

    /// A Fisher–Yates shuffled permutation of `0..n`.
    pub fn permutation(&mut self, n: usize) -> Vec<usize> {
        let mut perm: Vec<usize> = (0..n).collect();
        for i in (1..n).rev() {
            let j = self.next_below(i as u64 + 1) as usize;
            perm.swap(i, j);
        }
        perm
    }

    /// Samples `k` distinct indices from `0..n` (Floyd's algorithm), sorted.
    ///
    /// # Panics
    /// Panics if `k > n`.
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        assert!(k <= n, "cannot sample {k} from {n}");
        let mut chosen = std::collections::BTreeSet::new();
        for j in (n - k)..n {
            let t = self.next_below(j as u64 + 1) as usize;
            if !chosen.insert(t) {
                chosen.insert(j);
            }
        }
        chosen.into_iter().collect()
    }

    /// Derives an independent child generator (for per-field salts etc.).
    pub fn fork(&mut self, stream: u64) -> SplitMix64 {
        SplitMix64::new(self.next_u64() ^ stream.wrapping_mul(0xA24BAED4963EE407))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn next_below_in_range() {
        let mut r = SplitMix64::new(7);
        for _ in 0..1000 {
            assert!(r.next_below(10) < 10);
        }
    }

    #[test]
    fn next_below_roughly_uniform() {
        let mut r = SplitMix64::new(3);
        let mut counts = [0usize; 4];
        for _ in 0..40_000 {
            counts[r.next_below(4) as usize] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "count {c} far from uniform");
        }
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut r = SplitMix64::new(9);
        for _ in 0..1000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn bernoulli_extremes() {
        let mut r = SplitMix64::new(11);
        assert!(!r.next_bool(0.0));
        assert!(r.next_bool(1.0));
    }

    #[test]
    fn permutation_is_permutation() {
        let mut r = SplitMix64::new(5);
        let p = r.permutation(100);
        let mut sorted = p.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn sample_indices_distinct_sorted() {
        let mut r = SplitMix64::new(13);
        let s = r.sample_indices(50, 10);
        assert_eq!(s.len(), 10);
        assert!(s.windows(2).all(|w| w[0] < w[1]));
        assert!(s.iter().all(|&i| i < 50));
        // full sample
        assert_eq!(r.sample_indices(5, 5), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn fork_produces_independent_streams() {
        let mut root = SplitMix64::new(1);
        let mut a = root.fork(0);
        let mut b = root.fork(1);
        assert_ne!(a.next_u64(), b.next_u64());
    }
}
