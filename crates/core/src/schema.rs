//! Linkage schemas: field definitions and QID selection.
//!
//! The linkage-schema dimension of the paper (§3.1) covers feature selection
//! and schema matching: the parties must agree on a common set of
//! quasi-identifier fields before encoding. [`Schema`] describes the fields
//! of a dataset; [`Schema::common_qids`] performs the (trivially
//! name/type-based) schema matching between two parties' schemas.

use crate::error::{PprlError, Result};

/// Data type of a field.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FieldType {
    /// Free text (names, addresses).
    Text,
    /// Integers (age, house number).
    Integer,
    /// Floating point numbers.
    Float,
    /// Calendar dates.
    Date,
    /// Closed-vocabulary categorical codes.
    Categorical,
}

/// One field of a linkage schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FieldDef {
    /// Field name; unique within a schema.
    pub name: String,
    /// Data type.
    pub field_type: FieldType,
    /// Whether the field is a quasi-identifier usable for linkage.
    pub is_qid: bool,
}

impl FieldDef {
    /// Creates a QID field.
    pub fn qid(name: impl Into<String>, field_type: FieldType) -> Self {
        FieldDef {
            name: name.into(),
            field_type,
            is_qid: true,
        }
    }

    /// Creates a non-QID payload field (carried through, never encoded).
    pub fn payload(name: impl Into<String>, field_type: FieldType) -> Self {
        FieldDef {
            name: name.into(),
            field_type,
            is_qid: false,
        }
    }
}

/// An ordered collection of field definitions.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Schema {
    fields: Vec<FieldDef>,
}

impl Schema {
    /// Builds a schema, rejecting duplicate field names.
    pub fn new(fields: Vec<FieldDef>) -> Result<Self> {
        for (i, f) in fields.iter().enumerate() {
            if fields[..i].iter().any(|g| g.name == f.name) {
                return Err(PprlError::invalid(
                    "fields",
                    format!("duplicate field name `{}`", f.name),
                ));
            }
        }
        Ok(Schema { fields })
    }

    /// The standard person schema used throughout the examples and tests:
    /// first name, last name, street address, city, postcode (text QIDs),
    /// date of birth (date QID), gender (categorical QID), age (integer QID).
    pub fn person() -> Self {
        Schema::new(vec![
            FieldDef::qid("first_name", FieldType::Text),
            FieldDef::qid("last_name", FieldType::Text),
            FieldDef::qid("street", FieldType::Text),
            FieldDef::qid("city", FieldType::Text),
            FieldDef::qid("postcode", FieldType::Text),
            FieldDef::qid("dob", FieldType::Date),
            FieldDef::qid("gender", FieldType::Categorical),
            FieldDef::qid("age", FieldType::Integer),
        ])
        .expect("person schema has unique names")
    }

    /// Number of fields.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// True if the schema has no fields.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// All fields in declaration order.
    pub fn fields(&self) -> &[FieldDef] {
        &self.fields
    }

    /// Index of a field by name.
    pub fn index_of(&self, name: &str) -> Result<usize> {
        self.fields
            .iter()
            .position(|f| f.name == name)
            .ok_or_else(|| PprlError::UnknownField(name.to_string()))
    }

    /// Field definition by name.
    pub fn field(&self, name: &str) -> Result<&FieldDef> {
        Ok(&self.fields[self.index_of(name)?])
    }

    /// Names of all QID fields, in order.
    pub fn qid_names(&self) -> Vec<&str> {
        self.fields
            .iter()
            .filter(|f| f.is_qid)
            .map(|f| f.name.as_str())
            .collect()
    }

    /// Schema matching: fields present in both schemas with identical name
    /// and type, QID in both. This is the agreement step two database owners
    /// run before a linkage protocol.
    pub fn common_qids(&self, other: &Schema) -> Vec<String> {
        self.fields
            .iter()
            .filter(|f| f.is_qid)
            .filter(|f| {
                other
                    .fields
                    .iter()
                    .any(|g| g.is_qid && g.name == f.name && g.field_type == f.field_type)
            })
            .map(|f| f.name.clone())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duplicate_names_rejected() {
        let r = Schema::new(vec![
            FieldDef::qid("a", FieldType::Text),
            FieldDef::qid("a", FieldType::Integer),
        ]);
        assert!(r.is_err());
    }

    #[test]
    fn person_schema_shape() {
        let s = Schema::person();
        assert_eq!(s.len(), 8);
        assert_eq!(s.qid_names().len(), 8);
        assert_eq!(s.index_of("dob").unwrap(), 5);
        assert!(s.index_of("nope").is_err());
        assert_eq!(
            s.field("gender").unwrap().field_type,
            FieldType::Categorical
        );
    }

    #[test]
    fn common_qids_matches_name_and_type() {
        let a = Schema::new(vec![
            FieldDef::qid("name", FieldType::Text),
            FieldDef::qid("age", FieldType::Integer),
            FieldDef::payload("notes", FieldType::Text),
        ])
        .unwrap();
        let b = Schema::new(vec![
            FieldDef::qid("name", FieldType::Text),
            FieldDef::qid("age", FieldType::Float), // type differs
            FieldDef::qid("notes", FieldType::Text), // payload on `a` side
        ])
        .unwrap();
        assert_eq!(a.common_qids(&b), vec!["name".to_string()]);
    }

    #[test]
    fn empty_schema() {
        let s = Schema::default();
        assert!(s.is_empty());
        assert!(s.qid_names().is_empty());
    }
}
