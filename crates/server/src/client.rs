//! A blocking client for the `pprl-server` wire protocol.

use crate::wire::{read_payload, write_payload, Incoming, Request, Response, StatsReport};
use pprl_core::bitvec::BitVec;
use pprl_core::error::{PprlError, Result};
use pprl_index::query::Hit;
use std::net::TcpStream;
use std::time::Duration;

/// A connected client. One request is in flight at a time; the
/// connection persists across requests.
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connects to `addr` (e.g. `"127.0.0.1:7878"`).
    pub fn connect(addr: &str) -> Result<Client> {
        let stream = TcpStream::connect(addr)
            .map_err(|e| PprlError::Transport(format!("connecting to {addr}: {e}")))?;
        stream
            .set_nodelay(true)
            .map_err(|e| PprlError::Transport(format!("configuring socket: {e}")))?;
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .map_err(|e| PprlError::Transport(format!("configuring socket: {e}")))?;
        Ok(Client { stream })
    }

    /// Connects, retrying up to `attempts` times with `delay` between
    /// tries — for racing a server that is still binding its port.
    pub fn connect_retry(addr: &str, attempts: u32, delay: Duration) -> Result<Client> {
        let mut last = PprlError::Transport(format!("no attempt made connecting to {addr}"));
        for _ in 0..attempts.max(1) {
            match Client::connect(addr) {
                Ok(c) => return Ok(c),
                Err(e) => last = e,
            }
            std::thread::sleep(delay);
        }
        Err(last)
    }

    /// Sends one request and reads one response. `Busy` and
    /// `ServerError` replies are surfaced as typed errors here so the
    /// typed helpers below only see their success shape.
    pub fn call(&mut self, request: &Request) -> Result<Response> {
        write_payload(&mut self.stream, &request.encode())?;
        let deadline = std::time::Instant::now() + Duration::from_secs(60);
        loop {
            if std::time::Instant::now() >= deadline {
                return Err(PprlError::Timeout(
                    "no response from server within 60 s".into(),
                ));
            }
            match read_payload(&mut self.stream)? {
                Incoming::Payload(p) => {
                    return match Response::decode(&p)? {
                        Response::Busy { retry_after_ms } => Err(PprlError::Timeout(format!(
                            "server busy; retry after {retry_after_ms} ms"
                        ))),
                        Response::ServerError { message } => Err(PprlError::ProtocolError(
                            format!("server rejected request: {message}"),
                        )),
                        other => Ok(other),
                    };
                }
                Incoming::TimedOut => continue, // server still working
                Incoming::Eof => {
                    return Err(PprlError::Transport(
                        "server closed the connection before responding".into(),
                    ))
                }
            }
        }
    }

    fn unexpected(got: &Response) -> PprlError {
        PprlError::Transport(format!("unexpected response type: {got:?}"))
    }

    /// Top-k Dice query for one filter.
    pub fn query(&mut self, filter: &BitVec, k: usize) -> Result<Vec<Hit>> {
        let resp = self.call(&Request::Query {
            filter: filter.clone(),
            k: k as u32,
        })?;
        match resp {
            Response::Hits(hits) => Ok(hits),
            other => Err(Self::unexpected(&other)),
        }
    }

    /// Batch link: per-probe top-k hits at or above `min_score`.
    pub fn link(&mut self, probes: &[BitVec], k: usize, min_score: f64) -> Result<Vec<Vec<Hit>>> {
        let resp = self.call(&Request::Link {
            probes: probes.to_vec(),
            k: k as u32,
            min_score,
        })?;
        match resp {
            Response::LinkHits(hits) => Ok(hits),
            other => Err(Self::unexpected(&other)),
        }
    }

    /// Appends records; returns `(count, new generation)`.
    pub fn insert(&mut self, records: &[(u64, BitVec)]) -> Result<(u32, u64)> {
        let resp = self.call(&Request::Insert {
            records: records.to_vec(),
        })?;
        match resp {
            Response::Inserted { count, generation } => Ok((count, generation)),
            other => Err(Self::unexpected(&other)),
        }
    }

    /// Fetches the server's stats surface.
    pub fn stats(&mut self) -> Result<StatsReport> {
        match self.call(&Request::Stats)? {
            Response::Stats(s) => Ok(s),
            other => Err(Self::unexpected(&other)),
        }
    }

    /// Asks the server to shut down; resolves once `Bye` arrives.
    pub fn shutdown(&mut self) -> Result<()> {
        match self.call(&Request::Shutdown)? {
            Response::Bye => Ok(()),
            other => Err(Self::unexpected(&other)),
        }
    }
}
