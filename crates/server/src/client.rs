//! A blocking client for the `pprl-server` wire protocol, speaking
//! either plaintext wire v3 or an authenticated wire v4 session.

use crate::wire::{read_payload, write_payload, Incoming, Request, Response, StatsReport};
use pprl_core::bitvec::BitVec;
use pprl_core::error::{PprlError, Result};
use pprl_core::rng::SplitMix64;
use pprl_index::query::Hit;
use pprl_session::channel::{IncomingRef, SecureChannel};
use pprl_session::handshake::{client_handshake, ClientAuth, HandshakeOutcome};
use pprl_session::keys::entropy_rng;
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// Ceiling on one `Busy` backoff sleep, in milliseconds.
const MAX_BACKOFF_MS: u64 = 2000;

/// Seeds the backoff jitter so concurrent clients rejected by the same
/// burst do not retry in lockstep: a hash of the address mixed with
/// sub-second wall-clock nanoseconds.
fn jitter_seed(addr: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in addr.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| u64::from(d.subsec_nanos()))
        .unwrap_or(0);
    h ^ nanos
}

/// A connected client. One request is in flight at a time; the
/// connection persists across requests.
///
/// With [`Client::connect_with`] and a [`ClientAuth`], every connection
/// (including reconnects after `Busy` rejections) runs the wire v4
/// handshake and all traffic travels in authenticated — optionally
/// encrypted — session frames. Without one, the client speaks plaintext
/// wire v3 exactly as before.
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
    channel: Option<SecureChannel>,
    auth: Option<ClientAuth>,
    addr: String,
    deadline: Duration,
    rng: SplitMix64,
}

impl Client {
    /// Connects to `addr` (e.g. `"127.0.0.1:7878"`) in plaintext mode.
    pub fn connect(addr: &str) -> Result<Client> {
        Client::connect_with(addr, None)
    }

    /// Connects to `addr`, authenticating with `auth` when given. The
    /// handshake absorbs pre-handshake `Busy` rejections with bounded
    /// backoff, like requests do.
    pub fn connect_with(addr: &str, auth: Option<ClientAuth>) -> Result<Client> {
        let mut rng = SplitMix64::new(jitter_seed(addr));
        let deadline = Instant::now() + Duration::from_secs(30);
        let (stream, channel) = Self::establish(addr, auth.as_ref(), &mut rng, deadline)?;
        Ok(Client {
            stream,
            channel,
            auth,
            addr: addr.to_string(),
            deadline: Duration::from_secs(60),
            rng,
        })
    }

    fn open_stream(addr: &str) -> Result<TcpStream> {
        let stream = TcpStream::connect(addr)
            .map_err(|e| PprlError::Transport(format!("connecting to {addr}: {e}")))?;
        stream
            .set_nodelay(true)
            .map_err(|e| PprlError::Transport(format!("configuring socket: {e}")))?;
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .map_err(|e| PprlError::Transport(format!("configuring socket: {e}")))?;
        Ok(stream)
    }

    /// Opens a socket and, when authenticating, completes the handshake,
    /// backing off through pre-handshake `Busy` rejections until
    /// `deadline`.
    fn establish(
        addr: &str,
        auth: Option<&ClientAuth>,
        rng: &mut SplitMix64,
        deadline: Instant,
    ) -> Result<(TcpStream, Option<SecureChannel>)> {
        let mut attempt: u32 = 0;
        loop {
            let mut stream = Self::open_stream(addr)?;
            let Some(auth) = auth else {
                return Ok((stream, None));
            };
            let mut hs_rng = entropy_rng();
            match client_handshake(&mut stream, auth, &mut hs_rng)? {
                HandshakeOutcome::Established(channel) => return Ok((stream, Some(*channel))),
                HandshakeOutcome::Busy { retry_after_ms } => {
                    attempt += 1;
                    let base = u64::from(retry_after_ms.max(1))
                        .saturating_mul(1 << (attempt - 1).min(6))
                        .min(MAX_BACKOFF_MS);
                    let wait = Duration::from_millis(base / 2 + rng.next_below(base / 2 + 1));
                    if Instant::now() + wait >= deadline {
                        return Err(PprlError::Timeout(format!(
                            "server still busy after {attempt} handshake attempts"
                        )));
                    }
                    std::thread::sleep(wait);
                }
            }
        }
    }

    /// Sets the overall per-call deadline (default 60 s): the budget one
    /// [`call`] may spend on the request, server think time, and any
    /// `Busy` backoff-and-retry cycles combined.
    ///
    /// [`call`]: Client::call
    pub fn set_deadline(&mut self, deadline: Duration) {
        self.deadline = deadline.max(Duration::from_millis(1));
    }

    /// Connects, retrying up to `attempts` times with `delay` between
    /// tries — for racing a server that is still binding its port.
    pub fn connect_retry(addr: &str, attempts: u32, delay: Duration) -> Result<Client> {
        Client::connect_retry_with(addr, None, attempts, delay)
    }

    /// [`Client::connect_retry`] with optional authentication. Auth
    /// rejections (wrong key, unknown identity, tenant mismatch) are
    /// returned immediately — retrying the same credentials cannot
    /// succeed, and hammering the handshake would only mask the real
    /// error behind a timeout.
    pub fn connect_retry_with(
        addr: &str,
        auth: Option<ClientAuth>,
        attempts: u32,
        delay: Duration,
    ) -> Result<Client> {
        let mut last = PprlError::Transport(format!("no attempt made connecting to {addr}"));
        for _ in 0..attempts.max(1) {
            match Client::connect_with(addr, auth.clone()) {
                Ok(c) => return Ok(c),
                Err(e @ (PprlError::Auth(_) | PprlError::CrossTenant { .. })) => return Err(e),
                Err(e) => last = e,
            }
            std::thread::sleep(delay);
        }
        Err(last)
    }

    /// Sends one request and reads one response, absorbing `Busy`
    /// rejections with bounded exponential backoff plus jitter until
    /// the call deadline (see [`set_deadline`]) runs out. A rejected
    /// connection was closed server-side *before* dispatch, so the
    /// request was never processed and resending after a reconnect is
    /// safe. `ServerError` replies are surfaced as typed errors here so
    /// the typed helpers below only see their success shape.
    ///
    /// [`set_deadline`]: Client::set_deadline
    pub fn call(&mut self, request: &Request) -> Result<Response> {
        let deadline = Instant::now() + self.deadline;
        let mut attempt: u32 = 0;
        loop {
            match self.call_once(request, deadline)? {
                Response::Busy { retry_after_ms } => {
                    attempt += 1;
                    let base = u64::from(retry_after_ms.max(1))
                        .saturating_mul(1 << (attempt - 1).min(6))
                        .min(MAX_BACKOFF_MS);
                    // Sleep in [base/2, base]: the random half keeps a
                    // burst of rejected clients from retrying in phase.
                    let wait = Duration::from_millis(base / 2 + self.rng.next_below(base / 2 + 1));
                    if Instant::now() + wait >= deadline {
                        return Err(PprlError::Timeout(format!(
                            "server still busy after {attempt} attempts within the \
                             {} ms deadline",
                            self.deadline.as_millis()
                        )));
                    }
                    std::thread::sleep(wait);
                    // The server closed the rejected connection; an
                    // authenticated client re-handshakes on the new one.
                    let (stream, channel) =
                        Self::establish(&self.addr, self.auth.as_ref(), &mut self.rng, deadline)?;
                    self.stream = stream;
                    self.channel = channel;
                }
                Response::ServerError { message } => {
                    return Err(PprlError::ProtocolError(format!(
                        "server rejected request: {message}"
                    )))
                }
                other => return Ok(other),
            }
        }
    }

    /// One request/response exchange on the current connection.
    fn call_once(&mut self, request: &Request, deadline: Instant) -> Result<Response> {
        let encoded = request.encode();
        match &mut self.channel {
            Some(ch) => ch.send(&mut self.stream, &encoded)?,
            None => write_payload(&mut self.stream, &encoded)?,
        }
        loop {
            if Instant::now() >= deadline {
                return Err(PprlError::Timeout(format!(
                    "no response from server within {} ms",
                    self.deadline.as_millis()
                )));
            }
            // The authenticated path decodes straight out of the
            // channel's receive buffer (no per-response copy); the
            // plaintext path keeps its owned payload.
            let incoming = match &mut self.channel {
                Some(ch) => match ch.recv_ref(&mut self.stream)? {
                    IncomingRef::Payload(p) => return Response::decode(p),
                    IncomingRef::TimedOut => Incoming::TimedOut,
                    IncomingRef::Eof => Incoming::Eof,
                },
                None => read_payload(&mut self.stream)?,
            };
            match incoming {
                Incoming::Payload(p) => return Response::decode(&p),
                Incoming::TimedOut => continue, // server still working
                Incoming::Eof => {
                    return Err(PprlError::Transport(
                        "server closed the connection before responding".into(),
                    ))
                }
            }
        }
    }

    fn unexpected(got: &Response) -> PprlError {
        PprlError::Transport(format!("unexpected response type: {got:?}"))
    }

    /// Top-k Dice query for one filter.
    pub fn query(&mut self, filter: &BitVec, k: usize) -> Result<Vec<Hit>> {
        let resp = self.call(&Request::Query {
            filter: filter.clone(),
            k: k as u32,
        })?;
        match resp {
            Response::Hits(hits) => Ok(hits),
            other => Err(Self::unexpected(&other)),
        }
    }

    /// Batch link: per-probe top-k hits at or above `min_score`.
    pub fn link(&mut self, probes: &[BitVec], k: usize, min_score: f64) -> Result<Vec<Vec<Hit>>> {
        let resp = self.call(&Request::Link {
            probes: probes.to_vec(),
            k: k as u32,
            min_score,
        })?;
        match resp {
            Response::LinkHits(hits) => Ok(hits),
            other => Err(Self::unexpected(&other)),
        }
    }

    /// Appends records; returns `(count, new generation)`.
    pub fn insert(&mut self, records: &[(u64, BitVec)]) -> Result<(u32, u64)> {
        let resp = self.call(&Request::Insert {
            records: records.to_vec(),
        })?;
        match resp {
            Response::Inserted { count, generation } => Ok((count, generation)),
            other => Err(Self::unexpected(&other)),
        }
    }

    /// Fetches the server's stats surface.
    pub fn stats(&mut self) -> Result<StatsReport> {
        match self.call(&Request::Stats)? {
            Response::Stats(s) => Ok(s),
            other => Err(Self::unexpected(&other)),
        }
    }

    /// Asks the server to shut down; resolves once `Bye` arrives.
    pub fn shutdown(&mut self) -> Result<()> {
        match self.call(&Request::Shutdown)? {
            Response::Bye => Ok(()),
            other => Err(Self::unexpected(&other)),
        }
    }
}
