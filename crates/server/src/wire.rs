//! The `pprl-server` wire protocol: framed, checksummed, typed.
//!
//! Every message travels as one frame following the
//! `protocols::transport` / `pprl-index` framing conventions:
//!
//! ```text
//! plen    u32 LE   payload length in bytes
//! payload          version u8 | opcode u8 | body
//! fnv1a   u64 LE   checksum of the length prefix + payload
//! ```
//!
//! The FNV-1a absorb step is a bijection on `u64` for every fixed byte,
//! so any single flipped byte changes the checksum; the explicit length
//! prefix turns every truncation into a detectable short read. All
//! malformations surface as typed [`PprlError::Transport`] errors —
//! never a panic, never a silently misparsed request.
//!
//! The leading [`WIRE_VERSION`] byte exists for mixed deployments: a
//! coordinator fronting shard nodes that were built from a different
//! checkout must fail with a typed
//! [`PprlError::UnsupportedVersion`] naming both versions, not with a
//! baffling checksum or opcode error deep in the decoder.
//!
//! Bodies use little-endian fixed-width integers. Bloom filters are
//! shipped as a `u32` bit length followed by `ceil(len/8)` raw bytes;
//! scores travel as IEEE-754 bit patterns.

use pprl_core::bitvec::BitVec;
use pprl_core::error::{PprlError, Result};
use pprl_index::query::Hit;

// The framing layer (length prefix + FNV-1a checksum) moved down into
// `pprl-session::frame` when the authenticated session layer arrived —
// wire v4 frames travel in the identical envelope. Re-exported here so
// every existing `wire::read_payload` caller keeps compiling.
pub use pprl_session::frame::{read_payload, write_payload, Incoming, MAX_PAYLOAD};

/// Wire protocol version, the first byte of every frame payload.
/// Version 1 had no version byte (the payload began with the opcode);
/// version 2 added the prefix plus the cluster/plan-cache stats fields;
/// version 3 added the scan-kernel name and merged-row counter to the
/// stats reply.
pub const WIRE_VERSION: u8 = 3;

/// Checks the leading version byte of a frame payload.
fn check_version(r: &mut WireReader<'_>) -> Result<()> {
    let found = r.u8()?;
    if found != WIRE_VERSION {
        return Err(PprlError::UnsupportedVersion {
            found,
            expected: WIRE_VERSION,
        });
    }
    Ok(())
}

/// Request opcodes.
const OP_QUERY: u8 = 0x01;
const OP_LINK: u8 = 0x02;
const OP_INSERT: u8 = 0x03;
const OP_STATS: u8 = 0x04;
const OP_SHUTDOWN: u8 = 0x05;
/// Response opcodes.
const OP_HITS: u8 = 0x81;
const OP_LINK_HITS: u8 = 0x82;
const OP_INSERTED: u8 = 0x83;
const OP_STATS_REPLY: u8 = 0x84;
const OP_BUSY: u8 = 0x85;
const OP_ERROR: u8 = 0x86;
const OP_BYE: u8 = 0x87;

// The session crate recognises pre-handshake `Busy` frames structurally
// (it cannot depend on this crate); keep the two views of the plaintext
// protocol pinned together at compile time.
const _: () = {
    assert!(WIRE_VERSION == pprl_session::frame::INNER_WIRE_VERSION);
    assert!(OP_BUSY == pprl_session::frame::INNER_OP_BUSY);
};

fn transport_err(msg: impl Into<String>) -> PprlError {
    PprlError::Transport(msg.into())
}

/// A request a client sends to the server.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Top-k Dice query for one filter.
    Query {
        /// The encoded probe filter.
        filter: BitVec,
        /// How many neighbours to return.
        k: u32,
    },
    /// Batch link: top-k per probe, thresholded.
    Link {
        /// The encoded probe filters.
        probes: Vec<BitVec>,
        /// Neighbours per probe.
        k: u32,
        /// Minimum Dice score for a hit to be reported.
        min_score: f64,
    },
    /// Append records to the index (durable once acknowledged).
    Insert {
        /// `(record id, filter)` pairs.
        records: Vec<(u64, BitVec)>,
    },
    /// Fetch the server's stats surface.
    Stats,
    /// Ask the server to shut down cleanly.
    Shutdown,
}

/// A response the server sends back.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Top-k hits for a [`Request::Query`].
    Hits(Vec<Hit>),
    /// Per-probe hits for a [`Request::Link`].
    LinkHits(Vec<Vec<Hit>>),
    /// Acknowledges a [`Request::Insert`].
    Inserted {
        /// Records appended.
        count: u32,
        /// Snapshot generation now serving (bumped by the insert).
        generation: u64,
    },
    /// The stats surface for a [`Request::Stats`].
    Stats(StatsReport),
    /// Backpressure: the request queue is full; retry after the given
    /// delay instead of queueing unbounded work.
    Busy {
        /// Suggested client back-off in milliseconds.
        retry_after_ms: u32,
    },
    /// The request failed server-side; the session stays open.
    ServerError {
        /// Human-readable failure description.
        message: String,
    },
    /// Acknowledges a [`Request::Shutdown`]; the server is going down.
    Bye,
}

/// Aggregate server statistics, as served by the `STATS` command.
///
/// A single `pprl-server` node reports `cluster_shards == 0`; a
/// `pprl-cluster` coordinator reports its shard topology and health in
/// the `cluster_*` / `missing_shards` fields, with the counter fields
/// summed across the shards that answered.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StatsReport {
    /// Records in the currently served snapshot.
    pub records: u64,
    /// Snapshot generation currently served.
    pub generation: u64,
    /// Query requests answered.
    pub queries: u64,
    /// Link requests answered.
    pub links: u64,
    /// Insert requests applied.
    pub inserts: u64,
    /// Query answers served from the result cache.
    pub cache_hits: u64,
    /// Query answers computed from a snapshot.
    pub cache_misses: u64,
    /// Cache-missing queries that reused a cached popcount scan plan.
    pub plan_hits: u64,
    /// Cache-missing queries that had to compute a fresh scan plan.
    pub plan_misses: u64,
    /// Connections rejected with [`Response::Busy`].
    pub busy_rejected: u64,
    /// Background compaction steps that merged at least one tier.
    pub compactions: u64,
    /// Segments merged away by background compaction.
    pub segments_merged: u64,
    /// Bytes read from storage building snapshots.
    pub bytes_read: u64,
    /// Median request latency in microseconds (fixed-bucket histogram).
    pub latency_p50_us: u64,
    /// 99th-percentile request latency in microseconds.
    pub latency_p99_us: u64,
    /// Milliseconds since the server started.
    pub uptime_ms: u64,
    /// Worker threads serving requests.
    pub workers: u32,
    /// Capacity of the bounded connection queue.
    pub queue_capacity: u32,
    /// Segments quarantined when the index was opened.
    pub quarantined_segments: u64,
    /// True when the index serves degraded reads over surviving
    /// segments only (some were quarantined at open), or — for a
    /// coordinator — when at least one shard is unreachable.
    pub degraded: bool,
    /// Shards this coordinator fronts; 0 for a single server node.
    pub cluster_shards: u32,
    /// Shards currently unreachable from the coordinator.
    pub shards_down: u32,
    /// Indices (into the coordinator's shard list) of the unreachable
    /// shards; empty on a healthy cluster and on single nodes.
    pub missing_shards: Vec<u32>,
    /// Rows rewritten by arena-native segment merges (flushes and
    /// compactions) since startup. Summed across shards on a cluster.
    pub merge_rows: u64,
    /// Scan kernel the node dispatched to at startup (`scalar`,
    /// `portable`, `avx2`, ...); `mixed` on a cluster whose shards
    /// disagree, empty when no shard answered.
    pub kernel: String,
}

/// Bounds-checked little-endian reader over a frame payload.
struct WireReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> WireReader<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        WireReader { bytes, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        let end = self.pos.checked_add(n).filter(|&e| e <= self.bytes.len());
        let Some(end) = end else {
            return Err(transport_err(format!(
                "frame truncated: wanted {n} bytes at offset {}, payload has {}",
                self.pos,
                self.bytes.len()
            )));
        };
        let slice = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    fn f64(&mut self) -> Result<f64> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn finish(&self) -> Result<()> {
        if self.pos != self.bytes.len() {
            return Err(transport_err(format!(
                "frame has {} trailing bytes after offset {}",
                self.bytes.len() - self.pos,
                self.pos
            )));
        }
        Ok(())
    }
}

fn push_filter_bits(out: &mut Vec<u8>, filter: &BitVec) {
    out.extend_from_slice(&filter.to_bytes());
}

fn read_filter(r: &mut WireReader<'_>, flen: usize) -> Result<BitVec> {
    let bytes = r.take(flen.div_ceil(8))?;
    BitVec::from_bytes(bytes, flen).map_err(|e| transport_err(format!("bad filter in frame: {e}")))
}

fn read_filter_len(r: &mut WireReader<'_>) -> Result<usize> {
    let flen = r.u32()? as usize;
    if flen == 0 {
        return Err(transport_err("frame declares a zero-length filter"));
    }
    Ok(flen)
}

fn push_hits(out: &mut Vec<u8>, hits: &[Hit]) {
    out.extend_from_slice(&(hits.len() as u32).to_le_bytes());
    for h in hits {
        out.extend_from_slice(&h.id.to_le_bytes());
        out.extend_from_slice(&h.score.to_bits().to_le_bytes());
    }
}

fn read_hits(r: &mut WireReader<'_>) -> Result<Vec<Hit>> {
    let n = r.u32()? as usize;
    let mut hits = Vec::with_capacity(n.min(1 << 16));
    for _ in 0..n {
        let id = r.u64()?;
        let score = r.f64()?;
        hits.push(Hit { id, score });
    }
    Ok(hits)
}

impl Request {
    /// Serialises the request to a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = vec![WIRE_VERSION];
        match self {
            Request::Query { filter, k } => {
                out.push(OP_QUERY);
                out.extend_from_slice(&(filter.len() as u32).to_le_bytes());
                push_filter_bits(&mut out, filter);
                out.extend_from_slice(&k.to_le_bytes());
            }
            Request::Link {
                probes,
                k,
                min_score,
            } => {
                out.push(OP_LINK);
                let flen = probes.first().map_or(0, |f| f.len());
                out.extend_from_slice(&(flen as u32).to_le_bytes());
                out.extend_from_slice(&k.to_le_bytes());
                out.extend_from_slice(&min_score.to_bits().to_le_bytes());
                out.extend_from_slice(&(probes.len() as u32).to_le_bytes());
                for p in probes {
                    push_filter_bits(&mut out, p);
                }
            }
            Request::Insert { records } => {
                out.push(OP_INSERT);
                let flen = records.first().map_or(0, |(_, f)| f.len());
                out.extend_from_slice(&(flen as u32).to_le_bytes());
                out.extend_from_slice(&(records.len() as u32).to_le_bytes());
                for (id, f) in records {
                    out.extend_from_slice(&id.to_le_bytes());
                    push_filter_bits(&mut out, f);
                }
            }
            Request::Stats => out.push(OP_STATS),
            Request::Shutdown => out.push(OP_SHUTDOWN),
        }
        out
    }

    /// Parses a frame payload into a request. A payload whose leading
    /// version byte differs from [`WIRE_VERSION`] is rejected with
    /// [`PprlError::UnsupportedVersion`] before any body parsing.
    pub fn decode(payload: &[u8]) -> Result<Request> {
        let mut r = WireReader::new(payload);
        check_version(&mut r)?;
        let req = match r.u8()? {
            OP_QUERY => {
                let flen = read_filter_len(&mut r)?;
                let filter = read_filter(&mut r, flen)?;
                let k = r.u32()?;
                Request::Query { filter, k }
            }
            OP_LINK => {
                let flen = read_filter_len(&mut r)?;
                let k = r.u32()?;
                let min_score = r.f64()?;
                if !(0.0..=1.0).contains(&min_score) {
                    return Err(transport_err(format!(
                        "link min_score {min_score} outside [0, 1]"
                    )));
                }
                let n = r.u32()? as usize;
                let mut probes = Vec::with_capacity(n.min(1 << 16));
                for _ in 0..n {
                    probes.push(read_filter(&mut r, flen)?);
                }
                Request::Link {
                    probes,
                    k,
                    min_score,
                }
            }
            OP_INSERT => {
                let flen = read_filter_len(&mut r)?;
                let n = r.u32()? as usize;
                let mut records = Vec::with_capacity(n.min(1 << 16));
                for _ in 0..n {
                    let id = r.u64()?;
                    records.push((id, read_filter(&mut r, flen)?));
                }
                Request::Insert { records }
            }
            OP_STATS => Request::Stats,
            OP_SHUTDOWN => Request::Shutdown,
            other => return Err(transport_err(format!("unknown request opcode {other:#x}"))),
        };
        r.finish()?;
        Ok(req)
    }
}

impl Response {
    /// Serialises the response to a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = vec![WIRE_VERSION];
        match self {
            Response::Hits(hits) => {
                out.push(OP_HITS);
                push_hits(&mut out, hits);
            }
            Response::LinkHits(per_probe) => {
                out.push(OP_LINK_HITS);
                out.extend_from_slice(&(per_probe.len() as u32).to_le_bytes());
                for hits in per_probe {
                    push_hits(&mut out, hits);
                }
            }
            Response::Inserted { count, generation } => {
                out.push(OP_INSERTED);
                out.extend_from_slice(&count.to_le_bytes());
                out.extend_from_slice(&generation.to_le_bytes());
            }
            Response::Stats(s) => {
                out.push(OP_STATS_REPLY);
                for v in [
                    s.records,
                    s.generation,
                    s.queries,
                    s.links,
                    s.inserts,
                    s.cache_hits,
                    s.cache_misses,
                    s.plan_hits,
                    s.plan_misses,
                    s.busy_rejected,
                    s.compactions,
                    s.segments_merged,
                    s.bytes_read,
                    s.latency_p50_us,
                    s.latency_p99_us,
                    s.uptime_ms,
                ] {
                    out.extend_from_slice(&v.to_le_bytes());
                }
                out.extend_from_slice(&s.workers.to_le_bytes());
                out.extend_from_slice(&s.queue_capacity.to_le_bytes());
                out.extend_from_slice(&s.quarantined_segments.to_le_bytes());
                out.push(u8::from(s.degraded));
                out.extend_from_slice(&s.cluster_shards.to_le_bytes());
                out.extend_from_slice(&s.shards_down.to_le_bytes());
                out.extend_from_slice(&(s.missing_shards.len() as u32).to_le_bytes());
                for shard in &s.missing_shards {
                    out.extend_from_slice(&shard.to_le_bytes());
                }
                out.extend_from_slice(&s.merge_rows.to_le_bytes());
                out.extend_from_slice(&(s.kernel.len() as u32).to_le_bytes());
                out.extend_from_slice(s.kernel.as_bytes());
            }
            Response::Busy { retry_after_ms } => {
                out.push(OP_BUSY);
                out.extend_from_slice(&retry_after_ms.to_le_bytes());
            }
            Response::ServerError { message } => {
                out.push(OP_ERROR);
                out.extend_from_slice(&(message.len() as u32).to_le_bytes());
                out.extend_from_slice(message.as_bytes());
            }
            Response::Bye => out.push(OP_BYE),
        }
        out
    }

    /// Parses a frame payload into a response, rejecting foreign
    /// [`WIRE_VERSION`]s up front like [`Request::decode`].
    pub fn decode(payload: &[u8]) -> Result<Response> {
        let mut r = WireReader::new(payload);
        check_version(&mut r)?;
        let resp = match r.u8()? {
            OP_HITS => Response::Hits(read_hits(&mut r)?),
            OP_LINK_HITS => {
                let n = r.u32()? as usize;
                let mut per_probe = Vec::with_capacity(n.min(1 << 16));
                for _ in 0..n {
                    per_probe.push(read_hits(&mut r)?);
                }
                Response::LinkHits(per_probe)
            }
            OP_INSERTED => Response::Inserted {
                count: r.u32()?,
                generation: r.u64()?,
            },
            OP_STATS_REPLY => {
                let mut next = || r.u64();
                let s = StatsReport {
                    records: next()?,
                    generation: next()?,
                    queries: next()?,
                    links: next()?,
                    inserts: next()?,
                    cache_hits: next()?,
                    cache_misses: next()?,
                    plan_hits: next()?,
                    plan_misses: next()?,
                    busy_rejected: next()?,
                    compactions: next()?,
                    segments_merged: next()?,
                    bytes_read: next()?,
                    latency_p50_us: next()?,
                    latency_p99_us: next()?,
                    uptime_ms: next()?,
                    workers: 0,
                    queue_capacity: 0,
                    quarantined_segments: 0,
                    degraded: false,
                    cluster_shards: 0,
                    shards_down: 0,
                    missing_shards: Vec::new(),
                    merge_rows: 0,
                    kernel: String::new(),
                };
                let workers = r.u32()?;
                let queue_capacity = r.u32()?;
                let quarantined_segments = r.u64()?;
                let degraded = r.u8()? != 0;
                let cluster_shards = r.u32()?;
                let shards_down = r.u32()?;
                let n_missing = r.u32()? as usize;
                let mut missing_shards = Vec::with_capacity(n_missing.min(1 << 16));
                for _ in 0..n_missing {
                    missing_shards.push(r.u32()?);
                }
                let merge_rows = r.u64()?;
                let klen = r.u32()? as usize;
                let kernel = std::str::from_utf8(r.take(klen)?)
                    .map_err(|_| transport_err("kernel name not UTF-8"))?
                    .to_string();
                Response::Stats(StatsReport {
                    workers,
                    queue_capacity,
                    quarantined_segments,
                    degraded,
                    cluster_shards,
                    shards_down,
                    missing_shards,
                    merge_rows,
                    kernel,
                    ..s
                })
            }
            OP_BUSY => Response::Busy {
                retry_after_ms: r.u32()?,
            },
            OP_ERROR => {
                let len = r.u32()? as usize;
                let message = std::str::from_utf8(r.take(len)?)
                    .map_err(|_| transport_err("error message not UTF-8"))?
                    .to_string();
                Response::ServerError { message }
            }
            OP_BYE => Response::Bye,
            other => return Err(transport_err(format!("unknown response opcode {other:#x}"))),
        };
        r.finish()?;
        Ok(resp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn filt(positions: &[usize]) -> BitVec {
        BitVec::from_positions(64, positions).unwrap()
    }

    fn round_trip_request(req: Request) {
        let mut buf = Vec::new();
        write_payload(&mut buf, &req.encode()).unwrap();
        let mut cursor = std::io::Cursor::new(buf);
        let Incoming::Payload(p) = read_payload(&mut cursor).unwrap() else {
            panic!("expected a payload");
        };
        assert_eq!(Request::decode(&p).unwrap(), req);
    }

    fn round_trip_response(resp: Response) {
        let mut buf = Vec::new();
        write_payload(&mut buf, &resp.encode()).unwrap();
        let mut cursor = std::io::Cursor::new(buf);
        let Incoming::Payload(p) = read_payload(&mut cursor).unwrap() else {
            panic!("expected a payload");
        };
        assert_eq!(Response::decode(&p).unwrap(), resp);
    }

    #[test]
    fn requests_round_trip() {
        round_trip_request(Request::Query {
            filter: filt(&[1, 5, 40]),
            k: 7,
        });
        round_trip_request(Request::Link {
            probes: vec![filt(&[1]), filt(&[2, 3])],
            k: 3,
            min_score: 0.75,
        });
        round_trip_request(Request::Insert {
            records: vec![(9, filt(&[0, 63])), (10, filt(&[31]))],
        });
        round_trip_request(Request::Stats);
        round_trip_request(Request::Shutdown);
    }

    #[test]
    fn responses_round_trip() {
        round_trip_response(Response::Hits(vec![
            Hit { id: 3, score: 1.0 },
            Hit { id: 9, score: 0.25 },
        ]));
        round_trip_response(Response::LinkHits(vec![
            vec![Hit { id: 1, score: 0.5 }],
            vec![],
        ]));
        round_trip_response(Response::Inserted {
            count: 12,
            generation: 4,
        });
        round_trip_response(Response::Stats(StatsReport {
            records: 100,
            generation: 2,
            queries: 55,
            links: 1,
            inserts: 3,
            cache_hits: 20,
            cache_misses: 35,
            plan_hits: 18,
            plan_misses: 17,
            busy_rejected: 2,
            compactions: 1,
            segments_merged: 6,
            bytes_read: 12345,
            latency_p50_us: 100,
            latency_p99_us: 900,
            uptime_ms: 60000,
            workers: 4,
            queue_capacity: 16,
            quarantined_segments: 1,
            degraded: true,
            cluster_shards: 3,
            shards_down: 1,
            missing_shards: vec![2],
            merge_rows: 4321,
            kernel: "avx2".into(),
        }));
        round_trip_response(Response::Busy { retry_after_ms: 50 });
        round_trip_response(Response::ServerError {
            message: "no such index".into(),
        });
        round_trip_response(Response::Bye);
    }

    #[test]
    fn every_single_byte_flip_is_detected() {
        let req = Request::Query {
            filter: filt(&[1, 2, 3]),
            k: 5,
        };
        let mut buf = Vec::new();
        write_payload(&mut buf, &req.encode()).unwrap();
        for pos in 0..buf.len() {
            for delta in [0x01u8, 0x80] {
                let mut bad = buf.clone();
                bad[pos] ^= delta;
                let mut cursor = std::io::Cursor::new(bad);
                // Either the frame read itself fails, or (for a length
                // prefix grown past the buffer) the short read fails —
                // a flip is never silently accepted.
                match read_payload(&mut cursor) {
                    Err(PprlError::Transport(_)) => {}
                    Ok(Incoming::Payload(_)) => panic!("byte {pos} delta {delta:#x} undetected"),
                    Ok(_) | Err(_) => {}
                }
            }
        }
    }

    #[test]
    fn truncations_and_eof_are_distinguished() {
        let mut buf = Vec::new();
        write_payload(&mut buf, &Request::Stats.encode()).unwrap();
        // Clean EOF before any frame byte.
        let mut empty = std::io::Cursor::new(Vec::<u8>::new());
        assert!(matches!(read_payload(&mut empty).unwrap(), Incoming::Eof));
        // Every mid-frame truncation is a typed error.
        for cut in 1..buf.len() {
            let mut cursor = std::io::Cursor::new(buf[..cut].to_vec());
            match read_payload(&mut cursor) {
                Err(PprlError::Transport(_)) => {}
                Ok(Incoming::Eof) if cut < 4 => {} // length prefix itself cut
                other => panic!("cut {cut}: {other:?}"),
            }
        }
    }

    #[test]
    fn zero_and_oversized_lengths_rejected() {
        let mut zero = std::io::Cursor::new(vec![0u8; 12]);
        assert!(matches!(
            read_payload(&mut zero),
            Err(PprlError::Transport(_))
        ));
        let mut huge = Vec::new();
        huge.extend_from_slice(&(u32::MAX).to_le_bytes());
        huge.extend_from_slice(&[0u8; 16]);
        let mut cursor = std::io::Cursor::new(huge);
        assert!(matches!(
            read_payload(&mut cursor),
            Err(PprlError::Transport(_))
        ));
        let mut w = Vec::new();
        assert!(write_payload(&mut w, &[]).is_err());
    }

    #[test]
    fn unknown_opcodes_rejected() {
        assert!(Request::decode(&[WIRE_VERSION, 0x7f]).is_err());
        assert!(Response::decode(&[WIRE_VERSION, 0x01]).is_err());
        // Trailing garbage after a valid body is rejected too.
        let mut p = Request::Stats.encode();
        p.push(0);
        assert!(Request::decode(&p).is_err());
    }

    #[test]
    fn foreign_versions_fail_with_a_typed_error() {
        // A v1 peer's frame began directly with the opcode byte — from a
        // v3 decoder's perspective that is a version-1 prefix. Both
        // requests and responses must name the two versions instead of
        // tripping over the opcode or body.
        for payload in [vec![0x05u8], vec![0x01, 0x04], vec![0x02, 0x84, 0, 0]] {
            let req = Request::decode(&payload);
            let resp = Response::decode(&payload);
            for got in [req.map(|_| ()), resp.map(|_| ())] {
                match got {
                    Err(PprlError::UnsupportedVersion { found, expected }) => {
                        assert_eq!(found, payload[0]);
                        assert_eq!(expected, WIRE_VERSION);
                    }
                    other => panic!("expected UnsupportedVersion, got {other:?}"),
                }
            }
        }
        // The current version is of course accepted.
        assert!(Request::decode(&Request::Stats.encode()).is_ok());
    }
}
