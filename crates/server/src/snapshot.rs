//! Snapshot isolation for index reads.
//!
//! The server never queries the [`pprl_index::IndexStore`] directly.
//! Instead a [`SnapshotHub`] holds the current [`Snapshot`] — an
//! immutable in-memory [`IndexReader`] tagged with a monotonically
//! increasing generation. Queries *pin* the current snapshot (clone the
//! `Arc`) and keep using it for their whole lifetime; installs (after an
//! insert or a compaction's atomic manifest swap) replace the current
//! `Arc` without touching pinned ones. A reader therefore always sees
//! one consistent generation — never a half-swapped manifest — and never
//! blocks on, or is blocked by, the writer.
//!
//! Reclamation is the second half of the contract: compaction rewrites
//! segment files but must not delete the superseded ones while any
//! pinned snapshot of an older generation might still exist. The hub
//! keeps `(Weak<Snapshot>, obsolete files)` pairs in install order and
//! [`SnapshotHub::reclaim_drained`] deletes files only for prefix
//! entries whose snapshots have fully dropped — oldest first, stopping
//! at the first still-live generation so files are removed strictly in
//! retirement order.

use pprl_core::error::Result;
use pprl_index::query::IndexReader;
use pprl_index::store::reclaim;
use std::collections::VecDeque;
use std::path::PathBuf;
use std::sync::{Arc, Mutex, Weak};

/// One immutable, queryable view of the index.
#[derive(Debug)]
pub struct Snapshot {
    /// Monotonic generation number (0 for the snapshot built at open).
    pub generation: u64,
    /// The in-memory reader serving this generation.
    pub reader: IndexReader,
}

/// Retired generation awaiting drain: the snapshot (weakly held) and the
/// segment files its supersession made obsolete.
#[derive(Debug)]
struct Retired {
    snapshot: Weak<Snapshot>,
    obsolete: Vec<PathBuf>,
}

/// Publishes snapshots to readers and reclaims superseded files.
#[derive(Debug)]
pub struct SnapshotHub {
    current: Mutex<Arc<Snapshot>>,
    retired: Mutex<VecDeque<Retired>>,
}

impl SnapshotHub {
    /// Creates a hub serving `reader` as generation 0.
    pub fn new(reader: IndexReader) -> Self {
        SnapshotHub {
            current: Mutex::new(Arc::new(Snapshot {
                generation: 0,
                reader,
            })),
            retired: Mutex::new(VecDeque::new()),
        }
    }

    /// Pins the current snapshot. The caller may hold it for as long as
    /// it likes; installs never invalidate it.
    pub fn pin(&self) -> Arc<Snapshot> {
        self.current.lock().expect("snapshot lock").clone()
    }

    /// Generation currently being served.
    pub fn generation(&self) -> u64 {
        self.pin().generation
    }

    /// Atomically installs `reader` as the next generation, retiring the
    /// previous snapshot together with the segment files (`obsolete`)
    /// its supersession made reclaimable. Returns the new generation.
    pub fn install(&self, reader: IndexReader, obsolete: Vec<PathBuf>) -> u64 {
        let mut current = self.current.lock().expect("snapshot lock");
        let next = Arc::new(Snapshot {
            generation: current.generation + 1,
            reader,
        });
        let old = std::mem::replace(&mut *current, next.clone());
        self.retired
            .lock()
            .expect("retired lock")
            .push_back(Retired {
                snapshot: Arc::downgrade(&old),
                obsolete,
            });
        drop(old); // may or may not be the last strong ref; readers decide
        next.generation
    }

    /// Retired generations whose files have not been reclaimed yet.
    pub fn retired_len(&self) -> usize {
        self.retired.lock().expect("retired lock").len()
    }

    /// Deletes obsolete files of every *drained* retired generation —
    /// oldest first, stopping at the first generation still pinned by a
    /// reader. Returns how many files were removed. Safe to call from
    /// the maintenance thread at any time.
    pub fn reclaim_drained(&self) -> Result<usize> {
        let mut removed = 0usize;
        let mut retired = self.retired.lock().expect("retired lock");
        while let Some(front) = retired.front() {
            if front.snapshot.strong_count() > 0 {
                break; // a reader still holds this generation
            }
            let entry = retired.pop_front().expect("front exists");
            removed += reclaim(&entry.obsolete)?;
        }
        Ok(removed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pprl_core::bitvec::BitVec;

    fn reader_with(ids: &[u64]) -> IndexReader {
        let records = ids
            .iter()
            .map(|&id| {
                (
                    id,
                    BitVec::from_positions(32, &[(id as usize) % 32]).unwrap(),
                )
            })
            .collect();
        IndexReader::new(vec![records], 32).unwrap()
    }

    #[test]
    fn pinned_snapshot_survives_installs() {
        let hub = SnapshotHub::new(reader_with(&[1, 2]));
        let pinned = hub.pin();
        assert_eq!(pinned.generation, 0);
        let g1 = hub.install(reader_with(&[1, 2, 3]), vec![]);
        assert_eq!(g1, 1);
        // The pinned snapshot still serves the old view.
        assert_eq!(pinned.reader.len(), 2);
        assert_eq!(hub.pin().reader.len(), 3);
        assert_eq!(hub.generation(), 1);
    }

    #[test]
    fn reclaim_waits_for_pinned_readers_and_preserves_order() {
        let dir = std::env::temp_dir().join(format!("pprl-snap-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let f0 = dir.join("gen0.seg");
        let f1 = dir.join("gen1.seg");
        std::fs::write(&f0, b"old0").unwrap();
        std::fs::write(&f1, b"old1").unwrap();

        let hub = SnapshotHub::new(reader_with(&[1]));
        let pinned_g0 = hub.pin();
        hub.install(reader_with(&[1, 2]), vec![f0.clone()]);
        let pinned_g1 = hub.pin();
        hub.install(reader_with(&[1, 2, 3]), vec![f1.clone()]);

        // Both old generations still pinned: nothing reclaimable.
        assert_eq!(hub.reclaim_drained().unwrap(), 0);
        assert!(f0.exists() && f1.exists());

        // Dropping only the *newer* pin must not free the older one's
        // files: reclamation is strictly oldest-first.
        drop(pinned_g1);
        assert_eq!(hub.reclaim_drained().unwrap(), 0);
        assert!(f0.exists() && f1.exists());
        assert_eq!(hub.retired_len(), 2);

        // Dropping the oldest pin drains both retired generations.
        drop(pinned_g0);
        assert_eq!(hub.reclaim_drained().unwrap(), 2);
        assert!(!f0.exists() && !f1.exists());
        assert_eq!(hub.retired_len(), 0);

        // Idempotent once drained.
        assert_eq!(hub.reclaim_drained().unwrap(), 0);
        std::fs::remove_dir_all(&dir).ok();
    }
}
