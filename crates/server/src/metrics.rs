//! Server metrics: lock-free counters and a fixed-bucket latency
//! histogram.
//!
//! The histogram uses power-of-two microsecond buckets (bucket `i`
//! covers `[2^(i-1), 2^i)` µs), so recording is one atomic increment
//! and quantile estimation walks at most 64 counters — no allocation,
//! no sorting, bounded error of at most one octave, which is plenty for
//! a p50/p99 stats surface.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Number of power-of-two buckets; `2^(BUCKETS-2)` µs ≈ 4.6 hours caps
/// the top bucket, far beyond any sane request latency.
const BUCKETS: usize = 44;

/// A fixed-bucket latency histogram with lock-free recording.
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            buckets: [const { AtomicU64::new(0) }; BUCKETS],
            count: AtomicU64::new(0),
        }
    }
}

impl LatencyHistogram {
    /// Records one observation, in microseconds.
    pub fn record_us(&self, us: u64) {
        let idx = (u64::BITS - us.leading_zeros()) as usize;
        let idx = idx.min(BUCKETS - 1);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Observations recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// The upper bound (in µs) of the bucket holding the `q`-quantile
    /// observation, or 0 when nothing was recorded. `q` is clamped to
    /// `[0, 1]`.
    pub fn quantile_us(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let target = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, bucket) in self.buckets.iter().enumerate() {
            seen += bucket.load(Ordering::Relaxed);
            if seen >= target {
                // Bucket i covers [2^(i-1), 2^i); report its upper bound
                // minus one. Bucket 0 is exactly the value 0.
                return if i == 0 { 0 } else { (1u64 << i) - 1 };
            }
        }
        u64::MAX
    }
}

/// Aggregate server counters; every field is updated with relaxed
/// atomics from worker and maintenance threads.
#[derive(Debug, Default)]
pub struct Metrics {
    /// Query requests answered.
    pub queries: AtomicU64,
    /// Link requests answered.
    pub links: AtomicU64,
    /// Insert requests applied.
    pub inserts: AtomicU64,
    /// Query answers served from the result cache.
    pub cache_hits: AtomicU64,
    /// Query answers computed against a snapshot.
    pub cache_misses: AtomicU64,
    /// Cache-missing queries that reused a cached popcount scan plan.
    pub plan_hits: AtomicU64,
    /// Cache-missing queries that computed (and cached) a fresh plan.
    pub plan_misses: AtomicU64,
    /// Connections rejected with a `Busy` frame.
    pub busy_rejected: AtomicU64,
    /// Background compaction steps that merged at least one tier.
    pub compactions: AtomicU64,
    /// Segments merged away by background compaction.
    pub segments_merged: AtomicU64,
    /// Rows rewritten by arena-native segment merges during compaction.
    pub merge_rows: AtomicU64,
    /// Bytes read from storage while building snapshots.
    pub bytes_read: AtomicU64,
    /// Request latency histogram (query + link).
    pub latency: LatencyHistogram,
}

impl Metrics {
    /// Adds `n` to a counter.
    pub fn add(counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }

    /// Reads a counter.
    pub fn get(counter: &AtomicU64) -> u64 {
        counter.load(Ordering::Relaxed)
    }

    /// Records a request latency measured from `started`.
    pub fn observe_latency(&self, started: Instant) {
        self.latency.record_us(started.elapsed().as_micros() as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_reports_zero() {
        let h = LatencyHistogram::default();
        assert_eq!(h.quantile_us(0.5), 0);
        assert_eq!(h.count(), 0);
    }

    #[test]
    fn quantiles_land_in_the_right_octave() {
        let h = LatencyHistogram::default();
        // 90 fast observations around 100 µs, 10 slow around 50 ms.
        for _ in 0..90 {
            h.record_us(100);
        }
        for _ in 0..10 {
            h.record_us(50_000);
        }
        let p50 = h.quantile_us(0.50);
        let p99 = h.quantile_us(0.99);
        assert!((64..256).contains(&p50), "p50 = {p50}");
        assert!((32_768..131_072).contains(&p99), "p99 = {p99}");
        assert!(p50 < p99);
    }

    #[test]
    fn zero_and_huge_values_stay_in_bounds() {
        let h = LatencyHistogram::default();
        h.record_us(0);
        assert_eq!(h.quantile_us(0.5), 0);
        h.record_us(u64::MAX);
        assert_eq!(h.count(), 2);
        assert!(h.quantile_us(1.0) >= 1);
    }
}
