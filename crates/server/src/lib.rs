//! `pprl-server`: a concurrent linkage query service over the
//! persistent `pprl-index` store — std-only, like the rest of the
//! workspace.
//!
//! The survey's Big-Data axis is volume *and velocity*: deployed PPRL
//! answers a stream of link queries against an ever-growing encoded
//! database. This crate turns the offline index into that service:
//!
//! - [`wire`] — a framed, FNV-1a-checksummed request/response protocol
//!   with typed [`pprl_core::error::PprlError::Transport`] errors;
//! - [`pool`] — a bounded connection queue with explicit backpressure
//!   (`Busy {retry_after}`), never unbounded buffering;
//! - [`snapshot`] — generation-tagged snapshot isolation: queries pin an
//!   immutable reader while writes install the next generation, and
//!   superseded segment files are reclaimed only once readers drain;
//! - [`service`] — queries, batch link, durable insert, background
//!   size-tiered compaction, and an LRU result cache keyed by
//!   (generation, filter bits, k);
//! - [`metrics`] — lock-free counters and a fixed-bucket latency
//!   histogram behind the `STATS` wire command;
//! - [`server`] / [`client`] — the TCP front end and its blocking
//!   counterpart.
//!
//! ```no_run
//! use pprl_server::server::{serve, ServerConfig};
//! use pprl_server::client::Client;
//! # fn main() -> pprl_core::error::Result<()> {
//! let handle = serve(std::path::Path::new("idx"), "127.0.0.1:0", ServerConfig::default())?;
//! let mut client = Client::connect(&handle.addr().to_string())?;
//! let stats = client.stats()?;
//! assert_eq!(stats.generation, 0);
//! client.shutdown()?;
//! handle.join();
//! # Ok(())
//! # }
//! ```

pub mod cache;
pub mod client;
pub mod metrics;
pub mod pool;
pub mod server;
pub mod service;
pub mod snapshot;
pub mod wire;

pub use client::Client;
pub use server::{serve, serve_auth, ServerBackend, ServerConfig, ServerHandle};
pub use service::{LinkageService, ServiceConfig};
pub use wire::StatsReport;

// Session-layer types callers need to drive authenticated mode.
pub use pprl_session::handshake::ClientAuth;
pub use pprl_session::keys::PartyKey;
pub use pprl_session::registry::{AuthRegistry, TenantGrant};
pub use pprl_session::suite::{CipherSuite, SuiteOffer};
