//! A bounded MPMC job queue for the worker pool.
//!
//! Backpressure is the point: [`BoundedQueue::try_push`] never blocks
//! and never grows past capacity — when the queue is full the caller
//! gets its job back and answers the client with `Busy {retry_after}`
//! instead of buffering unbounded work. Workers block on
//! [`BoundedQueue::pop_timeout`] with a short timeout so they can poll
//! the server's shutdown flag between jobs.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};
use std::time::Duration;

#[derive(Debug)]
struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A fixed-capacity MPMC queue: non-blocking producers, blocking
/// (timeout-bounded) consumers.
#[derive(Debug)]
pub struct BoundedQueue<T> {
    capacity: usize,
    inner: Mutex<Inner<T>>,
    available: Condvar,
}

impl<T> BoundedQueue<T> {
    /// Creates a queue holding at most `capacity` (≥ 1) items.
    pub fn new(capacity: usize) -> Self {
        BoundedQueue {
            capacity: capacity.max(1),
            inner: Mutex::new(Inner {
                items: VecDeque::new(),
                closed: false,
            }),
            available: Condvar::new(),
        }
    }

    /// Maximum number of queued items.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Items currently queued.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("queue lock").items.len()
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Enqueues `item` without blocking. Returns `Err(item)` when the
    /// queue is full or closed, handing the job back so the caller can
    /// reject it explicitly.
    pub fn try_push(&self, item: T) -> std::result::Result<(), T> {
        let mut inner = self.inner.lock().expect("queue lock");
        if inner.closed || inner.items.len() >= self.capacity {
            return Err(item);
        }
        inner.items.push_back(item);
        drop(inner);
        self.available.notify_one();
        Ok(())
    }

    /// Dequeues one item, waiting up to `timeout`. Returns `None` on
    /// timeout or when the queue is closed and drained.
    pub fn pop_timeout(&self, timeout: Duration) -> Option<T> {
        let mut inner = self.inner.lock().expect("queue lock");
        loop {
            if let Some(item) = inner.items.pop_front() {
                return Some(item);
            }
            if inner.closed {
                return None;
            }
            let (guard, result) = self
                .available
                .wait_timeout(inner, timeout)
                .expect("queue lock");
            inner = guard;
            if result.timed_out() {
                return inner.items.pop_front();
            }
        }
    }

    /// Closes the queue: further pushes fail, and blocked consumers wake
    /// up once the remaining items drain.
    pub fn close(&self) {
        self.inner.lock().expect("queue lock").closed = true;
        self.available.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn rejects_when_full_and_recovers_when_drained() {
        let q: BoundedQueue<u32> = BoundedQueue::new(2);
        assert!(q.try_push(1).is_ok());
        assert!(q.try_push(2).is_ok());
        assert_eq!(q.try_push(3), Err(3)); // full: job handed back
        assert_eq!(q.pop_timeout(Duration::from_millis(1)), Some(1));
        assert!(q.try_push(3).is_ok()); // capacity freed
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn pop_times_out_on_empty_queue() {
        let q: BoundedQueue<u32> = BoundedQueue::new(1);
        assert_eq!(q.pop_timeout(Duration::from_millis(5)), None);
    }

    #[test]
    fn close_wakes_consumers_and_rejects_producers() {
        let q: Arc<BoundedQueue<u32>> = Arc::new(BoundedQueue::new(4));
        q.try_push(7).unwrap();
        let consumer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                let mut seen = Vec::new();
                while let Some(v) = q.pop_timeout(Duration::from_secs(5)) {
                    seen.push(v);
                }
                seen
            })
        };
        std::thread::sleep(Duration::from_millis(20));
        q.close();
        assert_eq!(q.try_push(8), Err(8)); // closed
        assert_eq!(consumer.join().unwrap(), vec![7]); // drained then woke
    }

    #[test]
    fn many_producers_one_consumer_sees_everything() {
        let q: Arc<BoundedQueue<u32>> = Arc::new(BoundedQueue::new(64));
        let producers: Vec<_> = (0..4)
            .map(|p| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    for i in 0..16 {
                        let mut v = p * 16 + i;
                        loop {
                            match q.try_push(v) {
                                Ok(()) => break,
                                Err(back) => {
                                    v = back;
                                    std::thread::yield_now();
                                }
                            }
                        }
                    }
                })
            })
            .collect();
        let mut seen = Vec::new();
        while seen.len() < 64 {
            if let Some(v) = q.pop_timeout(Duration::from_secs(5)) {
                seen.push(v);
            }
        }
        for p in producers {
            p.join().unwrap();
        }
        seen.sort_unstable();
        assert_eq!(seen, (0..64).collect::<Vec<_>>());
    }
}
