//! A small LRU cache for query results.
//!
//! Keys are `(snapshot generation, filter bytes, k)`. Including the
//! generation makes the cache correct by construction against the
//! insert/compaction race: a query that pinned generation `g` can only
//! ever populate entries tagged `g`, so a result computed against an
//! old snapshot is never returned for a query against a newer one, even
//! if the population happens *after* the swap. The explicit
//! [`LruCache::clear`] on install is then purely memory hygiene —
//! superseded entries would otherwise linger until evicted.
//!
//! Recency is tracked with a monotonically stamped queue: each access
//! pushes a fresh `(stamp, key)` pair and stale pairs are skipped (and
//! periodically compacted) at eviction time. That keeps both hit and
//! miss paths O(1) amortised with `std` collections only.

use std::collections::{HashMap, VecDeque};

/// Cache key: snapshot generation, packed filter bytes, k.
pub type QueryKey = (u64, Vec<u8>, u32);

/// Scan-plan cache key: snapshot generation and query popcount
/// *bucket*. Unlike [`QueryKey`] there are no filter bytes — a plan
/// (the slot-visiting order from `popcount_scan_order`) depends only on
/// the slot geometry of a generation and the probe's popcount, so
/// *different* probes with similar popcounts share one entry. That is
/// what lets miss-heavy broadcast workloads, where exact-key result
/// caching never hits, still skip the per-query plan derivation.
///
/// Keying on a [`plan_bucket`] range rather than the exact popcount is
/// safe because the plan is an ordering *hint* — `top_k_planned`
/// produces bit-identical results under any order — and effective
/// because nearby popcounts clamp to the same slot popcount ranges and
/// thus sort the slots almost identically. Real CLK workloads
/// concentrate popcounts in a band (hardening fixes the expected number
/// of set bits), so a handful of buckets covers nearly every probe.
pub type PlanKey = (u64, u32);

/// Width of one popcount bucket. 16 is narrow enough that the
/// bucket-representative plan prunes essentially as well as an exact
/// one, and wide enough that a CLK popcount band of a few hundred maps
/// to a handful of cached plans.
pub const PLAN_BUCKET_WIDTH: u32 = 16;

/// The bucket a probe popcount falls into.
pub fn plan_bucket(popcount: u32) -> u32 {
    popcount / PLAN_BUCKET_WIDTH
}

/// The popcount a bucket's plan is derived from: the bucket midpoint,
/// so every probe in the range is at most half a bucket away. Using a
/// fixed representative (rather than whichever probe missed first)
/// keeps the cached plan deterministic for a given `(generation,
/// bucket)` key.
pub fn plan_bucket_representative(bucket: u32) -> u32 {
    bucket * PLAN_BUCKET_WIDTH + PLAN_BUCKET_WIDTH / 2
}

/// A generic LRU cache with stamped lazy recency tracking.
#[derive(Debug)]
pub struct LruCache<K, V> {
    capacity: usize,
    map: HashMap<K, (V, u64)>,
    recency: VecDeque<(u64, K)>,
    stamp: u64,
}

impl<K: std::hash::Hash + Eq + Clone, V: Clone> LruCache<K, V> {
    /// Creates a cache holding at most `capacity` entries; capacity 0
    /// disables caching (every `get` misses, every `put` is dropped).
    pub fn new(capacity: usize) -> Self {
        LruCache {
            capacity,
            map: HashMap::new(),
            recency: VecDeque::new(),
            stamp: 0,
        }
    }

    /// Entries currently cached.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    fn touch(&mut self, key: K) -> u64 {
        self.stamp += 1;
        self.recency.push_back((self.stamp, key));
        // The queue only grows past 4× capacity when it is mostly stale
        // stamps; compact it to the live entries.
        if self.recency.len() > 4 * self.capacity.max(4) {
            let map = &self.map;
            self.recency
                .retain(|(s, k)| map.get(k).is_some_and(|(_, live)| live == s));
        }
        self.stamp
    }

    /// Returns a clone of the cached value and marks it most recent.
    pub fn get(&mut self, key: &K) -> Option<V> {
        if !self.map.contains_key(key) {
            return None;
        }
        let stamp = self.touch(key.clone());
        let (value, live) = self.map.get_mut(key).expect("checked above");
        *live = stamp;
        Some(value.clone())
    }

    /// Inserts a value, evicting the least-recently-used entry if full.
    pub fn put(&mut self, key: K, value: V) {
        if self.capacity == 0 {
            return;
        }
        let stamp = self.touch(key.clone());
        self.map.insert(key, (value, stamp));
        while self.map.len() > self.capacity {
            match self.recency.pop_front() {
                Some((s, k)) => {
                    if self.map.get(&k).is_some_and(|(_, live)| *live == s) {
                        self.map.remove(&k);
                    }
                }
                None => break, // unreachable: map larger than recency queue
            }
        }
    }

    /// Drops every entry (used on insert/compaction install).
    pub fn clear(&mut self) {
        self.map.clear();
        self.recency.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_buckets_group_nearby_popcounts() {
        for q in 0..2048u32 {
            let b = plan_bucket(q);
            let rep = plan_bucket_representative(b);
            assert_eq!(plan_bucket(rep), b, "representative left its bucket");
            assert!(rep.abs_diff(q) <= PLAN_BUCKET_WIDTH, "q={q} rep={rep}");
        }
        assert_eq!(plan_bucket(0), plan_bucket(PLAN_BUCKET_WIDTH - 1));
        assert_ne!(
            plan_bucket(PLAN_BUCKET_WIDTH - 1),
            plan_bucket(PLAN_BUCKET_WIDTH)
        );
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut c: LruCache<u32, &str> = LruCache::new(2);
        c.put(1, "a");
        c.put(2, "b");
        assert_eq!(c.get(&1), Some("a")); // 1 is now most recent
        c.put(3, "c"); // evicts 2
        assert_eq!(c.get(&2), None);
        assert_eq!(c.get(&1), Some("a"));
        assert_eq!(c.get(&3), Some("c"));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn overwrite_updates_value_and_recency() {
        let mut c: LruCache<u32, u32> = LruCache::new(2);
        c.put(1, 10);
        c.put(2, 20);
        c.put(1, 11); // refreshes 1
        c.put(3, 30); // evicts 2, not 1
        assert_eq!(c.get(&1), Some(11));
        assert_eq!(c.get(&2), None);
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut c: LruCache<u32, u32> = LruCache::new(0);
        c.put(1, 10);
        assert_eq!(c.get(&1), None);
        assert!(c.is_empty());
    }

    #[test]
    fn clear_empties_everything() {
        let mut c: LruCache<u32, u32> = LruCache::new(4);
        c.put(1, 1);
        c.put(2, 2);
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.get(&1), None);
    }

    #[test]
    fn recency_queue_stays_bounded_under_churn() {
        let mut c: LruCache<u32, u32> = LruCache::new(4);
        for i in 0..10_000u32 {
            c.put(i % 4, i);
            c.get(&(i % 4));
        }
        assert!(c.len() <= 4);
        assert!(
            c.recency.len() <= 4 * 4 + 1,
            "recency queue grew to {}",
            c.recency.len()
        );
    }
}
