//! The linkage service: snapshot-isolated queries, serialised writes,
//! background compaction, result caching, and the stats surface.
//!
//! Concurrency model in one paragraph: the [`IndexStore`] sits behind a
//! `Mutex` that only *writers* (insert, compaction) take. Queries never
//! touch it — they pin an immutable [`Snapshot`] from the
//! [`SnapshotHub`] and run entirely against in-memory state, so a
//! compaction rewriting segments on the maintenance thread can neither
//! block nor be blocked by reads. After any mutation the writer builds a
//! fresh reader, installs it as the next generation (the on-disk
//! counterpart being `pprl-index`'s atomic tmp+rename manifest swap),
//! and the superseded segment files wait in the hub until every reader
//! of an older generation drains.

use crate::cache::{plan_bucket, plan_bucket_representative, LruCache, PlanKey, QueryKey};
use crate::metrics::Metrics;
use crate::snapshot::{Snapshot, SnapshotHub};
use crate::wire::StatsReport;
use pprl_core::bitvec::BitVec;
use pprl_core::error::{PprlError, Result};
use pprl_index::query::Hit;
use pprl_index::store::{CompactionOutcome, IndexStore, TieredPolicy};
use std::path::Path;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Tunables for a [`LinkageService`].
#[derive(Debug, Clone, Copy)]
pub struct ServiceConfig {
    /// Threads fanned out per top-k scan (1 = scan on the caller).
    pub query_threads: usize,
    /// Result-cache capacity in entries (0 disables caching).
    pub cache_capacity: usize,
    /// Size-tiered compaction policy for maintenance steps.
    pub tiered: TieredPolicy,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            query_threads: 1,
            cache_capacity: 256,
            tiered: TieredPolicy::default(),
        }
    }
}

/// A thread-safe linkage service over one persistent index.
#[derive(Debug)]
pub struct LinkageService {
    store: Mutex<IndexStore>,
    hub: SnapshotHub,
    cache: Mutex<LruCache<QueryKey, Vec<Hit>>>,
    /// Popcount scan plans, keyed `(generation, popcount)`: probes that
    /// miss the exact-key result cache still reuse the slot-visiting
    /// order computed for any earlier probe of the same popcount.
    plans: Mutex<LruCache<PlanKey, Arc<Vec<u32>>>>,
    /// Aggregate counters and the latency histogram.
    pub metrics: Metrics,
    config: ServiceConfig,
    started: Instant,
}

impl LinkageService {
    /// Opens the index at `dir` and builds the generation-0 snapshot.
    /// The snapshot's reader is *lazy*: segment files are read on the
    /// first query that actually needs them (popcount bounds and
    /// band-key summaries prune the rest), not all up front.
    pub fn open(dir: &Path, config: ServiceConfig) -> Result<LinkageService> {
        config.tiered.validate()?;
        let store = IndexStore::open(dir)?;
        let reader = store.lazy_reader()?;
        Ok(LinkageService {
            store: Mutex::new(store),
            hub: SnapshotHub::new(reader),
            cache: Mutex::new(LruCache::new(config.cache_capacity)),
            plans: Mutex::new(LruCache::new(config.cache_capacity)),
            metrics: Metrics::default(),
            config,
            started: Instant::now(),
        })
    }

    /// Pins the snapshot currently being served.
    pub fn snapshot(&self) -> Arc<Snapshot> {
        self.hub.pin()
    }

    /// Generation currently being served.
    pub fn generation(&self) -> u64 {
        self.hub.generation()
    }

    /// Filter length (bits) this index serves.
    pub fn filter_len(&self) -> usize {
        self.hub.pin().reader.filter_len()
    }

    fn check_filter(&self, filter: &BitVec, expected: usize) -> Result<()> {
        if filter.len() != expected {
            return Err(PprlError::shape(
                format!("{expected}-bit filter"),
                format!("{}-bit filter", filter.len()),
            ));
        }
        Ok(())
    }

    /// Answers a top-k Dice query against the current snapshot, serving
    /// from the result cache when possible. Deterministic: hits are
    /// ordered by (score desc, id asc), identical to an offline
    /// [`pprl_index::query::IndexReader::top_k`] on the same generation.
    pub fn query(&self, filter: &BitVec, k: usize) -> Result<Vec<Hit>> {
        let started = Instant::now();
        let snap = self.hub.pin();
        self.check_filter(filter, snap.reader.filter_len())?;
        // The generation inside the key makes stale population harmless:
        // a result computed against generation g can only ever be
        // returned for lookups that also pinned g.
        let key: QueryKey = (snap.generation, filter.to_bytes(), k as u32);
        if let Some(hits) = self.cache.lock().expect("cache lock").get(&key) {
            Metrics::add(&self.metrics.cache_hits, 1);
            Metrics::add(&self.metrics.queries, 1);
            self.metrics.observe_latency(started);
            return Ok(hits);
        }
        Metrics::add(&self.metrics.cache_misses, 1);
        let plan = self.scan_plan(&snap, filter.count_ones());
        let hits = snap
            .reader
            .top_k_planned(filter, k, self.config.query_threads, &plan)?;
        self.cache
            .lock()
            .expect("cache lock")
            .put(key, hits.clone());
        Metrics::add(&self.metrics.queries, 1);
        self.metrics.observe_latency(started);
        Ok(hits)
    }

    /// The cached slot-visiting order for a probe of popcount `q`
    /// against `snap`'s generation, deriving and caching it on a miss.
    /// The plan is purely an ordering hint — results are bit-identical
    /// with or without it (see `IndexReader::top_k_planned`) — so a
    /// cache race can at worst cost a recomputation, never correctness.
    ///
    /// Plans are keyed on the probe's popcount *bucket* and derived
    /// from the bucket midpoint, so a miss-heavy workload whose
    /// popcounts wander within a band still reuses one derivation per
    /// `(generation, bucket)` instead of re-sorting segment bounds for
    /// every distinct popcount. `STATS` exposes the hit/derive split as
    /// `plan_hits` / `plan_misses`.
    fn scan_plan(&self, snap: &Snapshot, q: usize) -> Arc<Vec<u32>> {
        let bucket = plan_bucket(q as u32);
        let key: PlanKey = (snap.generation, bucket);
        if let Some(plan) = self.plans.lock().expect("plan lock").get(&key) {
            Metrics::add(&self.metrics.plan_hits, 1);
            return plan;
        }
        Metrics::add(&self.metrics.plan_misses, 1);
        let plan = Arc::new(
            snap.reader
                .popcount_scan_order(plan_bucket_representative(bucket) as usize),
        );
        self.plans
            .lock()
            .expect("plan lock")
            .put(key, Arc::clone(&plan));
        plan
    }

    /// Batch link: top-k per probe against one pinned snapshot, dropping
    /// hits below `min_score`. All probes see the same generation. The
    /// whole batch runs through one columnar
    /// [`pprl_index::query::IndexReader::top_k_batch`] scan — every arena
    /// block is walked once for all probes — with results bit-identical
    /// to per-probe `top_k` followed by a `min_score` filter.
    pub fn link(&self, probes: &[BitVec], k: usize, min_score: f64) -> Result<Vec<Vec<Hit>>> {
        let started = Instant::now();
        let snap = self.hub.pin();
        for probe in probes {
            self.check_filter(probe, snap.reader.filter_len())?;
        }
        let refs: Vec<&BitVec> = probes.iter().collect();
        let out = snap
            .reader
            .top_k_batch(&refs, k, self.config.query_threads, Some(min_score))?;
        Metrics::add(&self.metrics.links, 1);
        self.metrics.observe_latency(started);
        Ok(out)
    }

    /// Builds a fresh lazy reader from the (locked) store and installs it
    /// as the next generation, clearing the result cache. The retiring
    /// snapshot's cumulative read counter folds into the service metrics
    /// here, so `bytes_read` in [`stats_report`] stays a running total
    /// across generations.
    ///
    /// [`stats_report`]: LinkageService::stats_report
    fn install_fresh(&self, store: &IndexStore, obsolete: Vec<std::path::PathBuf>) -> Result<u64> {
        let reader = store.lazy_reader()?;
        let retiring = self.hub.pin();
        Metrics::add(
            &self.metrics.bytes_read,
            retiring.reader.read_stats().bytes_read,
        );
        let generation = self.hub.install(reader, obsolete);
        self.cache.lock().expect("cache lock").clear();
        self.plans.lock().expect("plan lock").clear();
        Ok(generation)
    }

    /// Appends records durably (WAL + flush to segments) and installs
    /// the next snapshot generation. Returns the new generation.
    pub fn insert(&self, records: &[(u64, BitVec)]) -> Result<u64> {
        let expected = self.filter_len();
        for (_, filter) in records {
            self.check_filter(filter, expected)?;
        }
        let mut store = self.store.lock().expect("store lock");
        store.insert_batch(records)?;
        store.flush()?;
        let generation = self.install_fresh(&store, Vec::new())?;
        Metrics::add(&self.metrics.inserts, 1);
        Ok(generation)
    }

    /// Runs one size-tiered compaction step. When a tier merges, the new
    /// manifest is swapped in atomically, the next snapshot generation
    /// is installed, and the rewritten segment files are queued for
    /// reclamation once readers of older generations drain (attempted
    /// immediately, and again on every later step).
    pub fn compact_step(&self) -> Result<CompactionOutcome> {
        let outcome = {
            let mut store = self.store.lock().expect("store lock");
            let outcome = store.compact_tiered(&self.config.tiered)?;
            if !outcome.is_noop() {
                self.install_fresh(&store, outcome.obsolete.clone())?;
                Metrics::add(&self.metrics.compactions, 1);
                Metrics::add(
                    &self.metrics.segments_merged,
                    outcome.merged_segments as u64,
                );
                Metrics::add(&self.metrics.merge_rows, outcome.records_rewritten as u64);
            }
            outcome
        };
        self.hub.reclaim_drained()?;
        Ok(outcome)
    }

    /// Deletes obsolete segment files of drained generations.
    pub fn reclaim_drained(&self) -> Result<usize> {
        self.hub.reclaim_drained()
    }

    /// Retired generations whose files are still awaiting reclamation.
    pub fn retired_generations(&self) -> usize {
        self.hub.retired_len()
    }

    /// Snapshot of the aggregate stats surface.
    pub fn stats_report(&self, workers: u32, queue_capacity: u32) -> StatsReport {
        let snap = self.hub.pin();
        let read_stats = snap.reader.read_stats();
        StatsReport {
            records: snap.reader.len() as u64,
            generation: snap.generation,
            queries: Metrics::get(&self.metrics.queries),
            links: Metrics::get(&self.metrics.links),
            inserts: Metrics::get(&self.metrics.inserts),
            cache_hits: Metrics::get(&self.metrics.cache_hits),
            cache_misses: Metrics::get(&self.metrics.cache_misses),
            plan_hits: Metrics::get(&self.metrics.plan_hits),
            plan_misses: Metrics::get(&self.metrics.plan_misses),
            busy_rejected: Metrics::get(&self.metrics.busy_rejected),
            compactions: Metrics::get(&self.metrics.compactions),
            segments_merged: Metrics::get(&self.metrics.segments_merged),
            // Retired generations' reads (folded in at install) plus what
            // the live snapshot has lazily materialised so far.
            bytes_read: Metrics::get(&self.metrics.bytes_read) + read_stats.bytes_read,
            latency_p50_us: self.metrics.latency.quantile_us(0.50),
            latency_p99_us: self.metrics.latency.quantile_us(0.99),
            uptime_ms: self.started.elapsed().as_millis() as u64,
            workers,
            queue_capacity,
            quarantined_segments: snap.reader.quarantined_segments() as u64,
            degraded: snap.reader.is_degraded(),
            cluster_shards: 0,
            shards_down: 0,
            missing_shards: Vec::new(),
            merge_rows: Metrics::get(&self.metrics.merge_rows),
            kernel: read_stats.kernel.to_string(),
        }
    }
}
