//! The TCP front end: accept loop, bounded worker pool, sessions, and
//! the background maintenance thread.
//!
//! One connection is one job. The acceptor never blocks the world: the
//! listener is non-blocking and polls the shutdown flag; a connection
//! that does not fit in the bounded queue is answered immediately with
//! `Busy {retry_after}` and closed — the server's memory use is bounded
//! by `workers + queue_capacity` sessions no matter the offered load.
//! Workers poll the queue with a short timeout, and session sockets
//! carry a short read timeout, so every thread observes a shutdown
//! request within ~100 ms without any platform-specific socket tricks.
//! Sockets also carry a write timeout, and a connection idle for longer
//! than [`ServerConfig::idle_timeout`] is closed — a stalled or
//! half-closed client can delay a worker, never pin it indefinitely.
//! The maintenance thread treats a failed compaction step as transient:
//! it backs off exponentially (capped) and retries rather than dying.

use crate::pool::BoundedQueue;
use crate::service::{LinkageService, ServiceConfig};
use crate::wire::{read_payload, write_payload, Incoming, Request, Response};
use pprl_core::error::{PprlError, Result};
use pprl_index::store::TieredPolicy;
use pprl_session::channel::{IncomingRef, SESSION_WIRE_VERSION};
use pprl_session::handshake::{server_handshake, ServerSession};
use pprl_session::keys::entropy_rng;
use pprl_session::registry::AuthRegistry;
use pprl_session::suite::SuiteOffer;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// How long blocked reads/pops wait before re-checking the shutdown
/// flag. Bounds shutdown latency; invisible to throughput.
const POLL_INTERVAL: Duration = Duration::from_millis(100);

/// Tunables for [`serve`].
#[derive(Debug, Clone, Copy)]
pub struct ServerConfig {
    /// Worker threads serving sessions.
    pub workers: usize,
    /// Bounded connection-queue capacity; overflow is rejected with
    /// `Busy` rather than buffered.
    pub queue_capacity: usize,
    /// Threads fanned out per top-k scan.
    pub query_threads: usize,
    /// Result-cache capacity in entries (0 disables).
    pub cache_capacity: usize,
    /// Back-off hint sent with `Busy` rejections, in milliseconds.
    pub retry_after_ms: u32,
    /// Interval between background compaction steps; `None` disables
    /// the maintenance thread entirely.
    pub compact_interval: Option<Duration>,
    /// Size-tiered compaction policy for the maintenance thread.
    pub tiered: TieredPolicy,
    /// Write timeout on accepted sockets: a client that stops draining
    /// responses is disconnected instead of pinning a worker.
    pub write_timeout: Duration,
    /// An established session that completes no frame for this long is
    /// closed (the read side of the anti-pinning guarantee).
    pub idle_timeout: Duration,
    /// Record-layer cipher suites this server will negotiate. Defaults
    /// to all; pin with [`SuiteOffer::only`] to enforce a policy (a
    /// disjoint client is refused before any key material is spent).
    pub suites: SuiteOffer,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 2,
            queue_capacity: 32,
            query_threads: 1,
            cache_capacity: 256,
            retry_after_ms: 50,
            compact_interval: Some(Duration::from_millis(500)),
            tiered: TieredPolicy::default(),
            write_timeout: Duration::from_secs(10),
            idle_timeout: Duration::from_secs(30),
            suites: SuiteOffer::all(),
        }
    }
}

impl ServerConfig {
    fn validate(&self) -> Result<()> {
        if self.workers == 0 {
            return Err(PprlError::invalid("workers", "must be at least 1"));
        }
        if self.queue_capacity == 0 {
            return Err(PprlError::invalid("queue_capacity", "must be at least 1"));
        }
        if self.write_timeout.is_zero() {
            return Err(PprlError::invalid("write_timeout", "must be non-zero"));
        }
        if self.idle_timeout.is_zero() {
            return Err(PprlError::invalid("idle_timeout", "must be non-zero"));
        }
        if self.suites.is_empty() {
            return Err(PprlError::invalid(
                "suites",
                "must allow at least one cipher suite",
            ));
        }
        Ok(())
    }
}

/// The set of tenant namespaces one server process hosts, plus (when
/// authentication is on) the identity registry gating access to them.
///
/// A plaintext server is the degenerate case: one tenant named
/// `default`, no registry. An authenticated server maps each tenant
/// name to its own [`LinkageService`] over its own index directory —
/// disjoint stores, snapshots, caches, and metrics, so per-tenant
/// `STATS` are exactly what a dedicated single-tenant server would
/// report.
pub struct ServerBackend {
    entries: Vec<(String, Arc<LinkageService>)>,
    registry: Option<AuthRegistry>,
}

impl ServerBackend {
    /// The service for `tenant`, if this server hosts it.
    pub fn service(&self, tenant: &str) -> Option<&Arc<LinkageService>> {
        self.entries
            .iter()
            .find(|(name, _)| name == tenant)
            .map(|(_, svc)| svc)
    }

    /// The first (default) tenant's service.
    pub fn default_service(&self) -> &Arc<LinkageService> {
        &self.entries[0].1
    }

    /// Tenant names hosted by this server, in load order.
    pub fn tenants(&self) -> Vec<&str> {
        self.entries.iter().map(|(name, _)| name.as_str()).collect()
    }

    /// The identity registry, when authentication is enabled.
    pub fn registry(&self) -> Option<&AuthRegistry> {
        self.registry.as_ref()
    }
}

/// Everything a session needs, shared across threads.
struct ServerContext {
    backend: Arc<ServerBackend>,
    shutdown: Arc<AtomicBool>,
    workers: u32,
    queue_capacity: u32,
    retry_after_ms: u32,
    write_timeout: Duration,
    idle_timeout: Duration,
    suites: SuiteOffer,
}

/// A running server; dropping the handle does **not** stop it — call
/// [`ServerHandle::shutdown_now`] or send a `Shutdown` request.
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    backend: Arc<ServerBackend>,
    threads: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The address actually bound (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The default tenant's service (for in-process inspection and tests).
    pub fn service(&self) -> &Arc<LinkageService> {
        self.backend.default_service()
    }

    /// The full tenant backend.
    pub fn backend(&self) -> &Arc<ServerBackend> {
        &self.backend
    }

    /// True once a shutdown has been requested.
    pub fn is_shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Requests an orderly shutdown without waiting for it.
    pub fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
    }

    /// Waits for every server thread to exit. Returns the default
    /// tenant's service so callers can read final stats.
    pub fn join(self) -> Arc<LinkageService> {
        for t in self.threads {
            let _ = t.join();
        }
        Arc::clone(self.backend.default_service())
    }

    /// Requests shutdown and waits for it to complete.
    pub fn shutdown_now(self) -> Arc<LinkageService> {
        self.request_shutdown();
        self.join()
    }
}

/// Opens the index at `dir` and serves it on `addr` (e.g.
/// `"127.0.0.1:0"` to bind an ephemeral port). Returns immediately;
/// the returned handle owns the acceptor, worker, and maintenance
/// threads.
pub fn serve(dir: &Path, addr: &str, config: ServerConfig) -> Result<ServerHandle> {
    config.validate()?;
    let service = open_service(dir, &config)?;
    let backend = ServerBackend {
        entries: vec![("default".to_string(), service)],
        registry: None,
    };
    serve_backend(backend, addr, config)
}

/// Serves with authentication and multi-tenant namespaces enabled.
///
/// Every connection must complete the wire v4 handshake against
/// `registry`; plaintext v3 requests are rejected. The directory layout
/// under `root` follows a simple rule: if `root` itself contains a
/// `MANIFEST` it is served as the single tenant `default`; otherwise
/// each tenant named by the registry's grants is served from
/// `root/<tenant>`, which must already hold an index.
pub fn serve_auth(
    root: &Path,
    addr: &str,
    config: ServerConfig,
    registry: AuthRegistry,
) -> Result<ServerHandle> {
    config.validate()?;
    if registry.is_empty() {
        return Err(PprlError::Auth(
            "auth registry is empty: no identities would be able to connect".into(),
        ));
    }
    let mut entries = Vec::new();
    if root.join("MANIFEST").exists() {
        entries.push(("default".to_string(), open_service(root, &config)?));
    } else {
        for tenant in registry.tenants() {
            let dir = root.join(&tenant);
            if !dir.join("MANIFEST").exists() {
                return Err(PprlError::Storage(format!(
                    "tenant `{tenant}` has no index at {} (expected a MANIFEST)",
                    dir.display()
                )));
            }
            let service = open_service(&dir, &config)?;
            entries.push((tenant, service));
        }
    }
    if entries.is_empty() {
        return Err(PprlError::Auth(
            "no tenant namespaces to serve: grant at least one identity a named tenant".into(),
        ));
    }
    let backend = ServerBackend {
        entries,
        registry: Some(registry),
    };
    serve_backend(backend, addr, config)
}

fn open_service(dir: &Path, config: &ServerConfig) -> Result<Arc<LinkageService>> {
    Ok(Arc::new(LinkageService::open(
        dir,
        ServiceConfig {
            query_threads: config.query_threads,
            cache_capacity: config.cache_capacity,
            tiered: config.tiered,
        },
    )?))
}

fn serve_backend(backend: ServerBackend, addr: &str, config: ServerConfig) -> Result<ServerHandle> {
    let backend = Arc::new(backend);
    let listener = TcpListener::bind(addr)
        .map_err(|e| PprlError::Transport(format!("binding {addr}: {e}")))?;
    let local_addr = listener
        .local_addr()
        .map_err(|e| PprlError::Transport(format!("resolving bound address: {e}")))?;
    listener
        .set_nonblocking(true)
        .map_err(|e| PprlError::Transport(format!("setting listener non-blocking: {e}")))?;

    let shutdown = Arc::new(AtomicBool::new(false));
    let queue: Arc<BoundedQueue<TcpStream>> = Arc::new(BoundedQueue::new(config.queue_capacity));
    let context = Arc::new(ServerContext {
        backend: Arc::clone(&backend),
        shutdown: Arc::clone(&shutdown),
        workers: config.workers as u32,
        queue_capacity: config.queue_capacity as u32,
        retry_after_ms: config.retry_after_ms,
        write_timeout: config.write_timeout,
        idle_timeout: config.idle_timeout,
        suites: config.suites,
    });

    let mut threads = Vec::with_capacity(config.workers + 2);
    for _ in 0..config.workers {
        let queue = Arc::clone(&queue);
        let context = Arc::clone(&context);
        threads.push(std::thread::spawn(move || worker_loop(&queue, &context)));
    }
    {
        let queue = Arc::clone(&queue);
        let context = Arc::clone(&context);
        threads.push(std::thread::spawn(move || {
            accept_loop(&listener, &queue, &context);
        }));
    }
    if let Some(interval) = config.compact_interval {
        let services: Vec<Arc<LinkageService>> = backend
            .entries
            .iter()
            .map(|(_, svc)| Arc::clone(svc))
            .collect();
        let shutdown = Arc::clone(&shutdown);
        threads.push(std::thread::spawn(move || {
            maintenance_loop(&services, &shutdown, interval);
        }));
    }

    Ok(ServerHandle {
        addr: local_addr,
        shutdown,
        backend,
        threads,
    })
}

fn accept_loop(listener: &TcpListener, queue: &BoundedQueue<TcpStream>, context: &ServerContext) {
    while !context.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                let _ = stream.set_nodelay(true);
                let _ = stream.set_read_timeout(Some(POLL_INTERVAL));
                let _ = stream.set_write_timeout(Some(context.write_timeout));
                if let Err(mut rejected) = queue.try_push(stream) {
                    crate::metrics::Metrics::add(
                        &context.backend.default_service().metrics.busy_rejected,
                        1,
                    );
                    let busy = Response::Busy {
                        retry_after_ms: context.retry_after_ms,
                    };
                    let _ = write_payload(&mut rejected, &busy.encode());
                    // Dropping the stream closes the rejected connection.
                }
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::Interrupted =>
            {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    }
    // Stop producers; workers drain what's queued, then exit.
    queue.close();
}

fn worker_loop(queue: &BoundedQueue<TcpStream>, context: &ServerContext) {
    loop {
        match queue.pop_timeout(POLL_INTERVAL) {
            Some(stream) => handle_session(stream, context),
            None => {
                if context.shutdown.load(Ordering::SeqCst) {
                    return;
                }
            }
        }
    }
}

fn maintenance_loop(services: &[Arc<LinkageService>], shutdown: &AtomicBool, interval: Duration) {
    let slice = Duration::from_millis(20);
    let mut failures: u32 = 0;
    'outer: loop {
        // Exponential backoff after failed steps (2x per consecutive
        // failure, capped at 32x the base interval) so a disk that is
        // briefly unwritable is not hammered every tick.
        let wait = interval.saturating_mul(1 << failures.min(5));
        let mut slept = Duration::ZERO;
        while slept < wait {
            if shutdown.load(Ordering::SeqCst) {
                break 'outer;
            }
            std::thread::sleep(slice);
            slept += slice;
        }
        // Compaction is best-effort maintenance: a failed step (e.g. a
        // transient I/O error) must not kill the serving path; a later
        // tick retries. reclaim_drained runs inside compact_step. One
        // thread round-robins every tenant's store.
        let mut any_failed = false;
        for service in services {
            if service.compact_step().is_err() {
                any_failed = true;
            }
        }
        failures = if any_failed {
            failures.saturating_add(1)
        } else {
            0
        };
    }
    for service in services {
        let _ = service.reclaim_drained();
    }
}

/// Serves one connection until EOF, shutdown, or a framing error.
///
/// The first frame routes the connection: a payload leading with the
/// session version byte enters the wire v4 handshake (when the server
/// has a registry), anything else is a plaintext wire v3 request (only
/// accepted when it does not). The mismatched combinations are both
/// rejected with a plaintext `ServerError` naming the problem, since
/// no session keys exist yet to say it authenticated.
fn handle_session(mut stream: TcpStream, context: &ServerContext) {
    let mut idle = Duration::ZERO;
    let first = loop {
        if context.shutdown.load(Ordering::SeqCst) {
            return;
        }
        match read_payload(&mut stream) {
            Ok(Incoming::TimedOut) => {
                idle += POLL_INTERVAL;
                if idle >= context.idle_timeout {
                    return;
                }
            }
            Ok(Incoming::Eof) => return,
            Ok(Incoming::Payload(payload)) => break payload,
            Err(e) => {
                let err = Response::ServerError {
                    message: e.to_string(),
                };
                let _ = write_payload(&mut stream, &err.encode());
                return;
            }
        }
    };

    match (context.backend.registry(), first.first()) {
        (Some(registry), Some(&SESSION_WIRE_VERSION)) => {
            let mut rng = entropy_rng();
            // On failure the handshake has already sent the typed
            // AUTH_ERROR where one is safe to send; just close.
            if let Ok(session) =
                server_handshake(&mut stream, &first, registry, &mut rng, context.suites)
            {
                serve_authenticated(stream, session, context);
            }
        }
        (Some(_), _) => {
            // Auth is on but the peer spoke plaintext v3: refuse before
            // interpreting anything.
            let err = Response::ServerError {
                message: "authentication required: this server only accepts \
                          wire v4 sessions (connect with an identity and key)"
                    .into(),
            };
            let _ = write_payload(&mut stream, &err.encode());
        }
        (None, Some(&SESSION_WIRE_VERSION)) => {
            let err = Response::ServerError {
                message: "this server is not configured for authenticated \
                          sessions (start it with an auth directory)"
                    .into(),
            };
            let _ = write_payload(&mut stream, &err.encode());
        }
        (None, _) => serve_plain(stream, first, context, idle),
    }
}

/// The plaintext wire v3 session loop, starting from an already-read
/// first payload.
fn serve_plain(mut stream: TcpStream, first: Vec<u8>, context: &ServerContext, mut idle: Duration) {
    let service = Arc::clone(context.backend.default_service());
    let mut pending = Some(first);
    loop {
        if context.shutdown.load(Ordering::SeqCst) {
            return;
        }
        let payload = match pending.take() {
            Some(p) => p,
            None => match read_payload(&mut stream) {
                Ok(Incoming::TimedOut) => {
                    // Each timed-out read is one POLL_INTERVAL of
                    // silence; a session idle past the cap is closed so
                    // it cannot pin its worker forever.
                    idle += POLL_INTERVAL;
                    if idle >= context.idle_timeout {
                        return;
                    }
                    continue;
                }
                Ok(Incoming::Eof) => return,
                Ok(Incoming::Payload(p)) => p,
                Err(e) => {
                    // Framing is broken (bad checksum / truncation): the
                    // byte stream can no longer be trusted, so answer
                    // best-effort and drop the connection.
                    let err = Response::ServerError {
                        message: e.to_string(),
                    };
                    let _ = write_payload(&mut stream, &err.encode());
                    return;
                }
            },
        };
        idle = Duration::ZERO;
        let response = match Request::decode(&payload) {
            Ok(Request::Shutdown) => {
                let _ = write_payload(&mut stream, &Response::Bye.encode());
                context.shutdown.store(true, Ordering::SeqCst);
                return;
            }
            // The frame was checksum-intact, so the stream is
            // still in sync: report the bad body, keep serving.
            Err(e) => Response::ServerError {
                message: e.to_string(),
            },
            Ok(request) => dispatch(request, &service, context),
        };
        if write_payload(&mut stream, &response.encode()).is_err() {
            return; // peer went away mid-response
        }
    }
}

/// The authenticated session loop: every frame must open under the
/// session's keys before its inner opcode is even looked at. A frame
/// that fails its MAC or sequence check closes the connection without a
/// reply — a forger gets no feedback beyond the drop.
///
/// Frames are received with [`SecureChannel::recv_ref`] and decoded
/// in place: the channel's reusable buffers mean a steady-state
/// request/response cycle performs no heap allocation inside the
/// record layer.
fn serve_authenticated(mut stream: TcpStream, mut session: ServerSession, context: &ServerContext) {
    let service = context.backend.service(&session.tenant).cloned();
    let mut idle = Duration::ZERO;
    loop {
        if context.shutdown.load(Ordering::SeqCst) {
            return;
        }
        // Decode while the frame is still borrowed from the channel's
        // receive buffer; `Request` owns its fields, so the borrow ends
        // here and the channel is free to send the response.
        let decoded = match session.channel.recv_ref(&mut stream) {
            Ok(IncomingRef::TimedOut) => {
                idle += POLL_INTERVAL;
                if idle >= context.idle_timeout {
                    return;
                }
                continue;
            }
            Ok(IncomingRef::Eof) => return,
            Ok(IncomingRef::Payload(inner)) => Request::decode(inner),
            Err(_) => return,
        };
        idle = Duration::ZERO;
        let Some(service) = service.as_ref() else {
            // A privileged identity may name any tenant at handshake;
            // only some tenants have an index on this node.
            let err = Response::ServerError {
                message: format!(
                    "tenant `{}` has no index namespace on this server",
                    session.tenant
                ),
            };
            let _ = session.channel.send(&mut stream, &err.encode());
            return;
        };
        let response = match decoded {
            Ok(Request::Shutdown) => {
                if session.privileged {
                    let _ = session.channel.send(&mut stream, &Response::Bye.encode());
                    context.shutdown.store(true, Ordering::SeqCst);
                    return;
                }
                Response::ServerError {
                    message: PprlError::Auth(format!(
                        "identity `{}` is not privileged to shut down the server",
                        session.identity
                    ))
                    .to_string(),
                }
            }
            Err(e) => Response::ServerError {
                message: e.to_string(),
            },
            Ok(request) => dispatch(request, service, context),
        };
        if session
            .channel
            .send(&mut stream, &response.encode())
            .is_err()
        {
            return;
        }
    }
}

fn dispatch(request: Request, service: &LinkageService, context: &ServerContext) -> Response {
    let result = match request {
        Request::Query { filter, k } => service.query(&filter, k as usize).map(Response::Hits),
        Request::Link {
            probes,
            k,
            min_score,
        } => service
            .link(&probes, k as usize, min_score)
            .map(Response::LinkHits),
        Request::Insert { records } => {
            service
                .insert(&records)
                .map(|generation| Response::Inserted {
                    count: records.len() as u32,
                    generation,
                })
        }
        Request::Stats => Ok(Response::Stats(
            service.stats_report(context.workers, context.queue_capacity),
        )),
        Request::Shutdown => unreachable!("handled by the session loop"),
    };
    result.unwrap_or_else(|e| Response::ServerError {
        message: e.to_string(),
    })
}
