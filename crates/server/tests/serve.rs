//! End-to-end tests for `pprl-server`: concurrent TCP queries
//! bit-identical to offline reads while background compaction runs,
//! explicit backpressure, cache invalidation on insert, snapshot
//! isolation under compaction, and framing robustness.

use pprl_core::bitvec::BitVec;
use pprl_core::error::PprlError;
use pprl_index::manifest::IndexConfig;
use pprl_index::query::Hit;
use pprl_index::store::{IndexStore, TieredPolicy};
use pprl_server::client::Client;
use pprl_server::server::{serve, ServerConfig};
use pprl_server::service::{LinkageService, ServiceConfig};
use pprl_server::wire::{read_payload, write_payload, Incoming, Request, Response};
use std::path::PathBuf;
use std::time::Duration;

const FILTER_LEN: usize = 256;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "pprl-serve-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Deterministic pseudo-random filter for record `id`.
fn filter_for(id: u64) -> BitVec {
    let mut positions = Vec::new();
    let mut x = id.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(17);
    for _ in 0..40 {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        positions.push((x % FILTER_LEN as u64) as usize);
    }
    positions.sort_unstable();
    positions.dedup();
    BitVec::from_positions(FILTER_LEN, &positions).unwrap()
}

/// Builds an index of `n` records flushed in `batches` segments per
/// batch boundary, so tiered compaction has real work to do.
fn build_index(dir: &std::path::Path, n: u64, batches: u64) -> IndexStore {
    let mut store = IndexStore::create(dir, IndexConfig::new(FILTER_LEN, 4)).unwrap();
    let per = n.div_ceil(batches);
    for b in 0..batches {
        let records: Vec<(u64, BitVec)> = (b * per..((b + 1) * per).min(n))
            .map(|id| (id, filter_for(id)))
            .collect();
        if records.is_empty() {
            break;
        }
        store.insert_batch(&records).unwrap();
        store.flush().unwrap();
    }
    store
}

fn aggressive_policy() -> TieredPolicy {
    TieredPolicy {
        min_segments: 2,
        growth: 4,
        min_bytes: 4096,
    }
}

/// The headline acceptance criterion: concurrent clients get results
/// bit-for-bit equal to the offline reader while a background
/// compaction triggered mid-load completes without a failed read.
#[test]
fn concurrent_queries_match_offline_during_background_compaction() {
    let dir = temp_dir("concurrent");
    let store = build_index(&dir, 400, 16);
    let probes: Vec<BitVec> = (0..8).map(|i| filter_for(1000 + i)).collect();
    let offline = store.reader().unwrap();
    let expected: Vec<Vec<Hit>> = probes
        .iter()
        .map(|p| offline.top_k(p, 5, 1).unwrap())
        .collect();
    drop(store);

    let handle = serve(
        &dir,
        "127.0.0.1:0",
        ServerConfig {
            workers: 3,
            queue_capacity: 16,
            compact_interval: Some(Duration::from_millis(25)),
            tiered: aggressive_policy(),
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = handle.addr().to_string();

    let clients: Vec<_> = (0..3)
        .map(|_| {
            let addr = addr.clone();
            let probes = probes.clone();
            let expected = expected.clone();
            std::thread::spawn(move || {
                let mut client =
                    Client::connect_retry(&addr, 20, Duration::from_millis(10)).unwrap();
                for round in 0..25 {
                    for (probe, want) in probes.iter().zip(&expected) {
                        let got = client.query(probe, 5).unwrap();
                        assert_eq!(&got, want, "round {round}: served hits diverged");
                    }
                    std::thread::sleep(Duration::from_millis(2));
                }
            })
        })
        .collect();
    for c in clients {
        c.join().unwrap();
    }

    // The load ran long enough for several maintenance ticks; compaction
    // must have merged at least once and never failed a read (asserted
    // above by every query succeeding bit-identically).
    let mut client = Client::connect(&addr).unwrap();
    let stats = client.stats().unwrap();
    assert!(stats.compactions >= 1, "no background compaction ran");
    assert!(stats.generation >= 1);
    assert_eq!(stats.queries, 3 * 25 * 8);
    assert!(stats.cache_hits > 0, "repeated queries never hit the cache");
    assert_eq!(stats.records, 400);
    client.shutdown().unwrap();
    let service = handle.join();
    assert_eq!(service.retired_generations(), 0, "files not reclaimed");

    // The compacted on-disk index still answers identically offline.
    let reopened = IndexStore::open(&dir).unwrap();
    let reader = reopened.reader().unwrap();
    for (probe, want) in probes.iter().zip(&expected) {
        assert_eq!(&reader.top_k(probe, 5, 1).unwrap(), want);
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// Satellite: a reader pinned to an old snapshot returns bit-for-bit
/// identical top-k results while compaction rewrites segments and swaps
/// the manifest underneath it, and obsolete files survive until that
/// reader drains.
#[test]
fn old_snapshot_reads_identical_while_compaction_swaps() {
    let dir = temp_dir("snapshot");
    drop(build_index(&dir, 300, 12));
    let service = LinkageService::open(
        &dir,
        ServiceConfig {
            tiered: aggressive_policy(),
            ..ServiceConfig::default()
        },
    )
    .unwrap();

    let probes: Vec<BitVec> = (0..6).map(|i| filter_for(2000 + i)).collect();
    let pinned = service.snapshot();
    assert_eq!(pinned.generation, 0);
    let expected: Vec<Vec<Hit>> = probes
        .iter()
        .map(|p| pinned.reader.top_k(p, 7, 1).unwrap())
        .collect();

    let outcome = service.compact_step().unwrap();
    assert!(!outcome.is_noop(), "compaction found nothing to merge");
    assert!(service.generation() >= 1);
    // The pinned generation still exists, so its files must too.
    assert!(service.retired_generations() >= 1);
    for path in &outcome.obsolete {
        assert!(
            path.exists(),
            "{} reclaimed under a live reader",
            path.display()
        );
    }

    // Old snapshot: bit-for-bit identical results mid-rewrite.
    for (probe, want) in probes.iter().zip(&expected) {
        assert_eq!(&pinned.reader.top_k(probe, 7, 1).unwrap(), want);
    }
    // New snapshot: same logical content, same exact results.
    for (probe, want) in probes.iter().zip(&expected) {
        assert_eq!(&service.query(probe, 7).unwrap(), want);
    }

    // Only once the old reader drains do the files go away.
    drop(pinned);
    assert!(service.reclaim_drained().unwrap() >= 1);
    assert_eq!(service.retired_generations(), 0);
    for path in &outcome.obsolete {
        assert!(
            !path.exists(),
            "{} not reclaimed after drain",
            path.display()
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// Overflowing the bounded queue yields an immediate `Busy` with the
/// configured retry hint — not an ever-growing backlog.
#[test]
fn full_queue_rejects_with_busy_retry_after() {
    let dir = temp_dir("busy");
    drop(build_index(&dir, 50, 2));
    let handle = serve(
        &dir,
        "127.0.0.1:0",
        ServerConfig {
            workers: 1,
            queue_capacity: 1,
            retry_after_ms: 77,
            compact_interval: None,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = handle.addr().to_string();

    // Occupy the only worker with an idle session, then fill the queue.
    let held = Client::connect_retry(&addr, 20, Duration::from_millis(10)).unwrap();
    std::thread::sleep(Duration::from_millis(150)); // worker picks it up
    let queued = Client::connect(&addr).unwrap();
    std::thread::sleep(Duration::from_millis(50));

    // Third connection overflows: raw socket sees the Busy frame.
    let mut raw = std::net::TcpStream::connect(&addr).unwrap();
    raw.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    match read_payload(&mut raw).unwrap() {
        Incoming::Payload(p) => match Response::decode(&p).unwrap() {
            Response::Busy { retry_after_ms } => assert_eq!(retry_after_ms, 77),
            other => panic!("expected Busy, got {other:?}"),
        },
        other => panic!("expected a frame, got {other:?}"),
    }

    // The typed client absorbs Busy with backoff + reconnect; with the
    // server still saturated and a short deadline, the rejection
    // surfaces as a busy Timeout once the deadline is spent.
    let mut rejected = Client::connect(&addr).unwrap();
    rejected.set_deadline(Duration::from_millis(300));
    match rejected.stats() {
        Err(PprlError::Timeout(msg)) => assert!(msg.contains("busy"), "{msg}"),
        other => panic!("expected busy Timeout, got {other:?}"),
    }

    // Draining both idle sessions frees the worker and the queue slot.
    drop(held);
    drop(queued);
    std::thread::sleep(Duration::from_millis(300));
    let mut ok = Client::connect_retry(&addr, 40, Duration::from_millis(25)).unwrap();
    let mut stats = None;
    for _ in 0..40 {
        match ok.stats() {
            Ok(s) => {
                stats = Some(s);
                break;
            }
            Err(PprlError::Timeout(_)) => {
                std::thread::sleep(Duration::from_millis(50));
                ok = Client::connect_retry(&addr, 40, Duration::from_millis(25)).unwrap();
            }
            Err(e) => panic!("stats failed: {e}"),
        }
    }
    let stats = stats.expect("server never recovered from backpressure");
    assert!(stats.busy_rejected >= 2);
    ok.shutdown().unwrap();
    handle.join();
    std::fs::remove_dir_all(&dir).ok();
}

/// A client that connects and then goes silent (or half-closes) must
/// not pin the only worker forever: after `idle_timeout` the server
/// closes the session and serves the next connection.
#[test]
fn stalled_client_cannot_pin_a_worker() {
    use std::io::Read;
    let dir = temp_dir("slow-client");
    drop(build_index(&dir, 30, 2));
    let handle = serve(
        &dir,
        "127.0.0.1:0",
        ServerConfig {
            workers: 1,
            queue_capacity: 1,
            compact_interval: None,
            idle_timeout: Duration::from_millis(300),
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = handle.addr().to_string();

    // The stalled client occupies the worker without ever sending a
    // complete frame.
    let mut stalled = std::net::TcpStream::connect(&addr).unwrap();
    std::thread::sleep(Duration::from_millis(150)); // worker adopts it

    // A well-behaved client queues behind it and is served once the
    // idle cap evicts the staller (its internal Busy backoff absorbs
    // any queue-full rejections in between).
    let mut ok = Client::connect_retry(&addr, 40, Duration::from_millis(25)).unwrap();
    ok.set_deadline(Duration::from_secs(10));
    let stats = ok.stats().expect("server must free the pinned worker");
    assert!(stats.records > 0);

    // The server closed the stalled session: its socket reads EOF.
    stalled
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    let mut sink = [0u8; 16];
    match stalled.read(&mut sink) {
        Ok(0) => {}
        other => panic!("expected server-side close, got {other:?}"),
    }

    ok.shutdown().unwrap();
    handle.join();
    std::fs::remove_dir_all(&dir).ok();
}

/// Wire inserts are durable, bump the generation, and invalidate the
/// result cache so the new record is immediately visible.
#[test]
fn insert_over_wire_invalidates_cache_and_bumps_generation() {
    let dir = temp_dir("insert");
    drop(build_index(&dir, 100, 4));
    let handle = serve(
        &dir,
        "127.0.0.1:0",
        ServerConfig {
            workers: 1,
            compact_interval: None,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = handle.addr().to_string();
    let mut client = Client::connect_retry(&addr, 20, Duration::from_millis(10)).unwrap();

    let probe = filter_for(5000);
    let before = client.query(&probe, 3).unwrap();
    assert!(before.iter().all(|h| h.id != 5000));
    let cached = client.query(&probe, 3).unwrap();
    assert_eq!(before, cached);

    // Insert the probe itself: it must become the top hit at score 1.
    let (count, generation) = client.insert(&[(5000, probe.clone())]).unwrap();
    assert_eq!(count, 1);
    assert_eq!(generation, 1);
    let after = client.query(&probe, 3).unwrap();
    assert_eq!(after[0].id, 5000);
    assert!((after[0].score - 1.0).abs() < 1e-12);

    let stats = client.stats().unwrap();
    assert_eq!(stats.inserts, 1);
    assert_eq!(stats.generation, 1);
    assert_eq!(stats.records, 101);
    assert!(stats.cache_hits >= 1);
    client.shutdown().unwrap();
    handle.join();

    // Durability: a reopened store sees the inserted record.
    let store = IndexStore::open(&dir).unwrap();
    assert_eq!(store.record_count().unwrap(), 101);
    std::fs::remove_dir_all(&dir).ok();
}

/// Malformed input: a corrupt frame gets a typed error and only kills
/// that connection; a shape-mismatched query errors but keeps its
/// session; the server keeps serving either way.
#[test]
fn malformed_frames_and_bad_requests_get_typed_errors() {
    let dir = temp_dir("malformed");
    drop(build_index(&dir, 30, 1));
    let handle = serve(
        &dir,
        "127.0.0.1:0",
        ServerConfig {
            workers: 1,
            compact_interval: None,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = handle.addr().to_string();

    // Corrupt checksum: ServerError frame, then the connection closes.
    {
        let mut raw = std::net::TcpStream::connect(&addr).unwrap();
        raw.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        std::thread::sleep(Duration::from_millis(100)); // reach a worker
        let mut frame = Vec::new();
        write_payload(&mut frame, &Request::Stats.encode()).unwrap();
        let last = frame.len() - 1;
        frame[last] ^= 0xff;
        use std::io::Write as _;
        raw.write_all(&frame).unwrap();
        match read_payload(&mut raw).unwrap() {
            Incoming::Payload(p) => match Response::decode(&p).unwrap() {
                Response::ServerError { message } => {
                    assert!(message.contains("checksum"), "got: {message}")
                }
                other => panic!("expected ServerError, got {other:?}"),
            },
            other => panic!("expected a frame, got {other:?}"),
        }
        match read_payload(&mut raw).unwrap() {
            Incoming::Eof => {}
            other => panic!("expected connection close, got {other:?}"),
        }
    }

    // Wrong filter length: typed error, session survives.
    let mut client = Client::connect_retry(&addr, 20, Duration::from_millis(10)).unwrap();
    let bad = BitVec::from_positions(FILTER_LEN / 2, &[1, 2]).unwrap();
    match client.query(&bad, 3) {
        Err(PprlError::ProtocolError(msg)) => assert!(msg.contains("shape"), "got: {msg}"),
        other => panic!("expected a protocol error, got {other:?}"),
    }
    assert!(!client.query(&filter_for(1), 3).unwrap().is_empty());
    client.shutdown().unwrap();
    handle.join();
    std::fs::remove_dir_all(&dir).ok();
}

/// Batch link over the wire matches per-probe offline top-k with the
/// score threshold applied, all against one generation.
#[test]
fn link_request_matches_offline_thresholded_topk() {
    let dir = temp_dir("link");
    let store = build_index(&dir, 150, 6);
    let probes: Vec<BitVec> = (0..5).map(filter_for).collect(); // known records
    let offline = store.reader().unwrap();
    let expected: Vec<Vec<Hit>> = probes
        .iter()
        .map(|p| {
            let mut hits = offline.top_k(p, 4, 1).unwrap();
            hits.retain(|h| h.score >= 0.6);
            hits
        })
        .collect();
    drop(store);

    let handle = serve(
        &dir,
        "127.0.0.1:0",
        ServerConfig {
            workers: 1,
            compact_interval: None,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let mut client =
        Client::connect_retry(&handle.addr().to_string(), 20, Duration::from_millis(10)).unwrap();
    let got = client.link(&probes, 4, 0.6).unwrap();
    assert_eq!(got, expected);
    // Each probe's own record is a perfect match.
    for (i, hits) in got.iter().enumerate() {
        assert_eq!(hits[0].id, i as u64);
        assert!((hits[0].score - 1.0).abs() < 1e-12);
    }
    client.shutdown().unwrap();
    handle.join();
    std::fs::remove_dir_all(&dir).ok();
}

/// The scan-plan cache keys on popcount *buckets*: distinct probes
/// whose popcounts fall in one bucket share a single derivation, while
/// answers stay bit-identical to the offline reader (the plan is only
/// an ordering hint).
#[test]
fn plan_cache_shares_one_derivation_per_popcount_bucket() {
    let dir = temp_dir("plan-bucket");
    let store = build_index(&dir, 120, 3);
    let offline = store.reader().unwrap();
    drop(store);
    let service = LinkageService::open(&dir, ServiceConfig::default()).unwrap();

    // Nine distinct probes with popcounts 32..=40 — all inside one
    // 16-wide bucket. Their filter bytes differ, so the exact-key
    // result cache never hits; only the plan cache can save work.
    for q in 32..=40usize {
        let positions: Vec<usize> = (0..q).map(|i| (i * 5 + q) % FILTER_LEN).collect();
        let f = BitVec::from_positions(FILTER_LEN, &positions).unwrap();
        assert_eq!(f.count_ones(), q);
        let hits = service.query(&f, 5).unwrap();
        assert_eq!(hits, offline.top_k(&f, 5, 1).unwrap(), "popcount {q}");
    }
    let stats = service.stats_report(1, 1);
    assert_eq!(
        stats.plan_misses, 1,
        "nearby popcounts re-derived the scan plan"
    );
    assert_eq!(stats.plan_hits, 8);

    // A probe two buckets away derives its own plan.
    let positions: Vec<usize> = (0..100).collect();
    let f = BitVec::from_positions(FILTER_LEN, &positions).unwrap();
    let hits = service.query(&f, 5).unwrap();
    assert_eq!(hits, offline.top_k(&f, 5, 1).unwrap());
    let stats = service.stats_report(1, 1);
    assert_eq!(stats.plan_misses, 2);
    std::fs::remove_dir_all(&dir).ok();
}
