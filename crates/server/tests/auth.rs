//! End-to-end tests for the authenticated, multi-tenant server:
//! handshake gating, per-tenant namespace isolation, STATS parity with
//! dedicated single-tenant servers, privileged shutdown, and encrypted
//! sessions carrying the full request surface.

use pprl_core::bitvec::BitVec;
use pprl_index::manifest::IndexConfig;
use pprl_index::store::IndexStore;
use pprl_server::client::Client;
use pprl_server::server::{serve, serve_auth, ServerConfig};
use pprl_server::wire::StatsReport;
use pprl_session::handshake::ClientAuth;
use pprl_session::keys::PartyKey;
use pprl_session::registry::{AuthRegistry, TenantGrant};
use pprl_session::suite::SuiteOffer;
use std::path::{Path, PathBuf};
use std::time::Duration;

const FILTER_LEN: usize = 256;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "pprl-auth-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn filter_for(id: u64) -> BitVec {
    let mut positions = Vec::new();
    let mut x = id.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(17);
    for _ in 0..40 {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        positions.push((x % FILTER_LEN as u64) as usize);
    }
    positions.sort_unstable();
    positions.dedup();
    BitVec::from_positions(FILTER_LEN, &positions).unwrap()
}

/// Builds a tenant index under `dir` with `n` records offset by `base`
/// (distinct bases give tenants provably disjoint contents).
fn build_index(dir: &Path, base: u64, n: u64) {
    let mut store = IndexStore::create(dir, IndexConfig::new(FILTER_LEN, 4)).unwrap();
    let records: Vec<(u64, BitVec)> = (base..base + n).map(|id| (id, filter_for(id))).collect();
    store.insert_batch(&records).unwrap();
    store.flush().unwrap();
}

fn quiet_config() -> ServerConfig {
    ServerConfig {
        workers: 2,
        queue_capacity: 8,
        compact_interval: None,
        idle_timeout: Duration::from_secs(5),
        ..ServerConfig::default()
    }
}

fn two_tenant_registry() -> (AuthRegistry, PartyKey, PartyKey, PartyKey) {
    let key_a = PartyKey::from_bytes([0xA1; 32]);
    let key_b = PartyKey::from_bytes([0xB2; 32]);
    let key_admin = PartyKey::from_bytes([0xAD; 32]);
    let mut reg = AuthRegistry::new();
    reg.insert("org-a", key_a.clone(), TenantGrant::One("org-a".into()))
        .unwrap();
    reg.insert("org-b", key_b.clone(), TenantGrant::One("org-b".into()))
        .unwrap();
    reg.insert("admin", key_admin.clone(), TenantGrant::Any)
        .unwrap();
    (reg, key_a, key_b, key_admin)
}

fn auth(identity: &str, key: &PartyKey, tenant: &str, encrypt: bool) -> ClientAuth {
    ClientAuth {
        identity: identity.into(),
        key: key.clone(),
        tenant: tenant.into(),
        encrypt,
        suites: SuiteOffer::default(),
    }
}

/// Scrubs the fields that legitimately differ run to run (latency,
/// uptime) so the remaining report can be compared bit for bit.
fn normalize(mut s: StatsReport) -> StatsReport {
    s.latency_p50_us = 0;
    s.latency_p99_us = 0;
    s.uptime_ms = 0;
    s
}

#[test]
fn two_tenants_disjoint_and_bit_identical_to_single_tenant_servers() {
    // One server hosting two tenants...
    let root = temp_dir("multi");
    build_index(&root.join("org-a"), 0, 120);
    build_index(&root.join("org-b"), 10_000, 80);
    let (reg, key_a, key_b, _) = two_tenant_registry();
    let handle = serve_auth(&root, "127.0.0.1:0", quiet_config(), reg).unwrap();
    let addr = handle.addr().to_string();

    // ...and two dedicated single-tenant plaintext servers as oracles.
    let solo_a_dir = temp_dir("solo-a");
    let solo_b_dir = temp_dir("solo-b");
    build_index(&solo_a_dir, 0, 120);
    build_index(&solo_b_dir, 10_000, 80);
    let solo_a = serve(&solo_a_dir, "127.0.0.1:0", quiet_config()).unwrap();
    let solo_b = serve(&solo_b_dir, "127.0.0.1:0", quiet_config()).unwrap();

    let mut ca = Client::connect_with(&addr, Some(auth("org-a", &key_a, "org-a", false))).unwrap();
    let mut cb = Client::connect_with(&addr, Some(auth("org-b", &key_b, "org-b", true))).unwrap();
    let mut oa = Client::connect(&solo_a.addr().to_string()).unwrap();
    let mut ob = Client::connect(&solo_b.addr().to_string()).unwrap();

    // Identical queries against tenant and oracle give identical hits.
    for probe_id in [3u64, 77, 10_005, 999] {
        let probe = filter_for(probe_id);
        assert_eq!(
            ca.query(&probe, 5).unwrap(),
            oa.query(&probe, 5).unwrap(),
            "tenant org-a diverged from its dedicated server on probe {probe_id}"
        );
        assert_eq!(
            cb.query(&probe, 5).unwrap(),
            ob.query(&probe, 5).unwrap(),
            "tenant org-b diverged from its dedicated server on probe {probe_id}"
        );
    }

    // The tenants see disjoint record sets: a record present in org-a
    // scores an exact match there and not in org-b.
    let exact_a = ca.query(&filter_for(42), 1).unwrap();
    assert_eq!(exact_a[0].id, 42);
    assert!((exact_a[0].score - 1.0).abs() < 1e-12);
    let best_b = cb.query(&filter_for(42), 1).unwrap();
    assert!(best_b.is_empty() || best_b[0].score < 1.0 || best_b[0].id != 42);
    // Mirror those queries on the oracles so the request histories (and
    // therefore the stats counters) stay identical.
    oa.query(&filter_for(42), 1).unwrap();
    ob.query(&filter_for(42), 1).unwrap();

    // Inserts land only in the addressed tenant.
    ca.insert(&[(500_000, filter_for(500_000))]).unwrap();
    let sa = ca.stats().unwrap();
    let sb = cb.stats().unwrap();
    assert_eq!(sa.records, 121);
    assert_eq!(sb.records, 80);
    assert_eq!(sa.inserts, 1);
    assert_eq!(sb.inserts, 0);

    // Per-tenant STATS are bit-identical to the dedicated servers after
    // the same request history (modulo wall-clock fields).
    oa.insert(&[(500_000, filter_for(500_000))]).unwrap();
    let (sa2, soa) = (ca.stats().unwrap(), oa.stats().unwrap());
    assert_eq!(normalize(sa2), normalize(soa));
    let (sb2, sob) = (cb.stats().unwrap(), ob.stats().unwrap());
    assert_eq!(normalize(sb2), normalize(sob));

    drop((ca, cb));
    handle.shutdown_now();
    solo_a.shutdown_now();
    solo_b.shutdown_now();
    for d in [root, solo_a_dir, solo_b_dir] {
        let _ = std::fs::remove_dir_all(d);
    }
}

#[test]
fn wrong_key_and_plaintext_clients_rejected() {
    let root = temp_dir("reject");
    build_index(&root.join("org-a"), 0, 20);
    build_index(&root.join("org-b"), 100, 20);
    let (reg, key_a, _, _) = two_tenant_registry();
    let handle = serve_auth(&root, "127.0.0.1:0", quiet_config(), reg).unwrap();
    let addr = handle.addr().to_string();

    // Wrong key: rejected at handshake with a typed Auth error.
    let bad = Client::connect_with(
        &addr,
        Some(auth(
            "org-a",
            &PartyKey::from_bytes([0xFF; 32]),
            "org-a",
            false,
        )),
    );
    match bad {
        Err(pprl_core::error::PprlError::Auth(_)) => {}
        other => panic!("wrong-key client not rejected at handshake: {other:?}"),
    }

    // Unknown identity: same typed rejection, indistinguishable shape.
    let ghost = Client::connect_with(
        &addr,
        Some(auth(
            "ghost",
            &PartyKey::from_bytes([0x01; 32]),
            "ghost",
            false,
        )),
    );
    assert!(matches!(ghost, Err(pprl_core::error::PprlError::Auth(_))));

    // Cross-tenant: authenticates, then gets the typed CrossTenant error.
    let crossed = Client::connect_with(&addr, Some(auth("org-a", &key_a, "org-b", false)));
    match crossed {
        Err(pprl_core::error::PprlError::CrossTenant {
            identity,
            requested,
        }) => {
            assert_eq!(identity, "org-a");
            assert_eq!(requested, "org-b");
        }
        other => panic!("expected CrossTenant, got {other:?}"),
    }

    // A plaintext v3 client is refused before its request is interpreted.
    let mut plain = Client::connect(&addr).unwrap();
    let err = plain.stats().unwrap_err();
    assert!(
        err.to_string().contains("authentication required"),
        "unexpected plaintext rejection: {err}"
    );

    // An authorized client still works fine alongside the rejections.
    let mut good = Client::connect_with(&addr, Some(auth("org-a", &key_a, "org-a", true))).unwrap();
    assert_eq!(good.stats().unwrap().records, 20);

    drop((plain, good));
    handle.shutdown_now();
    let _ = std::fs::remove_dir_all(root);
}

#[test]
fn shutdown_requires_privileged_identity() {
    let root = temp_dir("shutdown");
    build_index(&root.join("org-a"), 0, 10);
    build_index(&root.join("org-b"), 50, 10);
    let (reg, key_a, _, key_admin) = two_tenant_registry();
    let handle = serve_auth(&root, "127.0.0.1:0", quiet_config(), reg).unwrap();
    let addr = handle.addr().to_string();

    let mut tenant =
        Client::connect_with(&addr, Some(auth("org-a", &key_a, "org-a", false))).unwrap();
    let err = tenant.shutdown().unwrap_err();
    assert!(
        err.to_string().contains("not privileged"),
        "tenant shutdown rejection: {err}"
    );
    // The server is still up and serving after the refused shutdown.
    assert_eq!(tenant.stats().unwrap().records, 10);

    // A privileged identity may open any tenant's namespace and stop the
    // server.
    let mut admin =
        Client::connect_with(&addr, Some(auth("admin", &key_admin, "org-b", true))).unwrap();
    assert_eq!(admin.stats().unwrap().records, 10);
    admin.shutdown().unwrap();
    handle.join();
    let _ = std::fs::remove_dir_all(root);
}

#[test]
fn single_tenant_root_serves_as_default() {
    // An auth root that itself holds a MANIFEST is the single tenant
    // `default` — the upgrade path for existing single-index deployments.
    let root = temp_dir("default");
    build_index(&root, 0, 30);
    let key = PartyKey::from_bytes([0x77; 32]);
    let mut reg = AuthRegistry::new();
    reg.insert("alice", key.clone(), TenantGrant::One("default".into()))
        .unwrap();
    let handle = serve_auth(&root, "127.0.0.1:0", quiet_config(), reg).unwrap();
    let addr = handle.addr().to_string();

    let mut client =
        Client::connect_with(&addr, Some(auth("alice", &key, "default", true))).unwrap();
    assert_eq!(client.stats().unwrap().records, 30);
    let hits = client.query(&filter_for(7), 3).unwrap();
    assert_eq!(hits[0].id, 7);

    drop(client);
    handle.shutdown_now();
    let _ = std::fs::remove_dir_all(root);
}

#[test]
fn missing_tenant_index_is_a_typed_storage_error() {
    let root = temp_dir("missing");
    build_index(&root.join("org-a"), 0, 5);
    // org-b granted but has no index directory under the root.
    let (reg, _, _, _) = two_tenant_registry();
    match serve_auth(&root, "127.0.0.1:0", quiet_config(), reg) {
        Err(pprl_core::error::PprlError::Storage(msg)) => {
            assert!(msg.contains("org-b"), "{msg}");
        }
        Err(other) => panic!("expected Storage error, got {other}"),
        Ok(_) => panic!("serve_auth succeeded despite missing tenant index"),
    }
    let _ = std::fs::remove_dir_all(root);
}
