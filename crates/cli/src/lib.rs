//! # pprl-cli
//!
//! The `pprl` command-line tool: generate synthetic linked datasets, run
//! privacy-preserving linkage, de-duplicate, and encode CSV datasets to
//! CLKs — the operational surface a data custodian would actually use.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod args;
pub mod commands;
