//! Implementations of the `pprl` CLI subcommands.
//!
//! Every command reads/writes CSV through `pprl-core::csv` and prints a
//! short human-readable report to stdout. Commands return a user-facing
//! error string on failure; `main` maps that to exit code 1.

use crate::args::Args;
use pprl_blocking::keys::BlockingKey;
use pprl_blocking::lsh::HammingLsh;
use pprl_cluster::coordinator::{ClusterConfig, Coordinator};
use pprl_cluster::server::{serve_cluster, serve_cluster_auth, ClusterServerConfig};
use pprl_core::json::Json;
use pprl_core::record::Dataset;
use pprl_core::schema::Schema;
use pprl_datagen::generator::{Generator, GeneratorConfig};
use pprl_encoding::encoder::{RecordEncoder, RecordEncoderConfig};
use pprl_eval::quality::Confusion;
use pprl_index::store::{IndexConfig, IndexStore};
use pprl_pipeline::batch::{link, BlockingChoice, IndexSourceConfig, PipelineConfig};
use pprl_pipeline::dedup::{deduplicate, deduplicated_dataset, DedupConfig};
use pprl_protocols::transport::Crash;
use pprl_protocols::{multi_party_linkage, MultiPartyConfig, Pattern};
use pprl_server::client::Client;
use pprl_server::server::{serve, serve_auth, ServerConfig};
use pprl_server::wire::StatsReport;
use pprl_server::{AuthRegistry, CipherSuite, ClientAuth, PartyKey, SuiteOffer};

type CmdResult = Result<(), String>;

fn fail(e: impl std::fmt::Display) -> String {
    e.to_string()
}

fn read_dataset(path: &str) -> Result<Dataset, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    Dataset::from_csv(&text, Schema::person()).map_err(|e| format!("parsing {path}: {e}"))
}

fn write_file(path: &str, content: &str) -> Result<(), String> {
    std::fs::write(path, content).map_err(|e| format!("writing {path}: {e}"))
}

/// Writes via tmp + rename so a concurrent reader never observes a
/// partially written file (e.g. `--addr-file` racing a client start).
fn write_file_atomic(path: &str, content: &str) -> Result<(), String> {
    let tmp = format!("{path}.tmp");
    std::fs::write(&tmp, content).map_err(|e| format!("writing {tmp}: {e}"))?;
    std::fs::rename(&tmp, path).map_err(|e| format!("renaming {tmp} to {path}: {e}"))
}

/// `pprl generate` — synthesise a linked CSV dataset pair with ground truth.
pub fn generate(mut args: Args) -> CmdResult {
    let out_a = args.require("out-a").map_err(fail)?;
    let out_b = args.require("out-b").map_err(fail)?;
    let size: usize = args.parse_or("size", 1000).map_err(fail)?;
    let overlap: usize = args.parse_or("overlap", size / 4).map_err(fail)?;
    let corruption: f64 = args.parse_or("corruption", 0.2).map_err(fail)?;
    let seed: u64 = args.parse_or("seed", 42).map_err(fail)?;
    args.finish().map_err(fail)?;

    let mut g = Generator::new(GeneratorConfig {
        corruption_rate: corruption,
        seed,
        ..GeneratorConfig::default()
    })
    .map_err(fail)?;
    let (a, b) = g.dataset_pair(size, size, overlap).map_err(fail)?;
    write_file(&out_a, &a.to_csv())?;
    write_file(&out_b, &b.to_csv())?;
    println!(
        "wrote {out_a} and {out_b}: {size} records each, {overlap} shared entities, corruption {corruption}"
    );
    Ok(())
}

/// `pprl link` — privacy-preserving linkage of two CSV datasets.
pub fn link_cmd(mut args: Args) -> CmdResult {
    let path_a = args.require("a").map_err(fail)?;
    let path_b = args.require("b").map_err(fail)?;
    let key = args.require("key").map_err(fail)?;
    let threshold: f64 = args.parse_or("threshold", 0.8).map_err(fail)?;
    let backend = args.get_or("backend", "memory");
    let blocking = args.get_or("blocking", "lsh");
    let index_dir = args.get("index-dir");
    let top_k: usize = args.parse_or("top-k", 10).map_err(fail)?;
    let output = args.get("output");
    let evaluate = args.flag("evaluate");
    let json = args.flag("json");
    let threads: usize = args.parse_or("threads", 1).map_err(fail)?;
    args.finish().map_err(fail)?;

    let a = read_dataset(&path_a)?;
    let b = read_dataset(&path_b)?;
    let mut cfg = PipelineConfig::standard(key.into_bytes()).map_err(fail)?;
    cfg.threshold = threshold;
    cfg.threads = threads;
    cfg.blocking = match backend.as_str() {
        "memory" => match blocking.as_str() {
            "lsh" => BlockingChoice::Lsh(HammingLsh::new(16, 24, 0xC11).map_err(fail)?),
            "standard" => BlockingChoice::Standard(BlockingKey::person_default()),
            "full" => BlockingChoice::Full,
            other => return Err(format!("unknown blocking `{other}` (lsh|standard|full)")),
        },
        "index" => {
            let Some(dir) = index_dir else {
                return Err("--backend index needs --index-dir".into());
            };
            BlockingChoice::Index(IndexSourceConfig {
                dir: dir.into(),
                top_k,
            })
        }
        other => return Err(format!("unknown backend `{other}` (memory|index)")),
    };
    let started = std::time::Instant::now();
    let result = link(&a, &b, &cfg).map_err(fail)?;
    let quality = evaluate.then(|| {
        let truth = a.ground_truth_pairs(&b);
        Confusion::from_pairs(&result.pairs(), &truth)
    });
    if json {
        let Json::Obj(mut fields) = result.to_json() else {
            unreachable!("LinkageResult::to_json returns an object");
        };
        fields.insert(0, ("records_a".into(), Json::num(a.len() as f64)));
        fields.insert(1, ("records_b".into(), Json::num(b.len() as f64)));
        fields.push((
            "elapsed_ms".into(),
            Json::num(started.elapsed().as_secs_f64() * 1000.0),
        ));
        if let Some(q) = &quality {
            fields.push(("precision".into(), Json::num(q.precision())));
            fields.push(("recall".into(), Json::num(q.recall())));
            fields.push(("f1".into(), Json::num(q.f1())));
        }
        print!("{}", Json::Obj(fields).render());
    } else {
        println!(
            "linked {} x {} records via {}: {} candidates, {} matches in {:.2?}",
            a.len(),
            b.len(),
            result.source,
            result.candidates,
            result.matches.len(),
            started.elapsed()
        );
        if let Some(q) = &quality {
            println!(
                "evaluation vs entity_id ground truth: precision {:.3}, recall {:.3}, f1 {:.3}",
                q.precision(),
                q.recall(),
                q.f1()
            );
        }
    }
    if let Some(path) = output {
        let mut csv = String::from("row_a,row_b,similarity\n");
        for (i, j, s) in &result.matches {
            csv.push_str(&format!("{i},{j},{s:.4}\n"));
        }
        write_file(&path, &csv)?;
        if !json {
            println!("matches written to {path}");
        }
    }
    Ok(())
}

/// `pprl dedup` — find and optionally remove internal duplicates.
pub fn dedup_cmd(mut args: Args) -> CmdResult {
    let input = args.require("input").map_err(fail)?;
    let threshold: f64 = args.parse_or("threshold", 0.85).map_err(fail)?;
    let backend = args.get_or("backend", "memory");
    let index_dir = args.get("index-dir");
    let top_k: usize = args.parse_or("top-k", 10).map_err(fail)?;
    let key = args.get_or("key", "local-dedup");
    let threads: usize = args.parse_or("threads", 1).map_err(fail)?;
    let output = args.get("output");
    args.finish().map_err(fail)?;

    let ds = read_dataset(&input)?;
    let mut cfg = DedupConfig::standard();
    cfg.encoder = RecordEncoderConfig::person_clk(key.into_bytes());
    cfg.threshold = threshold;
    cfg.threads = threads;
    match backend.as_str() {
        "memory" => {}
        "index" => {
            let Some(dir) = index_dir else {
                return Err("--backend index needs --index-dir".into());
            };
            cfg.blocking = BlockingChoice::Index(IndexSourceConfig {
                dir: dir.into(),
                top_k,
            });
        }
        other => return Err(format!("unknown backend `{other}` (memory|index)")),
    }
    let out = deduplicate(&ds, &cfg).map_err(fail)?;
    println!(
        "{}: {} records, {} duplicate clusters ({} rows removable), {} comparisons",
        input,
        ds.len(),
        out.clusters.len(),
        out.rows_to_drop().len(),
        out.comparisons
    );
    if let Some(path) = output {
        let clean = deduplicated_dataset(&ds, &out).map_err(fail)?;
        write_file(&path, &clean.to_csv())?;
        println!(
            "deduplicated dataset ({} records) written to {path}",
            clean.len()
        );
    }
    Ok(())
}

/// `pprl encode` — encode a dataset to CLK hex strings (what a DO would
/// actually ship to a linkage unit).
pub fn encode_cmd(mut args: Args) -> CmdResult {
    let input = args.require("input").map_err(fail)?;
    let key = args.require("key").map_err(fail)?;
    let output = args.require("output").map_err(fail)?;
    args.finish().map_err(fail)?;

    let ds = read_dataset(&input)?;
    let enc = RecordEncoder::new(
        RecordEncoderConfig::person_clk(key.into_bytes()),
        ds.schema(),
    )
    .map_err(fail)?;
    let encoded = enc.encode_dataset(&ds).map_err(fail)?;
    let mut csv = String::from("row,clk_hex\n");
    for (i, r) in encoded.records.iter().enumerate() {
        let clk = r.try_clk().map_err(fail)?;
        let hex: String = clk.to_bytes().iter().map(|b| format!("{b:02x}")).collect();
        csv.push_str(&format!("{i},{hex}\n"));
    }
    write_file(&output, &csv)?;
    println!(
        "encoded {} records to {}-bit CLKs: {output}",
        encoded.len(),
        enc.output_len()
    );
    Ok(())
}

/// `pprl multiparty` — multi-party linkage over a simulated (optionally
/// unreliable) network with retry/timeout fault tolerance.
pub fn multiparty_cmd(mut args: Args) -> CmdResult {
    let inputs = args.require("inputs").map_err(fail)?;
    let key = args.require("key").map_err(fail)?;
    let threshold: f64 = args.parse_or("threshold", 0.8).map_err(fail)?;
    let pattern = args.get_or("pattern", "ring");
    let fault_rate: f64 = args.parse_or("fault-rate", 0.0).map_err(fail)?;
    let crash_party: Option<String> = args.get("crash-party");
    let crash_round: usize = args.parse_or("crash-round", 1).map_err(fail)?;
    let retries: u32 = args.parse_or("retries", 3).map_err(fail)?;
    let min_parties: usize = args.parse_or("min-parties", 2).map_err(fail)?;
    let seed: u64 = args.parse_or("seed", 0x5EED).map_err(fail)?;
    args.finish().map_err(fail)?;

    let paths: Vec<&str> = inputs.split(',').filter(|p| !p.is_empty()).collect();
    let mut datasets = Vec::with_capacity(paths.len());
    for p in &paths {
        datasets.push(read_dataset(p)?);
    }

    let mut cfg = MultiPartyConfig::standard(key.into_bytes());
    cfg.threshold = threshold;
    cfg.pattern = match pattern.as_str() {
        "ring" => Pattern::Ring,
        "sequential" => Pattern::Sequential,
        "tree" => Pattern::Tree { fanout: 2 },
        "hierarchical" => Pattern::Hierarchical { group_size: 3 },
        other => {
            return Err(format!(
                "unknown pattern `{other}` (ring|sequential|tree|hierarchical)"
            ))
        }
    };
    cfg.min_parties = min_parties;
    cfg.fault_plan.drop_rate = fault_rate;
    cfg.fault_plan.corrupt_rate = fault_rate / 2.0;
    if let Some(p) = crash_party {
        let party: usize = p
            .parse()
            .map_err(|_| format!("flag `--crash-party`: cannot parse `{p}`"))?;
        cfg.fault_plan.crash = Some(Crash {
            party,
            at_round: crash_round.max(1),
        });
    }
    cfg.retry.max_retries = retries;
    cfg.sim_seed = seed;

    let started = std::time::Instant::now();
    let out = multi_party_linkage(&datasets, &cfg).map_err(fail)?;
    println!(
        "linked {} parties ({} records total): {} tuples compared, {} matches in {:.2?}",
        datasets.len(),
        datasets.iter().map(|d| d.len()).sum::<usize>(),
        out.tuples_compared,
        out.matches.len(),
        started.elapsed()
    );
    println!(
        "communication: {} messages, {} bytes, {} rounds (pattern {pattern})",
        out.cost.messages, out.cost.bytes, out.cost.rounds
    );
    println!(
        "fault tolerance: {} retransmissions, {} corrupt frames discarded, {} timeouts",
        out.session_stats.retransmissions,
        out.session_stats.corrupt_discarded,
        out.session_stats.timeouts
    );
    if out.failed_parties.is_empty() {
        println!("all parties completed");
    } else {
        println!(
            "degraded run: crashed parties {:?} excluded from matching",
            out.failed_parties
        );
    }
    Ok(())
}

/// Encodes a CSV dataset to `(row id, CLK filter)` pairs for the index.
fn encode_filters(
    path: &str,
    key: &str,
    id_base: u64,
) -> Result<Vec<(u64, pprl_core::bitvec::BitVec)>, String> {
    let ds = read_dataset(path)?;
    let enc = RecordEncoder::new(
        RecordEncoderConfig::person_clk(key.as_bytes().to_vec()),
        ds.schema(),
    )
    .map_err(fail)?;
    let encoded = enc.encode_dataset(&ds).map_err(fail)?;
    encoded
        .records
        .iter()
        .enumerate()
        .map(|(i, r)| Ok((id_base + i as u64, r.try_clk().map_err(fail)?.clone())))
        .collect()
}

/// Filter length of the person CLK encoder (what `index build` stores).
fn person_clk_len(key: &str) -> Result<usize, String> {
    let enc = RecordEncoder::new(
        RecordEncoderConfig::person_clk(key.as_bytes().to_vec()),
        &Schema::person(),
    )
    .map_err(fail)?;
    Ok(enc.output_len())
}

/// `pprl index <action>` — manage a persistent sharded filter index.
///
/// The caller parses the action as the subcommand (`build`, `insert`,
/// `query`, `stats`), so `args.command` holds the action here.
pub fn index_cmd(mut args: Args) -> CmdResult {
    match args.command.as_str() {
        "build" => {
            let dir = args.require("dir").map_err(fail)?;
            let input = args.require("input").map_err(fail)?;
            let key = args.require("key").map_err(fail)?;
            let shards: u32 = args.parse_or("shards", 8).map_err(fail)?;
            args.finish().map_err(fail)?;
            let started = std::time::Instant::now();
            let records = encode_filters(&input, &key, 0)?;
            let config = IndexConfig::new(person_clk_len(&key)?, shards);
            let mut store = IndexStore::create(std::path::Path::new(&dir), config).map_err(fail)?;
            store.insert_batch(&records).map_err(fail)?;
            store.flush().map_err(fail)?;
            println!(
                "built {dir}: {} records, {} shards, {}-bit filters in {:.2?}",
                records.len(),
                shards,
                config.filter_len,
                started.elapsed()
            );
            Ok(())
        }
        "insert" => {
            let dir = args.require("dir").map_err(fail)?;
            let input = args.require("input").map_err(fail)?;
            let key = args.require("key").map_err(fail)?;
            let compact = args.flag("compact");
            let id_base_flag: Option<u64> = match args.get("id-base") {
                None => None,
                Some(v) => Some(
                    v.parse()
                        .map_err(|_| format!("flag `--id-base`: cannot parse `{v}`"))?,
                ),
            };
            args.finish().map_err(fail)?;
            let mut store = IndexStore::open(std::path::Path::new(&dir)).map_err(fail)?;
            let stats = store.stats().map_err(fail)?;
            let id_base =
                id_base_flag.unwrap_or((stats.persisted_records + stats.pending_records) as u64);
            let records = encode_filters(&input, &key, id_base)?;
            store.insert_batch(&records).map_err(fail)?;
            store.flush().map_err(fail)?;
            print!(
                "inserted {} records into {dir} (ids from {id_base})",
                records.len()
            );
            if compact {
                let reclaimed = store.compact().map_err(fail)?;
                print!(", compacted {reclaimed} segments");
            }
            println!();
            Ok(())
        }
        "query" => {
            let dir = args.require("dir").map_err(fail)?;
            let input = args.require("input").map_err(fail)?;
            let key = args.require("key").map_err(fail)?;
            let row: usize = args.parse_or("row", 0).map_err(fail)?;
            let top_k: usize = args.parse_or("top-k", 10).map_err(fail)?;
            let threads: usize = args.parse_or("threads", 1).map_err(fail)?;
            let json = args.flag("json");
            args.finish().map_err(fail)?;
            let queries = encode_filters(&input, &key, 0)?;
            let Some((_, query)) = queries.get(row) else {
                return Err(format!("--row {row} out of range ({} rows)", queries.len()));
            };
            let store = IndexStore::open(std::path::Path::new(&dir)).map_err(fail)?;
            let reader = store.reader().map_err(fail)?;
            let started = std::time::Instant::now();
            let hits = reader.top_k(query, top_k, threads).map_err(fail)?;
            if json {
                let obj = Json::Obj(vec![
                    ("records".into(), Json::num(reader.len() as f64)),
                    ("row".into(), Json::num(row as f64)),
                    ("top_k".into(), Json::num(top_k as f64)),
                    (
                        "elapsed_ms".into(),
                        Json::num(started.elapsed().as_secs_f64() * 1000.0),
                    ),
                    (
                        "hits".into(),
                        Json::Arr(
                            hits.iter()
                                .map(|h| {
                                    Json::Obj(vec![
                                        ("id".into(), Json::num(h.id as f64)),
                                        ("score".into(), Json::num(h.score)),
                                    ])
                                })
                                .collect(),
                        ),
                    ),
                ]);
                print!("{}", obj.render());
                return Ok(());
            }
            println!(
                "top-{top_k} of {} records for {input} row {row} ({:.2?}):",
                reader.len(),
                started.elapsed()
            );
            for hit in &hits {
                println!("  id {:>8}  dice {:.4}", hit.id, hit.score);
            }
            if hits.is_empty() {
                println!("  (no records indexed)");
            }
            Ok(())
        }
        "stats" => {
            let dir = args.require("dir").map_err(fail)?;
            args.finish().map_err(fail)?;
            let store = IndexStore::open(std::path::Path::new(&dir)).map_err(fail)?;
            let s = store.stats().map_err(fail)?;
            println!(
                "{dir}: {} records persisted in {} segments across {} shards, \
                 {} pending in log, {}-bit filters, {} bytes on disk",
                s.persisted_records,
                s.segments,
                s.num_shards,
                s.pending_records,
                s.filter_len,
                s.disk_bytes
            );
            println!(
                "  scan kernel: {} (set PPRL_KERNEL to override; \
                 `pprl kernels` lists this host's options)",
                pprl_similarity::kernel::kernel_name()
            );
            if s.quarantined_segments > 0 {
                println!(
                    "  DEGRADED: {} segment(s) quarantined at open; reads cover \
                     surviving segments only (see {dir}/quarantine/)",
                    s.quarantined_segments
                );
            }
            Ok(())
        }
        "snapshot" => {
            let dir = args.require("dir").map_err(fail)?;
            let out = args.require("out").map_err(fail)?;
            args.finish().map_err(fail)?;
            let store = IndexStore::open(std::path::Path::new(&dir)).map_err(fail)?;
            let started = std::time::Instant::now();
            let shipped = store
                .export_snapshot(std::path::Path::new(&out))
                .map_err(fail)?;
            // Round-trip verification: the copy must open clean, exactly
            // as a fresh shard node receiving it would.
            let replica = IndexStore::import_snapshot(std::path::Path::new(&out)).map_err(fail)?;
            println!(
                "snapshot of {dir} shipped to {out}: {} records in {} segments \
                 ({} bytes) in {:.2?}; copy verified clean",
                shipped.records,
                shipped.segments,
                shipped.bytes,
                started.elapsed()
            );
            drop(replica);
            Ok(())
        }
        other => Err(format!(
            "unknown index action `{other}` (build|insert|query|stats|snapshot)"
        )),
    }
}

/// `pprl keygen` — generate a party key and write it with owner-only
/// permissions, either to an explicit `--out` path or into an auth
/// directory as `<identity>.psk` (optionally granting the identity a
/// tenant in `tenants.map`). Only the fingerprint is ever printed.
pub fn keygen(mut args: Args) -> CmdResult {
    let out = args.get("out");
    let auth_dir = args.get("auth-dir");
    let identity = args.get("identity");
    let tenant = args.get("tenant");
    args.finish().map_err(fail)?;

    let key = PartyKey::generate().map_err(fail)?;
    let path = match (&out, &auth_dir, &identity) {
        (Some(path), None, _) => std::path::PathBuf::from(path),
        (None, Some(dir), Some(identity)) => {
            std::fs::create_dir_all(dir).map_err(|e| format!("creating {dir}: {e}"))?;
            std::path::Path::new(dir).join(format!("{identity}.psk"))
        }
        _ => return Err("keygen needs either --out FILE or --auth-dir DIR --identity NAME".into()),
    };
    key.save(&path).map_err(fail)?;
    println!(
        "wrote key {} (fingerprint {})",
        path.display(),
        key.fingerprint()
    );
    if let Some(tenant) = tenant {
        let (Some(dir), Some(identity)) = (&auth_dir, &identity) else {
            return Err("--tenant needs --auth-dir and --identity".into());
        };
        let map = std::path::Path::new(dir).join("tenants.map");
        let mut lines = match std::fs::read_to_string(&map) {
            Ok(text) => text,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => String::new(),
            Err(e) => return Err(format!("reading {}: {e}", map.display())),
        };
        if !lines.is_empty() && !lines.ends_with('\n') {
            lines.push('\n');
        }
        lines.push_str(&format!("{identity} {tenant}\n"));
        std::fs::write(&map, lines).map_err(|e| format!("writing {}: {e}", map.display()))?;
        println!(
            "granted `{identity}` tenant `{tenant}` in {} ({})",
            map.display(),
            if tenant == "*" {
                "privileged: any tenant, may shut servers down"
            } else {
                "single tenant"
            }
        );
    }
    Ok(())
}

/// Reads the session-auth client flags — `--identity NAME --key-file
/// PATH [--tenant T] [--encrypt] [--suite auto|chacha20|hmac-ctr]` —
/// into an optional [`ClientAuth`]. Absent flags mean plaintext wire
/// v3, exactly as before; the default `--suite auto` offers every
/// cipher suite and lets negotiation pick the fastest common one.
fn auth_from_args(args: &mut Args) -> Result<Option<ClientAuth>, String> {
    let identity = args.get("identity");
    let key_file = args.get("key-file");
    let tenant = args.get_or("tenant", "default");
    let encrypt = args.flag("encrypt");
    let suites = SuiteOffer::parse(&args.get_or("suite", "auto")).map_err(fail)?;
    match (identity, key_file) {
        (Some(identity), Some(path)) => {
            let key = PartyKey::load(std::path::Path::new(&path)).map_err(fail)?;
            Ok(Some(ClientAuth {
                identity,
                key,
                tenant,
                encrypt,
                suites,
            }))
        }
        (None, None) if !encrypt => Ok(None),
        (None, None) => Err("--encrypt needs --identity and --key-file".into()),
        _ => Err("--identity and --key-file must be given together".into()),
    }
}

/// `pprl serve` — serve a persistent index over TCP until a client
/// sends `shutdown` (or the process is killed). With `--auth-dir` the
/// server only accepts authenticated wire v4 sessions and serves the
/// tenant namespaces named by the directory's grants.
pub fn serve_cmd(mut args: Args) -> CmdResult {
    let dir = args.require("index").map_err(fail)?;
    let host = args.get_or("host", "127.0.0.1");
    let port: u16 = args.parse_or("port", 7878).map_err(fail)?;
    let workers: usize = args.parse_or("workers", 2).map_err(fail)?;
    let queue: usize = args.parse_or("queue", 32).map_err(fail)?;
    let cache: usize = args.parse_or("cache", 256).map_err(fail)?;
    let threads: usize = args.parse_or("threads", 1).map_err(fail)?;
    let compact_ms: u64 = args.parse_or("compact-interval-ms", 500).map_err(fail)?;
    let addr_file = args.get("addr-file");
    let auth_dir = args.get("auth-dir");
    // Server-side cipher-suite policy: `auto` negotiates the fastest
    // suite each client offers; pinning refuses clients that cannot
    // speak the pinned suite.
    let suites = SuiteOffer::parse(&args.get_or("suite", "auto")).map_err(fail)?;
    args.finish().map_err(fail)?;

    let config = ServerConfig {
        workers,
        queue_capacity: queue,
        query_threads: threads,
        cache_capacity: cache,
        compact_interval: (compact_ms > 0).then(|| std::time::Duration::from_millis(compact_ms)),
        suites,
        ..ServerConfig::default()
    };
    let bind = format!("{host}:{port}");
    let handle = match &auth_dir {
        Some(auth) => {
            let registry = AuthRegistry::load(std::path::Path::new(auth)).map_err(fail)?;
            serve_auth(std::path::Path::new(&dir), &bind, config, registry).map_err(fail)?
        }
        None => serve(std::path::Path::new(&dir), &bind, config).map_err(fail)?,
    };
    let addr = handle.addr();
    // With --port 0 the kernel picks the port; publish the resolved
    // address so scripts (and the CI smoke job) can find it.
    if let Some(path) = addr_file {
        write_file_atomic(&path, &addr.to_string())?;
    }
    println!(
        "serving {dir} on {addr}: {workers} workers, queue {queue}, cache {cache}, \
         compaction every {compact_ms} ms (0 = disabled){}",
        match &auth_dir {
            Some(auth) => format!(
                ", authenticated sessions only (auth dir {auth}, suites {})",
                suites
                    .iter()
                    .map(|s| s.name())
                    .collect::<Vec<_>>()
                    .join("+")
            ),
            None => String::new(),
        }
    );
    let service = handle.join();
    let stats = service.stats_report(workers as u32, queue as u32);
    println!(
        "shut down after {} queries, {} links, {} inserts, {} compactions",
        stats.queries, stats.links, stats.inserts, stats.compactions
    );
    Ok(())
}

/// `pprl client <action>` — talk to a running `pprl serve`.
///
/// Like `index`, the action is parsed as the subcommand, so
/// `args.command` holds `query|link|insert|stats|shutdown`.
pub fn client_cmd(mut args: Args) -> CmdResult {
    let action = args.command.clone();
    let addr = args.require("addr").map_err(fail)?;
    // Overall per-call budget, including Busy backoff-and-retry cycles.
    let deadline_ms: u64 = args.parse_or("deadline-ms", 60_000).map_err(fail)?;
    // --cluster asserts the peer is a `pprl cluster serve` coordinator
    // (the wire protocol is identical either way, so without the flag a
    // client cannot tell — with it, pointing at a lone shard by mistake
    // is a loud error instead of silently partial results).
    let cluster = args.flag("cluster");
    let auth = auth_from_args(&mut args)?;
    let connect = |addr: &str| -> Result<Client, String> {
        let mut client = Client::connect_with(addr, auth.clone()).map_err(fail)?;
        client.set_deadline(std::time::Duration::from_millis(deadline_ms.max(1)));
        if cluster {
            let probe = client.stats().map_err(fail)?;
            if probe.cluster_shards == 0 {
                return Err(format!(
                    "{addr} is a single pprl-server node, not a cluster \
                     coordinator (drop --cluster, or point at a `pprl cluster \
                     serve` address)"
                ));
            }
        }
        Ok(client)
    };
    match action.as_str() {
        "query" => {
            let input = args.require("input").map_err(fail)?;
            let key = args.require("key").map_err(fail)?;
            let row: usize = args.parse_or("row", 0).map_err(fail)?;
            let top_k: usize = args.parse_or("top-k", 10).map_err(fail)?;
            let json = args.flag("json");
            args.finish().map_err(fail)?;
            let queries = encode_filters(&input, &key, 0)?;
            let Some((_, query)) = queries.get(row) else {
                return Err(format!("--row {row} out of range ({} rows)", queries.len()));
            };
            let started = std::time::Instant::now();
            let mut client = connect(&addr)?;
            let hits = client.query(query, top_k).map_err(fail)?;
            if json {
                let obj = Json::Obj(vec![
                    ("addr".into(), Json::Str(addr)),
                    ("row".into(), Json::num(row as f64)),
                    ("top_k".into(), Json::num(top_k as f64)),
                    (
                        "elapsed_ms".into(),
                        Json::num(started.elapsed().as_secs_f64() * 1000.0),
                    ),
                    (
                        "hits".into(),
                        Json::Arr(
                            hits.iter()
                                .map(|h| {
                                    Json::Obj(vec![
                                        ("id".into(), Json::num(h.id as f64)),
                                        ("score".into(), Json::num(h.score)),
                                    ])
                                })
                                .collect(),
                        ),
                    ),
                ]);
                print!("{}", obj.render());
                return Ok(());
            }
            println!(
                "top-{top_k} from {addr} for {input} row {row} ({:.2?}):",
                started.elapsed()
            );
            for hit in &hits {
                println!("  id {:>8}  dice {:.4}", hit.id, hit.score);
            }
            if hits.is_empty() {
                println!("  (no hits)");
            }
            Ok(())
        }
        "link" => {
            let input = args.require("input").map_err(fail)?;
            let key = args.require("key").map_err(fail)?;
            let top_k: usize = args.parse_or("top-k", 5).map_err(fail)?;
            let min_score: f64 = args.parse_or("min-score", 0.8).map_err(fail)?;
            let output = args.get("output");
            args.finish().map_err(fail)?;
            let probes = encode_filters(&input, &key, 0)?;
            let filters: Vec<_> = probes.into_iter().map(|(_, f)| f).collect();
            let started = std::time::Instant::now();
            let mut client = connect(&addr)?;
            let per_probe = client.link(&filters, top_k, min_score).map_err(fail)?;
            let total: usize = per_probe.iter().map(|h| h.len()).sum();
            println!(
                "linked {} probes against {addr}: {total} hits at dice >= {min_score} in {:.2?}",
                filters.len(),
                started.elapsed()
            );
            let mut csv = String::from("row,id,similarity\n");
            for (row, hits) in per_probe.iter().enumerate() {
                for hit in hits {
                    csv.push_str(&format!("{row},{},{:.4}\n", hit.id, hit.score));
                }
            }
            match output {
                Some(path) => {
                    write_file(&path, &csv)?;
                    println!("hits written to {path}");
                }
                None => print!("{csv}"),
            }
            Ok(())
        }
        "insert" => {
            let input = args.require("input").map_err(fail)?;
            let key = args.require("key").map_err(fail)?;
            let id_base_flag: Option<u64> = match args.get("id-base") {
                None => None,
                Some(v) => Some(
                    v.parse()
                        .map_err(|_| format!("flag `--id-base`: cannot parse `{v}`"))?,
                ),
            };
            args.finish().map_err(fail)?;
            let mut client = connect(&addr)?;
            let id_base = match id_base_flag {
                Some(v) => v,
                // Default to appending after the currently served records.
                None => client.stats().map_err(fail)?.records,
            };
            let records = encode_filters(&input, &key, id_base)?;
            let (count, generation) = client.insert(&records).map_err(fail)?;
            println!(
                "inserted {count} records into {addr} (ids from {id_base}); \
                 now serving generation {generation}"
            );
            Ok(())
        }
        "stats" => {
            let json = args.flag("json");
            args.finish().map_err(fail)?;
            let mut client = connect(&addr)?;
            let s = client.stats().map_err(fail)?;
            if json {
                print!("{}", stats_json(&addr, &s).render());
                return Ok(());
            }
            print_stats(&addr, &s);
            Ok(())
        }
        "shutdown" => {
            args.finish().map_err(fail)?;
            let mut client = connect(&addr)?;
            client.shutdown().map_err(fail)?;
            println!("server at {addr} acknowledged shutdown");
            Ok(())
        }
        other => Err(format!(
            "unknown client action `{other}` (query|link|insert|stats|shutdown)"
        )),
    }
}

/// Renders a `StatsReport` as JSON (shared by `client stats` and
/// `cluster stats`).
fn stats_json(addr: &str, s: &StatsReport) -> Json {
    Json::Obj(vec![
        ("addr".into(), Json::Str(addr.to_string())),
        ("records".into(), Json::num(s.records as f64)),
        ("generation".into(), Json::num(s.generation as f64)),
        ("queries".into(), Json::num(s.queries as f64)),
        ("links".into(), Json::num(s.links as f64)),
        ("inserts".into(), Json::num(s.inserts as f64)),
        ("cache_hits".into(), Json::num(s.cache_hits as f64)),
        ("cache_misses".into(), Json::num(s.cache_misses as f64)),
        ("plan_hits".into(), Json::num(s.plan_hits as f64)),
        ("plan_misses".into(), Json::num(s.plan_misses as f64)),
        ("busy_rejected".into(), Json::num(s.busy_rejected as f64)),
        ("compactions".into(), Json::num(s.compactions as f64)),
        (
            "segments_merged".into(),
            Json::num(s.segments_merged as f64),
        ),
        ("merge_rows".into(), Json::num(s.merge_rows as f64)),
        ("kernel".into(), Json::Str(s.kernel.clone())),
        ("bytes_read".into(), Json::num(s.bytes_read as f64)),
        ("latency_p50_us".into(), Json::num(s.latency_p50_us as f64)),
        ("latency_p99_us".into(), Json::num(s.latency_p99_us as f64)),
        ("uptime_ms".into(), Json::num(s.uptime_ms as f64)),
        ("workers".into(), Json::num(s.workers as f64)),
        ("queue_capacity".into(), Json::num(s.queue_capacity as f64)),
        (
            "quarantined_segments".into(),
            Json::num(s.quarantined_segments as f64),
        ),
        ("degraded".into(), Json::Bool(s.degraded)),
        ("cluster_shards".into(), Json::num(s.cluster_shards as f64)),
        ("shards_down".into(), Json::num(s.shards_down as f64)),
        (
            "missing_shards".into(),
            Json::Arr(
                s.missing_shards
                    .iter()
                    .map(|i| Json::num(*i as f64))
                    .collect(),
            ),
        ),
    ])
}

/// Prints a `StatsReport` for humans, including the cluster section and
/// degraded-mode banners when they apply.
fn print_stats(addr: &str, s: &StatsReport) {
    println!(
        "{addr}: {} records at generation {}, up {} ms",
        s.records, s.generation, s.uptime_ms
    );
    println!(
        "  requests: {} queries, {} links, {} inserts; latency p50 {} us, p99 {} us",
        s.queries, s.links, s.inserts, s.latency_p50_us, s.latency_p99_us
    );
    println!(
        "  cache: {} hits / {} misses (plans: {} hits / {} misses); \
         backpressure: {} rejected (queue {}, {} workers)",
        s.cache_hits,
        s.cache_misses,
        s.plan_hits,
        s.plan_misses,
        s.busy_rejected,
        s.queue_capacity,
        s.workers
    );
    println!(
        "  maintenance: {} compactions merged {} segments ({} rows rewritten); \
         {} bytes read",
        s.compactions, s.segments_merged, s.merge_rows, s.bytes_read
    );
    if !s.kernel.is_empty() {
        println!("  scan kernel: {}", s.kernel);
    }
    if s.cluster_shards > 0 {
        println!(
            "  cluster: {} shards, {} down",
            s.cluster_shards, s.shards_down
        );
        if s.shards_down > 0 {
            println!(
                "  DEGRADED CLUSTER: shard(s) {:?} unreachable; results cover \
                 surviving shards only",
                s.missing_shards
            );
        }
    }
    if s.degraded && s.quarantined_segments > 0 {
        println!(
            "  DEGRADED: {} segment(s) quarantined; results cover \
             surviving segments only",
            s.quarantined_segments
        );
    }
}

/// `pprl cluster <action>` — run or inspect a scatter–gather cluster
/// coordinator over sharded `pprl serve` nodes.
///
/// Like `index`/`client`, the action is parsed as the subcommand, so
/// `args.command` holds `serve|stats`.
pub fn cluster_cmd(mut args: Args) -> CmdResult {
    match args.command.as_str() {
        "serve" => {
            let shards_arg = args.require("shards").map_err(fail)?;
            let host = args.get_or("host", "127.0.0.1");
            let port: u16 = args.parse_or("port", 7879).map_err(fail)?;
            let workers: usize = args.parse_or("workers", 2).map_err(fail)?;
            let queue: usize = args.parse_or("queue", 32).map_err(fail)?;
            let quorum_flag: Option<usize> = match args.get("quorum") {
                None => None,
                Some(v) => Some(
                    v.parse()
                        .map_err(|_| format!("flag `--quorum`: cannot parse `{v}`"))?,
                ),
            };
            let deadline_ms: u64 = args.parse_or("deadline-ms", 10_000).map_err(fail)?;
            let addr_file = args.get("addr-file");
            let args_suite = args.get_or("suite", "auto");
            // Shard-leg credentials: the coordinator is itself a client
            // to the shard nodes, so it reuses the client auth flags
            // (including `--suite`; the default offer negotiates the
            // fast suite on every privileged shard hop).
            let shard_auth = auth_from_args(&mut args)?;
            // Front-end registry: who may connect to the coordinator.
            let auth_dir = args.get("auth-dir");
            args.finish().map_err(fail)?;

            let shards: Vec<String> = shards_arg
                .split(',')
                .filter(|s| !s.is_empty())
                .map(str::to_string)
                .collect();
            if shards.is_empty() {
                return Err("--shards needs a comma-separated list of host:port".into());
            }
            // Default quorum: all shards (reads degrade only if asked to).
            let min_shards = quorum_flag.unwrap_or(shards.len());
            let n_shards = shards.len();
            let coordinator = std::sync::Arc::new(
                Coordinator::connect(ClusterConfig {
                    shards,
                    min_shards,
                    deadline: std::time::Duration::from_millis(deadline_ms.max(1)),
                    shard_auth,
                })
                .map_err(fail)?,
            );
            let missing = coordinator.missing_shards();
            // One `--suite` flag governs both legs: auth_from_args put
            // it in the shard hops' offer above, and the front end
            // enforces it as policy on inbound clients here.
            let suites = SuiteOffer::parse(&args_suite).map_err(fail)?;
            let front_config = ClusterServerConfig {
                workers,
                queue_capacity: queue,
                suites,
                ..ClusterServerConfig::default()
            };
            let bind = format!("{host}:{port}");
            let handle = match &auth_dir {
                Some(auth) => {
                    let registry = AuthRegistry::load(std::path::Path::new(auth)).map_err(fail)?;
                    serve_cluster_auth(
                        std::sync::Arc::clone(&coordinator),
                        &bind,
                        front_config,
                        registry,
                    )
                    .map_err(fail)?
                }
                None => serve_cluster(std::sync::Arc::clone(&coordinator), &bind, front_config)
                    .map_err(fail)?,
            };
            let addr = handle.addr();
            if let Some(path) = addr_file {
                write_file_atomic(&path, &addr.to_string())?;
            }
            println!(
                "cluster coordinator on {addr}: {n_shards} shards, quorum {min_shards}, \
                 {workers} workers, queue {queue}, shard deadline {deadline_ms} ms"
            );
            if !missing.is_empty() {
                println!(
                    "  DEGRADED CLUSTER: shard(s) {missing:?} unreachable at start; \
                     serving from the survivors"
                );
            }
            let coordinator = handle.join();
            let stats = coordinator.stats(0);
            println!(
                "coordinator shut down after {} queries, {} links, {} inserts \
                 ({} degraded replies); shards keep running",
                stats.queries,
                stats.links,
                stats.inserts,
                coordinator
                    .metrics
                    .degraded_replies
                    .load(std::sync::atomic::Ordering::Relaxed)
            );
            Ok(())
        }
        "stats" => {
            let addr = args.require("addr").map_err(fail)?;
            let json = args.flag("json");
            let auth = auth_from_args(&mut args)?;
            args.finish().map_err(fail)?;
            let mut client = Client::connect_with(&addr, auth).map_err(fail)?;
            let s = client.stats().map_err(fail)?;
            if s.cluster_shards == 0 {
                return Err(format!(
                    "{addr} is a single pprl-server node, not a cluster \
                     coordinator (use `pprl client stats`)"
                ));
            }
            if json {
                print!("{}", stats_json(&addr, &s).render());
                return Ok(());
            }
            print_stats(&addr, &s);
            Ok(())
        }
        other => Err(format!("unknown cluster action `{other}` (serve|stats)")),
    }
}

/// `pprl kernels` — report this host's scan-kernel dispatch: detected
/// CPU features, every runnable implementation, the `PPRL_KERNEL`
/// override when one is set, and the active choice.
///
/// `--list` prints just the runnable kernel names, one per line, for
/// scripting (CI iterates it to force each path in turn). `--check`
/// turns an unsupported `PPRL_KERNEL` request into a hard error
/// instead of the silent best-available fallback the library applies.
pub fn kernels_cmd(mut args: Args) -> CmdResult {
    use pprl_similarity::kernel;
    let list = args.flag("list");
    let check = args.flag("check");
    args.finish().map_err(fail)?;
    let names: Vec<&str> = kernel::available_kernels()
        .iter()
        .map(|k| k.name())
        .collect();
    if list {
        for name in &names {
            println!("{name}");
        }
        return Ok(());
    }
    let features = kernel::cpu_features();
    println!(
        "cpu features: {}",
        if features.is_empty() {
            "(none relevant)".to_string()
        } else {
            features.join(" ")
        }
    );
    println!("available kernels (worst to best): {}", names.join(" "));
    match kernel::requested_kernel() {
        Some(req) if kernel::requested_is_supported() => {
            println!("requested via PPRL_KERNEL: {req}");
        }
        Some(req) => {
            println!("requested via PPRL_KERNEL: {req} (NOT runnable on this host)");
        }
        None => println!("requested via PPRL_KERNEL: (unset; best available wins)"),
    }
    println!("active kernel: {}", kernel::kernel_name());
    if check && !kernel::requested_is_supported() {
        return Err(format!(
            "PPRL_KERNEL={} is not runnable on this host (available: {})",
            kernel::requested_kernel().unwrap_or("?"),
            names.join(" ")
        ));
    }
    Ok(())
}

/// `pprl suites` — report the record-layer cipher suites this build
/// can negotiate, mirroring `pprl kernels` for the auth data plane.
///
/// `--list` prints just the suite names, one per line, for scripting
/// (CI iterates it to pin each suite in turn). `--bench` additionally
/// measures each suite's keystream throughput on this host, so the
/// negotiation preference order can be sanity-checked against reality.
pub fn suites_cmd(mut args: Args) -> CmdResult {
    let list = args.flag("list");
    let bench = args.flag("bench");
    args.finish().map_err(fail)?;
    // Fastest first, matching the server's selection preference.
    let suites: Vec<CipherSuite> = SuiteOffer::all().iter().collect();
    if list {
        for s in &suites {
            println!("{s}");
        }
        return Ok(());
    }
    let names: Vec<&str> = suites.iter().map(|s| s.name()).collect();
    println!(
        "available cipher suites (best to worst): {}",
        names.join(" ")
    );
    println!(
        "negotiation: client offers a set (--suite auto = all), server \
         selects the fastest common suite; both bytes are transcript-bound, \
         so downgrades abort the handshake"
    );
    println!("default selection: {}", suites[0]);
    if bench {
        use pprl_crypto::chacha;
        use pprl_crypto::sha::HmacKey;
        let mut body = vec![0u8; 1 << 20];
        for (i, b) in body.iter_mut().enumerate() {
            *b = (i * 31 + 7) as u8;
        }
        for suite in &suites {
            let started = std::time::Instant::now();
            let mut passes = 0u32;
            // Keep probing until ~200 ms elapsed for a stable figure.
            while started.elapsed() < std::time::Duration::from_millis(200) {
                match suite {
                    CipherSuite::ChaCha20 => {
                        chacha::apply_keystream(&[0x42; 32], &[7; 12], 0, &mut body);
                    }
                    CipherSuite::HmacCtr => {
                        // The legacy keystream: one HMAC per 32-byte
                        // block, exactly as the channel applies it.
                        let key = HmacKey::new(&[0x42; 32]);
                        let mut input = [0u8; 16];
                        input[..8].copy_from_slice(&passes.to_le_bytes()[..4].repeat(2));
                        for (i, block) in body.chunks_mut(32).enumerate() {
                            input[8..].copy_from_slice(&(i as u64).to_le_bytes());
                            let pad = key.mac(&input);
                            for (b, p) in block.iter_mut().zip(pad.iter()) {
                                *b ^= p;
                            }
                        }
                    }
                }
                passes += 1;
            }
            let mb = f64::from(passes) * (body.len() as f64) / (1024.0 * 1024.0);
            let mbps = mb / started.elapsed().as_secs_f64();
            println!("{suite}: {mbps:.0} MB/s keystream on this host");
        }
    }
    Ok(())
}

/// Top-level help text.
pub fn help() -> &'static str {
    "pprl — privacy-preserving record linkage toolkit

USAGE:
  pprl <command> [flags]

COMMANDS:
  generate  --out-a A.csv --out-b B.csv [--size N] [--overlap N]
            [--corruption F] [--seed N]
            synthesise a linked dataset pair with ground truth

  link      --a A.csv --b B.csv --key SECRET [--threshold F]
            [--backend memory|index] [--blocking lsh|standard|full]
            [--index-dir IDX] [--top-k K] [--threads N]
            [--output matches.csv] [--evaluate] [--json]
            privacy-preserving linkage of two CSV datasets;
            --backend index links A against a pre-built persistent
            index (see `pprl index build`) instead of re-blocking B
            in memory; --json emits machine-readable stats (source,
            candidates, comparisons saved, bytes read, pairs)

  dedup     --input A.csv [--threshold F] [--backend memory|index]
            [--index-dir IDX] [--top-k K] [--key SECRET] [--threads N]
            [--output clean.csv]
            find internal duplicate clusters; optionally materialise
            the deduplicated dataset; --backend index self-joins
            through a pre-built persistent index of the same dataset
            (build it with `pprl index build` and the same --key,
            default local-dedup)

  encode    --input A.csv --key SECRET --output clks.csv
            encode records to CLK Bloom filters (hex)

  index     build  --dir IDX --input A.csv --key SECRET [--shards N]
            insert --dir IDX --input B.csv --key SECRET [--id-base N]
                   [--compact]
            query  --dir IDX --input Q.csv --key SECRET [--row N]
                   [--top-k K] [--threads N] [--json]
            stats  --dir IDX
            snapshot --dir IDX --out COPY
            persistent sharded CLK filter store: build from CSV, add
            records incrementally, run exact top-k Dice queries
            (multi-threaded), inspect/verify the on-disk state; WAL
            appends are fsynced before inserts are acked, and opening
            quarantines corrupt segments (stats reports DEGRADED)
            instead of refusing; snapshot ships a verified byte-exact
            copy (sealed segments + WAL tail) for seeding a new
            cluster shard node

  keygen    --out key.psk | --auth-dir DIR --identity NAME [--tenant T]
            generate a 32-byte party key and write it hex-encoded with
            owner-only (0600) permissions; with --auth-dir the key
            lands as DIR/NAME.psk and --tenant appends a grant to
            DIR/tenants.map (`*` = privileged: any tenant, may shut
            servers down); only the fingerprint is printed

  serve     --index IDX [--host H] [--port P] [--workers N] [--queue N]
            [--cache N] [--threads N] [--compact-interval-ms MS]
            [--addr-file PATH] [--auth-dir DIR]
            [--suite auto|chacha20|hmac-ctr]
            serve the index over TCP: concurrent top-k Dice queries,
            batch link, durable inserts, background size-tiered
            compaction (set MS to 0 to disable), snapshot-isolated
            reads; --port 0 binds an ephemeral port and --addr-file
            publishes the resolved address atomically (tmp + rename);
            --auth-dir requires every client to complete the wire v4
            handshake against DIR's keys and serves one namespace per
            granted tenant (IDX/<tenant>, or IDX itself as `default`
            when it holds a MANIFEST directly); --suite restricts the
            record-layer cipher suites the server will negotiate
            (default auto: fastest common suite wins); runs until a
            client sends shutdown

  client    query    --addr H:P --input Q.csv --key SECRET [--row N]
                     [--top-k K] [--json]
            link     --addr H:P --input Q.csv --key SECRET [--top-k K]
                     [--min-score F] [--output hits.csv]
            insert   --addr H:P --input B.csv --key SECRET [--id-base N]
            stats    --addr H:P [--json]
            shutdown --addr H:P
            talk to a running `pprl serve` or `pprl cluster serve`;
            every action also takes [--deadline-ms MS] (default 60000),
            the total budget for the call including bounded-backoff
            retries after Busy rejections, [--cluster], which asserts
            the address is a cluster coordinator (loud error when
            pointed at a lone shard), and the session-auth flags
            [--identity NAME --key-file K.psk] [--tenant T] [--encrypt]
            [--suite auto|chacha20|hmac-ctr]
            for servers running with --auth-dir (--encrypt additionally
            encrypts frame bodies; --suite narrows the cipher-suite
            offer, default auto; shutdown needs a `*` grant);
            query/link results are bit-for-bit identical to offline
            `pprl index query`

  cluster   serve --shards H:P,H:P,... [--host H] [--port P]
                  [--workers N] [--queue N] [--quorum N]
                  [--deadline-ms MS] [--addr-file PATH]
                  [--identity NAME --key-file K.psk] [--encrypt]
                  [--auth-dir DIR] [--suite auto|chacha20|hmac-ctr]
            stats --addr H:P [--json]
                  [--identity NAME --key-file K.psk] [--encrypt]
            scatter-gather coordinator over sharded `pprl serve` nodes,
            speaking the same wire protocol on both sides: queries
            broadcast to every shard and merge exactly (results
            bit-identical to one node holding the union corpus),
            inserts route by a stable hash of the record id, and a
            dead shard degrades reads down to --quorum survivors
            (default: all shards) instead of failing them — stats
            shows a DEGRADED CLUSTER banner with the missing shards;
            shutdown stops only the coordinator, never the shards;
            --identity/--key-file authenticate the coordinator to
            auth-enabled shards and --auth-dir makes the front end
            demand the same handshake from its own clients; --suite
            governs both legs (shard-hop offer and front-end policy)

  kernels   [--list] [--check]
            report the scan-kernel dispatch on this host: detected CPU
            features, runnable implementations, and the active choice;
            every scan obeys PPRL_KERNEL=scalar|portable|avx2|avx512|neon
            (unset or `auto` picks the best the CPU supports); --list
            prints just the runnable names for scripting, --check fails
            loudly when PPRL_KERNEL names a kernel this host cannot run

  suites    [--list] [--bench]
            report the record-layer cipher suites this build negotiates
            for authenticated sessions (chacha20, hmac-ctr) and how
            negotiation picks between them; --list prints just the
            names for scripting, --bench measures each suite's
            keystream throughput on this host

  multiparty --inputs A.csv,B.csv,C.csv --key SECRET [--threshold F]
            [--pattern ring|sequential|tree|hierarchical]
            [--fault-rate F] [--crash-party N] [--crash-round N]
            [--retries N] [--min-parties N] [--seed N]
            multi-party linkage over a simulated network; --fault-rate
            injects message drops/corruption (recovered by retries),
            --crash-party kills one party mid-run (the run degrades to
            the survivors or aborts once fewer than --min-parties remain)

CSV format: header row with the person-schema columns (first_name,
last_name, street, city, postcode, dob, gender, age); an optional
entity_id column carries evaluation ground truth."
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::Args;

    fn raw(s: &str) -> Vec<String> {
        s.split_whitespace().map(|x| x.to_string()).collect()
    }

    fn tmp(name: &str) -> String {
        let dir = std::env::temp_dir().join("pprl-cli-tests");
        std::fs::create_dir_all(&dir).expect("tmp dir");
        dir.join(name).to_string_lossy().into_owned()
    }

    #[test]
    fn generate_then_link_then_dedup_then_encode() {
        let a = tmp("a.csv");
        let b = tmp("b.csv");
        let matches = tmp("m.csv");
        let clean = tmp("clean.csv");
        let clks = tmp("clks.csv");

        generate(
            Args::parse(
                &raw(&format!(
                    "generate --out-a {a} --out-b {b} --size 120 --overlap 40 --seed 7"
                )),
                &[],
            )
            .unwrap(),
        )
        .unwrap();
        assert!(std::path::Path::new(&a).exists());

        link_cmd(
            Args::parse(
                &raw(&format!(
                    "link --a {a} --b {b} --key s3cret --evaluate --output {matches}"
                )),
                &["evaluate"],
            )
            .unwrap(),
        )
        .unwrap();
        let m = std::fs::read_to_string(&matches).unwrap();
        assert!(m.starts_with("row_a,row_b,similarity"));
        assert!(m.lines().count() > 10, "should find matches");

        dedup_cmd(Args::parse(&raw(&format!("dedup --input {a} --output {clean}")), &[]).unwrap())
            .unwrap();
        assert!(std::path::Path::new(&clean).exists());

        encode_cmd(
            Args::parse(
                &raw(&format!("encode --input {a} --key s3cret --output {clks}")),
                &[],
            )
            .unwrap(),
        )
        .unwrap();
        let c = std::fs::read_to_string(&clks).unwrap();
        assert!(c.starts_with("row,clk_hex"));
        assert_eq!(c.lines().count(), 121); // header + 120 rows
    }

    #[test]
    fn dedup_via_index_backend() {
        let input = tmp("dedup-src.csv");
        let other = tmp("dedup-other.csv");
        let idx = tmp("dedup-idx");
        let _ = std::fs::remove_dir_all(&idx);
        generate(
            Args::parse(
                &raw(&format!(
                    "generate --out-a {input} --out-b {other} --size 60 --overlap 20 --seed 11"
                )),
                &[],
            )
            .unwrap(),
        )
        .unwrap();
        // Index the dataset under the dedup encoder key, then self-join
        // through it. Missing --index-dir must be a clean usage error.
        index_cmd(
            Args::parse(
                &raw(&format!(
                    "build --dir {idx} --input {input} --key local-dedup"
                )),
                &[],
            )
            .unwrap(),
        )
        .unwrap();
        let err = dedup_cmd(
            Args::parse(&raw(&format!("dedup --input {input} --backend index")), &[]).unwrap(),
        )
        .unwrap_err();
        assert!(err.contains("--index-dir"), "{err}");
        dedup_cmd(
            Args::parse(
                &raw(&format!(
                    "dedup --input {input} --backend index --index-dir {idx} --top-k 60 --threads 2"
                )),
                &[],
            )
            .unwrap(),
        )
        .unwrap();
        std::fs::remove_dir_all(&idx).ok();
    }

    #[test]
    fn multiparty_with_faults_and_crash() {
        // Three party CSVs with a common core of entities.
        let mut g = Generator::new(GeneratorConfig {
            seed: 21,
            corruption_rate: 0.1,
            ..GeneratorConfig::default()
        })
        .unwrap();
        let ds = g.multi_party(3, 12, 4).unwrap();
        let mut paths = Vec::new();
        for (i, d) in ds.iter().enumerate() {
            let p = tmp(&format!("mp-{i}.csv"));
            std::fs::write(&p, d.to_csv()).unwrap();
            paths.push(p);
        }
        let inputs = paths.join(",");
        // Fault-free run.
        multiparty_cmd(
            Args::parse(&raw(&format!("multiparty --inputs {inputs} --key k")), &[]).unwrap(),
        )
        .unwrap();
        // Lossy network, extra retries.
        multiparty_cmd(
            Args::parse(
                &raw(&format!(
                    "multiparty --inputs {inputs} --key k --fault-rate 0.05 --retries 8"
                )),
                &[],
            )
            .unwrap(),
        )
        .unwrap();
        // A crash with a full quorum demanded is a clean error, not a panic.
        let e = multiparty_cmd(
            Args::parse(
                &raw(&format!(
                    "multiparty --inputs {inputs} --key k --crash-party 1 --min-parties 3"
                )),
                &[],
            )
            .unwrap(),
        )
        .unwrap_err();
        assert!(e.contains("quorum"), "{e}");
        // Bad pattern is a clean error.
        let e = multiparty_cmd(
            Args::parse(
                &raw(&format!(
                    "multiparty --inputs {inputs} --key k --pattern bogus"
                )),
                &[],
            )
            .unwrap(),
        )
        .unwrap_err();
        assert!(e.contains("bogus"));
    }

    #[test]
    fn index_build_insert_query_stats_lifecycle() {
        let a = tmp("idx-a.csv");
        let b = tmp("idx-b.csv");
        let dir = tmp("idx-store");
        let _ = std::fs::remove_dir_all(&dir);
        generate(
            Args::parse(
                &raw(&format!(
                    "generate --out-a {a} --out-b {b} --size 60 --overlap 20 --seed 11"
                )),
                &[],
            )
            .unwrap(),
        )
        .unwrap();

        index_cmd(
            Args::parse(
                &raw(&format!(
                    "build --dir {dir} --input {a} --key s3cret --shards 4"
                )),
                &[],
            )
            .unwrap(),
        )
        .unwrap();
        index_cmd(
            Args::parse(
                &raw(&format!(
                    "insert --dir {dir} --input {b} --key s3cret --compact"
                )),
                &["compact"],
            )
            .unwrap(),
        )
        .unwrap();
        index_cmd(
            Args::parse(
                &raw(&format!(
                    "query --dir {dir} --input {a} --key s3cret --row 3 --top-k 5 --threads 2"
                )),
                &[],
            )
            .unwrap(),
        )
        .unwrap();
        index_cmd(Args::parse(&raw(&format!("stats --dir {dir}")), &[]).unwrap()).unwrap();

        // The store really holds both datasets, and a stored record's own
        // filter is its unit-similarity top hit.
        let store = IndexStore::open(std::path::Path::new(&dir)).unwrap();
        let s = store.stats().unwrap();
        assert_eq!(s.persisted_records, 120);
        assert_eq!(s.pending_records, 0);
        let reader = store.reader().unwrap();
        let queries = encode_filters(&a, "s3cret", 0).unwrap();
        let hits = reader.top_k(&queries[3].1, 5, 2).unwrap();
        assert_eq!(hits[0].id, 3);
        assert_eq!(hits[0].score, 1.0);

        // Bad action and out-of-range row are clean errors.
        let e =
            index_cmd(Args::parse(&raw(&format!("drop --dir {dir}")), &[]).unwrap()).unwrap_err();
        assert!(e.contains("unknown index action"), "{e}");
        let e = index_cmd(
            Args::parse(
                &raw(&format!(
                    "query --dir {dir} --input {a} --key s3cret --row 999"
                )),
                &[],
            )
            .unwrap(),
        )
        .unwrap_err();
        assert!(e.contains("out of range"), "{e}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn link_backend_index_matches_memory_full() {
        let a = tmp("lbi-a.csv");
        let b = tmp("lbi-b.csv");
        let dir = tmp("lbi-idx");
        let mem = tmp("lbi-mem.csv");
        let idx = tmp("lbi-via-idx.csv");
        let _ = std::fs::remove_dir_all(&dir);
        generate(
            Args::parse(
                &raw(&format!(
                    "generate --out-a {a} --out-b {b} --size 80 --overlap 30 --seed 13"
                )),
                &[],
            )
            .unwrap(),
        )
        .unwrap();
        // Index dataset B with id = row, the contract of --backend index.
        index_cmd(
            Args::parse(
                &raw(&format!("build --dir {dir} --input {b} --key s3cret")),
                &[],
            )
            .unwrap(),
        )
        .unwrap();
        // Exhaustive in-memory reference vs index-backed run with
        // top_k ≥ |B|: the match CSVs must be identical.
        link_cmd(
            Args::parse(
                &raw(&format!(
                    "link --a {a} --b {b} --key s3cret --blocking full --output {mem}"
                )),
                &[],
            )
            .unwrap(),
        )
        .unwrap();
        link_cmd(
            Args::parse(
                &raw(&format!(
                    "link --a {a} --b {b} --key s3cret --backend index --index-dir {dir} \
                     --top-k 80 --json --output {idx}"
                )),
                &["json"],
            )
            .unwrap(),
        )
        .unwrap();
        let mem_csv = std::fs::read_to_string(&mem).unwrap();
        let idx_csv = std::fs::read_to_string(&idx).unwrap();
        assert!(mem_csv.lines().count() > 10, "reference run found matches");
        assert_eq!(
            mem_csv, idx_csv,
            "index backend must reproduce the match set"
        );
        // JSON query against the same index runs cleanly.
        index_cmd(
            Args::parse(
                &raw(&format!(
                    "query --dir {dir} --input {a} --key s3cret --row 1 --top-k 3 --json"
                )),
                &["json"],
            )
            .unwrap(),
        )
        .unwrap();
        // --backend index without --index-dir is a clean error.
        let e = link_cmd(
            Args::parse(
                &raw(&format!(
                    "link --a {a} --b {b} --key s3cret --backend index"
                )),
                &[],
            )
            .unwrap(),
        )
        .unwrap_err();
        assert!(e.contains("--index-dir"), "{e}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn serve_and_client_round_trip() {
        let a = tmp("srv-a.csv");
        let b = tmp("srv-b.csv");
        let dir = tmp("srv-idx");
        let hits_csv = tmp("srv-hits.csv");
        let _ = std::fs::remove_dir_all(&dir);
        generate(
            Args::parse(
                &raw(&format!(
                    "generate --out-a {a} --out-b {b} --size 50 --overlap 15 --seed 5"
                )),
                &[],
            )
            .unwrap(),
        )
        .unwrap();
        index_cmd(
            Args::parse(
                &raw(&format!("build --dir {dir} --input {a} --key s3cret")),
                &[],
            )
            .unwrap(),
        )
        .unwrap();

        // Serve on an ephemeral port; discover it via --addr-file.
        let addr_file = tmp("srv-addr.txt");
        let _ = std::fs::remove_file(&addr_file);
        let serve_args = Args::parse(
            &raw(&format!(
                "serve --index {dir} --port 0 --workers 2 --compact-interval-ms 50 \
                 --addr-file {addr_file}"
            )),
            &[],
        )
        .unwrap();
        let server = std::thread::spawn(move || serve_cmd(serve_args));
        let addr = {
            let mut waited = 0;
            loop {
                if let Ok(s) = std::fs::read_to_string(&addr_file) {
                    if !s.is_empty() {
                        break s;
                    }
                }
                std::thread::sleep(std::time::Duration::from_millis(50));
                waited += 1;
                assert!(waited < 200, "server never published its address");
            }
        };

        client_cmd(
            Args::parse(
                &raw(&format!(
                    "query --addr {addr} --input {b} --key s3cret --row 2 --top-k 5 --json"
                )),
                &["json"],
            )
            .unwrap(),
        )
        .unwrap();
        client_cmd(
            Args::parse(
                &raw(&format!(
                    "link --addr {addr} --input {b} --key s3cret --top-k 3 --min-score 0.7 \
                     --output {hits_csv}"
                )),
                &[],
            )
            .unwrap(),
        )
        .unwrap();
        let hits = std::fs::read_to_string(&hits_csv).unwrap();
        assert!(hits.starts_with("row,id,similarity"));
        assert!(hits.lines().count() > 10, "overlapping rows should link");
        client_cmd(
            Args::parse(
                &raw(&format!("insert --addr {addr} --input {b} --key s3cret")),
                &[],
            )
            .unwrap(),
        )
        .unwrap();
        client_cmd(Args::parse(&raw(&format!("stats --addr {addr}")), &[]).unwrap()).unwrap();
        // Bad action is a clean error that doesn't touch the server.
        let e = client_cmd(Args::parse(&raw(&format!("poke --addr {addr}")), &[]).unwrap())
            .unwrap_err();
        assert!(e.contains("unknown client action"), "{e}");
        client_cmd(Args::parse(&raw(&format!("shutdown --addr {addr}")), &[]).unwrap()).unwrap();
        server.join().unwrap().unwrap();

        // The wire insert was durable: 50 built + 50 inserted.
        let store = IndexStore::open(std::path::Path::new(&dir)).unwrap();
        assert_eq!(store.record_count().unwrap(), 100);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn keygen_serve_auth_and_client_round_trip() {
        let a = tmp("auth-a.csv");
        let b = tmp("auth-b.csv");
        let dir = tmp("auth-idx");
        let auth_dir = tmp("auth-keys");
        let _ = std::fs::remove_dir_all(&dir);
        let _ = std::fs::remove_dir_all(&auth_dir);
        generate(
            Args::parse(
                &raw(&format!(
                    "generate --out-a {a} --out-b {b} --size 40 --overlap 10 --seed 9"
                )),
                &[],
            )
            .unwrap(),
        )
        .unwrap();
        index_cmd(
            Args::parse(
                &raw(&format!("build --dir {dir} --input {a} --key s3cret")),
                &[],
            )
            .unwrap(),
        )
        .unwrap();

        // keygen into the auth dir: a default-tenant client and a
        // privileged operator.
        keygen(
            Args::parse(
                &raw(&format!(
                    "keygen --auth-dir {auth_dir} --identity alice --tenant default"
                )),
                &[],
            )
            .unwrap(),
        )
        .unwrap();
        keygen(
            Args::parse(
                &raw(&format!(
                    "keygen --auth-dir {auth_dir} --identity admin --tenant *"
                )),
                &[],
            )
            .unwrap(),
        )
        .unwrap();
        let alice_key = format!("{auth_dir}/alice.psk");
        let admin_key = format!("{auth_dir}/admin.psk");

        let addr_file = tmp("auth-addr.txt");
        let _ = std::fs::remove_file(&addr_file);
        let serve_args = Args::parse(
            &raw(&format!(
                "serve --index {dir} --port 0 --workers 2 --compact-interval-ms 0 \
                 --auth-dir {auth_dir} --addr-file {addr_file}"
            )),
            &[],
        )
        .unwrap();
        let server = std::thread::spawn(move || serve_cmd(serve_args));
        let addr = {
            let mut waited = 0;
            loop {
                if let Ok(s) = std::fs::read_to_string(&addr_file) {
                    if !s.is_empty() {
                        break s;
                    }
                }
                std::thread::sleep(std::time::Duration::from_millis(50));
                waited += 1;
                assert!(waited < 200, "server never published its address");
            }
        };

        // Unauthenticated access is refused before dispatch.
        let e = client_cmd(Args::parse(&raw(&format!("stats --addr {addr}")), &[]).unwrap())
            .unwrap_err();
        assert!(e.contains("authentication required"), "{e}");

        // Authenticated, encrypted query and stats work.
        client_cmd(
            Args::parse(
                &raw(&format!(
                    "query --addr {addr} --input {b} --key s3cret --row 1 --top-k 3 \
                     --identity alice --key-file {alice_key} --encrypt"
                )),
                &["encrypt"],
            )
            .unwrap(),
        )
        .unwrap();
        client_cmd(
            Args::parse(
                &raw(&format!(
                    "stats --addr {addr} --identity alice --key-file {alice_key}"
                )),
                &[],
            )
            .unwrap(),
        )
        .unwrap();

        // Shutdown needs the privileged grant.
        let e = client_cmd(
            Args::parse(
                &raw(&format!(
                    "shutdown --addr {addr} --identity alice --key-file {alice_key}"
                )),
                &[],
            )
            .unwrap(),
        )
        .unwrap_err();
        assert!(e.contains("not privileged"), "{e}");
        client_cmd(
            Args::parse(
                &raw(&format!(
                    "shutdown --addr {addr} --identity admin --key-file {admin_key}"
                )),
                &[],
            )
            .unwrap(),
        )
        .unwrap();
        server.join().unwrap().unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
        std::fs::remove_dir_all(&auth_dir).unwrap();
    }

    #[test]
    fn missing_or_truncated_manifest_is_a_clean_error() {
        // Regression: `pprl index` against a directory that is not an
        // index (or whose manifest was cut short) must return a typed
        // error string, never panic.
        let dir = tmp("no-manifest");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let e =
            index_cmd(Args::parse(&raw(&format!("stats --dir {dir}")), &[]).unwrap()).unwrap_err();
        assert!(e.contains("MANIFEST missing"), "{e}");
        let a = tmp("no-manifest-q.csv");
        let bdummy = tmp("no-manifest-b.csv");
        generate(
            Args::parse(
                &raw(&format!(
                    "generate --out-a {a} --out-b {bdummy} --size 5 --overlap 1"
                )),
                &[],
            )
            .unwrap(),
        )
        .unwrap();
        let e = index_cmd(
            Args::parse(&raw(&format!("query --dir {dir} --input {a} --key k")), &[]).unwrap(),
        )
        .unwrap_err();
        assert!(e.contains("MANIFEST missing"), "{e}");
        let e = index_cmd(
            Args::parse(
                &raw(&format!("insert --dir {dir} --input {a} --key k")),
                &[],
            )
            .unwrap(),
        )
        .unwrap_err();
        assert!(e.contains("MANIFEST missing"), "{e}");

        // A truncated manifest is a storage error, also non-panicking.
        std::fs::write(std::path::Path::new(&dir).join("MANIFEST"), b"PIDX").unwrap();
        let e =
            index_cmd(Args::parse(&raw(&format!("stats --dir {dir}")), &[]).unwrap()).unwrap_err();
        assert!(e.contains("storage error"), "{e}");
        // `pprl serve` surfaces the same typed error.
        let e =
            serve_cmd(Args::parse(&raw(&format!("serve --index {dir} --port 0")), &[]).unwrap())
                .unwrap_err();
        assert!(e.contains("storage error"), "{e}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn helpful_errors() {
        // missing files
        let e = link_cmd(
            Args::parse(&raw("link --a /nonexistent.csv --b /x.csv --key k"), &[]).unwrap(),
        )
        .unwrap_err();
        assert!(e.contains("nonexistent"));
        // bad blocking choice
        let a = tmp("err-a.csv");
        let b = tmp("err-b.csv");
        generate(
            Args::parse(
                &raw(&format!(
                    "generate --out-a {a} --out-b {b} --size 10 --overlap 2"
                )),
                &[],
            )
            .unwrap(),
        )
        .unwrap();
        let e = link_cmd(
            Args::parse(
                &raw(&format!("link --a {a} --b {b} --key k --blocking bogus")),
                &[],
            )
            .unwrap(),
        )
        .unwrap_err();
        assert!(e.contains("bogus"));
    }

    #[test]
    fn help_mentions_every_command() {
        for c in [
            "generate",
            "link",
            "dedup",
            "encode",
            "multiparty",
            "index",
            "serve",
            "client",
            "cluster",
            "snapshot",
        ] {
            assert!(help().contains(c));
        }
    }

    #[test]
    fn index_snapshot_ships_a_verified_copy() {
        let a = tmp("snap-a.csv");
        let b = tmp("snap-b.csv");
        let dir = tmp("snap-idx");
        let copy = tmp("snap-copy");
        let _ = std::fs::remove_dir_all(&dir);
        let _ = std::fs::remove_dir_all(&copy);
        generate(
            Args::parse(
                &raw(&format!(
                    "generate --out-a {a} --out-b {b} --size 40 --overlap 10 --seed 9"
                )),
                &[],
            )
            .unwrap(),
        )
        .unwrap();
        index_cmd(
            Args::parse(
                &raw(&format!("build --dir {dir} --input {a} --key s3cret")),
                &[],
            )
            .unwrap(),
        )
        .unwrap();
        index_cmd(Args::parse(&raw(&format!("snapshot --dir {dir} --out {copy}")), &[]).unwrap())
            .unwrap();
        // The copy is a fully working index: stats and queries run.
        index_cmd(Args::parse(&raw(&format!("stats --dir {copy}")), &[]).unwrap()).unwrap();
        let replica = IndexStore::open(std::path::Path::new(&copy)).unwrap();
        assert_eq!(replica.record_count().unwrap(), 40);
        drop(replica);
        // Re-exporting onto an existing index is a clean error.
        let e = index_cmd(
            Args::parse(&raw(&format!("snapshot --dir {dir} --out {copy}")), &[]).unwrap(),
        )
        .unwrap_err();
        assert!(e.contains("already holds an index"), "{e}");
        std::fs::remove_dir_all(&dir).unwrap();
        std::fs::remove_dir_all(&copy).unwrap();
    }

    #[test]
    fn cluster_serve_stats_and_client_round_trip() {
        let a = tmp("cl-a.csv");
        let b = tmp("cl-b.csv");
        let dir0 = tmp("cl-s0");
        let dir1 = tmp("cl-s1");
        let _ = std::fs::remove_dir_all(&dir0);
        let _ = std::fs::remove_dir_all(&dir1);
        generate(
            Args::parse(
                &raw(&format!(
                    "generate --out-a {a} --out-b {b} --size 40 --overlap 15 --seed 3"
                )),
                &[],
            )
            .unwrap(),
        )
        .unwrap();
        for (dir, input) in [(&dir0, &a), (&dir1, &b)] {
            index_cmd(
                Args::parse(
                    &raw(&format!("build --dir {dir} --input {input} --key s3cret")),
                    &[],
                )
                .unwrap(),
            )
            .unwrap();
        }

        // Two shard nodes on ephemeral ports.
        let wait_addr = |path: &str| -> String {
            let mut waited = 0;
            loop {
                if let Ok(s) = std::fs::read_to_string(path) {
                    if !s.is_empty() {
                        break s;
                    }
                }
                std::thread::sleep(std::time::Duration::from_millis(50));
                waited += 1;
                assert!(waited < 200, "no address published at {path}");
            }
        };
        let mut shard_threads = Vec::new();
        let mut shard_addrs = Vec::new();
        for (i, dir) in [&dir0, &dir1].into_iter().enumerate() {
            let addr_file = tmp(&format!("cl-shard{i}.addr"));
            let _ = std::fs::remove_file(&addr_file);
            let serve_args = Args::parse(
                &raw(&format!(
                    "serve --index {dir} --port 0 --workers 1 --compact-interval-ms 0 \
                     --addr-file {addr_file}"
                )),
                &[],
            )
            .unwrap();
            shard_threads.push(std::thread::spawn(move || serve_cmd(serve_args)));
            shard_addrs.push(wait_addr(&addr_file));
        }

        // `cluster stats` against a lone shard is a loud error.
        let e = cluster_cmd(
            Args::parse(&raw(&format!("stats --addr {}", shard_addrs[0])), &[]).unwrap(),
        )
        .unwrap_err();
        assert!(e.contains("not a cluster coordinator"), "{e}");

        // The coordinator fronting both shards.
        let coord_file = tmp("cl-coord.addr");
        let _ = std::fs::remove_file(&coord_file);
        let cluster_args = Args::parse(
            &raw(&format!(
                "serve --shards {} --port 0 --workers 2 --addr-file {coord_file}",
                shard_addrs.join(",")
            )),
            &[],
        )
        .unwrap();
        let coordinator = std::thread::spawn(move || cluster_cmd(cluster_args));
        let coord_addr = wait_addr(&coord_file);

        // A stock client (with --cluster asserting the topology) sees
        // the union corpus through the coordinator.
        client_cmd(
            Args::parse(
                &raw(&format!(
                    "query --addr {coord_addr} --input {a} --key s3cret --row 1 \
                     --top-k 3 --cluster --json"
                )),
                &["cluster", "json"],
            )
            .unwrap(),
        )
        .unwrap();
        // --cluster against a lone shard is the mirrored loud error.
        let e = client_cmd(
            Args::parse(
                &raw(&format!("stats --addr {} --cluster", shard_addrs[0])),
                &["cluster"],
            )
            .unwrap(),
        )
        .unwrap_err();
        assert!(e.contains("not a cluster coordinator"), "{e}");
        cluster_cmd(Args::parse(&raw(&format!("stats --addr {coord_addr}")), &[]).unwrap())
            .unwrap();
        cluster_cmd(
            Args::parse(
                &raw(&format!("stats --addr {coord_addr} --json")),
                &["json"],
            )
            .unwrap(),
        )
        .unwrap();

        // Shutdown stops the coordinator only; the shards then answer
        // their own shutdowns.
        client_cmd(Args::parse(&raw(&format!("shutdown --addr {coord_addr}")), &[]).unwrap())
            .unwrap();
        coordinator.join().unwrap().unwrap();
        for addr in &shard_addrs {
            client_cmd(Args::parse(&raw(&format!("stats --addr {addr}")), &[]).unwrap()).unwrap();
            client_cmd(Args::parse(&raw(&format!("shutdown --addr {addr}")), &[]).unwrap())
                .unwrap();
        }
        for t in shard_threads {
            t.join().unwrap().unwrap();
        }
        std::fs::remove_dir_all(&dir0).unwrap();
        std::fs::remove_dir_all(&dir1).unwrap();
    }
}
