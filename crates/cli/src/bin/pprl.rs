//! Entry point of the `pprl` command-line tool.

use pprl_cli::args::Args;
use pprl_cli::commands;

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    if raw.is_empty() || raw[0] == "help" || raw[0] == "--help" || raw[0] == "-h" {
        println!("{}", commands::help());
        return;
    }
    // `index`, `client`, and `cluster` take their own action
    // subcommand: parse the tail so the action lands in `Args::command`.
    let is_index = raw[0] == "index";
    let is_client = raw[0] == "client";
    let is_cluster = raw[0] == "cluster";
    let parse_from = if is_index || is_client || is_cluster {
        &raw[1..]
    } else {
        &raw[..]
    };
    let args = match Args::parse(
        parse_from,
        &[
            "evaluate", "compact", "json", "cluster", "list", "check", "encrypt", "bench",
        ],
    ) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n\n{}", commands::help());
            std::process::exit(2);
        }
    };
    let result = if is_index {
        commands::index_cmd(args)
    } else if is_client {
        commands::client_cmd(args)
    } else if is_cluster {
        commands::cluster_cmd(args)
    } else {
        match args.command.as_str() {
            "generate" => commands::generate(args),
            "link" => commands::link_cmd(args),
            "dedup" => commands::dedup_cmd(args),
            "encode" => commands::encode_cmd(args),
            "multiparty" => commands::multiparty_cmd(args),
            "serve" => commands::serve_cmd(args),
            "keygen" => commands::keygen(args),
            "kernels" => commands::kernels_cmd(args),
            "suites" => commands::suites_cmd(args),
            other => {
                eprintln!("error: unknown command `{other}`\n\n{}", commands::help());
                std::process::exit(2);
            }
        }
    };
    if let Err(e) = result {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}
