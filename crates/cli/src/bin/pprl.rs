//! Entry point of the `pprl` command-line tool.

use pprl_cli::args::Args;
use pprl_cli::commands;

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    if raw.is_empty() || raw[0] == "help" || raw[0] == "--help" || raw[0] == "-h" {
        println!("{}", commands::help());
        return;
    }
    let args = match Args::parse(&raw, &["evaluate"]) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n\n{}", commands::help());
            std::process::exit(2);
        }
    };
    let result = match args.command.as_str() {
        "generate" => commands::generate(args),
        "link" => commands::link_cmd(args),
        "dedup" => commands::dedup_cmd(args),
        "encode" => commands::encode_cmd(args),
        "multiparty" => commands::multiparty_cmd(args),
        other => {
            eprintln!("error: unknown command `{other}`\n\n{}", commands::help());
            std::process::exit(2);
        }
    };
    if let Err(e) = result {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}
