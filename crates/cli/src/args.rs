//! Minimal argument parsing for the `pprl` CLI (no external deps).
//!
//! Supports `--flag value` options, `--flag` booleans, and one positional
//! subcommand. Unknown flags are hard errors so typos never silently pick
//! defaults.

use std::collections::HashMap;

/// Parsed command line: subcommand + options.
#[derive(Debug, Clone)]
pub struct Args {
    /// The subcommand (first positional argument).
    pub command: String,
    options: HashMap<String, String>,
    flags: Vec<String>,
    known: Vec<String>,
}

/// A parse failure with a user-facing message.
#[derive(Debug)]
pub struct ArgError(pub String);

impl std::fmt::Display for ArgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}
impl std::error::Error for ArgError {}

impl Args {
    /// Parses raw arguments (excluding the program name). `boolean_flags`
    /// lists the flags that take no value.
    pub fn parse(raw: &[String], boolean_flags: &[&str]) -> Result<Args, ArgError> {
        let Some(command) = raw.first() else {
            return Err(ArgError("missing subcommand".into()));
        };
        if command.starts_with('-') {
            return Err(ArgError(format!("expected a subcommand, got `{command}`")));
        }
        let mut options = HashMap::new();
        let mut flags = Vec::new();
        let mut i = 1;
        while i < raw.len() {
            let arg = &raw[i];
            let Some(name) = arg.strip_prefix("--") else {
                return Err(ArgError(format!("unexpected positional argument `{arg}`")));
            };
            if boolean_flags.contains(&name) {
                flags.push(name.to_string());
                i += 1;
            } else {
                let Some(value) = raw.get(i + 1) else {
                    return Err(ArgError(format!("flag `--{name}` needs a value")));
                };
                options.insert(name.to_string(), value.clone());
                i += 2;
            }
        }
        Ok(Args {
            command: command.clone(),
            options,
            flags,
            known: Vec::new(),
        })
    }

    /// Fetches a required option.
    pub fn require(&mut self, name: &str) -> Result<String, ArgError> {
        self.known.push(name.to_string());
        self.options
            .get(name)
            .cloned()
            .ok_or_else(|| ArgError(format!("missing required flag `--{name}`")))
    }

    /// Fetches an optional option with a default.
    pub fn get_or(&mut self, name: &str, default: &str) -> String {
        self.known.push(name.to_string());
        self.options
            .get(name)
            .cloned()
            .unwrap_or_else(|| default.to_string())
    }

    /// Fetches an optional option.
    pub fn get(&mut self, name: &str) -> Option<String> {
        self.known.push(name.to_string());
        self.options.get(name).cloned()
    }

    /// True when a boolean flag was passed.
    pub fn flag(&mut self, name: &str) -> bool {
        self.known.push(name.to_string());
        self.flags.iter().any(|f| f == name)
    }

    /// Parses a typed option with a default.
    pub fn parse_or<T: std::str::FromStr>(
        &mut self,
        name: &str,
        default: T,
    ) -> Result<T, ArgError> {
        match self.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| ArgError(format!("flag `--{name}`: cannot parse `{v}`"))),
        }
    }

    /// Errors on any option the command never consumed (typo protection).
    pub fn finish(&self) -> Result<(), ArgError> {
        for k in self.options.keys().chain(self.flags.iter()) {
            if !self.known.contains(k) {
                return Err(ArgError(format!(
                    "unknown flag `--{k}` for `{}`",
                    self.command
                )));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn raw(s: &str) -> Vec<String> {
        s.split_whitespace().map(|x| x.to_string()).collect()
    }

    #[test]
    fn parses_subcommand_options_and_flags() {
        let mut a =
            Args::parse(&raw("link --a x.csv --b y.csv --evaluate"), &["evaluate"]).unwrap();
        assert_eq!(a.command, "link");
        assert_eq!(a.require("a").unwrap(), "x.csv");
        assert_eq!(a.get_or("threshold", "0.8"), "0.8");
        assert!(a.flag("evaluate"));
        assert_eq!(a.require("b").unwrap(), "y.csv");
        a.finish().unwrap();
    }

    #[test]
    fn missing_subcommand_and_values() {
        assert!(Args::parse(&[], &[]).is_err());
        assert!(Args::parse(&raw("--link"), &[]).is_err());
        assert!(Args::parse(&raw("link --a"), &[]).is_err());
        assert!(Args::parse(&raw("link stray"), &[]).is_err());
    }

    #[test]
    fn unknown_flags_rejected_at_finish() {
        let mut a = Args::parse(&raw("link --a x --typo y"), &[]).unwrap();
        let _ = a.require("a");
        assert!(a.finish().is_err());
    }

    #[test]
    fn typed_parse() {
        let mut a = Args::parse(&raw("gen --size 100"), &[]).unwrap();
        assert_eq!(a.parse_or("size", 5usize).unwrap(), 100);
        assert_eq!(a.parse_or("overlap", 7usize).unwrap(), 7);
        let mut b = Args::parse(&raw("gen --size abc"), &[]).unwrap();
        assert!(b.parse_or("size", 5usize).is_err());
    }

    #[test]
    fn required_missing_is_error() {
        let mut a = Args::parse(&raw("gen"), &[]).unwrap();
        assert!(a.require("out").is_err());
    }
}
