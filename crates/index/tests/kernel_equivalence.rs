//! Cross-path equivalence of the columnar scan kernel.
//!
//! The correctness bar for the arena rewrite is *bit-for-bit* agreement
//! with the scalar `BitVec` path at every layer:
//!
//! 1. The flat-slice kernels (`and_count`, `and_count4`,
//!    `dice_from_counts`) must reproduce `BitVec::and_count` /
//!    `dice_bits` exactly, including all-zero and all-one edges and
//!    lengths that straddle word boundaries.
//! 2. A lazy [`IndexReader`] over segment files, the eager store
//!    reader, and a brute-force scan must return identical `(id,
//!    score)` hit lists for the same queries.
//! 3. Band-key summary pruning is an *optimisation only*: an index
//!    built with summaries enabled must answer every query — at every
//!    `min_score` — identically to one built with summaries disabled.

use pprl_core::bitvec::BitVec;
use pprl_index::arena::FilterArena;
use pprl_index::query::Hit;
use pprl_index::store::{IndexConfig, IndexStore};
use pprl_index::summary::SummaryConfig;
use pprl_similarity::bitvec_sim::dice_bits;
use pprl_similarity::kernel::{
    and_count, and_count4, available_kernels, dice_from_counts, kernel_name,
    requested_is_supported, requested_kernel,
};
use std::path::PathBuf;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("pprl-kernel-eq-{tag}"));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Random filter with roughly `per_mille`/1000 of its bits set.
fn random_filter(len: usize, per_mille: u64, state: &mut u64) -> BitVec {
    let mut f = BitVec::zeros(len);
    for i in 0..len {
        if splitmix(state) % 1000 < per_mille {
            f.set(i);
        }
    }
    f
}

#[test]
fn slice_kernels_match_bitvec_ops_bit_for_bit() {
    let mut state = 0xA11CEu64;
    for len in [1usize, 7, 63, 64, 65, 127, 128, 1000, 1024, 2048] {
        let mut cases = vec![
            (BitVec::zeros(len), BitVec::zeros(len)),
            (BitVec::ones(len), BitVec::ones(len)),
            (BitVec::zeros(len), BitVec::ones(len)),
        ];
        for fill in [50, 300, 900] {
            cases.push((
                random_filter(len, fill, &mut state),
                random_filter(len, fill, &mut state),
            ));
        }
        for (a, b) in &cases {
            let inter = and_count(a.as_words(), b.as_words());
            assert_eq!(inter, a.and_count(b), "and_count at len {len}");
            let fast = dice_from_counts(inter, a.count_ones(), b.count_ones());
            let exact = dice_bits(a, b).expect("dice");
            assert!(
                fast == exact,
                "dice mismatch at len {len}: {fast} vs {exact}"
            );
        }
    }
}

/// Every dispatch path this host can run — not just the active one —
/// must agree with the `BitVec` oracle bit for bit, across filter
/// lengths whose word counts leave 0–3 trailing words after any SIMD
/// block width (1, 2, 3, 5, 7, 8, 9 ... words).
#[test]
fn every_dispatch_path_matches_the_bitvec_oracle() {
    let mut state = 0xD15Au64;
    let lens = [
        1usize, 63, 64, 65, 127, 129, 191, 193, 255, 257, 319, 321, 447, 449, 511, 513, 575, 1000,
        1001,
    ];
    for kernel in available_kernels() {
        for &len in &lens {
            let mut cases = vec![
                (BitVec::zeros(len), BitVec::zeros(len)),
                (BitVec::ones(len), BitVec::ones(len)),
                (BitVec::zeros(len), BitVec::ones(len)),
            ];
            for fill in [30, 250, 700, 970] {
                cases.push((
                    random_filter(len, fill, &mut state),
                    random_filter(len, fill, &mut state),
                ));
            }
            for (a, b) in &cases {
                assert_eq!(
                    kernel.and_count(a.as_words(), b.as_words()),
                    a.and_count(b),
                    "kernel {} at len {len}",
                    kernel.name()
                );
            }
            // Batched lanes over a 4-row block, against the same oracle.
            let query = random_filter(len, 400, &mut state);
            let rows: Vec<BitVec> = (0..4)
                .map(|i| random_filter(len, 150 + 200 * i, &mut state))
                .collect();
            let mut block = Vec::new();
            for row in &rows {
                block.extend_from_slice(row.as_words());
            }
            let counts = kernel.and_count4(query.as_words(), &block);
            for (lane, row) in rows.iter().enumerate() {
                assert_eq!(
                    counts[lane],
                    query.and_count(row),
                    "kernel {} lane {lane} at len {len}",
                    kernel.name()
                );
            }
        }
    }
}

/// When CI (or an operator) forces a path with `PPRL_KERNEL`, the
/// dispatcher must actually honour it: the active kernel is the
/// requested one whenever this host can run it, and always one of the
/// advertised paths. Run under each forced value by the CI matrix.
#[test]
fn forced_kernel_env_is_honored() {
    let names: Vec<&str> = available_kernels().iter().map(|k| k.name()).collect();
    assert!(
        names.contains(&kernel_name()),
        "active kernel {} not among available {names:?}",
        kernel_name()
    );
    match requested_kernel() {
        Some(req) if req != "auto" && names.contains(&req) => {
            assert_eq!(
                kernel_name(),
                req,
                "PPRL_KERNEL={req} is runnable here but was not dispatched"
            );
            assert!(requested_is_supported());
        }
        Some(_) | None => {
            // Unset, `auto`, or unsupported: best available wins.
            assert_eq!(
                kernel_name(),
                *names.last().expect("scalar always available"),
                "default dispatch must pick the best available path"
            );
        }
    }
}

#[test]
fn batched_kernel_matches_scalar_over_arena_blocks() {
    let mut state = 0xB10Cu64;
    for len in [64usize, 500, 1000, 2048] {
        let records: Vec<(u64, BitVec)> = (0..37)
            .map(|i| (i, random_filter(len, 100 + 20 * (i % 11), &mut state)))
            .collect();
        let arena = FilterArena::from_records(records, len).expect("arena");
        let stride = arena.stride();
        let query = random_filter(len, 250, &mut state);
        let q = query.as_words();
        let mut i = 0;
        while i + 4 <= arena.len() {
            let block = &arena.words()[i * stride..(i + 4) * stride];
            let counts = and_count4(q, block);
            for (lane, &count) in counts.iter().enumerate() {
                assert_eq!(
                    count,
                    and_count(q, arena.row(i + lane)),
                    "lane {lane} of block at row {i}, len {len}"
                );
            }
            i += 4;
        }
        // Tail rows go through the scalar kernel; check them against the
        // original BitVec too (arena rows round-trip exactly).
        for row in 0..arena.len() {
            let (_, filter) = arena.get(row).expect("row");
            assert_eq!(
                and_count(q, arena.row(row)),
                query.and_count(&filter),
                "row {row} at len {len}"
            );
        }
    }
}

/// Builds a store at `dir` from `records`, flushing in two batches so the
/// reader sees multiple segment files per shard.
fn build_store(
    dir: &std::path::Path,
    config: IndexConfig,
    records: &[(u64, BitVec)],
) -> IndexStore {
    let mut store = IndexStore::create(dir, config).expect("create");
    let mid = records.len() / 2;
    store.insert_batch(&records[..mid]).expect("insert");
    store.flush().expect("flush");
    store.insert_batch(&records[mid..]).expect("insert");
    store.flush().expect("flush");
    store
}

fn brute_force(records: &[(u64, BitVec)], query: &BitVec, k: usize, min_score: f64) -> Vec<Hit> {
    let mut hits: Vec<Hit> = records
        .iter()
        .map(|(id, f)| Hit {
            id: *id,
            score: dice_bits(query, f).expect("dice"),
        })
        .collect();
    hits.sort_by(|a, b| b.score.total_cmp(&a.score).then(a.id.cmp(&b.id)));
    hits.truncate(k);
    hits.retain(|h| h.score >= min_score);
    hits
}

#[test]
fn lazy_reader_eager_reader_and_brute_force_agree() {
    let len = 256; // long enough that summaries are enabled by default
    let mut state = 0x5EEDu64;
    let records: Vec<(u64, BitVec)> = (0..180)
        .map(|i| (i, random_filter(len, 60 + 10 * (i % 30), &mut state)))
        .collect();
    let dir = temp_dir("agree");
    let store = build_store(&dir, IndexConfig::new(len, 4), &records);
    let eager = store.reader().expect("eager");
    let lazy = store.lazy_reader().expect("lazy");

    // Queries: members, perturbed members, and foreign filters (likely
    // full summary misses).
    let mut queries: Vec<BitVec> = records.iter().step_by(23).map(|(_, f)| f.clone()).collect();
    for (_, f) in records.iter().step_by(31) {
        let mut p = f.clone();
        for _ in 0..8 {
            p.flip((splitmix(&mut state) % len as u64) as usize);
        }
        queries.push(p);
    }
    for _ in 0..4 {
        queries.push(random_filter(len, 80, &mut state));
    }

    for query in &queries {
        for k in [1usize, 7, 50, 400] {
            let expect = brute_force(&records, query, k, 0.0);
            for threads in [1usize, 3] {
                let e = eager.top_k(query, k, threads).expect("eager top_k");
                let l = lazy.top_k(query, k, threads).expect("lazy top_k");
                assert_eq!(e, expect, "eager k={k} threads={threads}");
                assert_eq!(l, expect, "lazy k={k} threads={threads}");
            }
        }
    }

    // One batched columnar scan over all queries must equal the
    // per-query answers exactly.
    let refs: Vec<&BitVec> = queries.iter().collect();
    let batch = lazy.top_k_batch(&refs, 9, 2, None).expect("batch");
    for (qi, query) in queries.iter().enumerate() {
        assert_eq!(
            batch[qi],
            brute_force(&records, query, 9, 0.0),
            "query {qi}"
        );
    }
    std::fs::remove_dir_all(&dir).expect("cleanup");
}

#[test]
fn summary_pruning_never_drops_a_true_hit() {
    let len = 512;
    let mut state = 0xFACEu64;
    let records: Vec<(u64, BitVec)> = (0..150)
        .map(|i| (i, random_filter(len, 50 + 15 * (i % 12), &mut state)))
        .collect();
    let with = IndexConfig::new(len, 3);
    assert!(
        with.summary.enabled(),
        "default config must enable summaries at {len} bits"
    );
    let without = IndexConfig {
        summary: SummaryConfig::DISABLED,
        ..with
    };
    let dir_on = temp_dir("sum-on");
    let dir_off = temp_dir("sum-off");
    let pruned = build_store(&dir_on, with, &records)
        .lazy_reader()
        .expect("pruned reader");
    let plain = build_store(&dir_off, without, &records)
        .lazy_reader()
        .expect("plain reader");

    let mut queries: Vec<BitVec> = records.iter().step_by(17).map(|(_, f)| f.clone()).collect();
    for _ in 0..6 {
        // Foreign probes: most segments are all-tables Bloom misses, the
        // case where content pruning actually fires.
        queries.push(random_filter(len, 70, &mut state));
    }
    let refs: Vec<&BitVec> = queries.iter().collect();
    for min_score in [0.0, 0.5, 0.8, 0.95] {
        let a = pruned
            .top_k_batch(&refs, 12, 2, Some(min_score))
            .expect("pruned batch");
        let b = plain
            .top_k_batch(&refs, 12, 2, Some(min_score))
            .expect("plain batch");
        assert_eq!(a, b, "summary pruning changed results at ms={min_score}");
        for (qi, query) in queries.iter().enumerate() {
            assert_eq!(
                a[qi],
                brute_force(&records, query, 12, min_score),
                "query {qi} at ms={min_score}"
            );
        }
    }
    std::fs::remove_dir_all(&dir_on).expect("cleanup");
    std::fs::remove_dir_all(&dir_off).expect("cleanup");
}
