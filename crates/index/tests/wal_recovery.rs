//! WAL recovery property tests: the log is the ack boundary, so its
//! failure modes are enumerated exhaustively rather than sampled.
//!
//! - **Every prefix truncation** of a populated WAL is a benign torn
//!   tail: the store opens, recovers exactly the entries wholly before
//!   the cut, and repairs the log in place.
//! - **Every single-bit flip** anywhere in the image is detected:
//!   opening fails with a typed [`PprlError::Storage`] error. Flipped
//!   bits never replay silently — magic, version, filter length, and
//!   epoch are covered by the header checksum; every entry by its
//!   length prefix and frame checksum.
//! - A truncated tail is repaired on open: after recovery the store
//!   accepts new inserts and a further reopen sees the union.

use pprl_core::bitvec::BitVec;
use pprl_core::error::PprlError;
use pprl_index::store::{IndexConfig, IndexStore, StoreOptions, WAL_FILE};
use pprl_index::vfs::{FaultVfs, Vfs};
use std::path::Path;
use std::sync::Arc;

const FILTER_LEN: usize = 64;

/// WAL v2 geometry (kept in sync with `store.rs`; the tests below fail
/// loudly if the layout drifts).
const HEADER_LEN: usize = 26;
const FRAME_LEN: usize = 4 + (8 + FILTER_LEN / 8) + 8;

fn filter(seed: u64) -> BitVec {
    let ones: Vec<usize> = (0..FILTER_LEN)
        .filter(|i| (seed >> (i % 61)) & 1 == 1 || i % 7 == (seed % 7) as usize)
        .collect();
    BitVec::from_positions(FILTER_LEN, &ones).expect("filter")
}

/// Builds a store whose WAL holds exactly `n` un-flushed entries and
/// returns (vfs, pristine WAL image).
fn populated_wal(n: u64) -> (Arc<FaultVfs>, Vec<u8>) {
    let vfs = FaultVfs::reliable();
    let dir = Path::new("/wal");
    let mut store = IndexStore::create_with(
        dir,
        IndexConfig::new(FILTER_LEN, 2),
        StoreOptions::with_vfs(Arc::clone(&vfs) as Arc<dyn Vfs>),
    )
    .expect("create");
    let records: Vec<(u64, BitVec)> = (0..n).map(|id| (id, filter(id + 1))).collect();
    store.insert_batch(&records).expect("insert");
    let image = vfs.read(&dir.join(WAL_FILE)).expect("read wal");
    assert_eq!(
        image.len(),
        HEADER_LEN + n as usize * FRAME_LEN,
        "wal geometry drifted; update HEADER_LEN/FRAME_LEN"
    );
    (vfs, image)
}

fn reopen(vfs: &Arc<FaultVfs>) -> Result<IndexStore, PprlError> {
    IndexStore::open_with(
        Path::new("/wal"),
        StoreOptions::with_vfs(Arc::clone(vfs) as Arc<dyn Vfs>),
    )
}

#[test]
fn every_prefix_truncation_recovers_exactly_the_complete_entries() {
    let (vfs, image) = populated_wal(3);
    let wal = Path::new("/wal").join(WAL_FILE);
    for cut in 0..=image.len() {
        vfs.write(&wal, &image[..cut]).expect("truncate");
        let store = reopen(&vfs)
            .unwrap_or_else(|e| panic!("cut at {cut} must be a benign torn tail, got: {e}"));
        let expect = cut.saturating_sub(HEADER_LEN) / FRAME_LEN;
        assert_eq!(
            store.record_count().expect("count"),
            expect,
            "cut at {cut}: wrong number of entries recovered"
        );
        // Recovered ids are the schedule prefix, in order.
        let got: Vec<u64> = store.pending().ids().to_vec();
        let want: Vec<u64> = (0..expect as u64).collect();
        assert_eq!(got, want, "cut at {cut}: recovered the wrong entries");
        // Open repaired the log in place: the surviving image is a
        // well-formed WAL holding exactly the recovered prefix.
        let repaired = vfs.read(&wal).expect("read repaired");
        assert_eq!(
            repaired.len(),
            HEADER_LEN + expect * FRAME_LEN,
            "cut at {cut}: repair left a ragged log"
        );
    }
}

#[test]
fn every_single_bit_flip_is_a_typed_error() {
    let (vfs, image) = populated_wal(3);
    let wal = Path::new("/wal").join(WAL_FILE);
    for byte in 0..image.len() {
        for bit in 0..8u8 {
            let mut bad = image.clone();
            bad[byte] ^= 1 << bit;
            vfs.write(&wal, &bad).expect("corrupt");
            match reopen(&vfs) {
                Err(PprlError::Storage(_)) => {}
                Err(e) => panic!("flip at byte {byte} bit {bit}: wrong error type: {e}"),
                Ok(_) => panic!("flip at byte {byte} bit {bit} replayed silently"),
            }
        }
    }
    // Pristine image still opens cleanly (the loop never mutated state).
    vfs.write(&wal, &image).expect("restore");
    let store = reopen(&vfs).expect("pristine reopen");
    assert_eq!(store.record_count().expect("count"), 3);
}

#[test]
fn truncated_tail_repairs_and_store_keeps_accepting_inserts() {
    let (vfs, image) = populated_wal(3);
    let wal = Path::new("/wal").join(WAL_FILE);
    // Tear mid-way through the last entry.
    vfs.write(&wal, &image[..image.len() - FRAME_LEN / 2])
        .expect("tear");
    let mut store = reopen(&vfs).expect("torn tail is benign");
    assert_eq!(store.record_count().expect("count"), 2);
    // The repaired log keeps working: new appends land after the
    // recovered prefix and survive a further reopen.
    store
        .insert_batch(&[(100, filter(7)), (101, filter(8))])
        .expect("insert after repair");
    drop(store);
    let store = reopen(&vfs).expect("reopen after repair");
    let ids: Vec<u64> = store.pending().ids().to_vec();
    assert_eq!(ids, vec![0, 1, 100, 101]);
}
