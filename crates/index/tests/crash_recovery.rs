//! Crash-recovery property tests: the acceptance harness for the
//! crash-safe storage layer.
//!
//! Deterministic insert/flush/compact schedules run against the
//! in-memory [`FaultVfs`]; the harness kills the store at **every**
//! mutating IO operation of every schedule (crash-during-WAL-append,
//! crash-between-tmp-write-and-rename, crash-mid-compaction — every
//! point, not a sample), recovers the surviving bytes under the
//! crash-consistency model, reopens, and asserts the two invariants the
//! paper's linkage-unit deployment needs:
//!
//! 1. **No acked loss** — every insert acked under
//!    [`DurabilityMode::Always`] before the crash is queryable after
//!    reopening (extras are limited to a prefix-consistent subset of the
//!    batch that was in flight when the crash hit).
//! 2. **Oracle bit-identity** — every query against the recovered store
//!    returns results bit-identical to a never-crashed oracle store
//!    holding exactly the recovered records.
//!
//! ENOSPC, read-side corruption, and quarantined-segment degraded opens
//! are covered by the dedicated tests below.

use pprl_core::bitvec::BitVec;
use pprl_core::error::PprlError;
use pprl_core::rng::SplitMix64;
use pprl_index::store::{DurabilityMode, IndexConfig, IndexStore, StoreOptions, TieredPolicy};
use pprl_index::vfs::{FaultPlan, FaultVfs};
use std::path::Path;
use std::sync::Arc;

const FILTER_LEN: usize = 64;
const NUM_SHARDS: u32 = 2;

fn policy() -> TieredPolicy {
    TieredPolicy {
        min_segments: 2,
        growth: 4,
        min_bytes: 1024,
    }
}

#[derive(Debug, Clone)]
enum Op {
    Insert(Vec<(u64, BitVec)>),
    Flush,
    Compact,
}

fn random_filter(rng: &mut SplitMix64) -> BitVec {
    let mut ones: Vec<usize> = (0..FILTER_LEN)
        .filter(|_| rng.next_u64().is_multiple_of(4))
        .collect();
    if ones.is_empty() {
        ones.push(rng.next_below(FILTER_LEN as u64) as usize);
    }
    BitVec::from_positions(FILTER_LEN, &ones).expect("filter")
}

/// A deterministic workload: ~10 operations, inserts of 1–4 records
/// with globally unique ids, interleaved flushes and compaction steps.
fn schedule(seed: u64) -> Vec<Op> {
    let mut rng = SplitMix64::new(seed.wrapping_mul(0x9e37_79b9).wrapping_add(1));
    let mut next_id = 0u64;
    let mut ops = Vec::new();
    for _ in 0..10 {
        match rng.next_below(100) {
            0..=59 => {
                let n = 1 + rng.next_below(4) as usize;
                let batch: Vec<(u64, BitVec)> = (0..n)
                    .map(|_| {
                        let id = next_id;
                        next_id += 1;
                        (id, random_filter(&mut rng))
                    })
                    .collect();
                ops.push(Op::Insert(batch));
            }
            60..=84 => ops.push(Op::Flush),
            _ => ops.push(Op::Compact),
        }
    }
    ops
}

/// Runs the schedule, tracking which inserts were acked and which batch
/// (if any) was in flight when the first failure hit. Returns false on
/// the first error (the simulated crash); every op after a crash fails.
fn run_schedule(
    store: &mut IndexStore,
    ops: &[Op],
    acked: &mut Vec<(u64, BitVec)>,
    in_flight: &mut Vec<(u64, BitVec)>,
) -> bool {
    for op in ops {
        let outcome = match op {
            Op::Insert(batch) => {
                *in_flight = batch.clone();
                let r = store.insert_batch(batch);
                if r.is_ok() {
                    acked.extend(batch.iter().cloned());
                    in_flight.clear();
                }
                r
            }
            Op::Flush => store.flush(),
            Op::Compact => store.compact_tiered(&policy()).map(|_| ()),
        };
        if outcome.is_err() {
            return false;
        }
    }
    true
}

/// All `(id, score)` pairs the store currently answers, via a real
/// query (k larger than the record count returns everything).
fn scan_ids(store: &IndexStore, probe: &BitVec) -> Vec<u64> {
    let reader = store.reader().expect("reader");
    let hits = reader
        .top_k(probe, reader.len() + 16, 1)
        .expect("full scan");
    hits.into_iter().map(|h| h.id).collect()
}

fn probes(n: usize) -> Vec<BitVec> {
    let mut rng = SplitMix64::new(0xbeef);
    (0..n).map(|_| random_filter(&mut rng)).collect()
}

/// Builds a never-crashed oracle holding exactly `records` and checks
/// that the recovered store answers every probe bit-identically.
fn assert_oracle_identical(recovered: &IndexStore, records: &[(u64, BitVec)], what: &str) {
    let vfs = FaultVfs::reliable();
    let dir = Path::new("/oracle");
    let mut oracle = IndexStore::create_with(
        dir,
        IndexConfig::new(FILTER_LEN, NUM_SHARDS),
        StoreOptions::with_vfs(vfs),
    )
    .expect("oracle create");
    if !records.is_empty() {
        oracle.insert_batch(records).expect("oracle insert");
        oracle.flush().expect("oracle flush");
    }
    let oracle_reader = oracle.reader().expect("oracle reader");
    let recovered_reader = recovered.reader().expect("recovered reader");
    assert_eq!(recovered_reader.len(), oracle_reader.len(), "{what}");
    for (i, probe) in probes(4).iter().enumerate() {
        for k in [1usize, 5, records.len() + 8] {
            let want = oracle_reader.top_k(probe, k, 1).expect("oracle top_k");
            let got = recovered_reader
                .top_k(probe, k, 1)
                .expect("recovered top_k");
            assert_eq!(got, want, "{what}: probe {i}, k={k} diverged from oracle");
        }
    }
}

/// The tentpole acceptance criterion: ≥ 200 seeded fault schedules,
/// crashing at every mutating IO operation, losing no acked insert,
/// with recovered query results bit-identical to the oracle.
#[test]
fn crash_at_every_io_op_loses_no_acked_insert_and_matches_oracle() {
    let mut schedules_run = 0u64;
    for seed in 0..8u64 {
        let ops = schedule(seed);
        // Dry run on a reliable vfs to learn how many mutating IO
        // operations the whole schedule performs (including create).
        let dry = FaultVfs::reliable();
        let dir = Path::new("/idx");
        let mut store = IndexStore::create_with(
            dir,
            IndexConfig::new(FILTER_LEN, NUM_SHARDS),
            StoreOptions::with_vfs(Arc::clone(&dry) as Arc<dyn pprl_index::vfs::Vfs>),
        )
        .expect("dry create");
        let (mut acked, mut in_flight) = (Vec::new(), Vec::new());
        assert!(
            run_schedule(&mut store, &ops, &mut acked, &mut in_flight),
            "reliable run must not fail"
        );
        let total_ops = dry.mutating_ops();
        assert!(total_ops > 10, "schedule too trivial to exercise crashes");

        for crash_at in 1..=total_ops {
            schedules_run += 1;
            let vfs = FaultVfs::new(FaultPlan::crash_at(seed, crash_at));
            let opts = StoreOptions::with_vfs(Arc::clone(&vfs) as Arc<dyn pprl_index::vfs::Vfs>);
            let mut acked = Vec::new();
            let mut in_flight = Vec::new();
            let finished = match IndexStore::create_with(
                dir,
                IndexConfig::new(FILTER_LEN, NUM_SHARDS),
                opts.clone(),
            ) {
                Ok(mut store) => run_schedule(&mut store, &ops, &mut acked, &mut in_flight),
                Err(_) => false, // crashed during create: nothing acked
            };
            if finished {
                // The crash point was beyond the schedule's last op
                // (the dry count includes everything, so this only
                // happens for the very last points). Nothing to check
                // beyond a clean reopen below.
                assert!(
                    crash_at == total_ops || vfs.crashed(),
                    "schedule finished yet the crash never fired (point {crash_at})"
                );
            }
            vfs.crash_and_recover();

            match IndexStore::open_with(dir, opts) {
                Ok(recovered) => {
                    let probe = &probes(1)[0];
                    let ids = scan_ids(&recovered, probe);
                    let mut unique = ids.clone();
                    unique.sort_unstable();
                    unique.dedup();
                    assert_eq!(
                        unique.len(),
                        ids.len(),
                        "seed {seed} point {crash_at}: duplicate ids after recovery \
                         (WAL replayed flushed records?)"
                    );
                    let id_set: std::collections::BTreeSet<u64> = unique.iter().copied().collect();
                    for (id, _) in &acked {
                        assert!(
                            id_set.contains(id),
                            "seed {seed} point {crash_at}: acked insert {id} lost \
                             ({} acked, {} recovered)",
                            acked.len(),
                            id_set.len()
                        );
                    }
                    let allowed: std::collections::BTreeSet<u64> = acked
                        .iter()
                        .map(|(id, _)| *id)
                        .chain(in_flight.iter().map(|(id, _)| *id))
                        .collect();
                    for id in &id_set {
                        assert!(
                            allowed.contains(id),
                            "seed {seed} point {crash_at}: recovered unknown id {id}"
                        );
                    }
                    // The never-crashed oracle holds exactly what the
                    // recovered store ended up with.
                    let mut recovered_records: Vec<(u64, BitVec)> = acked.clone();
                    recovered_records.extend(
                        in_flight
                            .iter()
                            .filter(|(id, _)| id_set.contains(id))
                            .cloned(),
                    );
                    recovered_records.retain(|(id, _)| id_set.contains(id));
                    assert_oracle_identical(
                        &recovered,
                        &recovered_records,
                        &format!("seed {seed} point {crash_at}"),
                    );
                }
                Err(PprlError::Storage(_)) => {
                    // Only legitimate when the crash hit during create,
                    // before the manifest ever became durable.
                    assert!(
                        acked.is_empty(),
                        "seed {seed} point {crash_at}: open refused with acked inserts"
                    );
                }
                Err(e) => panic!("seed {seed} point {crash_at}: unexpected error {e}"),
            }
        }
    }
    assert!(
        schedules_run >= 200,
        "harness ran only {schedules_run} fault schedules (need ≥ 200)"
    );
}

/// Weaker modes trade the no-loss guarantee for fewer fsyncs, but
/// recovery must still be sane: the recovered set is a subset of what
/// was ever handed to the store, with no duplicates and no errors.
#[test]
fn weaker_durability_modes_recover_consistently() {
    for (mode, seed) in [
        (DurabilityMode::Interval(3), 11u64),
        (DurabilityMode::Never, 12u64),
    ] {
        let ops = schedule(seed);
        let dry = FaultVfs::reliable();
        let dir = Path::new("/idx");
        let mk_opts = |vfs: &Arc<FaultVfs>| StoreOptions {
            durability: mode,
            vfs: Arc::clone(vfs) as Arc<dyn pprl_index::vfs::Vfs>,
        };
        let mut store =
            IndexStore::create_with(dir, IndexConfig::new(FILTER_LEN, NUM_SHARDS), mk_opts(&dry))
                .expect("dry create");
        let (mut acked, mut in_flight) = (Vec::new(), Vec::new());
        assert!(run_schedule(&mut store, &ops, &mut acked, &mut in_flight));
        let total_ops = dry.mutating_ops();

        for crash_at in (1..=total_ops).step_by(3) {
            let vfs = FaultVfs::new(FaultPlan::crash_at(seed, crash_at));
            let mut acked = Vec::new();
            let mut in_flight = Vec::new();
            if let Ok(mut store) = IndexStore::create_with(
                dir,
                IndexConfig::new(FILTER_LEN, NUM_SHARDS),
                mk_opts(&vfs),
            ) {
                run_schedule(&mut store, &ops, &mut acked, &mut in_flight);
            }
            vfs.crash_and_recover();
            if let Ok(recovered) = IndexStore::open_with(dir, mk_opts(&vfs)) {
                let ids = scan_ids(&recovered, &probes(1)[0]);
                let mut unique = ids.clone();
                unique.sort_unstable();
                unique.dedup();
                assert_eq!(unique.len(), ids.len(), "mode {mode:?}: duplicates");
                let handed: std::collections::BTreeSet<u64> = acked
                    .iter()
                    .chain(in_flight.iter())
                    .map(|(id, _)| *id)
                    .collect();
                for id in &unique {
                    assert!(handed.contains(id), "mode {mode:?}: unknown id {id}");
                }
            }
        }
    }
}

/// ENOSPC during a WAL append is a typed error, nothing is half-acked,
/// and once space frees the same store keeps working with no loss.
#[test]
fn enospc_is_typed_and_the_store_stays_consistent() {
    let mut rng = SplitMix64::new(77);
    let vfs = FaultVfs::new(FaultPlan {
        enospc_after_bytes: Some(600),
        ..FaultPlan::none()
    });
    let dir = Path::new("/idx");
    let opts = StoreOptions::with_vfs(Arc::clone(&vfs) as Arc<dyn pprl_index::vfs::Vfs>);
    let mut store =
        IndexStore::create_with(dir, IndexConfig::new(FILTER_LEN, NUM_SHARDS), opts.clone())
            .expect("create");
    let mut acked: Vec<(u64, BitVec)> = Vec::new();
    let mut hit_enospc = false;
    for id in 0..60u64 {
        let batch = vec![(id, random_filter(&mut rng))];
        match store.insert_batch(&batch) {
            Ok(()) => acked.extend(batch),
            Err(PprlError::Storage(msg)) => {
                assert!(
                    msg.contains("space") || msg.contains("appending") || msg.contains("syncing"),
                    "unexpected storage error: {msg}"
                );
                hit_enospc = true;
            }
            Err(e) => panic!("unexpected error kind: {e}"),
        }
    }
    assert!(hit_enospc, "the ENOSPC injection never fired");
    // The disk "freed up" (the fault is one-shot): later inserts acked,
    // and a reopen finds every acked record.
    drop(store);
    let recovered = IndexStore::open_with(dir, opts).expect("reopen after ENOSPC");
    let ids: std::collections::BTreeSet<u64> =
        scan_ids(&recovered, &probes(1)[0]).into_iter().collect();
    for (id, _) in &acked {
        assert!(ids.contains(id), "acked insert {id} lost after ENOSPC");
    }
}

/// A store with a corrupted (hence quarantined) segment still opens,
/// reports `degraded`, and answers queries exactly over the survivors.
#[test]
fn corrupt_segment_quarantines_and_serves_degraded_reads() {
    let mut rng = SplitMix64::new(99);
    let vfs = FaultVfs::reliable();
    let dir = Path::new("/idx");
    let opts = StoreOptions::with_vfs(Arc::clone(&vfs) as Arc<dyn pprl_index::vfs::Vfs>);
    let mut store =
        IndexStore::create_with(dir, IndexConfig::new(FILTER_LEN, NUM_SHARDS), opts.clone())
            .expect("create");
    // Two flushes so at least two segments exist.
    let first: Vec<(u64, BitVec)> = (0..12u64).map(|id| (id, random_filter(&mut rng))).collect();
    let second: Vec<(u64, BitVec)> = (12..20u64)
        .map(|id| (id, random_filter(&mut rng)))
        .collect();
    store.insert_batch(&first).expect("insert");
    store.flush().expect("flush");
    store.insert_batch(&second).expect("insert");
    store.flush().expect("flush");
    drop(store);

    // Flip one persisted byte inside the first segment file.
    let victim = vfs
        .list_files()
        .into_iter()
        .find(|p| p.extension().is_some_and(|e| e == "seg"))
        .expect("a segment file");
    vfs.corrupt_stored(&victim, 40, 0x20);

    let store = IndexStore::open_with(dir, opts).expect("degraded open must succeed");
    assert!(store.is_degraded(), "corruption must degrade the store");
    assert_eq!(store.quarantined().len(), 1);
    let stats = store.stats().expect("stats");
    assert_eq!(stats.quarantined_segments, 1);
    // The quarantined file moved out of the way.
    assert!(
        vfs.list_files()
            .iter()
            .any(|p| p.starts_with(dir.join("quarantine"))),
        "victim not moved into quarantine/"
    );

    // Queries still answer, exactly over the surviving records.
    let reader = store.lazy_reader().expect("lazy reader");
    assert!(reader.is_degraded());
    assert_eq!(reader.quarantined_segments(), 1);
    let ids = scan_ids(&store, &probes(1)[0]);
    let all: std::collections::BTreeSet<u64> = (0..20u64).collect();
    for id in &ids {
        assert!(all.contains(id), "unknown id {id} after quarantine");
    }
    assert!(
        ids.len() < 20,
        "the quarantined segment's records cannot still be served"
    );

    // Reopening again is stable: the ledger persists, nothing else is
    // quarantined, and the same records answer.
    drop(store);
    let vfs2_opts = StoreOptions::with_vfs(Arc::clone(&vfs) as Arc<dyn pprl_index::vfs::Vfs>);
    let reopened = IndexStore::open_with(dir, vfs2_opts).expect("second open");
    assert!(reopened.is_degraded());
    assert_eq!(reopened.quarantined().len(), 1);
    assert_eq!(scan_ids(&reopened, &probes(1)[0]).len(), ids.len());
}

/// Read-side bit flips are transient (a bad cable, not bad platters):
/// they surface as typed errors or quarantine, never panics or silent
/// corruption, and a retry eventually succeeds.
#[test]
fn read_flips_surface_as_typed_errors_never_panics() {
    let mut rng = SplitMix64::new(5);
    let records: Vec<(u64, BitVec)> = (0..16u64).map(|id| (id, random_filter(&mut rng))).collect();
    let vfs = FaultVfs::new(FaultPlan {
        read_flip_rate: 0.4,
        ..FaultPlan::none()
    });
    let dir = Path::new("/idx");
    let opts = StoreOptions::with_vfs(Arc::clone(&vfs) as Arc<dyn pprl_index::vfs::Vfs>);
    let mut store =
        IndexStore::create_with(dir, IndexConfig::new(FILTER_LEN, NUM_SHARDS), opts.clone())
            .expect("create");
    store.insert_batch(&records).expect("insert");
    store.flush().expect("flush");
    drop(store);

    // Every open re-reads everything through the flipping vfs. The
    // property under test: a flip can fail an open or a load with a
    // typed error, or trigger a (spurious but safe) quarantine — it can
    // never panic and never surface wrong data, because every file
    // carries checksums. Data that loads is correct data.
    let known: std::collections::BTreeSet<u64> = records.iter().map(|(id, _)| *id).collect();
    let mut served = false;
    for _ in 0..64 {
        match IndexStore::open_with(dir, opts.clone()) {
            Ok(store) => match store.reader() {
                Ok(reader) => match reader.top_k(&probes(1)[0], 5, 1) {
                    Ok(hits) => {
                        for hit in &hits {
                            assert!(
                                known.contains(&hit.id),
                                "flip fabricated record id {}",
                                hit.id
                            );
                        }
                        served = true;
                    }
                    Err(PprlError::Storage(_)) => {}
                    Err(e) => panic!("unexpected error: {e}"),
                },
                Err(PprlError::Storage(_)) => {}
                Err(e) => panic!("unexpected error: {e}"),
            },
            Err(PprlError::Storage(_)) => {}
            Err(e) => panic!("unexpected error: {e}"),
        }
    }
    assert!(
        served,
        "transient flips at rate 0.4 blocked every one of 64 attempts"
    );
}
