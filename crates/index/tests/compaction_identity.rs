//! Byte-identity of the arena-native merge with the record round-trip
//! merge it replaced.
//!
//! The old compaction path decoded every member segment into owned
//! `(id, BitVec)` records, concatenated them in manifest order, ran a
//! stable sort by `(popcount, id)`, and re-encoded. The arena-native
//! path k-way-merges popcount-sorted `FilterArena` runs and writes the
//! segment straight from arena rows. This test pins the refactor to the
//! old behaviour at the strongest possible granularity: the merged
//! segment *files* must be byte-for-byte what the old path would have
//! written — same record order (including duplicate `(popcount, id)`
//! keys), same encoding, same checksum.

use pprl_core::bitvec::BitVec;
use pprl_index::manifest::{segment_path, Manifest};
use pprl_index::segment::{encode_segment, read_segment};
use pprl_index::store::{IndexConfig, IndexStore};
use std::collections::BTreeMap;
use std::path::PathBuf;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("pprl-compact-ident-{tag}"));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn random_filter(len: usize, per_mille: u64, state: &mut u64) -> BitVec {
    let mut f = BitVec::zeros(len);
    for i in 0..len {
        if splitmix(state) % 1000 < per_mille {
            f.set(i);
        }
    }
    f
}

/// What the pre-refactor merge produced for one shard: decode every
/// member segment to records, concatenate in manifest order, stable-sort
/// by `(popcount, id)`, re-encode.
fn old_style_merge(dir: &std::path::Path, manifest: &Manifest, shard: u32) -> Vec<u8> {
    let filter_len = manifest.config.filter_len;
    let mut merged: Vec<(u64, BitVec)> = Vec::new();
    for entry in manifest.segments.iter().filter(|e| e.shard == shard) {
        let seg = read_segment(&segment_path(dir, entry.id)).expect("read member");
        assert_eq!(seg.shard, shard);
        for rec in seg.records {
            merged.push((rec.id, rec.filter));
        }
    }
    merged.sort_by_key(|(id, f)| (f.count_ones(), *id));
    let refs: Vec<(u64, &BitVec)> = merged.iter().map(|(id, f)| (*id, f)).collect();
    encode_segment(shard, filter_len, &refs).expect("encode")
}

#[test]
fn arena_native_compaction_is_byte_identical_to_record_roundtrip_merge() {
    let len = 384;
    let num_shards = 3u32;
    let mut state = 0xC0DAu64;
    let dir = temp_dir("bytes");
    let mut store = IndexStore::create(&dir, IndexConfig::new(len, num_shards)).expect("create");

    // Several flushes so every shard accumulates multiple segments, with
    // skewed densities so popcount ties and duplicate (popcount, id)-ish
    // neighbourhoods actually occur.
    let mut next_id = 0u64;
    for batch in 0..5 {
        let records: Vec<(u64, BitVec)> = (0..40)
            .map(|i| {
                let id = next_id + i;
                // A handful of constant-density rows per batch forces
                // popcount collisions across segments.
                let f = if i % 7 == 0 {
                    let mut f = BitVec::zeros(len);
                    for b in 0..(10 + batch) {
                        f.set(b * 3);
                    }
                    f
                } else {
                    random_filter(len, 80 + 30 * (i % 9), &mut state)
                };
                (id, f)
            })
            .collect();
        next_id += records.len() as u64;
        store.insert_batch(&records).expect("insert");
        store.flush().expect("flush");
    }

    let before = Manifest::load(&dir).expect("manifest before");
    let mut expected: BTreeMap<u32, Vec<u8>> = BTreeMap::new();
    for shard in 0..num_shards {
        let members = before.segments.iter().filter(|e| e.shard == shard).count();
        assert!(
            members > 1,
            "shard {shard} needs multiple segments for the merge to be exercised"
        );
        expected.insert(shard, old_style_merge(&dir, &before, shard));
    }

    let reclaimed = store.compact().expect("compact");
    assert!(reclaimed > 0, "compaction must merge something");

    let after = Manifest::load(&dir).expect("manifest after");
    for shard in 0..num_shards {
        let entries: Vec<_> = after.segments.iter().filter(|e| e.shard == shard).collect();
        assert_eq!(
            entries.len(),
            1,
            "shard {shard} must compact to one segment"
        );
        let got = std::fs::read(segment_path(&dir, entries[0].id)).expect("read merged");
        assert_eq!(
            got, expected[&shard],
            "shard {shard}: arena-native merge diverged from the record round-trip merge"
        );
    }
    std::fs::remove_dir_all(&dir).expect("cleanup");
}
