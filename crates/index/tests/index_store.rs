//! End-to-end properties of the persistent index:
//!
//! 1. Corruption detection: every single-byte flip and every truncation
//!    of a segment file on disk is caught at open — the damaged segment
//!    is quarantined and the store reports degraded reads over the
//!    survivors; never a panic, never silently wrong results.
//! 2. Query exactness: `top_k` returns exactly the same `(id, dice)`
//!    pairs as a brute-force in-memory scan — on a fresh build, after
//!    incremental inserts, and after compaction — for real CLK-encoded
//!    records, across k and thread counts.

use pprl_core::bitvec::BitVec;
use pprl_core::error::PprlError;
use pprl_core::schema::Schema;
use pprl_datagen::generator::{Generator, GeneratorConfig};
use pprl_encoding::encoder::{RecordEncoder, RecordEncoderConfig};
use pprl_index::query::Hit;
use pprl_index::store::{IndexConfig, IndexStore};
use pprl_similarity::bitvec_sim::dice_bits;
use std::path::PathBuf;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("pprl-index-it-{tag}"));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Real CLK encodings of synthetic person records (not uniform noise, so
/// popcounts and similarities have realistic structure).
fn clk_filters(n: usize, seed: u64) -> Vec<(u64, BitVec)> {
    let mut g = Generator::new(GeneratorConfig {
        seed,
        corruption_rate: 0.3,
        ..GeneratorConfig::default()
    })
    .expect("generator");
    let schema = Schema::person();
    let encoder = RecordEncoder::new(
        RecordEncoderConfig::person_clk(b"index-it".to_vec()),
        &schema,
    )
    .expect("encoder");
    let mut ds = pprl_core::record::Dataset::new(schema);
    for i in 0..n {
        // Every third record is a corrupted duplicate of an earlier
        // entity, so near-matches exist below the exact-match score.
        let r = if i % 3 == 2 {
            let base = g.entity((i / 3) as u64);
            g.corrupt_record(&base)
        } else {
            g.entity(i as u64)
        };
        ds.push(r).expect("push");
    }
    let encoded = encoder.encode_dataset(&ds).expect("encode");
    encoded
        .records
        .iter()
        .enumerate()
        .map(|(i, r)| (i as u64, r.try_clk().expect("clk").clone()))
        .collect()
}

fn brute_force(records: &[(u64, BitVec)], query: &BitVec, k: usize) -> Vec<Hit> {
    let mut hits: Vec<Hit> = records
        .iter()
        .map(|(id, f)| Hit {
            id: *id,
            score: dice_bits(query, f).expect("dice"),
        })
        .collect();
    hits.sort_by(|a, b| b.score.total_cmp(&a.score).then(a.id.cmp(&b.id)));
    hits.truncate(k);
    hits
}

fn assert_equivalent(store: &IndexStore, records: &[(u64, BitVec)], stage: &str) {
    let reader = store.reader().expect("reader");
    assert_eq!(reader.len(), records.len(), "{stage}: record count");
    for (qi, (_, query)) in records.iter().enumerate().step_by(17) {
        for k in [1, 5, 64, records.len() + 10] {
            let expected = brute_force(records, query, k);
            for threads in [1, 3] {
                let got = reader.top_k(query, k, threads).expect("top_k");
                assert_eq!(
                    got, expected,
                    "{stage}: query {qi}, k={k}, threads={threads}"
                );
            }
        }
    }
}

#[test]
fn top_k_equals_brute_force_fresh_inserted_compacted() {
    let dir = temp_dir("equivalence");
    let filter_len = clk_filters(1, 0)[0].1.len();
    let all = clk_filters(260, 42);

    // Fresh build: one batch, one flush.
    let mut store = IndexStore::create(&dir, IndexConfig::new(filter_len, 8)).expect("create");
    store.insert_batch(&all[..150]).expect("insert");
    store.flush().expect("flush");
    assert_equivalent(&store, &all[..150], "fresh build");

    // Incremental inserts: several small flushed batches plus a pending
    // tail that only lives in the WAL.
    for chunk in all[150..240].chunks(30) {
        store.insert_batch(chunk).expect("insert");
        store.flush().expect("flush");
    }
    store.insert_batch(&all[240..]).expect("insert");
    assert_equivalent(&store, &all, "after incremental inserts");

    // Reopen from disk (WAL replay) — same answers.
    drop(store);
    let mut store = IndexStore::open(&dir).expect("open");
    assert_equivalent(&store, &all, "after reopen");

    // Compaction merges every shard to one segment — same answers.
    let reclaimed = store.compact().expect("compact");
    assert!(
        reclaimed > 0,
        "multiple flushes should leave work to compact"
    );
    assert_equivalent(&store, &all, "after compaction");

    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn every_segment_byte_flip_and_truncation_quarantines_and_degrades() {
    let dir = temp_dir("corruption");
    let records = clk_filters(12, 7);
    let filter_len = records[0].1.len();
    let mut store = IndexStore::create(&dir, IndexConfig::new(filter_len, 2)).expect("create");
    store.insert_batch(&records).expect("insert");
    store.flush().expect("flush");
    drop(store);

    let seg_paths: Vec<PathBuf> = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|e| e == "seg"))
        .collect();
    assert!(!seg_paths.is_empty());
    let victim = &seg_paths[0];
    let pristine = std::fs::read(victim).unwrap();
    let victim_records = pprl_index::segment::read_segment(victim)
        .expect("pristine segment")
        .records
        .len();
    let manifest_path = dir.join("MANIFEST");
    let pristine_manifest = std::fs::read(&manifest_path).unwrap();

    // Opening a store whose segment is damaged quarantines it (moved to
    // quarantine/, recorded in the manifest's health ledger) and serves
    // the survivors — open never returns silently wrong data and never
    // refuses outright. Restore the index between corruptions, since
    // quarantining rewrites the manifest and moves the file.
    let check = |bad: &[u8], what: &str| {
        std::fs::write(&manifest_path, &pristine_manifest).unwrap();
        std::fs::write(victim, bad).unwrap();
        let _ = std::fs::remove_dir_all(dir.join("quarantine"));
        let store = IndexStore::open(&dir).expect(what);
        assert!(store.is_degraded(), "{what}: must be degraded");
        assert_eq!(store.quarantined().len(), 1, "{what}");
        let stats = store.stats().expect(what);
        assert_eq!(stats.quarantined_segments, 1, "{what}");
        assert_eq!(
            stats.persisted_records,
            records.len() - victim_records,
            "{what}: survivors only"
        );
        let reader = store.reader().expect(what);
        assert_eq!(reader.len(), records.len() - victim_records, "{what}");
        assert!(
            dir.join("quarantine")
                .join(victim.file_name().unwrap())
                .exists(),
            "{what}: file moved to quarantine/"
        );
    };

    // Every single-byte flip anywhere in the segment file.
    for pos in 0..pristine.len() {
        let mut bad = pristine.clone();
        bad[pos] ^= 1 << (pos % 8);
        check(&bad, &format!("flip at byte {pos}"));
    }

    // Every truncation length, including the empty file.
    for cut in 0..pristine.len() {
        check(&pristine[..cut], &format!("truncated to {cut}"));
    }

    // Restore the pristine bytes: the store opens healthy again.
    std::fs::write(&manifest_path, &pristine_manifest).unwrap();
    std::fs::write(victim, &pristine).unwrap();
    let _ = std::fs::remove_dir_all(dir.join("quarantine"));
    let store = IndexStore::open(&dir).expect("open");
    assert!(!store.is_degraded());
    let reader = store.reader().expect("reader");
    assert_eq!(reader.len(), records.len());
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn manifest_corruption_is_typed_error() {
    let dir = temp_dir("manifest-corruption");
    let records = clk_filters(6, 9);
    let filter_len = records[0].1.len();
    let mut store = IndexStore::create(&dir, IndexConfig::new(filter_len, 2)).expect("create");
    store.insert_batch(&records).expect("insert");
    store.flush().expect("flush");
    drop(store);

    let manifest = dir.join("MANIFEST");
    let pristine = std::fs::read(&manifest).unwrap();
    for pos in [0, pristine.len() / 2, pristine.len() - 1] {
        let mut bad = pristine.clone();
        bad[pos] ^= 0x10;
        std::fs::write(&manifest, &bad).unwrap();
        let err = IndexStore::open(&dir).expect_err(&format!("flip at {pos}"));
        assert!(matches!(err, PprlError::Storage(_)), "byte {pos}: {err}");
    }
    std::fs::write(&manifest, &pristine[..pristine.len() - 3]).unwrap();
    let err = IndexStore::open(&dir).expect_err("truncated manifest");
    assert!(matches!(err, PprlError::Storage(_)), "{err}");
    std::fs::remove_dir_all(&dir).unwrap();
}
