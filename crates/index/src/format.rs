//! Shared binary-format helpers for index files.
//!
//! All `pprl-index` files follow the `protocols::transport` framing
//! conventions: little-endian fixed-width integers, length-prefixed
//! entries, and a trailing FNV-1a checksum over everything before it. The
//! FNV-1a absorb step `h ← (h ⊕ b) · prime` is a bijection on `u64` for
//! every fixed byte, so any single flipped byte is guaranteed to change
//! the checksum; structural sizes are additionally declared in headers so
//! every truncation is detected by an exact length check rather than
//! probabilistically.

use pprl_core::error::{PprlError, Result};

/// FNV-1a offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a hash of `bytes`.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Convenience constructor for a [`PprlError::Storage`] error.
pub fn storage_err(msg: impl Into<String>) -> PprlError {
    PprlError::Storage(msg.into())
}

/// Bounds-checked little-endian reader over file bytes; every
/// malformation surfaces as a typed [`PprlError::Storage`] error naming
/// the offending offset.
pub struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
    /// File label used in error messages ("segment", "manifest", …).
    what: &'static str,
}

impl<'a> Reader<'a> {
    /// Wraps `bytes`; `what` names the file kind in error messages.
    pub fn new(bytes: &'a [u8], what: &'static str) -> Self {
        Reader {
            bytes,
            pos: 0,
            what,
        }
    }

    /// Current read offset.
    pub fn pos(&self) -> usize {
        self.pos
    }

    /// Takes the next `n` bytes or reports truncation.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        let end = self.pos.checked_add(n).filter(|&e| e <= self.bytes.len());
        let Some(end) = end else {
            return Err(storage_err(format!(
                "{} truncated: wanted {n} bytes at offset {}, file has {}",
                self.what,
                self.pos,
                self.bytes.len()
            )));
        };
        let slice = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    /// Reads a little-endian `u16`.
    pub fn u16(&mut self) -> Result<u16> {
        Ok(u16::from_le_bytes(
            self.take(2)?.try_into().expect("2 bytes"),
        ))
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    /// Errors unless every byte has been consumed.
    pub fn finish(&self) -> Result<()> {
        if self.pos != self.bytes.len() {
            return Err(storage_err(format!(
                "{} has {} trailing bytes after offset {}",
                self.what,
                self.bytes.len() - self.pos,
                self.pos
            )));
        }
        Ok(())
    }
}

/// Verifies the trailing FNV-1a checksum of a whole file image and
/// returns the covered body. The last 8 bytes are the little-endian
/// checksum of everything before them.
pub fn checked_body<'a>(bytes: &'a [u8], what: &'static str) -> Result<&'a [u8]> {
    if bytes.len() < 8 {
        return Err(storage_err(format!(
            "{what} too short for a checksum: {} bytes",
            bytes.len()
        )));
    }
    let body = &bytes[..bytes.len() - 8];
    let declared = u64::from_le_bytes(bytes[bytes.len() - 8..].try_into().expect("8 bytes"));
    if fnv1a(body) != declared {
        return Err(storage_err(format!("{what} checksum mismatch")));
    }
    Ok(body)
}

/// Appends the FNV-1a checksum of the current contents to `out`.
pub fn append_checksum(out: &mut Vec<u8>) {
    let sum = fnv1a(out);
    out.extend_from_slice(&sum.to_le_bytes());
}

/// Maps an I/O failure on `path` to a typed [`PprlError::Storage`].
pub fn io_err(path: &std::path::Path, op: &str, e: std::io::Error) -> PprlError {
    storage_err(format!("{op} {}: {e}", path.display()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv1a_known_vector() {
        // FNV-1a of the empty string is the offset basis.
        assert_eq!(fnv1a(b""), FNV_OFFSET);
        // And of "a" (a single absorb step).
        assert_eq!(fnv1a(b"a"), (FNV_OFFSET ^ 0x61).wrapping_mul(FNV_PRIME));
    }

    #[test]
    fn checksum_round_trip_and_flip_detection() {
        let mut out = b"hello segment".to_vec();
        append_checksum(&mut out);
        assert_eq!(checked_body(&out, "test").unwrap(), b"hello segment");
        // Any single-byte flip anywhere (body or checksum) is caught.
        for pos in 0..out.len() {
            for bit in [0x01u8, 0x80] {
                let mut bad = out.clone();
                bad[pos] ^= bit;
                let err = checked_body(&bad, "test").unwrap_err();
                assert!(matches!(err, PprlError::Storage(_)), "byte {pos}: {err}");
            }
        }
    }

    #[test]
    fn reader_bounds_and_finish() {
        let bytes = 7u32.to_le_bytes().to_vec();
        let mut r = Reader::new(&bytes, "test");
        assert_eq!(r.u32().unwrap(), 7);
        r.finish().unwrap();
        let mut r = Reader::new(&bytes, "test");
        assert!(r.u64().is_err());
        let mut r = Reader::new(&bytes, "test");
        let _ = r.u16().unwrap();
        let err = r.finish().unwrap_err();
        assert!(matches!(err, PprlError::Storage(_)), "{err}");
    }

    #[test]
    fn short_file_is_storage_error() {
        assert!(matches!(
            checked_body(b"tiny", "test").unwrap_err(),
            PprlError::Storage(_)
        ));
    }
}
