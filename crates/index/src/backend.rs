//! The persistent index as a first-class linkage backend.
//!
//! [`IndexBackend`] adapts an on-disk [`IndexStore`] to the
//! [`CandidateSource`] trait, so a batch linkage run can probe a
//! pre-built index instead of rebuilding in-memory blocks per run.
//! Stored record ids are interpreted as target row numbers — an index
//! built by inserting dataset B row-by-row (`id = row`) yields pairs
//! directly comparable to any in-memory source over the same dataset.
//!
//! Candidates come from the exact batched top-k Dice engine
//! ([`IndexReader::top_k_batch`]): each probe batch walks the columnar
//! arenas once for all probes together, and the `min_score` bound is
//! pushed down so a segment no probe can reach (by popcount or band-key
//! summary) is never read from disk at all. Because the engine is exact,
//! the emitted pairs are precisely the k nearest stored records per
//! probe at or above the threshold — no false dismissals within k.

use crate::query::IndexReader;
use crate::store::{IndexStore, ReadStats};
use pprl_core::candidate::{CandidatePair, CandidateSource, Probes, SourceStats};
use pprl_core::error::{PprlError, Result};
use std::path::Path;

/// A [`CandidateSource`] over a persistent [`IndexStore`].
#[derive(Debug)]
pub struct IndexBackend {
    reader: IndexReader,
    target_len: usize,
    top_k: usize,
    min_score: f64,
    threads: usize,
    stats: SourceStats,
}

impl IndexBackend {
    /// Opens the index at `dir` as a candidate source emitting up to
    /// `top_k` neighbours per probe with Dice score ≥ `min_score`,
    /// querying with up to `threads` worker threads. Segment files load
    /// lazily, on the first probe batch that actually needs them.
    pub fn open(dir: &Path, top_k: usize, min_score: f64, threads: usize) -> Result<IndexBackend> {
        if top_k == 0 {
            return Err(PprlError::invalid("top_k", "must be at least 1"));
        }
        if !(0.0..=1.0).contains(&min_score) {
            return Err(PprlError::invalid("min_score", "must be in [0, 1]"));
        }
        let store = IndexStore::open(dir)?;
        let target_len = store.record_count()?;
        let reader = store.lazy_reader()?;
        let stats = SourceStats {
            degraded: reader.is_degraded(),
            quarantined_segments: reader.quarantined_segments(),
            ..SourceStats::default()
        };
        Ok(IndexBackend {
            reader,
            target_len,
            top_k,
            min_score,
            threads: threads.max(1),
            stats,
        })
    }

    /// True when segments were quarantined at open: candidates are exact
    /// over the surviving records only.
    pub fn is_degraded(&self) -> bool {
        self.stats.degraded
    }

    /// What the backend has read from (and pruned out of) storage so far.
    pub fn read_stats(&self) -> ReadStats {
        self.reader.read_stats()
    }
}

impl CandidateSource for IndexBackend {
    fn name(&self) -> &'static str {
        "index"
    }

    fn target_len(&self) -> usize {
        self.target_len
    }

    fn candidates(&mut self, probes: &Probes<'_>) -> Result<Vec<CandidatePair>> {
        let filters = probes.require_filters("index backend")?;
        if filters.is_empty() {
            return Ok(Vec::new());
        }
        let per_probe =
            self.reader
                .top_k_batch(filters, self.top_k, self.threads, Some(self.min_score))?;
        let mut pairs = Vec::new();
        for (row, hits) in per_probe.into_iter().enumerate() {
            pairs.extend(hits.into_iter().map(|hit| (row, hit.id as usize)));
        }
        pairs.sort_unstable();
        pairs.dedup();
        self.stats
            .record_call(filters.len(), self.target_len, pairs.len());
        self.stats.bytes_read = self.reader.read_stats().bytes_read;
        Ok(pairs)
    }

    fn stats(&self) -> SourceStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::IndexConfig;
    use pprl_core::bitvec::BitVec;
    use pprl_core::rng::SplitMix64;
    use pprl_similarity::bitvec_sim::dice_bits;
    use std::path::PathBuf;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("pprl-index-backend-{tag}"));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn random_filters(n: usize, len: usize, seed: u64) -> Vec<BitVec> {
        let mut rng = SplitMix64::new(seed);
        (0..n)
            .map(|_| {
                let ones: Vec<usize> = (0..len)
                    .filter(|_| rng.next_u64().is_multiple_of(4))
                    .collect();
                BitVec::from_positions(len, &ones).unwrap()
            })
            .collect()
    }

    fn build_index(dir: &Path, filters: &[BitVec]) {
        let mut store = IndexStore::create(dir, IndexConfig::new(128, 2)).unwrap();
        let records: Vec<(u64, BitVec)> = filters
            .iter()
            .enumerate()
            .map(|(i, f)| (i as u64, f.clone()))
            .collect();
        store.insert_batch(&records).unwrap();
        store.flush().unwrap();
    }

    #[test]
    fn emits_exact_top_k_above_threshold() {
        let dir = temp_dir("topk");
        let targets = random_filters(60, 128, 9);
        build_index(&dir, &targets);
        let probe_owned = random_filters(5, 128, 31);
        let probe_refs: Vec<&BitVec> = probe_owned.iter().collect();
        let mut backend = IndexBackend::open(&dir, 3, 0.2, 2).unwrap();
        assert_eq!(backend.name(), "index");
        assert_eq!(backend.target_len(), 60);
        let pairs = backend
            .candidates(&Probes::from_filters(&probe_refs))
            .unwrap();
        // Reference: brute-force top-3 per probe at the threshold.
        let mut expected = Vec::new();
        for (row, probe) in probe_owned.iter().enumerate() {
            let mut scored: Vec<(usize, f64)> = targets
                .iter()
                .enumerate()
                .map(|(t, f)| (t, dice_bits(probe, f).unwrap()))
                .collect();
            scored.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
            expected.extend(
                scored
                    .into_iter()
                    .take(3)
                    .filter(|(_, s)| *s >= 0.2)
                    .map(|(t, _)| (row, t)),
            );
        }
        expected.sort_unstable();
        assert_eq!(pairs, expected);
        let stats = backend.stats();
        assert_eq!(stats.candidates, pairs.len());
        assert_eq!(stats.comparisons_saved, 5 * 60 - pairs.len());
        assert!(stats.bytes_read > 0, "disk-backed source reports bytes");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_filters_is_typed_error_and_params_validated() {
        let dir = temp_dir("params");
        build_index(&dir, &random_filters(4, 128, 1));
        let err = IndexBackend::open(&dir, 0, 0.5, 1).unwrap_err();
        assert!(matches!(err, PprlError::InvalidParameter { .. }), "{err}");
        let err = IndexBackend::open(&dir, 5, 1.5, 1).unwrap_err();
        assert!(matches!(err, PprlError::InvalidParameter { .. }), "{err}");
        let mut backend = IndexBackend::open(&dir, 5, 0.5, 1).unwrap();
        let keys = vec!["k".to_string()];
        let probes = Probes {
            keys: Some(&keys),
            ..Probes::default()
        };
        let err = backend.candidates(&probes).unwrap_err();
        assert!(matches!(err, PprlError::InvalidParameter { .. }), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn lazy_reader_loads_only_segments_probes_can_reach() {
        let dir = temp_dir("lazy");
        // Sparse and dense targets land in segments with disjoint bounds.
        let mut targets = Vec::new();
        for i in 0..6usize {
            targets
                .push(BitVec::from_positions(128, &[(i * 7) % 128, (i * 11 + 1) % 128]).unwrap());
        }
        for i in 0..6usize {
            let ones: Vec<usize> = (0..60).map(|k| (k * 2 + i) % 128).collect();
            targets.push(BitVec::from_positions(128, &ones).unwrap());
        }
        // Two flushes so sparse and dense records sit in different segments.
        let mut store = IndexStore::create(&dir, IndexConfig::new(128, 1)).unwrap();
        let recs: Vec<(u64, BitVec)> = targets
            .iter()
            .enumerate()
            .map(|(i, f)| (i as u64, f.clone()))
            .collect();
        store.insert_batch(&recs[..6]).unwrap();
        store.flush().unwrap();
        store.insert_batch(&recs[6..]).unwrap();
        store.flush().unwrap();
        drop(store);

        let mut backend = IndexBackend::open(&dir, 2, 0.6, 1).unwrap();
        assert_eq!(
            backend.read_stats().segments_read,
            0,
            "opening reads no segments"
        );
        // A sparse probe cannot reach the dense segment at 0.6: it stays
        // unread on disk.
        let sparse = BitVec::from_positions(128, &[0, 12]).unwrap();
        let refs = vec![&sparse];
        backend.candidates(&Probes::from_filters(&refs)).unwrap();
        assert_eq!(backend.read_stats().segments_skipped, 1);
        assert_eq!(backend.read_stats().segments_read, 1);
        let bytes_after_first = backend.read_stats().bytes_read;
        // A dense probe needs the dense segment, which loads on demand.
        let ones: Vec<usize> = (0..60).map(|k| k * 2 % 128).collect();
        let dense = BitVec::from_positions(128, &ones).unwrap();
        let refs = vec![&dense];
        let pairs = backend.candidates(&Probes::from_filters(&refs)).unwrap();
        assert!(!pairs.is_empty(), "dense probe finds dense targets");
        assert!(backend.read_stats().bytes_read > bytes_after_first);
        assert_eq!(backend.read_stats().segments_skipped, 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
