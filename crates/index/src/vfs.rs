//! The injectable IO layer every file operation in this crate goes
//! through.
//!
//! [`Vfs`] is the narrow, object-safe surface the store actually needs
//! (whole-file read/write, append, rename, fsync of files and
//! directories). [`StdVfs`] is the production passthrough to `std::fs`.
//! [`FaultVfs`] is a deterministic, fully in-memory filesystem with a
//! seeded fault model — the storage-side twin of the network
//! `FaultPlan` in `pprl-protocols` — that injects short writes, crash
//! points discarding un-synced data, torn renames, `ENOSPC`, and
//! read-side bit flips. Because it never touches disk, crash-recovery
//! property tests can sweep hundreds of fault schedules in
//! milliseconds with no temp-dir cleanup races.
//!
//! ## Durability model of `FaultVfs`
//!
//! Each file has *live* content (what the process observes) and
//! *durable* content (what survives a crash: everything up to the last
//! `sync_file`). Directory entries are durable only once the parent
//! directory is synced: creates, renames, and removes sit in a pending
//! log that [`Vfs::sync_dir`] applies. At a crash point the surviving
//! image of a file is its durable content plus a seeded-RNG prefix of
//! the un-synced tail — the classic torn-write outcome. A file
//! *overwritten* (not appended) since its last sync survives as an
//! arbitrary prefix of the new bytes, modelling truncate-then-write;
//! this is the pessimistic assumption `std::fs::write` deserves, and it
//! is why the store only ever overwrites via tmp + `rename`. Directory
//! *creation* is assumed durable (real filesystems journal it far more
//! aggressively than data), which keeps the model focused on the
//! file-level hazards the store must survive.

use pprl_core::rng::SplitMix64;
use std::collections::{BTreeMap, BTreeSet};
use std::io;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

/// Object-safe filesystem abstraction for the index store.
///
/// All methods use `std::io::Result`; callers in this crate convert to
/// typed [`pprl_core::error::PprlError::Storage`] errors with the path
/// and operation via `format::io_err`.
pub trait Vfs: Send + Sync + std::fmt::Debug {
    /// Reads the entire file at `path`.
    fn read(&self, path: &Path) -> io::Result<Vec<u8>>;
    /// Writes `data` to `path`, creating or truncating it. **Not**
    /// atomic and **not** durable by itself — pair with [`Vfs::sync_file`]
    /// and [`Vfs::sync_dir`], or write to a tmp path and [`Vfs::rename`].
    fn write(&self, path: &Path, data: &[u8]) -> io::Result<()>;
    /// Appends `data` to `path`, creating it if absent.
    fn append(&self, path: &Path, data: &[u8]) -> io::Result<()>;
    /// Renames `from` to `to` (same directory: atomic replace).
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;
    /// Fsyncs the file's *content*. Does not persist its directory
    /// entry — a freshly created file also needs [`Vfs::sync_dir`].
    fn sync_file(&self, path: &Path) -> io::Result<()>;
    /// Fsyncs the directory, persisting creates/renames/removes of its
    /// entries.
    fn sync_dir(&self, path: &Path) -> io::Result<()>;
    /// Size of the file in bytes.
    fn file_size(&self, path: &Path) -> io::Result<u64>;
    /// Removes the file. Missing files are an error (callers that
    /// tolerate `NotFound` check the error kind).
    fn remove_file(&self, path: &Path) -> io::Result<()>;
    /// Creates the directory and all missing parents.
    fn create_dir_all(&self, path: &Path) -> io::Result<()>;
    /// True if a file or directory exists at `path`.
    fn exists(&self, path: &Path) -> bool;
}

/// The production [`Vfs`]: a direct passthrough to `std::fs`.
#[derive(Debug, Clone, Copy, Default)]
pub struct StdVfs;

impl Vfs for StdVfs {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        std::fs::read(path)
    }

    fn write(&self, path: &Path, data: &[u8]) -> io::Result<()> {
        std::fs::write(path, data)
    }

    fn append(&self, path: &Path, data: &[u8]) -> io::Result<()> {
        use std::io::Write;
        let mut file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        file.write_all(data)?;
        file.flush()
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        std::fs::rename(from, to)
    }

    fn sync_file(&self, path: &Path) -> io::Result<()> {
        std::fs::File::open(path)?.sync_all()
    }

    fn sync_dir(&self, path: &Path) -> io::Result<()> {
        // Opening a directory read-only and fsyncing it is the portable
        // POSIX idiom for persisting its entries; on platforms where
        // directories cannot be opened (e.g. Windows) the open fails
        // and we treat directory durability as implicit.
        match std::fs::File::open(path) {
            Ok(dir) => dir.sync_all(),
            Err(_) => Ok(()),
        }
    }

    fn file_size(&self, path: &Path) -> io::Result<u64> {
        Ok(std::fs::metadata(path)?.len())
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        std::fs::remove_file(path)
    }

    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        std::fs::create_dir_all(path)
    }

    fn exists(&self, path: &Path) -> bool {
        path.exists()
    }
}

/// Returns the default production VFS as a shareable handle.
pub fn std_vfs() -> Arc<dyn Vfs> {
    Arc::new(StdVfs)
}

/// Deterministic storage-fault schedule for [`FaultVfs`], mirroring the
/// network `FaultPlan` of `pprl-protocols`.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct FaultPlan {
    /// Seed for the fault RNG; identical plans replay identical faults.
    pub seed: u64,
    /// Probability a `write`/`append` fails after applying only a
    /// prefix of its bytes (the caller sees an error; the file is torn).
    pub short_write_rate: f64,
    /// Probability a `read` returns the content with one bit flipped
    /// (transient — the stored bytes are unchanged).
    pub read_flip_rate: f64,
    /// One-shot `ENOSPC`: the first `write`/`append` after cumulative
    /// written bytes exceed this threshold fails with
    /// [`io::ErrorKind::StorageFull`], then the device "frees space".
    pub enospc_after_bytes: Option<u64>,
    /// Crash at the N-th mutating operation (1-based): the op partially
    /// applies, every later call fails, and
    /// [`FaultVfs::crash_and_recover`] rolls the filesystem back to
    /// what a real power loss would have preserved.
    pub crash_after_ops: Option<u64>,
}

impl FaultPlan {
    /// A perfectly reliable disk.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// A reliable disk that crashes at mutating operation `n` (1-based).
    pub fn crash_at(seed: u64, n: u64) -> Self {
        FaultPlan {
            seed,
            crash_after_ops: Some(n),
            ..FaultPlan::none()
        }
    }
}

/// A pending directory-entry mutation, applied on [`Vfs::sync_dir`].
#[derive(Debug, Clone)]
enum DirOp {
    Create(PathBuf),
    Rename(PathBuf, PathBuf),
    Remove(PathBuf),
}

impl DirOp {
    /// The directory whose fsync persists this op.
    fn parent(&self) -> &Path {
        let p = match self {
            DirOp::Create(p) | DirOp::Remove(p) => p,
            // A same-directory rename (the only kind the store issues
            // within one dir) persists with the destination's parent;
            // cross-directory moves (quarantine) also sync that side.
            DirOp::Rename(_, to) => to,
        };
        p.parent().unwrap_or(Path::new(""))
    }
}

#[derive(Debug)]
struct FaultState {
    /// What the running process observes.
    live: BTreeMap<PathBuf, Vec<u8>>,
    /// Content as of each file's last `sync_file`.
    durable: BTreeMap<PathBuf, Vec<u8>>,
    /// Paths whose directory entry has been persisted by `sync_dir`.
    durable_dirent: BTreeSet<PathBuf>,
    /// Dirent mutations awaiting their parent directory's fsync.
    pending: Vec<DirOp>,
    /// Existing directories (assumed durable; see module docs).
    dirs: BTreeSet<PathBuf>,
    rng: SplitMix64,
    plan: FaultPlan,
    /// Cumulative bytes handed to `write`/`append` (drives `ENOSPC`).
    bytes_written: u64,
    /// Mutating operations performed (drives `crash_after_ops`).
    ops: u64,
    crashed: bool,
}

/// A deterministic in-memory [`Vfs`] with seeded fault injection.
///
/// See the module docs for the durability model. All state sits behind
/// a mutex, so one `FaultVfs` can safely back a store and its readers.
#[derive(Debug)]
pub struct FaultVfs {
    state: Mutex<FaultState>,
}

fn crash_err() -> io::Error {
    io::Error::other("simulated crash: vfs is offline until recovery")
}

fn chance(rng: &mut SplitMix64, rate: f64) -> bool {
    rate > 0.0 && (rng.next_u64() as f64 / u64::MAX as f64) < rate
}

impl FaultVfs {
    /// A fault-injecting in-memory filesystem following `plan`.
    pub fn new(plan: FaultPlan) -> Arc<FaultVfs> {
        Arc::new(FaultVfs {
            state: Mutex::new(FaultState {
                live: BTreeMap::new(),
                durable: BTreeMap::new(),
                durable_dirent: BTreeSet::new(),
                pending: Vec::new(),
                dirs: BTreeSet::new(),
                rng: SplitMix64::new(plan.seed ^ 0x005d_15c0_de0f_d15c),
                plan,
                bytes_written: 0,
                ops: 0,
                crashed: false,
            }),
        })
    }

    /// A perfectly reliable in-memory filesystem — the oracle twin of a
    /// faulty store, and a fast backing for unit tests.
    pub fn reliable() -> Arc<FaultVfs> {
        FaultVfs::new(FaultPlan::none())
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, FaultState> {
        self.state.lock().expect("fault vfs lock")
    }

    /// Mutating operations performed so far. A fault-free dry run of a
    /// workload measures this to enumerate every crash point.
    pub fn mutating_ops(&self) -> u64 {
        self.lock().ops
    }

    /// True once an injected crash point has fired.
    pub fn crashed(&self) -> bool {
        self.lock().crashed
    }

    /// Arms (or re-arms) a crash `n` mutating operations from *now*.
    pub fn arm_crash_after(&self, n: u64) {
        let mut st = self.lock();
        let at = st.ops + n;
        st.plan.crash_after_ops = Some(at);
    }

    /// Simulates the machine rebooting: every file rolls back to what a
    /// power loss would have preserved (durable content plus a seeded
    /// prefix of any un-synced tail; un-persisted dirents vanish), and
    /// the VFS accepts operations again.
    pub fn crash_and_recover(&self) {
        let mut st = self.lock();
        let mut survivors: BTreeMap<PathBuf, Vec<u8>> = BTreeMap::new();
        // The destination of an un-persisted rename still points at the
        // *old* inode after a crash: the new content was only ever
        // reachable through the dirent swap that never hit the platters.
        let renamed_to: BTreeSet<PathBuf> = st
            .pending
            .iter()
            .filter_map(|op| match op {
                DirOp::Rename(_, to) => Some(to.clone()),
                _ => None,
            })
            .collect();
        let dirents: Vec<PathBuf> = st.durable_dirent.iter().cloned().collect();
        for path in dirents {
            let durable = st.durable.get(&path).cloned().unwrap_or_default();
            if renamed_to.contains(&path) {
                survivors.insert(path, durable);
                continue;
            }
            let content = match st.live.get(&path).cloned() {
                Some(live) if live.starts_with(&durable) => {
                    // Append-style growth: the synced prefix survives;
                    // the un-synced tail survives up to a torn point.
                    let keep = durable.len() as u64
                        + st.rng.next_below((live.len() - durable.len()) as u64 + 1);
                    live[..keep as usize].to_vec()
                }
                Some(live) => {
                    // Overwritten in place since the last sync: the old
                    // bytes are gone, an arbitrary prefix of the new
                    // bytes made it to the platters.
                    let keep = st.rng.next_below(live.len() as u64 + 1);
                    live[..keep as usize].to_vec()
                }
                // Removed in live but the remove never reached the
                // directory: the old durable content survives.
                None => durable,
            };
            survivors.insert(path, content);
        }
        st.live = survivors.clone();
        st.durable = survivors;
        st.pending.clear();
        st.crashed = false;
        st.plan.crash_after_ops = None;
    }

    /// Flips bits of the *stored* bytes at `path` (live and durable):
    /// `byte ^= mask`. Drives quarantine tests deterministically.
    /// Panics if the path or offset does not exist — a test bug.
    pub fn corrupt_stored(&self, path: &Path, byte: usize, mask: u8) {
        let mut st = self.lock();
        let st = &mut *st;
        for map in [&mut st.live, &mut st.durable] {
            if let Some(content) = map.get_mut(path) {
                assert!(byte < content.len(), "corrupt_stored: offset out of range");
                content[byte] ^= mask;
            }
        }
    }

    /// Sorted live file listing (for assertions in tests).
    pub fn list_files(&self) -> Vec<PathBuf> {
        self.lock().live.keys().cloned().collect()
    }

    /// Runs the pre-op fault gates shared by every mutating operation.
    /// Returns `Ok(true)` when this op is the crash point (the caller
    /// partially applies, then reports the crash).
    fn mutating_gate(st: &mut FaultState) -> io::Result<bool> {
        if st.crashed {
            return Err(crash_err());
        }
        st.ops += 1;
        if st.plan.crash_after_ops.is_some_and(|n| st.ops >= n) {
            return Ok(true);
        }
        Ok(false)
    }

    /// ENOSPC gate for data-writing ops; charges `len` bytes.
    fn charge_bytes(st: &mut FaultState, len: usize) -> io::Result<()> {
        st.bytes_written += len as u64;
        if let Some(limit) = st.plan.enospc_after_bytes {
            if st.bytes_written > limit {
                st.plan.enospc_after_bytes = None; // one-shot
                return Err(io::Error::new(
                    io::ErrorKind::StorageFull,
                    "simulated ENOSPC: no space left on device",
                ));
            }
        }
        Ok(())
    }

    fn parent_exists(st: &FaultState, path: &Path) -> io::Result<()> {
        match path.parent() {
            Some(parent) if parent.as_os_str().is_empty() => Ok(()),
            Some(parent) if st.dirs.contains(parent) => Ok(()),
            Some(parent) => Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!("no such directory: {}", parent.display()),
            )),
            None => Ok(()),
        }
    }
}

impl Vfs for FaultVfs {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        let mut st = self.lock();
        if st.crashed {
            return Err(crash_err());
        }
        let mut content = st
            .live
            .get(path)
            .cloned()
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "no such file"))?;
        let rate = st.plan.read_flip_rate;
        if !content.is_empty() && chance(&mut st.rng, rate) {
            let bit = st.rng.next_below(content.len() as u64 * 8);
            content[(bit / 8) as usize] ^= 1 << (bit % 8);
        }
        Ok(content)
    }

    fn write(&self, path: &Path, data: &[u8]) -> io::Result<()> {
        let mut st = self.lock();
        let crash = Self::mutating_gate(&mut st)?;
        Self::parent_exists(&st, path)?;
        Self::charge_bytes(&mut st, data.len())?;
        let is_new = !st.live.contains_key(path);
        let rate = st.plan.short_write_rate;
        let short = !crash && chance(&mut st.rng, rate);
        let keep = if crash || short {
            st.rng.next_below(data.len() as u64 + 1) as usize
        } else {
            data.len()
        };
        st.live.insert(path.to_path_buf(), data[..keep].to_vec());
        if is_new {
            st.pending.push(DirOp::Create(path.to_path_buf()));
        } else {
            // Overwrite invalidates the synced image: from here on the
            // crash model treats the file as truncate-then-rewrite.
            st.durable.remove(path);
        }
        if crash {
            st.crashed = true;
            return Err(crash_err());
        }
        if short {
            return Err(io::Error::new(
                io::ErrorKind::WriteZero,
                format!("simulated short write: {keep} of {} bytes", data.len()),
            ));
        }
        Ok(())
    }

    fn append(&self, path: &Path, data: &[u8]) -> io::Result<()> {
        let mut st = self.lock();
        let crash = Self::mutating_gate(&mut st)?;
        Self::parent_exists(&st, path)?;
        Self::charge_bytes(&mut st, data.len())?;
        let is_new = !st.live.contains_key(path);
        let rate = st.plan.short_write_rate;
        let short = !crash && chance(&mut st.rng, rate);
        let keep = if crash || short {
            st.rng.next_below(data.len() as u64 + 1) as usize
        } else {
            data.len()
        };
        st.live
            .entry(path.to_path_buf())
            .or_default()
            .extend_from_slice(&data[..keep]);
        if is_new {
            st.pending.push(DirOp::Create(path.to_path_buf()));
        }
        if crash {
            st.crashed = true;
            return Err(crash_err());
        }
        if short {
            return Err(io::Error::new(
                io::ErrorKind::WriteZero,
                format!("simulated short write: {keep} of {} bytes", data.len()),
            ));
        }
        Ok(())
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        let mut st = self.lock();
        let crash = Self::mutating_gate(&mut st)?;
        // A crash *at* the rename leaves it un-applied half the time.
        let apply = !crash || st.rng.next_below(2) == 1;
        if apply {
            let content = st.live.remove(from).ok_or_else(|| {
                io::Error::new(io::ErrorKind::NotFound, "rename source does not exist")
            })?;
            st.live.insert(to.to_path_buf(), content);
            st.pending
                .push(DirOp::Rename(from.to_path_buf(), to.to_path_buf()));
        }
        if crash {
            st.crashed = true;
            return Err(crash_err());
        }
        Ok(())
    }

    fn sync_file(&self, path: &Path) -> io::Result<()> {
        let mut st = self.lock();
        let crash = Self::mutating_gate(&mut st)?;
        // A crash at the sync point: coin-flip whether it completed.
        let apply = !crash || st.rng.next_below(2) == 1;
        if apply {
            let content = st.live.get(path).cloned().ok_or_else(|| {
                io::Error::new(io::ErrorKind::NotFound, "sync_file: no such file")
            })?;
            st.durable.insert(path.to_path_buf(), content);
        }
        if crash {
            st.crashed = true;
            return Err(crash_err());
        }
        Ok(())
    }

    fn sync_dir(&self, path: &Path) -> io::Result<()> {
        let mut st = self.lock();
        let crash = Self::mutating_gate(&mut st)?;
        let apply = !crash || st.rng.next_below(2) == 1;
        if apply {
            let (for_dir, rest): (Vec<DirOp>, Vec<DirOp>) = std::mem::take(&mut st.pending)
                .into_iter()
                .partition(|op| op.parent() == path);
            st.pending = rest;
            for op in for_dir {
                match op {
                    DirOp::Create(p) => {
                        st.durable_dirent.insert(p);
                    }
                    DirOp::Rename(from, to) => {
                        st.durable_dirent.remove(&from);
                        st.durable_dirent.insert(to.clone());
                        if let Some(content) = st.durable.remove(&from) {
                            st.durable.insert(to, content);
                        }
                    }
                    DirOp::Remove(p) => {
                        st.durable_dirent.remove(&p);
                        st.durable.remove(&p);
                    }
                }
            }
        }
        if crash {
            st.crashed = true;
            return Err(crash_err());
        }
        Ok(())
    }

    fn file_size(&self, path: &Path) -> io::Result<u64> {
        let st = self.lock();
        if st.crashed {
            return Err(crash_err());
        }
        st.live
            .get(path)
            .map(|c| c.len() as u64)
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "no such file"))
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        let mut st = self.lock();
        let crash = Self::mutating_gate(&mut st)?;
        let apply = !crash || st.rng.next_below(2) == 1;
        let mut result = Ok(());
        if apply {
            if st.live.remove(path).is_none() {
                result = Err(io::Error::new(io::ErrorKind::NotFound, "no such file"));
            } else {
                st.pending.push(DirOp::Remove(path.to_path_buf()));
            }
        }
        if crash {
            st.crashed = true;
            return Err(crash_err());
        }
        result
    }

    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        let mut st = self.lock();
        let crash = Self::mutating_gate(&mut st)?;
        let mut dir = Some(path);
        while let Some(d) = dir {
            if !d.as_os_str().is_empty() {
                st.dirs.insert(d.to_path_buf());
            }
            dir = d.parent();
        }
        if crash {
            st.crashed = true;
            return Err(crash_err());
        }
        Ok(())
    }

    fn exists(&self, path: &Path) -> bool {
        let st = self.lock();
        !st.crashed && (st.live.contains_key(path) || st.dirs.contains(path))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> PathBuf {
        PathBuf::from(s)
    }

    fn setup(plan: FaultPlan) -> Arc<FaultVfs> {
        let vfs = FaultVfs::new(plan);
        vfs.create_dir_all(&p("/idx")).unwrap();
        vfs
    }

    #[test]
    fn write_read_round_trip() {
        let vfs = setup(FaultPlan::none());
        vfs.write(&p("/idx/a"), b"hello").unwrap();
        assert_eq!(vfs.read(&p("/idx/a")).unwrap(), b"hello");
        assert_eq!(vfs.file_size(&p("/idx/a")).unwrap(), 5);
        vfs.append(&p("/idx/a"), b" world").unwrap();
        assert_eq!(vfs.read(&p("/idx/a")).unwrap(), b"hello world");
        assert!(vfs.exists(&p("/idx/a")));
        assert!(!vfs.exists(&p("/idx/b")));
    }

    #[test]
    fn unsynced_file_vanishes_on_crash() {
        let vfs = setup(FaultPlan::none());
        vfs.write(&p("/idx/a"), b"hello").unwrap();
        vfs.crash_and_recover();
        assert!(!vfs.exists(&p("/idx/a")), "dirent was never synced");
    }

    #[test]
    fn synced_file_survives_crash_fully() {
        let vfs = setup(FaultPlan::none());
        vfs.write(&p("/idx/a"), b"hello").unwrap();
        vfs.sync_file(&p("/idx/a")).unwrap();
        vfs.sync_dir(&p("/idx")).unwrap();
        vfs.crash_and_recover();
        assert_eq!(vfs.read(&p("/idx/a")).unwrap(), b"hello");
    }

    #[test]
    fn unsynced_append_tail_is_torn_not_lost_before_sync_point() {
        let vfs = setup(FaultPlan {
            seed: 7,
            ..FaultPlan::none()
        });
        vfs.write(&p("/idx/a"), b"base").unwrap();
        vfs.sync_file(&p("/idx/a")).unwrap();
        vfs.sync_dir(&p("/idx")).unwrap();
        vfs.append(&p("/idx/a"), b"tailtailtail").unwrap();
        vfs.crash_and_recover();
        let got = vfs.read(&p("/idx/a")).unwrap();
        assert!(got.starts_with(b"base"), "synced prefix must survive");
        assert!(got.len() <= b"basetailtailtail".len());
        assert!(b"basetailtailtail".starts_with(&got[..]));
    }

    #[test]
    fn rename_is_atomic_once_dir_synced() {
        let vfs = setup(FaultPlan::none());
        vfs.write(&p("/idx/t.tmp"), b"new").unwrap();
        vfs.sync_file(&p("/idx/t.tmp")).unwrap();
        vfs.rename(&p("/idx/t.tmp"), &p("/idx/t")).unwrap();
        vfs.sync_dir(&p("/idx")).unwrap();
        vfs.crash_and_recover();
        assert_eq!(vfs.read(&p("/idx/t")).unwrap(), b"new");
        assert!(!vfs.exists(&p("/idx/t.tmp")));
    }

    #[test]
    fn unsynced_rename_rolls_back_to_old_content() {
        let vfs = setup(FaultPlan::none());
        vfs.write(&p("/idx/t"), b"old").unwrap();
        vfs.sync_file(&p("/idx/t")).unwrap();
        vfs.sync_dir(&p("/idx")).unwrap();
        vfs.write(&p("/idx/t.tmp"), b"new").unwrap();
        vfs.sync_file(&p("/idx/t.tmp")).unwrap();
        vfs.rename(&p("/idx/t.tmp"), &p("/idx/t")).unwrap();
        // no sync_dir: the rename's dirent update is lost.
        vfs.crash_and_recover();
        assert_eq!(vfs.read(&p("/idx/t")).unwrap(), b"old");
    }

    #[test]
    fn crash_point_fires_then_everything_fails_until_recovery() {
        let vfs = setup(FaultPlan::crash_at(3, 3));
        vfs.write(&p("/idx/a"), b"x").unwrap(); // op 2 (mkdir was op 1)
        let err = vfs.write(&p("/idx/b"), b"y").unwrap_err(); // op 3: crash
        assert!(err.to_string().contains("simulated crash"));
        assert!(vfs.crashed());
        assert!(vfs.write(&p("/idx/c"), b"z").is_err());
        assert!(vfs.read(&p("/idx/a")).is_err());
        vfs.crash_and_recover();
        assert!(!vfs.crashed());
        vfs.write(&p("/idx/c"), b"z").unwrap();
    }

    #[test]
    fn enospc_fires_once_then_clears() {
        let vfs = setup(FaultPlan {
            enospc_after_bytes: Some(4),
            ..FaultPlan::none()
        });
        vfs.write(&p("/idx/a"), b"1234").unwrap();
        let err = vfs.write(&p("/idx/b"), b"5").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::StorageFull);
        vfs.write(&p("/idx/b"), b"5").unwrap();
    }

    #[test]
    fn read_flips_are_transient() {
        let vfs = setup(FaultPlan {
            seed: 1,
            read_flip_rate: 1.0,
            ..FaultPlan::none()
        });
        vfs.write(&p("/idx/a"), b"data").unwrap();
        let flipped = vfs.read(&p("/idx/a")).unwrap();
        assert_ne!(flipped, b"data", "rate 1.0 must flip a bit");
        let mut st = vfs.lock();
        assert_eq!(st.live.get(&p("/idx/a")).unwrap(), b"data");
        st.plan.read_flip_rate = 0.0;
        drop(st);
        assert_eq!(vfs.read(&p("/idx/a")).unwrap(), b"data");
    }

    #[test]
    fn short_writes_tear_the_file_and_error() {
        let vfs = setup(FaultPlan {
            seed: 9,
            short_write_rate: 1.0,
            ..FaultPlan::none()
        });
        let err = vfs.write(&p("/idx/a"), b"0123456789").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::WriteZero);
        let torn = {
            let st = vfs.lock();
            st.live.get(&p("/idx/a")).cloned().unwrap()
        };
        assert!(torn.len() < 10);
        assert!(b"0123456789".starts_with(&torn[..]));
    }

    #[test]
    fn corrupt_stored_flips_persisted_bytes() {
        let vfs = setup(FaultPlan::none());
        vfs.write(&p("/idx/a"), b"abcd").unwrap();
        vfs.sync_file(&p("/idx/a")).unwrap();
        vfs.corrupt_stored(&p("/idx/a"), 1, 0xFF);
        assert_eq!(
            vfs.read(&p("/idx/a")).unwrap(),
            [b'a', b'b' ^ 0xFF, b'c', b'd']
        );
    }

    #[test]
    fn mutating_ops_counts_deterministically() {
        let ops = |seed| {
            let vfs = setup(FaultPlan {
                seed,
                ..FaultPlan::none()
            });
            vfs.write(&p("/idx/a"), b"x").unwrap();
            vfs.append(&p("/idx/a"), b"y").unwrap();
            vfs.sync_file(&p("/idx/a")).unwrap();
            vfs.sync_dir(&p("/idx")).unwrap();
            vfs.mutating_ops()
        };
        assert_eq!(ops(1), ops(2));
        assert_eq!(ops(1), 5); // mkdir + write + append + sync + syncdir
    }

    #[test]
    fn remove_without_dir_sync_resurrects_on_crash() {
        let vfs = setup(FaultPlan::none());
        vfs.write(&p("/idx/a"), b"keep").unwrap();
        vfs.sync_file(&p("/idx/a")).unwrap();
        vfs.sync_dir(&p("/idx")).unwrap();
        vfs.remove_file(&p("/idx/a")).unwrap();
        assert!(!vfs.exists(&p("/idx/a")));
        vfs.crash_and_recover();
        assert_eq!(vfs.read(&p("/idx/a")).unwrap(), b"keep");
    }
}
