//! Exact top-k Dice queries over the sharded store.
//!
//! Each shard keeps its records sorted by filter cardinality (popcount).
//! For a query with popcount `q`, the Dice score against a filter with
//! popcount `x` is bounded above by `ub(x) = 2·min(q, x)/(q + x)`, which
//! increases on `x ≤ q` and decreases on `x ≥ q`. The scan therefore
//! starts at the records whose popcount is closest to `q` and expands
//! outward with two pointers; once the running top-k is full, a direction
//! stops as soon as its bound drops *below* the current k-th score (a
//! bound equal to the k-th score must still be scanned because ties are
//! broken by record id). This early exit is lossless: results are
//! bit-identical to a brute-force scan using the same `dice_bits` calls.
//!
//! Work fans out across `std::thread::scope` workers that claim
//! `(shard, range)` tasks from a shared atomic counter; each worker keeps
//! its own local top-k and the partial results are merged at the end.
//! Large shards are split into sub-ranges (each still popcount-sorted, so
//! the outward scan stays lossless per range), which lets parallelism
//! scale past `min(threads, shards)` when one shard dominates.

use crate::format::storage_err;
use pprl_core::bitvec::BitVec;
use pprl_core::error::{PprlError, Result};
use pprl_similarity::bitvec_sim::dice_bits;
use std::sync::atomic::{AtomicUsize, Ordering};

/// One query result: a stored record id and its Dice similarity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Hit {
    /// Record id as supplied at insert time.
    pub id: u64,
    /// Dice similarity in `[0, 1]`.
    pub score: f64,
}

/// One shard's records, popcount-sorted, with popcounts precomputed.
#[derive(Debug)]
struct Shard {
    /// `(popcount, id, filter)` sorted ascending by `(popcount, id)`.
    records: Vec<(usize, u64, BitVec)>,
}

/// An immutable, in-memory snapshot of an index, ready for queries.
#[derive(Debug)]
pub struct IndexReader {
    shards: Vec<Shard>,
    filter_len: usize,
    len: usize,
}

impl IndexReader {
    /// Builds a reader from per-shard record lists. Every filter must
    /// have length `filter_len`.
    pub fn new(shard_records: Vec<Vec<(u64, BitVec)>>, filter_len: usize) -> Result<IndexReader> {
        let mut len = 0;
        let mut shards = Vec::with_capacity(shard_records.len());
        for records in shard_records {
            let mut rows = Vec::with_capacity(records.len());
            for (id, filter) in records {
                if filter.len() != filter_len {
                    return Err(storage_err(format!(
                        "record {id} has {} bits, reader expects {filter_len}",
                        filter.len()
                    )));
                }
                rows.push((filter.count_ones(), id, filter));
            }
            rows.sort_by_key(|&(pc, id, _)| (pc, id));
            len += rows.len();
            shards.push(Shard { records: rows });
        }
        Ok(IndexReader {
            shards,
            filter_len,
            len,
        })
    }

    /// Total records across all shards.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the reader holds no records.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Filter length in bits.
    pub fn filter_len(&self) -> usize {
        self.filter_len
    }

    /// Iterates every `(id, filter)` in the reader (shard-major order).
    pub fn iter(&self) -> impl Iterator<Item = (u64, &BitVec)> + '_ {
        self.shards
            .iter()
            .flat_map(|s| s.records.iter().map(|(_, id, f)| (*id, f)))
    }

    /// The exact `k` most Dice-similar records to `query`, fanned out
    /// over up to `threads` worker threads. Results are sorted by score
    /// descending, ties broken by ascending record id, and are
    /// bit-identical to a brute-force scan.
    pub fn top_k(&self, query: &BitVec, k: usize, threads: usize) -> Result<Vec<Hit>> {
        if query.len() != self.filter_len {
            return Err(PprlError::shape(
                format!("{} bits", self.filter_len),
                format!("{} bits", query.len()),
            ));
        }
        if k == 0 {
            return Ok(Vec::new());
        }
        let q = query.count_ones();
        let tasks = self.split_tasks(threads.max(1));
        let workers = threads.max(1).min(tasks.len().max(1));
        let mut merged = TopK::new(k);
        if workers <= 1 {
            for &(si, start, end) in &tasks {
                scan_range(&self.shards[si].records[start..end], query, q, &mut merged)?;
            }
        } else {
            let next = AtomicUsize::new(0);
            let partials: Vec<Result<TopK>> = std::thread::scope(|scope| {
                let handles: Vec<_> = (0..workers)
                    .map(|_| {
                        let next = &next;
                        let tasks = &tasks;
                        scope.spawn(move || {
                            let mut local = TopK::new(k);
                            loop {
                                let i = next.fetch_add(1, Ordering::Relaxed);
                                let Some(&(si, start, end)) = tasks.get(i) else {
                                    return Ok(local);
                                };
                                scan_range(
                                    &self.shards[si].records[start..end],
                                    query,
                                    q,
                                    &mut local,
                                )?;
                            }
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("query worker panicked"))
                    .collect()
            });
            for partial in partials {
                for hit in partial?.heap {
                    merged.push(hit.0);
                }
            }
        }
        Ok(merged.into_sorted())
    }

    /// Splits shards into `(shard, start, end)` scan tasks. Chunk length
    /// scales with the total record count (oversubscribed 4× so workers
    /// stay busy despite uneven early exits) but never drops below
    /// [`MIN_SPLIT`], so tiny shards are not shredded into per-record
    /// tasks. With one worker this degenerates to one task per shard.
    fn split_tasks(&self, workers: usize) -> Vec<(usize, usize, usize)> {
        let total: usize = self.shards.iter().map(|s| s.records.len()).sum();
        let chunk = if workers <= 1 {
            usize::MAX
        } else {
            MIN_SPLIT.max(total.div_ceil(workers * 4))
        };
        let mut tasks = Vec::new();
        for (si, shard) in self.shards.iter().enumerate() {
            let n = shard.records.len();
            if n == 0 {
                continue;
            }
            let mut start = 0;
            while start < n {
                let end = n.min(start.saturating_add(chunk));
                tasks.push((si, start, end));
                start = end;
            }
        }
        tasks
    }
}

/// Smallest sub-shard scan task; see [`IndexReader::split_tasks`].
const MIN_SPLIT: usize = 32;

/// Scans one popcount-sorted slice into `top`, expanding outward from the
/// query popcount with the lossless Dice upper-bound early exit. Any
/// contiguous range of a popcount-sorted shard is itself popcount-sorted,
/// so the bound argument holds per range.
fn scan_range(
    rows: &[(usize, u64, BitVec)],
    query: &BitVec,
    q: usize,
    top: &mut TopK,
) -> Result<()> {
    if rows.is_empty() {
        return Ok(());
    }
    // First row with popcount ≥ q: everything below scans downward,
    // everything from here scans upward.
    let split = rows.partition_point(|(pc, _, _)| *pc < q);
    let mut up = split;
    while up < rows.len() {
        let (pc, id, filter) = &rows[up];
        if let Some(theta) = top.threshold() {
            if dice_upper_bound(q, *pc) < theta {
                break; // ub only decreases as popcount grows past q
            }
        }
        top.push(Hit {
            id: *id,
            score: dice_bits(query, filter)?,
        });
        up += 1;
    }
    let mut down = split;
    while down > 0 {
        down -= 1;
        let (pc, id, filter) = &rows[down];
        if let Some(theta) = top.threshold() {
            if dice_upper_bound(q, *pc) < theta {
                break; // ub only decreases as popcount shrinks below q
            }
        }
        top.push(Hit {
            id: *id,
            score: dice_bits(query, filter)?,
        });
    }
    Ok(())
}

/// `2·min(q, x)/(q + x)`, the best Dice score any filter with popcount
/// `x` can reach against a query with popcount `q`. Two empty filters
/// have Dice 1.0 by convention, matching `dice_bits`.
fn dice_upper_bound(q: usize, x: usize) -> f64 {
    if q + x == 0 {
        return 1.0;
    }
    2.0 * q.min(x) as f64 / (q + x) as f64
}

/// Worst-at-top ordering so a max-`BinaryHeap` evicts the weakest hit:
/// lower score is "greater"; on ties the larger id is "greater" (ids
/// break ties ascending in the final ranking).
#[derive(Debug)]
struct WorstFirst(Hit);

impl PartialEq for WorstFirst {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == std::cmp::Ordering::Equal
    }
}
impl Eq for WorstFirst {}
impl PartialOrd for WorstFirst {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for WorstFirst {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other
            .0
            .score
            .total_cmp(&self.0.score)
            .then(self.0.id.cmp(&other.0.id))
    }
}

/// Bounded top-k accumulator.
struct TopK {
    k: usize,
    heap: std::collections::BinaryHeap<WorstFirst>,
}

impl TopK {
    fn new(k: usize) -> Self {
        TopK {
            k,
            heap: std::collections::BinaryHeap::with_capacity(k + 1),
        }
    }

    /// The score a candidate must reach to possibly place, once full.
    fn threshold(&self) -> Option<f64> {
        if self.heap.len() == self.k {
            self.heap.peek().map(|w| w.0.score)
        } else {
            None
        }
    }

    fn push(&mut self, hit: Hit) {
        if self.heap.len() < self.k {
            self.heap.push(WorstFirst(hit));
            return;
        }
        let worst = self.heap.peek().expect("heap full").0;
        let better = hit.score > worst.score || (hit.score == worst.score && hit.id < worst.id);
        if better {
            self.heap.pop();
            self.heap.push(WorstFirst(hit));
        }
    }

    /// Drains into the final ranking: score descending, id ascending.
    fn into_sorted(self) -> Vec<Hit> {
        let mut hits: Vec<Hit> = self.heap.into_iter().map(|w| w.0).collect();
        hits.sort_by(|a, b| b.score.total_cmp(&a.score).then(a.id.cmp(&b.id)));
        hits
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pprl_core::rng::SplitMix64;

    fn random_filters(n: usize, len: usize, seed: u64) -> Vec<(u64, BitVec)> {
        let mut rng = SplitMix64::new(seed);
        (0..n)
            .map(|i| {
                let ones: Vec<usize> = (0..len)
                    .filter(|_| rng.next_u64().is_multiple_of(4))
                    .collect();
                (i as u64, BitVec::from_positions(len, &ones).unwrap())
            })
            .collect()
    }

    /// Reference implementation: score everything, sort, truncate.
    fn brute_force(records: &[(u64, BitVec)], query: &BitVec, k: usize) -> Vec<Hit> {
        let mut hits: Vec<Hit> = records
            .iter()
            .map(|(id, f)| Hit {
                id: *id,
                score: dice_bits(query, f).unwrap(),
            })
            .collect();
        hits.sort_by(|a, b| b.score.total_cmp(&a.score).then(a.id.cmp(&b.id)));
        hits.truncate(k);
        hits
    }

    fn shard_split(records: &[(u64, BitVec)], shards: usize) -> Vec<Vec<(u64, BitVec)>> {
        let mut out = vec![Vec::new(); shards];
        for (i, r) in records.iter().enumerate() {
            out[i % shards].push(r.clone());
        }
        out
    }

    #[test]
    fn matches_brute_force_across_k_and_threads() {
        let records = random_filters(300, 128, 7);
        let reader = IndexReader::new(shard_split(&records, 4), 128).unwrap();
        let queries = random_filters(20, 128, 99);
        for (_, query) in &queries {
            for k in [1, 3, 10, 300, 500] {
                let expected = brute_force(&records, query, k);
                for threads in [1, 2, 4] {
                    let got = reader.top_k(query, k, threads).unwrap();
                    assert_eq!(got, expected, "k={k} threads={threads}");
                }
            }
        }
    }

    #[test]
    fn exact_match_ranks_first() {
        let records = random_filters(100, 96, 3);
        let reader = IndexReader::new(shard_split(&records, 2), 96).unwrap();
        let (id, query) = records[37].clone();
        let hits = reader.top_k(&query, 5, 2).unwrap();
        assert_eq!(hits[0].id, id);
        assert_eq!(hits[0].score, 1.0);
    }

    #[test]
    fn ties_break_by_ascending_id() {
        // Three identical filters: scores tie at 1.0, ids decide.
        let f = BitVec::from_positions(64, &[1, 5, 9]).unwrap();
        let records = vec![(30, f.clone()), (10, f.clone()), (20, f.clone())];
        let reader = IndexReader::new(vec![records], 64).unwrap();
        let hits = reader.top_k(&f, 2, 1).unwrap();
        assert_eq!(hits.iter().map(|h| h.id).collect::<Vec<_>>(), vec![10, 20]);
    }

    #[test]
    fn empty_query_and_empty_records() {
        let empty = BitVec::zeros(64);
        let records = vec![(0, empty.clone()), (1, BitVec::ones(64))];
        let reader = IndexReader::new(vec![records.clone()], 64).unwrap();
        // dice(empty, empty) = 1.0 by convention; dice(empty, ones) = 0.
        let hits = reader.top_k(&empty, 2, 1).unwrap();
        assert_eq!(hits, brute_force(&records, &empty, 2));
        assert_eq!(hits[0], Hit { id: 0, score: 1.0 });
    }

    #[test]
    fn k_zero_and_wrong_length() {
        let records = random_filters(10, 64, 1);
        let reader = IndexReader::new(vec![records], 64).unwrap();
        assert!(reader.top_k(&BitVec::zeros(64), 0, 1).unwrap().is_empty());
        let err = reader.top_k(&BitVec::zeros(32), 1, 1).unwrap_err();
        assert!(matches!(err, PprlError::ShapeMismatch { .. }), "{err}");
    }

    #[test]
    fn reader_rejects_mismatched_record_length() {
        let err = IndexReader::new(vec![vec![(0, BitVec::zeros(32))]], 64).unwrap_err();
        assert!(matches!(err, PprlError::Storage(_)), "{err}");
    }

    #[test]
    fn more_threads_than_shards_is_fine() {
        let records = random_filters(50, 64, 5);
        let reader = IndexReader::new(shard_split(&records, 2), 64).unwrap();
        let (_, q) = &records[0];
        assert_eq!(reader.top_k(q, 5, 16).unwrap(), brute_force(&records, q, 5));
    }

    #[test]
    fn single_shard_splits_into_sub_ranges() {
        // One big shard, many threads: split_tasks must produce more tasks
        // than shards so the scan actually parallelises.
        let records = random_filters(400, 128, 11);
        let reader = IndexReader::new(vec![records.clone()], 128).unwrap();
        let tasks = reader.split_tasks(8);
        assert!(
            tasks.len() > 1,
            "expected sub-shard splitting, got {tasks:?}"
        );
        assert!(tasks.iter().all(|&(si, s, e)| si == 0 && s < e && e <= 400));
        let covered: usize = tasks.iter().map(|&(_, s, e)| e - s).sum();
        assert_eq!(covered, 400, "tasks must tile the shard exactly");
    }

    #[test]
    fn sub_shard_split_matches_single_thread_scan() {
        // Regression: the per-range outward scan must stay lossless — the
        // multi-threaded, sub-shard-split result is bit-identical to the
        // one-task-per-shard single-thread scan and to brute force.
        let records = random_filters(500, 128, 23);
        let reader = IndexReader::new(shard_split(&records, 3), 128).unwrap();
        let queries = random_filters(10, 128, 77);
        for (_, query) in &queries {
            for k in [1, 7, 25] {
                let single = reader.top_k(query, k, 1).unwrap();
                assert_eq!(single, brute_force(&records, query, k));
                for threads in [2, 5, 8, 32] {
                    assert_eq!(
                        reader.top_k(query, k, threads).unwrap(),
                        single,
                        "k={k} threads={threads}"
                    );
                }
            }
        }
    }
}
