//! Exact top-k Dice queries over the sharded store, on a columnar scan
//! kernel.
//!
//! The reader is a list of *slots*, each one popcount-sorted
//! [`FilterArena`] (flat `Vec<u64>`, fixed stride, parallel id/popcount
//! arrays). A slot is either memory-resident from construction or backed
//! by a segment file that is materialised lazily, on first scan, under a
//! per-reader load lock — so segments pruned for every query of a
//! batch are never read at all.
//!
//! Three pruning layers keep the scan lossless (results are bit-identical
//! to brute force over the same `dice_bits` arithmetic):
//!
//! 1. **Slot popcount bound** — for query popcount `q` and a slot whose
//!    popcounts span `[pc_min, pc_max]`, no record can beat
//!    `ub = 2·min(q,x)/(q+x)` at `x = clamp(q, pc_min, pc_max)` (the
//!    bound is unimodal in `x`, peaked at `x = q`).
//! 2. **Band-key summary bound** — if the query's band keys miss the
//!    slot's Bloom summary in every table, the Hamming distance to every
//!    record is at least `tables`, capping Dice at
//!    [`no_match_dice_bound`] (see [`crate::summary`]).
//! 3. **Block popcount bound** — within an arena, every 4-row block is
//!    checked against the scanning query's current k-th score before its
//!    words are touched.
//!
//! A skip needs `bound < θ` *strictly* — candidates tying the k-th score
//! must still be scanned because ties break by ascending id. Work fans
//! out across `std::thread::scope` workers claiming `(slot, range)`
//! tasks from a shared atomic counter; each worker keeps one local top-k
//! per query (sound: a candidate below a worker's own k-th score cannot
//! be in the global top k either) and partial results merge at the end.
//!
//! The batched entry point [`IndexReader::top_k_batch`] walks each arena
//! block once for a whole batch of queries: a block of 4 rows is loaded
//! and every live query runs the dispatched
//! [`pprl_similarity::kernel::and_count4`] kernel against it (the
//! CPU-feature path is resolved once per process; see the kernel module
//! docs), which is what `pprl link --backend index`, the server's
//! `Link`, and index-backed dedup call.

use crate::arena::FilterArena;
use crate::format::storage_err;
use crate::segment::read_segment_arena_with;
use crate::store::ReadStats;
use crate::summary::{band_keys, no_match_dice_bound, BandKeySummary};
use crate::vfs::{std_vfs, Vfs};
use pprl_core::bitvec::BitVec;
use pprl_core::error::{PprlError, Result};
use pprl_similarity::kernel::{active_kernel, dice_from_counts};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

/// One query result: a stored record id and its Dice similarity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Hit {
    /// Record id as supplied at insert time.
    pub id: u64,
    /// Dice similarity in `[0, 1]`.
    pub score: f64,
}

/// Where a slot's rows come from.
#[derive(Debug)]
enum SlotSource {
    /// Arena resident since construction.
    Memory,
    /// Backed by a segment file, materialised on first scan.
    File {
        path: PathBuf,
        shard: u32,
        seg_id: u64,
        bytes: u64,
    },
}

/// One scannable unit: a (possibly not yet materialised) filter arena
/// plus everything needed to prune it without reading it.
#[derive(Debug)]
struct Slot {
    /// Row count (known up front, from the file size for lazy slots).
    rows: usize,
    /// Smallest filter popcount in the slot.
    pc_min: usize,
    /// Largest filter popcount in the slot.
    pc_max: usize,
    /// Band-key Bloom summary (file slots of summary-enabled indexes).
    summary: Option<BandKeySummary>,
    source: SlotSource,
    arena: OnceLock<FilterArena>,
}

/// Constructor input for [`IndexReader::from_specs`].
#[derive(Debug)]
pub(crate) enum SlotSpec {
    /// An in-memory arena (pending records, or an eager build).
    Memory(FilterArena),
    /// A segment file to materialise on demand.
    File {
        /// Segment file path.
        path: PathBuf,
        /// Shard the segment must declare.
        shard: u32,
        /// Segment id (for error messages).
        seg_id: u64,
        /// File size in bytes (for read accounting).
        bytes: u64,
        /// Record count derived from the file size.
        rows: usize,
        /// Manifest popcount lower bound.
        pc_min: usize,
        /// Manifest popcount upper bound.
        pc_max: usize,
        /// Manifest band-key summary, if the index stores them.
        summary: Option<BandKeySummary>,
    },
}

/// An immutable snapshot of an index, ready for queries. Memory-resident
/// slots are scanned directly; file-backed slots (from
/// [`crate::store::IndexStore::lazy_reader`]) are read only when some
/// query's pruning bounds fail to exclude them.
#[derive(Debug)]
pub struct IndexReader {
    slots: Vec<Slot>,
    filter_len: usize,
    num_shards: usize,
    len: usize,
    /// Disjoint band-key position tables (empty = summaries disabled).
    summary_positions: Vec<Vec<usize>>,
    /// Cumulative bytes read materialising file slots.
    bytes_read: AtomicU64,
    /// File slots materialised so far.
    segments_loaded: AtomicUsize,
    /// Serialises lazy materialisation so each file is read exactly once.
    load_lock: Mutex<()>,
    /// IO layer file-backed slots are materialised through.
    vfs: std::sync::Arc<dyn Vfs>,
    /// Segments the store quarantined at open; > 0 means this reader
    /// serves a degraded view of the index.
    quarantined_segments: usize,
}

impl IndexReader {
    /// Builds an eager, memory-resident reader from per-shard record
    /// lists. Every filter must have length `filter_len`.
    pub fn new(shard_records: Vec<Vec<(u64, BitVec)>>, filter_len: usize) -> Result<IndexReader> {
        let num_shards = shard_records.len();
        let specs = shard_records
            .into_iter()
            .map(|records| {
                Ok(SlotSpec::Memory(FilterArena::from_records(
                    records, filter_len,
                )?))
            })
            .collect::<Result<Vec<_>>>()?;
        Self::from_specs(specs, filter_len, num_shards, Vec::new(), std_vfs())
    }

    /// Builds a reader from slot specs (crate-internal; the public
    /// constructors are [`IndexReader::new`] and the store's reader
    /// methods).
    pub(crate) fn from_specs(
        specs: Vec<SlotSpec>,
        filter_len: usize,
        num_shards: usize,
        summary_positions: Vec<Vec<usize>>,
        vfs: std::sync::Arc<dyn Vfs>,
    ) -> Result<IndexReader> {
        let mut slots = Vec::with_capacity(specs.len());
        let mut len = 0usize;
        for spec in specs {
            let slot = match spec {
                SlotSpec::Memory(arena) => {
                    let slot = Slot {
                        rows: arena.len(),
                        pc_min: arena.pc_min().unwrap_or(0) as usize,
                        pc_max: arena.pc_max().unwrap_or(0) as usize,
                        summary: None,
                        source: SlotSource::Memory,
                        arena: OnceLock::new(),
                    };
                    slot.arena.set(arena).expect("fresh OnceLock");
                    slot
                }
                SlotSpec::File {
                    path,
                    shard,
                    seg_id,
                    bytes,
                    rows,
                    pc_min,
                    pc_max,
                    summary,
                } => Slot {
                    rows,
                    pc_min,
                    pc_max,
                    summary,
                    source: SlotSource::File {
                        path,
                        shard,
                        seg_id,
                        bytes,
                    },
                    arena: OnceLock::new(),
                },
            };
            len += slot.rows;
            slots.push(slot);
        }
        Ok(IndexReader {
            slots,
            filter_len,
            num_shards,
            len,
            summary_positions,
            bytes_read: AtomicU64::new(0),
            segments_loaded: AtomicUsize::new(0),
            load_lock: Mutex::new(()),
            vfs,
            quarantined_segments: 0,
        })
    }

    /// Records how many segments the store quarantined at open, so the
    /// degraded flag propagates through every stats surface.
    pub(crate) fn set_quarantined(&mut self, n: usize) {
        self.quarantined_segments = n;
    }

    /// Segments quarantined by the store this reader was built from.
    pub fn quarantined_segments(&self) -> usize {
        self.quarantined_segments
    }

    /// True when quarantined segments mean reads cover only the
    /// surviving part of the index.
    pub fn is_degraded(&self) -> bool {
        self.quarantined_segments > 0
    }

    /// Total records across all slots.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the reader holds no records.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of shards the underlying index routes across.
    pub fn num_shards(&self) -> usize {
        self.num_shards
    }

    /// Filter length in bits.
    pub fn filter_len(&self) -> usize {
        self.filter_len
    }

    /// What this reader has read (and avoided reading) so far: lazy
    /// file-backed slots count as skipped until some scan materialises
    /// them. Counters are cumulative over the reader's lifetime.
    pub fn read_stats(&self) -> ReadStats {
        let segments_skipped = self
            .slots
            .iter()
            .filter(|s| matches!(s.source, SlotSource::File { .. }) && s.arena.get().is_none())
            .count();
        ReadStats {
            bytes_read: self.bytes_read.load(Ordering::Relaxed),
            segments_read: self.segments_loaded.load(Ordering::Relaxed),
            segments_skipped,
            kernel: pprl_similarity::kernel::kernel_name(),
        }
    }

    /// Materialises every file-backed slot (corruption surfaces here).
    pub fn materialise_all(&self) -> Result<()> {
        for slot in &self.slots {
            self.arena(slot)?;
        }
        Ok(())
    }

    /// The slot's arena, loading it from its segment file on first use.
    fn arena<'a>(&self, slot: &'a Slot) -> Result<&'a FilterArena> {
        if let Some(arena) = slot.arena.get() {
            return Ok(arena);
        }
        let _guard = self.load_lock.lock().expect("load lock");
        if let Some(arena) = slot.arena.get() {
            return Ok(arena);
        }
        let SlotSource::File {
            path,
            shard,
            seg_id,
            bytes,
        } = &slot.source
        else {
            return Err(storage_err("memory slot lost its arena".to_string()));
        };
        // Decode straight into the columnar arena — no per-record BitVec.
        let (seg_shard, arena) = read_segment_arena_with(&*self.vfs, path)?;
        if seg_shard != *shard {
            return Err(storage_err(format!(
                "segment {seg_id} claims shard {}, manifest says {shard}",
                seg_shard
            )));
        }
        if arena.filter_len() != self.filter_len {
            return Err(storage_err(format!(
                "segment {seg_id} has {}-bit filters, index expects {}",
                arena.filter_len(),
                self.filter_len
            )));
        }
        if arena.len() != slot.rows {
            return Err(storage_err(format!(
                "segment {seg_id} decoded {} records, manifest size implies {}",
                arena.len(),
                slot.rows
            )));
        }
        self.bytes_read.fetch_add(*bytes, Ordering::Relaxed);
        self.segments_loaded.fetch_add(1, Ordering::Relaxed);
        let _ = slot.arena.set(arena);
        Ok(slot.arena.get().expect("arena just set"))
    }

    /// The exact `k` most Dice-similar records to `query`, fanned out
    /// over up to `threads` worker threads. Results are sorted by score
    /// descending, ties broken by ascending record id, and are
    /// bit-identical to a brute-force scan.
    pub fn top_k(&self, query: &BitVec, k: usize, threads: usize) -> Result<Vec<Hit>> {
        let mut results = self.top_k_batch(&[query], k, threads, None)?;
        Ok(results.pop().expect("one result per query"))
    }

    /// The slot visiting order that serves a query of popcount `q`
    /// best: indices of non-empty slots sorted by their popcount-only
    /// Dice ceiling `2·min(q, clamp(q, pc_min, pc_max)) / (q + ·)`
    /// descending, ties by index ascending. Scanning the
    /// highest-ceiling slots first makes the running k-th score rise as
    /// early as possible, so later low-ceiling slots are pruned without
    /// ever being materialised. The order depends only on this reader's
    /// slot geometry and `q` — never on filter *content* — which is
    /// what makes it cacheable per `(generation, popcount)`.
    pub fn popcount_scan_order(&self, q: usize) -> Vec<u32> {
        let mut order: Vec<u32> = (0..self.slots.len() as u32)
            .filter(|&si| self.slots[si as usize].rows > 0)
            .collect();
        order.sort_by(|&a, &b| {
            let sa = &self.slots[a as usize];
            let sb = &self.slots[b as usize];
            let ba = dice_upper_bound(q, q.clamp(sa.pc_min, sa.pc_max));
            let bb = dice_upper_bound(q, q.clamp(sb.pc_min, sb.pc_max));
            bb.total_cmp(&ba).then(a.cmp(&b))
        });
        order
    }

    /// [`IndexReader::top_k`] visiting slots in the given order (as
    /// produced by [`IndexReader::popcount_scan_order`], possibly served
    /// from a cache). The order is a *hint*: invalid or duplicate
    /// indices are ignored and unmentioned slots are appended, so the
    /// scan always covers the whole index and results stay bit-identical
    /// to the default order — only the amount of pruning changes.
    pub fn top_k_planned(
        &self,
        query: &BitVec,
        k: usize,
        threads: usize,
        order: &[u32],
    ) -> Result<Vec<Hit>> {
        let mut results = self.top_k_batch_inner(&[query], k, threads, None, Some(order))?;
        Ok(results.pop().expect("one result per query"))
    }

    /// Exact top-k for a whole batch of queries in one pass: every arena
    /// block is loaded once and compared against all still-live queries
    /// via the 4-row [`and_count4`] kernel. With `min_score`, hits below
    /// it are dropped from the results — equivalently (and bit-for-bit
    /// identically), the top k among hits scoring at least `min_score` —
    /// which lets slots whose upper bound cannot reach `min_score` be
    /// skipped without ever materialising them.
    pub fn top_k_batch(
        &self,
        queries: &[&BitVec],
        k: usize,
        threads: usize,
        min_score: Option<f64>,
    ) -> Result<Vec<Vec<Hit>>> {
        self.top_k_batch_inner(queries, k, threads, min_score, None)
    }

    fn top_k_batch_inner(
        &self,
        queries: &[&BitVec],
        k: usize,
        threads: usize,
        min_score: Option<f64>,
        order: Option<&[u32]>,
    ) -> Result<Vec<Vec<Hit>>> {
        for query in queries {
            if query.len() != self.filter_len {
                return Err(PprlError::shape(
                    format!("{} bits", self.filter_len),
                    format!("{} bits", query.len()),
                ));
            }
        }
        if let Some(ms) = min_score {
            if !(0.0..=1.0).contains(&ms) {
                return Err(PprlError::invalid("min_score", "must be in [0, 1]"));
            }
        }
        if queries.is_empty() {
            return Ok(Vec::new());
        }
        if k == 0 {
            return Ok(vec![Vec::new(); queries.len()]);
        }
        let ctxs: Vec<QueryCtx> = queries
            .iter()
            .map(|q| QueryCtx {
                words: q.as_words(),
                q: q.count_ones(),
                keys: band_keys(q, &self.summary_positions),
            })
            .collect();
        let tasks = self.split_tasks(threads.max(1), order);
        let workers = threads.max(1).min(tasks.len().max(1));
        let mut merged: Vec<TopK> = (0..queries.len()).map(|_| TopK::new(k)).collect();
        if workers <= 1 {
            for &(si, start, end) in &tasks {
                self.scan_task(si, start, end, &ctxs, min_score, &mut merged)?;
            }
        } else {
            let next = AtomicUsize::new(0);
            let partials: Vec<Result<Vec<TopK>>> = std::thread::scope(|scope| {
                let handles: Vec<_> = (0..workers)
                    .map(|_| {
                        let next = &next;
                        let tasks = &tasks;
                        let ctxs = &ctxs;
                        scope.spawn(move || {
                            let mut locals: Vec<TopK> =
                                (0..ctxs.len()).map(|_| TopK::new(k)).collect();
                            loop {
                                let i = next.fetch_add(1, Ordering::Relaxed);
                                let Some(&(si, start, end)) = tasks.get(i) else {
                                    return Ok(locals);
                                };
                                self.scan_task(si, start, end, ctxs, min_score, &mut locals)?;
                            }
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("query worker panicked"))
                    .collect()
            });
            for partial in partials {
                for (qi, local) in partial?.into_iter().enumerate() {
                    for hit in local.heap {
                        merged[qi].push(hit.0);
                    }
                }
            }
        }
        Ok(merged
            .into_iter()
            .map(|top| {
                let mut hits = top.into_sorted();
                if let Some(ms) = min_score {
                    hits.retain(|h| h.score >= ms);
                }
                hits
            })
            .collect())
    }

    /// Best Dice score any record in `slot` could reach against `ctx`:
    /// the popcount bound at `clamp(q, pc_min, pc_max)`, tightened by the
    /// band-key summary bound when the query misses every summary table.
    fn slot_upper_bound(&self, slot: &Slot, ctx: &QueryCtx) -> f64 {
        let mut ub = dice_upper_bound(ctx.q, ctx.q.clamp(slot.pc_min, slot.pc_max));
        if !ctx.keys.is_empty() {
            if let Some(summary) = &slot.summary {
                if !summary.contains_any(&ctx.keys) {
                    ub = ub.min(no_match_dice_bound(
                        ctx.q,
                        slot.pc_max,
                        self.summary_positions.len(),
                    ));
                }
            }
        }
        ub
    }

    /// Scans rows `[start, end)` of slot `si` for every query whose
    /// bounds cannot exclude the slot, pushing into the caller's
    /// per-query accumulators. Pruned-for-all tasks return without
    /// materialising the slot.
    fn scan_task(
        &self,
        si: usize,
        start: usize,
        end: usize,
        ctxs: &[QueryCtx],
        min_score: Option<f64>,
        locals: &mut [TopK],
    ) -> Result<()> {
        let slot = &self.slots[si];
        // Slot-level pruning, before the segment file is touched: the
        // static min_score bound plus each query's current k-th score.
        let mut active: Vec<usize> = Vec::with_capacity(ctxs.len());
        for (qi, ctx) in ctxs.iter().enumerate() {
            let ub = self.slot_upper_bound(slot, ctx);
            if min_score.is_some_and(|ms| ub < ms) {
                continue;
            }
            if locals[qi].threshold().is_some_and(|theta| ub < theta) {
                continue;
            }
            active.push(qi);
        }
        if active.is_empty() {
            return Ok(());
        }
        let arena = self.arena(slot)?;
        let stride = arena.stride();
        let words = arena.words();
        // One dispatch-table fetch per task; the per-block calls below go
        // through plain fn pointers.
        let kernel = active_kernel();
        // `done[ai]`: this query's bound can only worsen for the rest of
        // the (popcount-ascending) range, so it stops scanning early.
        let mut done = vec![false; active.len()];
        let mut i = start;
        while i < end {
            let block_end = end.min(i + 4);
            let lo = arena.popcount(i) as usize;
            let hi = arena.popcount(block_end - 1) as usize;
            if block_end - i == 4 {
                let rows = &words[i * stride..(i + 4) * stride];
                for (ai, &qi) in active.iter().enumerate() {
                    if done[ai] {
                        continue;
                    }
                    let ctx = &ctxs[qi];
                    let theta = effective_theta(&locals[qi], min_score);
                    if let Some(theta) = theta {
                        if dice_upper_bound(ctx.q, ctx.q.clamp(lo, hi)) < theta {
                            if lo >= ctx.q {
                                done[ai] = true;
                            }
                            continue;
                        }
                    }
                    let counts = kernel.and_count4(ctx.words, rows);
                    for (j, &c) in counts.iter().enumerate() {
                        let row = i + j;
                        locals[qi].push(Hit {
                            id: arena.id(row),
                            score: dice_from_counts(c, ctx.q, arena.popcount(row) as usize),
                        });
                    }
                }
            } else {
                // Tail block (< 4 rows): scalar kernel per row.
                for (ai, &qi) in active.iter().enumerate() {
                    if done[ai] {
                        continue;
                    }
                    let ctx = &ctxs[qi];
                    for row in i..block_end {
                        let x = arena.popcount(row) as usize;
                        if let Some(theta) = effective_theta(&locals[qi], min_score) {
                            if dice_upper_bound(ctx.q, x) < theta {
                                continue;
                            }
                        }
                        locals[qi].push(Hit {
                            id: arena.id(row),
                            score: dice_from_counts(
                                kernel.and_count(ctx.words, arena.row(row)),
                                ctx.q,
                                x,
                            ),
                        });
                    }
                }
            }
            i = block_end;
        }
        Ok(())
    }

    /// Splits slots into `(slot, start, end)` scan tasks. Chunk length
    /// scales with the total record count (oversubscribed 4× so workers
    /// stay busy despite uneven pruning) but never drops below
    /// [`MIN_SPLIT`], so tiny slots are not shredded into per-record
    /// tasks. With one worker this degenerates to one task per slot.
    ///
    /// `order` is the optional slot-visiting hint from
    /// [`IndexReader::popcount_scan_order`]: tasks are emitted (and thus
    /// claimed by workers) in that order, with out-of-range or repeated
    /// indices dropped and unmentioned slots appended so coverage is
    /// identical either way.
    fn split_tasks(&self, workers: usize, order: Option<&[u32]>) -> Vec<(usize, usize, usize)> {
        let visit: Vec<usize> = match order {
            None => (0..self.slots.len()).collect(),
            Some(hint) => {
                let mut seen = vec![false; self.slots.len()];
                let mut visit = Vec::with_capacity(self.slots.len());
                for &si in hint {
                    let si = si as usize;
                    if si < self.slots.len() && !seen[si] {
                        seen[si] = true;
                        visit.push(si);
                    }
                }
                visit.extend((0..self.slots.len()).filter(|&si| !seen[si]));
                visit
            }
        };
        let total: usize = self.slots.iter().map(|s| s.rows).sum();
        let chunk = if workers <= 1 {
            usize::MAX
        } else {
            MIN_SPLIT.max(total.div_ceil(workers * 4))
        };
        let mut tasks = Vec::new();
        for si in visit {
            let n = self.slots[si].rows;
            if n == 0 {
                continue;
            }
            let mut start = 0;
            while start < n {
                let end = n.min(start.saturating_add(chunk));
                tasks.push((si, start, end));
                start = end;
            }
        }
        tasks
    }
}

/// Per-query scan state: the query's words, popcount and band keys.
struct QueryCtx<'a> {
    words: &'a [u64],
    q: usize,
    keys: Vec<u64>,
}

/// The score a candidate must beat (or tie) to matter for this query:
/// the local k-th score once the accumulator is full, floored by
/// `min_score` (sub-threshold hits are dropped from the final result, so
/// skipping them early is lossless).
fn effective_theta(top: &TopK, min_score: Option<f64>) -> Option<f64> {
    match (top.threshold(), min_score) {
        (Some(t), Some(ms)) => Some(t.max(ms)),
        (Some(t), None) => Some(t),
        (None, ms) => ms,
    }
}

/// Smallest sub-slot scan task; see [`IndexReader::split_tasks`].
const MIN_SPLIT: usize = 32;

/// `2·min(q, x)/(q + x)`, the best Dice score any filter with popcount
/// `x` can reach against a query with popcount `q`. Two empty filters
/// have Dice 1.0 by convention, matching `dice_bits`.
fn dice_upper_bound(q: usize, x: usize) -> f64 {
    if q + x == 0 {
        return 1.0;
    }
    2.0 * q.min(x) as f64 / (q + x) as f64
}

/// Worst-at-top ordering so a max-`BinaryHeap` evicts the weakest hit:
/// lower score is "greater"; on ties the larger id is "greater" (ids
/// break ties ascending in the final ranking).
#[derive(Debug)]
struct WorstFirst(Hit);

impl PartialEq for WorstFirst {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == std::cmp::Ordering::Equal
    }
}
impl Eq for WorstFirst {}
impl PartialOrd for WorstFirst {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for WorstFirst {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other
            .0
            .score
            .total_cmp(&self.0.score)
            .then(self.0.id.cmp(&other.0.id))
    }
}

/// Bounded top-k accumulator.
struct TopK {
    k: usize,
    heap: std::collections::BinaryHeap<WorstFirst>,
}

impl TopK {
    fn new(k: usize) -> Self {
        TopK {
            k,
            heap: std::collections::BinaryHeap::with_capacity(k + 1),
        }
    }

    /// The score a candidate must reach to possibly place, once full.
    fn threshold(&self) -> Option<f64> {
        if self.heap.len() == self.k {
            self.heap.peek().map(|w| w.0.score)
        } else {
            None
        }
    }

    fn push(&mut self, hit: Hit) {
        if self.heap.len() < self.k {
            self.heap.push(WorstFirst(hit));
            return;
        }
        let worst = self.heap.peek().expect("heap full").0;
        let better = hit.score > worst.score || (hit.score == worst.score && hit.id < worst.id);
        if better {
            self.heap.pop();
            self.heap.push(WorstFirst(hit));
        }
    }

    /// Drains into the final ranking: score descending, id ascending.
    fn into_sorted(self) -> Vec<Hit> {
        let mut hits: Vec<Hit> = self.heap.into_iter().map(|w| w.0).collect();
        hits.sort_by(|a, b| b.score.total_cmp(&a.score).then(a.id.cmp(&b.id)));
        hits
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pprl_core::rng::SplitMix64;
    use pprl_similarity::bitvec_sim::dice_bits;

    fn random_filters(n: usize, len: usize, seed: u64) -> Vec<(u64, BitVec)> {
        let mut rng = SplitMix64::new(seed);
        (0..n)
            .map(|i| {
                let ones: Vec<usize> = (0..len)
                    .filter(|_| rng.next_u64().is_multiple_of(4))
                    .collect();
                (i as u64, BitVec::from_positions(len, &ones).unwrap())
            })
            .collect()
    }

    /// Reference implementation: score everything, sort, truncate.
    fn brute_force(records: &[(u64, BitVec)], query: &BitVec, k: usize) -> Vec<Hit> {
        let mut hits: Vec<Hit> = records
            .iter()
            .map(|(id, f)| Hit {
                id: *id,
                score: dice_bits(query, f).unwrap(),
            })
            .collect();
        hits.sort_by(|a, b| b.score.total_cmp(&a.score).then(a.id.cmp(&b.id)));
        hits.truncate(k);
        hits
    }

    fn shard_split(records: &[(u64, BitVec)], shards: usize) -> Vec<Vec<(u64, BitVec)>> {
        let mut out = vec![Vec::new(); shards];
        for (i, r) in records.iter().enumerate() {
            out[i % shards].push(r.clone());
        }
        out
    }

    #[test]
    fn matches_brute_force_across_k_and_threads() {
        let records = random_filters(300, 128, 7);
        let reader = IndexReader::new(shard_split(&records, 4), 128).unwrap();
        let queries = random_filters(20, 128, 99);
        for (_, query) in &queries {
            for k in [1, 3, 10, 300, 500] {
                let expected = brute_force(&records, query, k);
                for threads in [1, 2, 4] {
                    let got = reader.top_k(query, k, threads).unwrap();
                    assert_eq!(got, expected, "k={k} threads={threads}");
                }
            }
        }
    }

    #[test]
    fn planned_scan_is_bit_identical_to_default_order() {
        let records = random_filters(260, 128, 23);
        let reader = IndexReader::new(shard_split(&records, 5), 128).unwrap();
        let queries = random_filters(12, 128, 71);
        for (_, query) in &queries {
            let plan = reader.popcount_scan_order(query.count_ones());
            for k in [1, 4, 50] {
                for threads in [1, 3] {
                    let default = reader.top_k(query, k, threads).unwrap();
                    let planned = reader.top_k_planned(query, k, threads, &plan).unwrap();
                    assert_eq!(planned, default, "k={k} threads={threads}");
                }
            }
            // A garbage hint (wrong indices, duplicates, empty) must not
            // change results either — it is only a visiting order.
            let garbage: Vec<u32> = vec![99, 99, 3, 3, 1_000_000];
            assert_eq!(
                reader.top_k_planned(query, 10, 2, &garbage).unwrap(),
                reader.top_k(query, 10, 1).unwrap()
            );
            assert_eq!(
                reader.top_k_planned(query, 10, 1, &[]).unwrap(),
                reader.top_k(query, 10, 1).unwrap()
            );
        }
    }

    #[test]
    fn scan_order_sorts_slots_by_popcount_ceiling() {
        // Three shards with forced popcount bands: sparse, medium, dense.
        let len = 128;
        let mk = |ones: std::ops::Range<usize>, base: u64| -> Vec<(u64, BitVec)> {
            ones.clone()
                .map(|n| {
                    let pos: Vec<usize> = (0..n.max(1)).collect();
                    (base + n as u64, BitVec::from_positions(len, &pos).unwrap())
                })
                .collect()
        };
        let shards = vec![mk(2..6, 0), mk(40..48, 100), mk(100..110, 200)];
        let reader = IndexReader::new(shards, len).unwrap();
        // A dense query should visit the dense slot first, sparse last.
        let dense_query = BitVec::from_positions(len, &(0..104).collect::<Vec<_>>()).unwrap();
        assert_eq!(
            reader.popcount_scan_order(dense_query.count_ones()),
            [2, 1, 0]
        );
        // A sparse query reverses the preference.
        let sparse_query = BitVec::from_positions(len, &[0, 1, 2, 3]).unwrap();
        assert_eq!(
            reader.popcount_scan_order(sparse_query.count_ones()),
            [0, 1, 2]
        );
    }

    #[test]
    fn batch_matches_per_query_top_k() {
        let records = random_filters(250, 128, 13);
        let reader = IndexReader::new(shard_split(&records, 3), 128).unwrap();
        let queries = random_filters(17, 128, 31);
        let probes: Vec<&BitVec> = queries.iter().map(|(_, q)| q).collect();
        for k in [1, 5, 40] {
            for threads in [1, 3, 8] {
                let batched = reader.top_k_batch(&probes, k, threads, None).unwrap();
                assert_eq!(batched.len(), probes.len());
                for (qi, probe) in probes.iter().enumerate() {
                    assert_eq!(
                        batched[qi],
                        reader.top_k(probe, k, 1).unwrap(),
                        "k={k} threads={threads} query={qi}"
                    );
                }
            }
        }
    }

    #[test]
    fn min_score_equals_top_k_then_filter() {
        // Hits at or above min_score always outrank hits below it, so
        // "top-k then filter" and "filter then top-k" coincide — the
        // batched path with min_score must be bit-identical to the
        // unbounded scan with a retain() after it.
        let records = random_filters(200, 128, 41);
        let reader = IndexReader::new(shard_split(&records, 2), 128).unwrap();
        let queries = random_filters(10, 128, 5);
        let probes: Vec<&BitVec> = queries.iter().map(|(_, q)| q).collect();
        for ms in [0.0, 0.4, 0.7, 1.0] {
            for k in [1, 6, 300] {
                let bounded = reader.top_k_batch(&probes, k, 2, Some(ms)).unwrap();
                for (qi, probe) in probes.iter().enumerate() {
                    let mut expected = reader.top_k(probe, k, 1).unwrap();
                    expected.retain(|h| h.score >= ms);
                    assert_eq!(bounded[qi], expected, "ms={ms} k={k} query={qi}");
                }
            }
        }
        let err = reader.top_k_batch(&probes, 3, 1, Some(1.5)).unwrap_err();
        assert!(matches!(err, PprlError::InvalidParameter { .. }), "{err}");
    }

    #[test]
    fn exact_match_ranks_first() {
        let records = random_filters(100, 96, 3);
        let reader = IndexReader::new(shard_split(&records, 2), 96).unwrap();
        let (id, query) = records[37].clone();
        let hits = reader.top_k(&query, 5, 2).unwrap();
        assert_eq!(hits[0].id, id);
        assert_eq!(hits[0].score, 1.0);
    }

    #[test]
    fn ties_break_by_ascending_id() {
        // Three identical filters: scores tie at 1.0, ids decide.
        let f = BitVec::from_positions(64, &[1, 5, 9]).unwrap();
        let records = vec![(30, f.clone()), (10, f.clone()), (20, f.clone())];
        let reader = IndexReader::new(vec![records], 64).unwrap();
        let hits = reader.top_k(&f, 2, 1).unwrap();
        assert_eq!(hits.iter().map(|h| h.id).collect::<Vec<_>>(), vec![10, 20]);
    }

    #[test]
    fn empty_query_and_empty_records() {
        let empty = BitVec::zeros(64);
        let records = vec![(0, empty.clone()), (1, BitVec::ones(64))];
        let reader = IndexReader::new(vec![records.clone()], 64).unwrap();
        // dice(empty, empty) = 1.0 by convention; dice(empty, ones) = 0.
        let hits = reader.top_k(&empty, 2, 1).unwrap();
        assert_eq!(hits, brute_force(&records, &empty, 2));
        assert_eq!(hits[0], Hit { id: 0, score: 1.0 });
    }

    #[test]
    fn k_zero_empty_batch_and_wrong_length() {
        let records = random_filters(10, 64, 1);
        let reader = IndexReader::new(vec![records], 64).unwrap();
        assert!(reader.top_k(&BitVec::zeros(64), 0, 1).unwrap().is_empty());
        assert!(reader.top_k_batch(&[], 3, 1, None).unwrap().is_empty());
        let err = reader.top_k(&BitVec::zeros(32), 1, 1).unwrap_err();
        assert!(matches!(err, PprlError::ShapeMismatch { .. }), "{err}");
    }

    #[test]
    fn reader_rejects_mismatched_record_length() {
        let err = IndexReader::new(vec![vec![(0, BitVec::zeros(32))]], 64).unwrap_err();
        assert!(matches!(err, PprlError::Storage(_)), "{err}");
    }

    #[test]
    fn more_threads_than_shards_is_fine() {
        let records = random_filters(50, 64, 5);
        let reader = IndexReader::new(shard_split(&records, 2), 64).unwrap();
        let (_, q) = &records[0];
        assert_eq!(reader.top_k(q, 5, 16).unwrap(), brute_force(&records, q, 5));
    }

    #[test]
    fn single_shard_splits_into_sub_ranges() {
        // One big slot, many threads: split_tasks must produce more tasks
        // than slots so the scan actually parallelises.
        let records = random_filters(400, 128, 11);
        let reader = IndexReader::new(vec![records.clone()], 128).unwrap();
        let tasks = reader.split_tasks(8, None);
        assert!(
            tasks.len() > 1,
            "expected sub-slot splitting, got {tasks:?}"
        );
        assert!(tasks.iter().all(|&(si, s, e)| si == 0 && s < e && e <= 400));
        let covered: usize = tasks.iter().map(|&(_, s, e)| e - s).sum();
        assert_eq!(covered, 400, "tasks must tile the slot exactly");
    }

    #[test]
    fn sub_shard_split_matches_single_thread_scan() {
        // Regression: per-range pruning must stay lossless — the
        // multi-threaded, sub-slot-split result is bit-identical to the
        // one-task-per-slot single-thread scan and to brute force.
        let records = random_filters(500, 128, 23);
        let reader = IndexReader::new(shard_split(&records, 3), 128).unwrap();
        let queries = random_filters(10, 128, 77);
        for (_, query) in &queries {
            for k in [1, 7, 25] {
                let single = reader.top_k(query, k, 1).unwrap();
                assert_eq!(single, brute_force(&records, query, k));
                for threads in [2, 5, 8, 32] {
                    assert_eq!(
                        reader.top_k(query, k, threads).unwrap(),
                        single,
                        "k={k} threads={threads}"
                    );
                }
            }
        }
    }

    #[test]
    fn memory_reader_read_stats_are_zero() {
        let records = random_filters(20, 64, 3);
        let reader = IndexReader::new(vec![records], 64).unwrap();
        let stats = reader.read_stats();
        assert_eq!(stats.bytes_read, 0);
        assert_eq!(stats.segments_read, 0);
        assert_eq!(stats.segments_skipped, 0);
    }
}
