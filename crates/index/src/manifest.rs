//! The index manifest: the authoritative, checksummed catalogue of an
//! on-disk index.
//!
//! The manifest records the index configuration (filter geometry, shard
//! count, LSH routing parameters, band-key summary geometry), the next
//! segment id to allocate, and which segment files belong to which
//! shard. It is rewritten atomically (write to `MANIFEST.tmp`, then
//! rename, with fsync barriers on the tmp file and the directory) so a
//! crash mid-update leaves either the old or the new manifest, never a
//! torn one. Version-4 layout:
//!
//! ```text
//! magic       u32   "PMF1"
//! version     u16   4
//! flen        u32   filter length in bits
//! shards      u32   number of shards
//! lsh_seed    u64   Hamming-LSH routing seed
//! lsh_bits    u32   bits per LSH band key
//! sum_tables  u16   band-key summary tables (0 = summaries disabled)
//! sum_bits    u16   sampled positions per summary table
//! flush_epoch u64   WAL flush epoch (see below)
//! next_seg    u64   next segment id to allocate
//! segs        u32   number of segment entries
//! quar        u32   number of quarantined-segment records
//! entry_len   u32   total bytes of the entry region (entries vary in size)
//! entry × segs:
//!   shard     u32
//!   seg_id    u64
//!   pc_min    u32   smallest filter popcount in the segment
//!   pc_max    u32   largest filter popcount in the segment
//!   sum_words u32   Bloom words following (0 = no summary stored)
//!   words     sum_words × u64
//! quarantined × quar:
//!   shard     u32
//!   seg_id    u64
//! fnv1a       u64   checksum of everything above
//! ```
//!
//! `flush_epoch` counts WAL→segment flushes and is stamped into the WAL
//! header each time the log is reset: a crash *between* the manifest
//! swap and the WAL reset leaves a stale WAL whose epoch lags the
//! manifest, so replay can discard those already-flushed entries instead
//! of doubling them. The quarantine records are the index's health
//! ledger: segments whose file failed verification at open were moved to
//! `quarantine/` and remain listed here until an operator intervenes,
//! letting every stats surface report degraded reads honestly.
//!
//! The per-segment popcount bounds enable length pruning (a threshold
//! query whose Dice length bounds cannot intersect `[pc_min, pc_max]`
//! skips the segment) and the per-segment band-key Bloom summary enables
//! *content* pruning (see [`crate::summary`]) — both before the segment
//! file is ever read. Version-1 manifests (no bounds) and version-2
//! manifests (no summaries) still decode; missing bounds become the
//! never-prune sentinel `[0, u32::MAX]` and missing summaries decode to
//! `None` with the summary geometry disabled.

use crate::format::{append_checksum, checked_body, io_err, storage_err, Reader};
use crate::summary::{BandKeySummary, SummaryConfig};
use crate::vfs::{StdVfs, Vfs};
use pprl_core::error::{PprlError, Result};
use std::path::{Path, PathBuf};

/// Manifest file magic ("PMF1").
const MANIFEST_MAGIC: u32 = 0x3146_4d50;
/// Current manifest format version (4 = flush epoch + quarantine
/// ledger).
const MANIFEST_VERSION: u16 = 4;
/// Oldest manifest version still decodable.
const MANIFEST_VERSION_MIN: u16 = 1;
/// Fixed bytes before the segment entries (versions 1 and 2).
const HEADER_LEN_V2: usize = 38;
/// Fixed bytes before the segment entries (version 4).
const HEADER_LEN_V4: usize = 58;
/// Bytes per segment entry in version 1 (shard + seg_id).
const ENTRY_LEN_V1: usize = 12;
/// Bytes per segment entry in version 2 (+ popcount min/max).
const ENTRY_LEN_V2: usize = 20;
/// Fixed bytes per version-3+ entry before the variable Bloom words.
const ENTRY_FIXED_V3: usize = 24;
/// Bytes per quarantined-segment record (version 4).
const QUAR_ENTRY_LEN: usize = 12;
/// Largest admissible per-segment summary, in u64 words (16 KiB).
const MAX_SUMMARY_WORDS: usize = 131_072 / 64;

/// Manifest file name inside an index directory.
pub const MANIFEST_FILE: &str = "MANIFEST";

/// Immutable index configuration, fixed at creation time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IndexConfig {
    /// Bloom-filter length in bits; every stored record must match.
    pub filter_len: usize,
    /// Number of shards records are routed across.
    pub num_shards: u32,
    /// Seed for the Hamming-LSH shard router.
    pub lsh_seed: u64,
    /// Sampled bits per LSH band key used for routing.
    pub lsh_bits: u32,
    /// Band-key summary geometry (disabled when `tables == 0`).
    pub summary: SummaryConfig,
}

impl IndexConfig {
    /// Configuration with default routing parameters (seed 0x5eed,
    /// 16-bit band keys) and the default summary geometry when the
    /// filter is long enough to support it.
    pub fn new(filter_len: usize, num_shards: u32) -> Self {
        IndexConfig {
            filter_len,
            num_shards,
            lsh_seed: 0x5eed,
            lsh_bits: 16,
            summary: SummaryConfig::for_filter_len(filter_len),
        }
    }

    /// Validates the configuration.
    pub fn validate(&self) -> Result<()> {
        if self.filter_len == 0 {
            return Err(PprlError::invalid("filter_len", "must be positive"));
        }
        if self.num_shards == 0 {
            return Err(PprlError::invalid("num_shards", "must be positive"));
        }
        if self.lsh_bits == 0 {
            return Err(PprlError::invalid("lsh_bits", "must be positive"));
        }
        if self.summary.enabled() {
            if self.summary.bits > 64 {
                return Err(PprlError::invalid("summary.bits", "must be at most 64"));
            }
            let need = self.summary.tables as usize * self.summary.bits as usize;
            if self.filter_len < need {
                return Err(PprlError::invalid(
                    "summary",
                    "tables × bits exceeds the filter length",
                ));
            }
        }
        Ok(())
    }
}

/// One catalogued segment: its shard, id, filter-popcount range and
/// optional band-key Bloom summary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegmentEntry {
    /// Owning shard.
    pub shard: u32,
    /// Segment id (names the `seg-<id>.seg` file).
    pub id: u64,
    /// Smallest filter popcount stored in the segment.
    pub pc_min: u32,
    /// Largest filter popcount stored in the segment.
    pub pc_max: u32,
    /// Band-key Bloom summary over the segment's filters, when the index
    /// was built with summaries enabled.
    pub summary: Option<BandKeySummary>,
}

impl SegmentEntry {
    /// True when the segment may hold filters with a popcount in
    /// `[lo, hi]` — false means a query bounded to that range can skip
    /// the segment without reading it.
    pub fn intersects(&self, lo: usize, hi: usize) -> bool {
        (self.pc_min as usize) <= hi && lo <= (self.pc_max as usize)
    }
}

/// A segment that failed verification at open and was moved to the
/// `quarantine/` subdirectory instead of being served.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QuarantinedSegment {
    /// Shard the segment belonged to.
    pub shard: u32,
    /// Segment id (the file now lives at `quarantine/seg-<id>.seg`).
    pub id: u64,
}

/// The manifest: configuration plus the current segment catalogue.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Manifest {
    /// Index configuration.
    pub config: IndexConfig,
    /// WAL flush epoch: incremented on every WAL→segment flush and
    /// stamped into the WAL header, so replay can recognise (and
    /// discard) a stale log that survived a crash after the manifest
    /// swap but before the WAL reset.
    pub flush_epoch: u64,
    /// Next segment id to allocate.
    pub next_segment_id: u64,
    /// Segment entries, in catalogue order.
    pub segments: Vec<SegmentEntry>,
    /// Health ledger of segments quarantined at open.
    pub quarantined: Vec<QuarantinedSegment>,
}

impl Manifest {
    /// A fresh manifest for a new, empty index.
    pub fn new(config: IndexConfig) -> Self {
        Manifest {
            config,
            flush_epoch: 0,
            next_segment_id: 0,
            segments: Vec::new(),
            quarantined: Vec::new(),
        }
    }

    /// Segment entries belonging to `shard`, in catalogue order.
    pub fn shard_segments(&self, shard: u32) -> Vec<SegmentEntry> {
        self.segments
            .iter()
            .filter(|e| e.shard == shard)
            .cloned()
            .collect()
    }

    /// Serialises the manifest to its (version 4) file image.
    pub fn encode(&self) -> Result<Vec<u8>> {
        let flen = u32::try_from(self.config.filter_len)
            .map_err(|_| PprlError::invalid("filter_len", "exceeds u32 bits"))?;
        let segs = u32::try_from(self.segments.len())
            .map_err(|_| PprlError::invalid("segments", "catalogue exceeds u32 entries"))?;
        let quar = u32::try_from(self.quarantined.len())
            .map_err(|_| PprlError::invalid("quarantined", "ledger exceeds u32 entries"))?;
        let mut entry_bytes = 0usize;
        for entry in &self.segments {
            let words = entry.summary.as_ref().map_or(0, |s| s.words().len());
            if words > MAX_SUMMARY_WORDS {
                return Err(PprlError::invalid(
                    "summary",
                    "segment summary exceeds the size cap",
                ));
            }
            entry_bytes += ENTRY_FIXED_V3 + words * 8;
        }
        let entry_bytes_u32 = u32::try_from(entry_bytes)
            .map_err(|_| PprlError::invalid("segments", "entry region exceeds u32 bytes"))?;
        let mut out =
            Vec::with_capacity(HEADER_LEN_V4 + entry_bytes + self.quarantined.len() * 12 + 8);
        out.extend_from_slice(&MANIFEST_MAGIC.to_le_bytes());
        out.extend_from_slice(&MANIFEST_VERSION.to_le_bytes());
        out.extend_from_slice(&flen.to_le_bytes());
        out.extend_from_slice(&self.config.num_shards.to_le_bytes());
        out.extend_from_slice(&self.config.lsh_seed.to_le_bytes());
        out.extend_from_slice(&self.config.lsh_bits.to_le_bytes());
        out.extend_from_slice(&self.config.summary.tables.to_le_bytes());
        out.extend_from_slice(&self.config.summary.bits.to_le_bytes());
        out.extend_from_slice(&self.flush_epoch.to_le_bytes());
        out.extend_from_slice(&self.next_segment_id.to_le_bytes());
        out.extend_from_slice(&segs.to_le_bytes());
        out.extend_from_slice(&quar.to_le_bytes());
        out.extend_from_slice(&entry_bytes_u32.to_le_bytes());
        for entry in &self.segments {
            out.extend_from_slice(&entry.shard.to_le_bytes());
            out.extend_from_slice(&entry.id.to_le_bytes());
            out.extend_from_slice(&entry.pc_min.to_le_bytes());
            out.extend_from_slice(&entry.pc_max.to_le_bytes());
            match &entry.summary {
                None => out.extend_from_slice(&0u32.to_le_bytes()),
                Some(s) => {
                    out.extend_from_slice(&(s.words().len() as u32).to_le_bytes());
                    for w in s.words() {
                        out.extend_from_slice(&w.to_le_bytes());
                    }
                }
            }
        }
        for q in &self.quarantined {
            out.extend_from_slice(&q.shard.to_le_bytes());
            out.extend_from_slice(&q.id.to_le_bytes());
        }
        append_checksum(&mut out);
        Ok(out)
    }

    /// Parses and verifies a manifest file image (versions 1–4).
    pub fn decode(bytes: &[u8]) -> Result<Manifest> {
        if bytes.len() < HEADER_LEN_V2 + 8 {
            return Err(storage_err(format!(
                "manifest too short: {} bytes",
                bytes.len()
            )));
        }
        let mut header = Reader::new(bytes, "manifest header");
        let magic = header.u32()?;
        if magic != MANIFEST_MAGIC {
            return Err(storage_err(format!(
                "not a manifest file (magic {magic:#x})"
            )));
        }
        let version = header.u16()?;
        if !(MANIFEST_VERSION_MIN..=MANIFEST_VERSION).contains(&version) {
            return Err(storage_err(format!(
                "unsupported manifest version {version}"
            )));
        }
        let filter_len = header.u32()? as usize;
        let num_shards = header.u32()?;
        let lsh_seed = header.u64()?;
        let lsh_bits = header.u32()?;
        // v1/v2 manifests predate summaries: geometry decodes disabled.
        let summary = if version >= 3 {
            SummaryConfig {
                tables: header.u16()?,
                bits: header.u16()?,
            }
        } else {
            SummaryConfig::DISABLED
        };
        // Pre-v4 manifests predate the flush epoch and the quarantine
        // ledger: epoch 0 matches the implicit epoch of their WAL.
        let flush_epoch = if version >= 4 { header.u64()? } else { 0 };
        let next_segment_id = header.u64()?;
        let segs = header.u32()? as usize;
        let quar = if version >= 4 {
            header.u32()? as usize
        } else {
            0
        };
        let entry_bytes = if version >= 3 {
            header.u32()? as usize
        } else {
            let entry_len = if version == 1 {
                ENTRY_LEN_V1
            } else {
                ENTRY_LEN_V2
            };
            segs.checked_mul(entry_len)
                .ok_or_else(|| storage_err(format!("manifest segment count {segs} overflows")))?
        };
        let header_len = header.pos();
        let expected = header_len
            .checked_add(entry_bytes)
            .and_then(|n| n.checked_add(quar.checked_mul(QUAR_ENTRY_LEN)?))
            .and_then(|n| n.checked_add(8))
            .ok_or_else(|| storage_err("manifest entry region overflows".to_string()))?;
        if bytes.len() != expected {
            return Err(storage_err(format!(
                "manifest size mismatch: header declares {segs} segment entries \
                 ({expected} bytes total), file has {}",
                bytes.len()
            )));
        }
        let body = checked_body(bytes, "manifest")?;
        let mut r = Reader::new(&body[header_len..], "manifest entries");
        let mut segments = Vec::with_capacity(segs);
        for i in 0..segs {
            let shard = r.u32()?;
            if shard >= num_shards {
                return Err(storage_err(format!(
                    "manifest entry {i}: shard {shard} out of range ({num_shards} shards)"
                )));
            }
            let id = r.u64()?;
            // Version-1 entries carry no bounds: assume the whole popcount
            // range so pruning never skips them incorrectly.
            let (pc_min, pc_max) = if version == 1 {
                (0, u32::MAX)
            } else {
                (r.u32()?, r.u32()?)
            };
            if pc_min > pc_max {
                return Err(storage_err(format!(
                    "manifest entry {i}: popcount bounds inverted ({pc_min} > {pc_max})"
                )));
            }
            let entry_summary = if version >= 3 {
                let sum_words = r.u32()? as usize;
                if sum_words == 0 {
                    None
                } else {
                    if sum_words > MAX_SUMMARY_WORDS || !sum_words.is_power_of_two() {
                        return Err(storage_err(format!(
                            "manifest entry {i}: invalid summary size ({sum_words} words)"
                        )));
                    }
                    let mut words = Vec::with_capacity(sum_words);
                    for _ in 0..sum_words {
                        words.push(r.u64()?);
                    }
                    Some(BandKeySummary::from_words(words))
                }
            } else {
                None
            };
            segments.push(SegmentEntry {
                shard,
                id,
                pc_min,
                pc_max,
                summary: entry_summary,
            });
        }
        let mut quarantined = Vec::with_capacity(quar);
        for _ in 0..quar {
            let shard = r.u32()?;
            let id = r.u64()?;
            quarantined.push(QuarantinedSegment { shard, id });
        }
        r.finish()?;
        let config = IndexConfig {
            filter_len,
            num_shards,
            lsh_seed,
            lsh_bits,
            summary,
        };
        config
            .validate()
            .map_err(|e| storage_err(format!("manifest config invalid: {e}")))?;
        Ok(Manifest {
            config,
            flush_epoch,
            next_segment_id,
            segments,
            quarantined,
        })
    }

    /// Atomically and durably persists the manifest into `dir` through
    /// `vfs`: write `MANIFEST.tmp`, fsync it, rename over `MANIFEST`,
    /// fsync the directory. After this returns, a crash at any point
    /// leaves either the old or the new manifest — never a torn or
    /// vanished one.
    pub fn save_with(&self, vfs: &dyn Vfs, dir: &Path) -> Result<()> {
        let bytes = self.encode()?;
        let tmp = dir.join("MANIFEST.tmp");
        let path = dir.join(MANIFEST_FILE);
        vfs.write(&tmp, &bytes)
            .map_err(|e| io_err(&tmp, "writing", e))?;
        vfs.sync_file(&tmp)
            .map_err(|e| io_err(&tmp, "syncing", e))?;
        vfs.rename(&tmp, &path)
            .map_err(|e| io_err(&path, "renaming manifest into", e))?;
        vfs.sync_dir(dir)
            .map_err(|e| io_err(dir, "syncing directory", e))
    }

    /// [`Manifest::save_with`] on the real filesystem.
    pub fn save(&self, dir: &Path) -> Result<()> {
        self.save_with(&StdVfs, dir)
    }

    /// Loads and verifies the manifest from `dir` through `vfs`.
    pub fn load_with(vfs: &dyn Vfs, dir: &Path) -> Result<Manifest> {
        let path = dir.join(MANIFEST_FILE);
        let bytes = vfs.read(&path).map_err(|e| io_err(&path, "reading", e))?;
        Manifest::decode(&bytes).map_err(|e| storage_err(format!("{}: {e}", path.display())))
    }

    /// [`Manifest::load_with`] on the real filesystem.
    pub fn load(dir: &Path) -> Result<Manifest> {
        Manifest::load_with(&StdVfs, dir)
    }
}

/// Path of segment `seg_id` inside `dir`.
pub fn segment_path(dir: &Path, seg_id: u64) -> PathBuf {
    dir.join(format!("seg-{seg_id}.seg"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(shard: u32, id: u64, pc_min: u32, pc_max: u32) -> SegmentEntry {
        SegmentEntry {
            shard,
            id,
            pc_min,
            pc_max,
            summary: None,
        }
    }

    fn entry_with_summary(shard: u32, id: u64, pc_min: u32, pc_max: u32) -> SegmentEntry {
        let mut summary = BandKeySummary::with_capacity(64, 8);
        for t in 0..8usize {
            summary.insert(t, id ^ ((t as u64) << 8));
        }
        SegmentEntry {
            shard,
            id,
            pc_min,
            pc_max,
            summary: Some(summary),
        }
    }

    fn sample() -> Manifest {
        let mut m = Manifest::new(IndexConfig::new(1000, 4));
        m.flush_epoch = 9;
        m.next_segment_id = 5;
        m.segments = vec![
            entry_with_summary(0, 0, 10, 250),
            entry(1, 1, 5, 40),
            entry_with_summary(0, 2, 100, 300),
            entry(3, 4, 0, 1000),
        ];
        m.quarantined = vec![QuarantinedSegment { shard: 2, id: 3 }];
        m
    }

    #[test]
    fn round_trip() {
        let m = sample();
        let decoded = Manifest::decode(&m.encode().unwrap()).unwrap();
        assert_eq!(m, decoded);
        assert_eq!(
            decoded
                .shard_segments(0)
                .iter()
                .map(|e| e.id)
                .collect::<Vec<_>>(),
            vec![0, 2]
        );
        assert!(decoded.shard_segments(2).is_empty());
        assert!(decoded.segments[0].summary.is_some());
        assert!(decoded.segments[1].summary.is_none());
    }

    #[test]
    fn popcount_intersection_decides_pruning() {
        let e = entry(0, 0, 10, 20);
        assert!(e.intersects(0, 10));
        assert!(e.intersects(20, 99));
        assert!(e.intersects(12, 15));
        assert!(e.intersects(0, usize::MAX));
        assert!(!e.intersects(0, 9));
        assert!(!e.intersects(21, 99));
    }

    #[test]
    fn version_1_manifest_still_decodes_with_sentinel_bounds() {
        // Hand-build a v1 image: 12-byte entries, version field 1, no
        // summary geometry in the header.
        let m = sample();
        let mut out = Vec::new();
        out.extend_from_slice(&0x3146_4d50u32.to_le_bytes());
        out.extend_from_slice(&1u16.to_le_bytes());
        out.extend_from_slice(&(m.config.filter_len as u32).to_le_bytes());
        out.extend_from_slice(&m.config.num_shards.to_le_bytes());
        out.extend_from_slice(&m.config.lsh_seed.to_le_bytes());
        out.extend_from_slice(&m.config.lsh_bits.to_le_bytes());
        out.extend_from_slice(&m.next_segment_id.to_le_bytes());
        out.extend_from_slice(&(m.segments.len() as u32).to_le_bytes());
        for e in &m.segments {
            out.extend_from_slice(&e.shard.to_le_bytes());
            out.extend_from_slice(&e.id.to_le_bytes());
        }
        crate::format::append_checksum(&mut out);
        let decoded = Manifest::decode(&out).unwrap();
        // Pre-summary manifests decode with summaries disabled; routing
        // and geometry fields carry over unchanged.
        assert_eq!(decoded.config.filter_len, m.config.filter_len);
        assert_eq!(decoded.config.num_shards, m.config.num_shards);
        assert_eq!(decoded.config.lsh_seed, m.config.lsh_seed);
        assert_eq!(decoded.config.lsh_bits, m.config.lsh_bits);
        assert_eq!(decoded.config.summary, SummaryConfig::DISABLED);
        for (got, want) in decoded.segments.iter().zip(&m.segments) {
            assert_eq!((got.shard, got.id), (want.shard, want.id));
            assert_eq!((got.pc_min, got.pc_max), (0, u32::MAX));
            assert!(got.summary.is_none());
        }
    }

    #[test]
    fn version_2_manifest_decodes_without_summaries() {
        // Hand-build a v2 image: 20-byte entries with popcount bounds but
        // no summary fields.
        let m = sample();
        let mut out = Vec::new();
        out.extend_from_slice(&0x3146_4d50u32.to_le_bytes());
        out.extend_from_slice(&2u16.to_le_bytes());
        out.extend_from_slice(&(m.config.filter_len as u32).to_le_bytes());
        out.extend_from_slice(&m.config.num_shards.to_le_bytes());
        out.extend_from_slice(&m.config.lsh_seed.to_le_bytes());
        out.extend_from_slice(&m.config.lsh_bits.to_le_bytes());
        out.extend_from_slice(&m.next_segment_id.to_le_bytes());
        out.extend_from_slice(&(m.segments.len() as u32).to_le_bytes());
        for e in &m.segments {
            out.extend_from_slice(&e.shard.to_le_bytes());
            out.extend_from_slice(&e.id.to_le_bytes());
            out.extend_from_slice(&e.pc_min.to_le_bytes());
            out.extend_from_slice(&e.pc_max.to_le_bytes());
        }
        crate::format::append_checksum(&mut out);
        let decoded = Manifest::decode(&out).unwrap();
        assert_eq!(decoded.config.summary, SummaryConfig::DISABLED);
        for (got, want) in decoded.segments.iter().zip(&m.segments) {
            assert_eq!((got.shard, got.id), (want.shard, want.id));
            assert_eq!((got.pc_min, got.pc_max), (want.pc_min, want.pc_max));
            assert!(got.summary.is_none());
        }
    }

    #[test]
    fn version_3_manifest_decodes_with_epoch_zero_and_empty_ledger() {
        // Hand-build a v3 image: 46-byte header (summary geometry +
        // entry_len, but no flush epoch or quarantine count) and
        // variable-size entries.
        let m = sample();
        let mut out = Vec::new();
        out.extend_from_slice(&0x3146_4d50u32.to_le_bytes());
        out.extend_from_slice(&3u16.to_le_bytes());
        out.extend_from_slice(&(m.config.filter_len as u32).to_le_bytes());
        out.extend_from_slice(&m.config.num_shards.to_le_bytes());
        out.extend_from_slice(&m.config.lsh_seed.to_le_bytes());
        out.extend_from_slice(&m.config.lsh_bits.to_le_bytes());
        out.extend_from_slice(&m.config.summary.tables.to_le_bytes());
        out.extend_from_slice(&m.config.summary.bits.to_le_bytes());
        out.extend_from_slice(&m.next_segment_id.to_le_bytes());
        out.extend_from_slice(&(m.segments.len() as u32).to_le_bytes());
        let mut entries = Vec::new();
        for e in &m.segments {
            entries.extend_from_slice(&e.shard.to_le_bytes());
            entries.extend_from_slice(&e.id.to_le_bytes());
            entries.extend_from_slice(&e.pc_min.to_le_bytes());
            entries.extend_from_slice(&e.pc_max.to_le_bytes());
            match &e.summary {
                None => entries.extend_from_slice(&0u32.to_le_bytes()),
                Some(s) => {
                    entries.extend_from_slice(&(s.words().len() as u32).to_le_bytes());
                    for w in s.words() {
                        entries.extend_from_slice(&w.to_le_bytes());
                    }
                }
            }
        }
        out.extend_from_slice(&(entries.len() as u32).to_le_bytes());
        out.extend_from_slice(&entries);
        crate::format::append_checksum(&mut out);
        let decoded = Manifest::decode(&out).unwrap();
        assert_eq!(decoded.config, m.config);
        assert_eq!(decoded.segments, m.segments);
        assert_eq!(decoded.flush_epoch, 0);
        assert!(decoded.quarantined.is_empty());
    }

    #[test]
    fn quarantine_ledger_round_trips() {
        let mut m = sample();
        m.quarantined = vec![
            QuarantinedSegment { shard: 0, id: 11 },
            QuarantinedSegment { shard: 3, id: 7 },
        ];
        let decoded = Manifest::decode(&m.encode().unwrap()).unwrap();
        assert_eq!(decoded.quarantined, m.quarantined);
        assert_eq!(decoded.flush_epoch, m.flush_epoch);
    }

    #[test]
    fn save_through_fault_vfs_is_crash_atomic() {
        use crate::vfs::{FaultPlan, FaultVfs};
        let dir = Path::new("/idx");
        let vfs = FaultVfs::new(FaultPlan {
            seed: 5,
            ..FaultPlan::none()
        });
        vfs.create_dir_all(dir).unwrap();
        let m = sample();
        m.save_with(&*vfs, dir).unwrap();
        let mut m2 = m.clone();
        m2.next_segment_id = 42;
        m2.save_with(&*vfs, dir).unwrap();
        // A crash after a fully barriered save must preserve the *new*
        // manifest exactly.
        vfs.crash_and_recover();
        assert_eq!(Manifest::load_with(&*vfs, dir).unwrap(), m2);
    }

    #[test]
    fn inverted_popcount_bounds_rejected() {
        let mut m = sample();
        m.segments[0] = entry(0, 0, 50, 10);
        let err = Manifest::decode(&m.encode().unwrap()).unwrap_err();
        assert!(matches!(err, PprlError::Storage(_)), "{err}");
    }

    #[test]
    fn every_single_byte_flip_is_detected() {
        let bytes = sample().encode().unwrap();
        for pos in 0..bytes.len() {
            for bit in 0..8 {
                let mut bad = bytes.clone();
                bad[pos] ^= 1u8 << bit;
                let err = Manifest::decode(&bad).expect_err(&format!("byte {pos} bit {bit}"));
                assert!(
                    matches!(err, PprlError::Storage(_)),
                    "byte {pos} bit {bit}: {err}"
                );
            }
        }
    }

    #[test]
    fn every_truncation_is_detected() {
        let bytes = sample().encode().unwrap();
        for cut in 0..bytes.len() {
            let err = Manifest::decode(&bytes[..cut]).expect_err(&format!("cut at {cut}"));
            assert!(matches!(err, PprlError::Storage(_)), "cut {cut}: {err}");
        }
    }

    #[test]
    fn out_of_range_shard_rejected() {
        let mut m = sample();
        m.segments.push(entry(9, 7, 0, 1)); // only 4 shards configured
        let err = Manifest::decode(&m.encode().unwrap()).unwrap_err();
        assert!(matches!(err, PprlError::Storage(_)), "{err}");
    }

    #[test]
    fn save_load_round_trip_is_atomic() {
        let dir = std::env::temp_dir().join("pprl-index-manifest-test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let m = sample();
        m.save(&dir).unwrap();
        assert!(!dir.join("MANIFEST.tmp").exists());
        assert_eq!(Manifest::load(&dir).unwrap(), m);
        // Overwrite with a changed manifest: rename replaces atomically.
        let mut m2 = m.clone();
        m2.next_segment_id = 6;
        m2.save(&dir).unwrap();
        assert_eq!(Manifest::load(&dir).unwrap(), m2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn invalid_config_rejected() {
        assert!(IndexConfig::new(0, 4).validate().is_err());
        assert!(IndexConfig::new(64, 0).validate().is_err());
        // Summary geometry must fit inside the filter.
        let mut c = IndexConfig::new(1000, 4);
        c.summary = SummaryConfig {
            tables: 100,
            bits: 16,
        };
        assert!(c.validate().is_err());
        c.summary = SummaryConfig {
            tables: 2,
            bits: 65,
        };
        assert!(c.validate().is_err());
    }
}
