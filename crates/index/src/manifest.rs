//! The index manifest: the authoritative, checksummed catalogue of an
//! on-disk index.
//!
//! The manifest records the index configuration (filter geometry, shard
//! count, LSH routing parameters), the next segment id to allocate, and
//! which segment files belong to which shard. It is rewritten atomically
//! (write to `MANIFEST.tmp`, then rename) so a crash mid-update leaves
//! either the old or the new manifest, never a torn one. Layout:
//!
//! ```text
//! magic    u32   "PMF1"
//! version  u16   1
//! flen     u32   filter length in bits
//! shards   u32   number of shards
//! lsh_seed u64   Hamming-LSH routing seed
//! lsh_bits u32   bits per LSH band key
//! next_seg u64   next segment id to allocate
//! segs     u32   number of segment entries
//! entry × segs:
//!   shard  u32
//!   seg_id u64
//! fnv1a    u64   checksum of everything above
//! ```

use crate::format::{append_checksum, checked_body, io_err, storage_err, Reader};
use pprl_core::error::{PprlError, Result};
use std::path::{Path, PathBuf};

/// Manifest file magic ("PMF1").
const MANIFEST_MAGIC: u32 = 0x3146_4d50;
/// Current manifest format version.
const MANIFEST_VERSION: u16 = 1;
/// Fixed bytes before the segment entries.
const HEADER_LEN: usize = 38;

/// Manifest file name inside an index directory.
pub const MANIFEST_FILE: &str = "MANIFEST";

/// Immutable index configuration, fixed at creation time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IndexConfig {
    /// Bloom-filter length in bits; every stored record must match.
    pub filter_len: usize,
    /// Number of shards records are routed across.
    pub num_shards: u32,
    /// Seed for the Hamming-LSH shard router.
    pub lsh_seed: u64,
    /// Sampled bits per LSH band key used for routing.
    pub lsh_bits: u32,
}

impl IndexConfig {
    /// Configuration with default routing parameters (seed 0x5eed,
    /// 16-bit band keys).
    pub fn new(filter_len: usize, num_shards: u32) -> Self {
        IndexConfig {
            filter_len,
            num_shards,
            lsh_seed: 0x5eed,
            lsh_bits: 16,
        }
    }

    /// Validates the configuration.
    pub fn validate(&self) -> Result<()> {
        if self.filter_len == 0 {
            return Err(PprlError::invalid("filter_len", "must be positive"));
        }
        if self.num_shards == 0 {
            return Err(PprlError::invalid("num_shards", "must be positive"));
        }
        if self.lsh_bits == 0 {
            return Err(PprlError::invalid("lsh_bits", "must be positive"));
        }
        Ok(())
    }
}

/// The manifest: configuration plus the current segment catalogue.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Manifest {
    /// Index configuration.
    pub config: IndexConfig,
    /// Next segment id to allocate.
    pub next_segment_id: u64,
    /// `(shard, segment id)` pairs, in catalogue order.
    pub segments: Vec<(u32, u64)>,
}

impl Manifest {
    /// A fresh manifest for a new, empty index.
    pub fn new(config: IndexConfig) -> Self {
        Manifest {
            config,
            next_segment_id: 0,
            segments: Vec::new(),
        }
    }

    /// Segment ids belonging to `shard`, in catalogue order.
    pub fn shard_segments(&self, shard: u32) -> Vec<u64> {
        self.segments
            .iter()
            .filter(|(s, _)| *s == shard)
            .map(|(_, id)| *id)
            .collect()
    }

    /// Serialises the manifest to its file image.
    pub fn encode(&self) -> Result<Vec<u8>> {
        let flen = u32::try_from(self.config.filter_len)
            .map_err(|_| PprlError::invalid("filter_len", "exceeds u32 bits"))?;
        let segs = u32::try_from(self.segments.len())
            .map_err(|_| PprlError::invalid("segments", "catalogue exceeds u32 entries"))?;
        let mut out = Vec::with_capacity(HEADER_LEN + self.segments.len() * 12 + 8);
        out.extend_from_slice(&MANIFEST_MAGIC.to_le_bytes());
        out.extend_from_slice(&MANIFEST_VERSION.to_le_bytes());
        out.extend_from_slice(&flen.to_le_bytes());
        out.extend_from_slice(&self.config.num_shards.to_le_bytes());
        out.extend_from_slice(&self.config.lsh_seed.to_le_bytes());
        out.extend_from_slice(&self.config.lsh_bits.to_le_bytes());
        out.extend_from_slice(&self.next_segment_id.to_le_bytes());
        out.extend_from_slice(&segs.to_le_bytes());
        for (shard, seg_id) in &self.segments {
            out.extend_from_slice(&shard.to_le_bytes());
            out.extend_from_slice(&seg_id.to_le_bytes());
        }
        append_checksum(&mut out);
        Ok(out)
    }

    /// Parses and verifies a manifest file image.
    pub fn decode(bytes: &[u8]) -> Result<Manifest> {
        if bytes.len() < HEADER_LEN + 8 {
            return Err(storage_err(format!(
                "manifest too short: {} bytes",
                bytes.len()
            )));
        }
        let mut header = Reader::new(&bytes[..HEADER_LEN], "manifest header");
        let magic = header.u32()?;
        if magic != MANIFEST_MAGIC {
            return Err(storage_err(format!(
                "not a manifest file (magic {magic:#x})"
            )));
        }
        let version = header.u16()?;
        if version != MANIFEST_VERSION {
            return Err(storage_err(format!(
                "unsupported manifest version {version}"
            )));
        }
        let filter_len = header.u32()? as usize;
        let num_shards = header.u32()?;
        let lsh_seed = header.u64()?;
        let lsh_bits = header.u32()?;
        let next_segment_id = header.u64()?;
        let segs = header.u32()? as usize;
        let expected =
            HEADER_LEN
                .checked_add(segs.checked_mul(12).ok_or_else(|| {
                    storage_err(format!("manifest segment count {segs} overflows"))
                })?)
                .and_then(|n| n.checked_add(8))
                .ok_or_else(|| storage_err(format!("manifest segment count {segs} overflows")))?;
        if bytes.len() != expected {
            return Err(storage_err(format!(
                "manifest size mismatch: header declares {segs} segment entries \
                 ({expected} bytes total), file has {}",
                bytes.len()
            )));
        }
        let body = checked_body(bytes, "manifest")?;
        let mut r = Reader::new(&body[HEADER_LEN..], "manifest entries");
        let mut segments = Vec::with_capacity(segs);
        for i in 0..segs {
            let shard = r.u32()?;
            if shard >= num_shards {
                return Err(storage_err(format!(
                    "manifest entry {i}: shard {shard} out of range ({num_shards} shards)"
                )));
            }
            segments.push((shard, r.u64()?));
        }
        r.finish()?;
        let config = IndexConfig {
            filter_len,
            num_shards,
            lsh_seed,
            lsh_bits,
        };
        config
            .validate()
            .map_err(|e| storage_err(format!("manifest config invalid: {e}")))?;
        Ok(Manifest {
            config,
            next_segment_id,
            segments,
        })
    }

    /// Atomically persists the manifest into `dir` (tmp file + rename).
    pub fn save(&self, dir: &Path) -> Result<()> {
        let bytes = self.encode()?;
        let tmp = dir.join("MANIFEST.tmp");
        let path = dir.join(MANIFEST_FILE);
        std::fs::write(&tmp, &bytes).map_err(|e| io_err(&tmp, "writing", e))?;
        std::fs::rename(&tmp, &path).map_err(|e| io_err(&path, "renaming manifest into", e))
    }

    /// Loads and verifies the manifest from `dir`.
    pub fn load(dir: &Path) -> Result<Manifest> {
        let path = dir.join(MANIFEST_FILE);
        let bytes = std::fs::read(&path).map_err(|e| io_err(&path, "reading", e))?;
        Manifest::decode(&bytes).map_err(|e| storage_err(format!("{}: {e}", path.display())))
    }
}

/// Path of segment `seg_id` inside `dir`.
pub fn segment_path(dir: &Path, seg_id: u64) -> PathBuf {
    dir.join(format!("seg-{seg_id}.seg"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Manifest {
        let mut m = Manifest::new(IndexConfig::new(1000, 4));
        m.next_segment_id = 5;
        m.segments = vec![(0, 0), (1, 1), (0, 2), (3, 4)];
        m
    }

    #[test]
    fn round_trip() {
        let m = sample();
        let decoded = Manifest::decode(&m.encode().unwrap()).unwrap();
        assert_eq!(m, decoded);
        assert_eq!(decoded.shard_segments(0), vec![0, 2]);
        assert_eq!(decoded.shard_segments(2), Vec::<u64>::new());
    }

    #[test]
    fn every_single_byte_flip_is_detected() {
        let bytes = sample().encode().unwrap();
        for pos in 0..bytes.len() {
            for bit in 0..8 {
                let mut bad = bytes.clone();
                bad[pos] ^= 1u8 << bit;
                let err = Manifest::decode(&bad).expect_err(&format!("byte {pos} bit {bit}"));
                assert!(
                    matches!(err, PprlError::Storage(_)),
                    "byte {pos} bit {bit}: {err}"
                );
            }
        }
    }

    #[test]
    fn every_truncation_is_detected() {
        let bytes = sample().encode().unwrap();
        for cut in 0..bytes.len() {
            let err = Manifest::decode(&bytes[..cut]).expect_err(&format!("cut at {cut}"));
            assert!(matches!(err, PprlError::Storage(_)), "cut {cut}: {err}");
        }
    }

    #[test]
    fn out_of_range_shard_rejected() {
        let mut m = sample();
        m.segments.push((9, 7)); // only 4 shards configured
        let err = Manifest::decode(&m.encode().unwrap()).unwrap_err();
        assert!(matches!(err, PprlError::Storage(_)), "{err}");
    }

    #[test]
    fn save_load_round_trip_is_atomic() {
        let dir = std::env::temp_dir().join("pprl-index-manifest-test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let m = sample();
        m.save(&dir).unwrap();
        assert!(!dir.join("MANIFEST.tmp").exists());
        assert_eq!(Manifest::load(&dir).unwrap(), m);
        // Overwrite with a changed manifest: rename replaces atomically.
        let mut m2 = m.clone();
        m2.next_segment_id = 6;
        m2.save(&dir).unwrap();
        assert_eq!(Manifest::load(&dir).unwrap(), m2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn invalid_config_rejected() {
        assert!(IndexConfig::new(0, 4).validate().is_err());
        assert!(IndexConfig::new(64, 0).validate().is_err());
    }
}
