//! The persistent index store: WAL-backed inserts, manifest-coordinated
//! segment flushes, and background-style compaction.
//!
//! An [`IndexStore`] owns one index directory. Inserts are appended to a
//! write-ahead log (`wal.log`, per-entry checksums) so they survive a
//! crash before the next flush; [`IndexStore::flush`] groups pending
//! records by shard, writes one immutable segment per non-empty shard,
//! commits the new catalogue to the manifest (atomic rename) and then
//! resets the log. [`IndexStore::compact`] merges each shard's segments
//! into a single popcount-sorted segment, which keeps per-shard file
//! counts bounded under incremental insert workloads.
//!
//! Records are routed to shards by the FNV-1a hash of their Hamming-LSH
//! band key (table 0 of a [`pprl_blocking::lsh::HammingLsh`] built from
//! the manifest's routing seed), so Hamming-similar filters tend to
//! co-locate and the routing is stable across process restarts.

use crate::arena::FilterArena;
use crate::format::{fnv1a, io_err, storage_err, Reader};
use crate::manifest::{segment_path, Manifest, SegmentEntry};
use crate::query::{IndexReader, SlotSpec};
use crate::segment::{read_segment, record_count_for_size, write_segment};
use crate::summary::{band_keys, summary_positions, BandKeySummary};
use pprl_blocking::lsh::HammingLsh;
use pprl_core::bitvec::BitVec;
use pprl_core::error::{PprlError, Result};
use std::io::Write;
use std::path::{Path, PathBuf};

pub use crate::manifest::{IndexConfig, MANIFEST_FILE};

/// WAL file name inside an index directory.
pub const WAL_FILE: &str = "wal.log";

/// WAL file magic ("PWL1").
const WAL_MAGIC: u32 = 0x314c_5750;
/// Current WAL format version.
const WAL_VERSION: u16 = 1;
/// WAL header bytes.
const WAL_HEADER_LEN: usize = 10;

/// Summary of an index's on-disk and in-log state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IndexStats {
    /// Filter length in bits.
    pub filter_len: usize,
    /// Configured shard count.
    pub num_shards: u32,
    /// Number of segment files.
    pub segments: usize,
    /// Records persisted in segments.
    pub persisted_records: usize,
    /// Records pending in the write-ahead log.
    pub pending_records: usize,
    /// Total bytes of segment + log + manifest files.
    pub disk_bytes: u64,
}

/// What building an [`IndexReader`] actually read from disk.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReadStats {
    /// Bytes read (manifest + log + loaded segment files).
    pub bytes_read: u64,
    /// Segments decoded.
    pub segments_read: usize,
    /// Segments skipped by popcount pruning (not read at all).
    pub segments_skipped: usize,
}

/// Policy for [`IndexStore::compact_tiered`]: segments are grouped into
/// size tiers (tier `t` covers files of `min_bytes·growth^t` up to
/// `min_bytes·growth^(t+1)` bytes) and a tier is merged only once it
/// accumulates `min_segments` files. Small fresh segments therefore merge
/// often and cheaply, while a large settled segment is rewritten only
/// when enough peers of its own size exist — the classic size-tiered
/// bound on write amplification, which keeps individual compaction steps
/// short enough to run on a maintenance thread between queries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TieredPolicy {
    /// Segments a tier must hold before it is merged (≥ 2).
    pub min_segments: usize,
    /// Size ratio between consecutive tiers (≥ 2).
    pub growth: u64,
    /// Floor of tier 0 in bytes; files smaller than this share a tier.
    pub min_bytes: u64,
}

impl Default for TieredPolicy {
    fn default() -> Self {
        TieredPolicy {
            min_segments: 4,
            growth: 4,
            min_bytes: 4096,
        }
    }
}

impl TieredPolicy {
    /// Validates the policy parameters.
    pub fn validate(&self) -> Result<()> {
        if self.min_segments < 2 {
            return Err(PprlError::invalid("min_segments", "must be at least 2"));
        }
        if self.growth < 2 {
            return Err(PprlError::invalid("growth", "must be at least 2"));
        }
        if self.min_bytes == 0 {
            return Err(PprlError::invalid("min_bytes", "must be positive"));
        }
        Ok(())
    }

    /// The size tier a segment of `bytes` belongs to.
    fn tier(&self, bytes: u64) -> u32 {
        let mut tier = 0u32;
        let mut ceiling = self.min_bytes;
        while bytes >= ceiling && tier < 63 {
            tier += 1;
            ceiling = ceiling.saturating_mul(self.growth);
        }
        tier
    }
}

/// What one [`IndexStore::compact_tiered`] step did. The rewritten
/// segment files in `obsolete` are **not** deleted by the store — they
/// stay on disk until the caller decides every reader of the previous
/// manifest generation has drained, then removes them via [`reclaim`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CompactionOutcome {
    /// Segments merged away (inputs of merges).
    pub merged_segments: usize,
    /// Replacement segments written.
    pub new_segments: usize,
    /// Records rewritten into the new segments.
    pub records_rewritten: usize,
    /// Old segment files superseded by the new manifest, awaiting
    /// [`reclaim`] once readers of the old generation drain.
    pub obsolete: Vec<PathBuf>,
}

impl CompactionOutcome {
    /// True when this step changed nothing (no tier was full).
    pub fn is_noop(&self) -> bool {
        self.merged_segments == 0
    }
}

/// Deletes segment files superseded by a compaction, once the caller
/// knows no reader of the old manifest generation remains. Returns how
/// many files were removed; a file already gone is not an error (crash
/// between manifest swap and reclaim leaves orphans that a later pass
/// may have cleaned).
pub fn reclaim(paths: &[PathBuf]) -> Result<usize> {
    let mut removed = 0usize;
    for path in paths {
        match std::fs::remove_file(path) {
            Ok(()) => removed += 1,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => return Err(io_err(path, "reclaiming", e)),
        }
    }
    Ok(removed)
}

/// A persistent, sharded store of Bloom-filter-encoded records.
#[derive(Debug)]
pub struct IndexStore {
    dir: PathBuf,
    manifest: Manifest,
    /// Replayed + newly appended records not yet flushed to segments.
    pending: Vec<(u64, BitVec)>,
    /// Cached LSH bit positions (table 0) used for shard routing.
    routing_positions: Vec<usize>,
    /// Cached disjoint band-key position tables for segment summaries
    /// (empty when summaries are disabled).
    band_positions: Vec<Vec<usize>>,
}

impl IndexStore {
    /// Creates a new, empty index in `dir` (which must not already hold
    /// one). The directory is created if missing.
    pub fn create(dir: &Path, config: IndexConfig) -> Result<IndexStore> {
        config.validate()?;
        std::fs::create_dir_all(dir).map_err(|e| io_err(dir, "creating", e))?;
        if dir.join(MANIFEST_FILE).exists() {
            return Err(storage_err(format!(
                "{} already holds an index (MANIFEST exists)",
                dir.display()
            )));
        }
        let manifest = Manifest::new(config);
        manifest.save(dir)?;
        write_wal_header(&dir.join(WAL_FILE), config.filter_len)?;
        Ok(IndexStore {
            dir: dir.to_path_buf(),
            routing_positions: routing_positions(&config)?,
            band_positions: summary_positions(config.lsh_seed, config.filter_len, config.summary),
            manifest,
            pending: Vec::new(),
        })
    }

    /// Opens an existing index, replaying any pending log entries.
    ///
    /// A directory without a `MANIFEST` is reported as a typed
    /// [`PprlError::Storage`] error naming the directory — not a panic,
    /// and not a bare "file not found" that hides *which* file an index
    /// was expected to provide. A truncated or corrupted manifest
    /// likewise surfaces as a typed error from [`Manifest::load`].
    pub fn open(dir: &Path) -> Result<IndexStore> {
        if !dir.join(MANIFEST_FILE).exists() {
            return Err(storage_err(format!(
                "no index at {}: MANIFEST missing (not an index directory, \
                 or the manifest was deleted)",
                dir.display()
            )));
        }
        let manifest = Manifest::load(dir)?;
        let pending = replay_wal(&dir.join(WAL_FILE), manifest.config.filter_len)?;
        Ok(IndexStore {
            dir: dir.to_path_buf(),
            routing_positions: routing_positions(&manifest.config)?,
            band_positions: summary_positions(
                manifest.config.lsh_seed,
                manifest.config.filter_len,
                manifest.config.summary,
            ),
            manifest,
            pending,
        })
    }

    /// The index configuration.
    pub fn config(&self) -> &IndexConfig {
        &self.manifest.config
    }

    /// The index directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Records pending in the log, not yet flushed to segments.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Shard a filter routes to (stable across restarts).
    pub fn shard_of(&self, filter: &BitVec) -> Result<u32> {
        let key = filter.sample(&self.routing_positions)?.to_bytes();
        Ok((fnv1a(&key) % u64::from(self.manifest.config.num_shards)) as u32)
    }

    /// Appends records to the write-ahead log. They are durable once this
    /// returns and become segment-resident on the next [`flush`].
    ///
    /// [`flush`]: IndexStore::flush
    pub fn insert_batch(&mut self, records: &[(u64, BitVec)]) -> Result<()> {
        let flen = self.manifest.config.filter_len;
        for (id, filter) in records {
            if filter.len() != flen {
                return Err(PprlError::shape(
                    format!("{flen} bits"),
                    format!("{} bits for record {id}", filter.len()),
                ));
            }
        }
        let path = self.dir.join(WAL_FILE);
        let mut file = std::fs::OpenOptions::new()
            .append(true)
            .open(&path)
            .map_err(|e| io_err(&path, "opening", e))?;
        let mut buf = Vec::new();
        for (id, filter) in records {
            encode_wal_entry(&mut buf, *id, filter);
        }
        file.write_all(&buf)
            .map_err(|e| io_err(&path, "appending to", e))?;
        file.flush().map_err(|e| io_err(&path, "flushing", e))?;
        self.pending.extend(records.iter().cloned());
        Ok(())
    }

    /// Flushes pending records into immutable segments: one new segment
    /// per non-empty shard, committed via the manifest, after which the
    /// log is reset. A no-op when nothing is pending.
    pub fn flush(&mut self) -> Result<()> {
        if self.pending.is_empty() {
            return Ok(());
        }
        let num_shards = self.manifest.config.num_shards;
        let flen = self.manifest.config.filter_len;
        let mut by_shard: Vec<Vec<(u64, &BitVec)>> = vec![Vec::new(); num_shards as usize];
        for (id, filter) in &self.pending {
            by_shard[self.shard_of(filter)? as usize].push((*id, filter));
        }
        let mut new_segments = Vec::new();
        for (shard, records) in by_shard.iter().enumerate() {
            if records.is_empty() {
                continue;
            }
            let seg_id = self.manifest.next_segment_id + new_segments.len() as u64;
            write_segment(
                &segment_path(&self.dir, seg_id),
                shard as u32,
                flen,
                records,
            )?;
            new_segments.push(entry_with_bounds(
                shard as u32,
                seg_id,
                records.iter().map(|(_, f)| *f),
                &self.band_positions,
            )?);
        }
        self.manifest.next_segment_id += new_segments.len() as u64;
        self.manifest.segments.extend(new_segments);
        self.manifest.save(&self.dir)?;
        write_wal_header(&self.dir.join(WAL_FILE), flen)?;
        self.pending.clear();
        Ok(())
    }

    /// Flushes, then merges every shard with more than one segment into a
    /// single popcount-sorted segment. Returns the number of segments
    /// reclaimed.
    pub fn compact(&mut self) -> Result<usize> {
        self.flush()?;
        let num_shards = self.manifest.config.num_shards;
        let mut catalogue = Vec::new();
        let mut removed_paths = Vec::new();
        let mut reclaimed = 0usize;
        for shard in 0..num_shards {
            let entries = self.manifest.shard_segments(shard);
            if entries.len() < 2 {
                catalogue.extend(entries);
                continue;
            }
            let (entry, _) = self.merge_segments(shard, &entries)?;
            catalogue.push(entry);
            reclaimed += entries.len() - 1;
            removed_paths.extend(entries.iter().map(|e| segment_path(&self.dir, e.id)));
        }
        self.manifest.segments = catalogue;
        self.manifest.save(&self.dir)?;
        // Only after the manifest commit is it safe to reclaim old files.
        for path in removed_paths {
            std::fs::remove_file(&path).map_err(|e| io_err(&path, "removing", e))?;
        }
        Ok(reclaimed)
    }

    /// One size-tiered compaction step: in every shard, each size tier
    /// (see [`TieredPolicy`]) holding at least `policy.min_segments`
    /// segments is merged into a single popcount-sorted segment. Unlike
    /// [`compact`], pending log records are left alone (flushing is the
    /// caller's cadence, not compaction's) and superseded segment files
    /// are **not** deleted — they are listed in
    /// [`CompactionOutcome::obsolete`] so a serving layer can hold them
    /// until every reader pinned to the previous manifest generation has
    /// drained, then [`reclaim`] them. The manifest swap itself is atomic
    /// (tmp + rename), so a crash at any point leaves a readable index.
    ///
    /// [`compact`]: IndexStore::compact
    pub fn compact_tiered(&mut self, policy: &TieredPolicy) -> Result<CompactionOutcome> {
        policy.validate()?;
        let num_shards = self.manifest.config.num_shards;
        let mut catalogue = Vec::new();
        let mut outcome = CompactionOutcome::default();
        for shard in 0..num_shards {
            let entries = self.manifest.shard_segments(shard);
            if entries.len() < policy.min_segments {
                catalogue.extend(entries);
                continue;
            }
            // Group this shard's segments into size tiers.
            let mut tiers: std::collections::BTreeMap<u32, Vec<SegmentEntry>> =
                std::collections::BTreeMap::new();
            for entry in entries {
                let bytes = file_size(&segment_path(&self.dir, entry.id))?;
                tiers.entry(policy.tier(bytes)).or_default().push(entry);
            }
            for (_, members) in tiers {
                if members.len() < policy.min_segments {
                    catalogue.extend(members);
                    continue;
                }
                let (entry, records) = self.merge_segments(shard, &members)?;
                catalogue.push(entry);
                outcome.merged_segments += members.len();
                outcome.new_segments += 1;
                outcome.records_rewritten += records;
                outcome
                    .obsolete
                    .extend(members.iter().map(|e| segment_path(&self.dir, e.id)));
            }
        }
        if outcome.is_noop() {
            return Ok(outcome);
        }
        self.manifest.segments = catalogue;
        self.manifest.save(&self.dir)?;
        Ok(outcome)
    }

    /// Loads `entries` (all of `shard`), merges their records into one
    /// popcount-sorted segment file, and returns its manifest entry plus
    /// the record count. The old files are left untouched.
    fn merge_segments(
        &mut self,
        shard: u32,
        entries: &[SegmentEntry],
    ) -> Result<(SegmentEntry, usize)> {
        let flen = self.manifest.config.filter_len;
        let mut merged: Vec<(u64, BitVec)> = Vec::new();
        for entry in entries {
            let seg = self.load_segment(entry.id, shard)?;
            merged.extend(seg.records.into_iter().map(|r| (r.id, r.filter)));
        }
        merged.sort_by_key(|(id, f)| (f.count_ones(), *id));
        let refs: Vec<(u64, &BitVec)> = merged.iter().map(|(id, f)| (*id, f)).collect();
        let new_id = self.manifest.next_segment_id;
        self.manifest.next_segment_id += 1;
        write_segment(&segment_path(&self.dir, new_id), shard, flen, &refs)?;
        let entry = entry_with_bounds(
            shard,
            new_id,
            merged.iter().map(|(_, f)| f),
            &self.band_positions,
        )?;
        Ok((entry, merged.len()))
    }

    /// Loads every segment plus pending records into an in-memory
    /// [`IndexReader`] for querying.
    pub fn reader(&self) -> Result<IndexReader> {
        Ok(self.reader_for_popcounts(0, usize::MAX)?.0)
    }

    /// Like [`reader`], but skips segments whose manifest popcount range
    /// `[pc_min, pc_max]` does not intersect `[lo, hi]` — those segment
    /// files are never opened. Pending (log-resident) records are always
    /// included, since the manifest holds no bounds for them. The returned
    /// [`ReadStats`] report what was actually read versus pruned.
    ///
    /// Pruning is lossless for queries whose candidates all have popcounts
    /// in `[lo, hi]` (e.g. the Dice length bound at a score threshold).
    ///
    /// [`reader`]: IndexStore::reader
    pub fn reader_for_popcounts(&self, lo: usize, hi: usize) -> Result<(IndexReader, ReadStats)> {
        let num_shards = self.manifest.config.num_shards;
        let mut shards: Vec<Vec<(u64, BitVec)>> = vec![Vec::new(); num_shards as usize];
        let mut stats = ReadStats {
            bytes_read: file_size(&self.dir.join(MANIFEST_FILE))?
                + file_size(&self.dir.join(WAL_FILE))?,
            ..ReadStats::default()
        };
        for entry in &self.manifest.segments {
            if !entry.intersects(lo, hi) {
                stats.segments_skipped += 1;
                continue;
            }
            let seg = self.load_segment(entry.id, entry.shard)?;
            stats.segments_read += 1;
            stats.bytes_read += file_size(&segment_path(&self.dir, entry.id))?;
            shards[entry.shard as usize].extend(seg.records.into_iter().map(|r| (r.id, r.filter)));
        }
        for (id, filter) in &self.pending {
            shards[self.shard_of(filter)? as usize].push((*id, filter.clone()));
        }
        let reader = IndexReader::new(shards, self.manifest.config.filter_len)?;
        Ok((reader, stats))
    }

    /// A reader that defers segment loading to query time: every segment
    /// becomes a lazily-materialised slot carrying its manifest popcount
    /// bounds and band-key summary, so a segment every query of a batch
    /// can prune (by length, content, or a full top-k) is never read at
    /// all. Pending records are memory-resident from the start. Unlike
    /// [`reader`], disk corruption in a pruned segment goes unnoticed
    /// until some query actually needs it — call
    /// [`IndexReader::materialise_all`] to force full verification.
    ///
    /// [`reader`]: IndexStore::reader
    pub fn lazy_reader(&self) -> Result<IndexReader> {
        let flen = self.manifest.config.filter_len;
        let num_shards = self.manifest.config.num_shards as usize;
        let mut specs = Vec::with_capacity(self.manifest.segments.len() + num_shards);
        for entry in &self.manifest.segments {
            let path = segment_path(&self.dir, entry.id);
            let bytes = file_size(&path)?;
            specs.push(SlotSpec::File {
                path,
                shard: entry.shard,
                seg_id: entry.id,
                bytes,
                rows: record_count_for_size(bytes, flen),
                pc_min: entry.pc_min as usize,
                pc_max: entry.pc_max as usize,
                summary: entry.summary.clone(),
            });
        }
        let mut shards: Vec<Vec<(u64, BitVec)>> = vec![Vec::new(); num_shards];
        for (id, filter) in &self.pending {
            shards[self.shard_of(filter)? as usize].push((*id, filter.clone()));
        }
        for records in shards {
            if records.is_empty() {
                continue;
            }
            specs.push(SlotSpec::Memory(FilterArena::from_records(records, flen)?));
        }
        IndexReader::from_specs(specs, flen, num_shards, self.band_positions.clone())
    }

    /// Total records in the index (segment-resident + pending), derived
    /// from segment file sizes without decoding any segment. Structural
    /// only: corruption inside a segment surfaces when it is actually
    /// read, not here.
    pub fn record_count(&self) -> Result<usize> {
        let flen = self.manifest.config.filter_len;
        let mut n = self.pending.len();
        for entry in &self.manifest.segments {
            let bytes = file_size(&segment_path(&self.dir, entry.id))?;
            n += crate::segment::record_count_for_size(bytes, flen);
        }
        Ok(n)
    }

    /// Verifies and summarises the index: every segment is fully decoded,
    /// so corruption anywhere surfaces here as a typed error.
    pub fn stats(&self) -> Result<IndexStats> {
        let mut persisted = 0usize;
        let mut disk_bytes =
            file_size(&self.dir.join(MANIFEST_FILE))? + file_size(&self.dir.join(WAL_FILE))?;
        for entry in &self.manifest.segments {
            let seg = self.load_segment(entry.id, entry.shard)?;
            persisted += seg.records.len();
            disk_bytes += file_size(&segment_path(&self.dir, entry.id))?;
        }
        Ok(IndexStats {
            filter_len: self.manifest.config.filter_len,
            num_shards: self.manifest.config.num_shards,
            segments: self.manifest.segments.len(),
            persisted_records: persisted,
            pending_records: self.pending.len(),
            disk_bytes,
        })
    }

    fn load_segment(&self, seg_id: u64, shard: u32) -> Result<crate::segment::Segment> {
        let seg = read_segment(&segment_path(&self.dir, seg_id))?;
        if seg.shard != shard {
            return Err(storage_err(format!(
                "segment {seg_id} claims shard {}, manifest says {shard}",
                seg.shard
            )));
        }
        if seg.filter_len != self.manifest.config.filter_len {
            return Err(storage_err(format!(
                "segment {seg_id} has {}-bit filters, index expects {}",
                seg.filter_len, self.manifest.config.filter_len
            )));
        }
        Ok(seg)
    }
}

fn routing_positions(config: &IndexConfig) -> Result<Vec<usize>> {
    let lsh = HammingLsh::new(1, config.lsh_bits as usize, config.lsh_seed)?;
    Ok(lsh.sampled_positions(config.filter_len).swap_remove(0))
}

/// Builds a manifest entry for a freshly written segment: the min/max
/// popcount of its records (for length pruning) and, when `positions` is
/// non-empty, a band-key Bloom summary over its filters (for content
/// pruning).
fn entry_with_bounds<'a>(
    shard: u32,
    id: u64,
    filters: impl ExactSizeIterator<Item = &'a BitVec>,
    positions: &[Vec<usize>],
) -> Result<SegmentEntry> {
    let mut summary = if positions.is_empty() {
        None
    } else {
        Some(BandKeySummary::with_capacity(
            filters.len(),
            positions.len(),
        ))
    };
    let (mut lo, mut hi) = (usize::MAX, 0usize);
    for filter in filters {
        let pc = filter.count_ones();
        lo = lo.min(pc);
        hi = hi.max(pc);
        if let Some(summary) = &mut summary {
            for (table, key) in band_keys(filter, positions).into_iter().enumerate() {
                summary.insert(table, key);
            }
        }
    }
    debug_assert!(lo <= hi, "segments are never empty");
    let bound = |pc: usize, what: &str| {
        u32::try_from(pc).map_err(|_| storage_err(format!("segment {id}: {what} {pc} exceeds u32")))
    };
    Ok(SegmentEntry {
        shard,
        id,
        pc_min: bound(lo, "popcount min")?,
        pc_max: bound(hi, "popcount max")?,
        summary,
    })
}

fn file_size(path: &Path) -> Result<u64> {
    Ok(std::fs::metadata(path)
        .map_err(|e| io_err(path, "inspecting", e))?
        .len())
}

fn write_wal_header(path: &Path, filter_len: usize) -> Result<()> {
    let mut out = Vec::with_capacity(WAL_HEADER_LEN);
    out.extend_from_slice(&WAL_MAGIC.to_le_bytes());
    out.extend_from_slice(&WAL_VERSION.to_le_bytes());
    out.extend_from_slice(&(filter_len as u32).to_le_bytes());
    std::fs::write(path, &out).map_err(|e| io_err(path, "writing", e))
}

/// One log entry: `elen u32 | id u64 | bits | fnv1a u64` where the
/// checksum covers the length prefix, id and filter bytes. A torn or
/// flipped tail therefore fails verification on replay.
fn encode_wal_entry(out: &mut Vec<u8>, id: u64, filter: &BitVec) {
    let start = out.len();
    let bits = filter.to_bytes();
    out.extend_from_slice(&((8 + bits.len()) as u32).to_le_bytes());
    out.extend_from_slice(&id.to_le_bytes());
    out.extend_from_slice(&bits);
    let sum = fnv1a(&out[start..]);
    out.extend_from_slice(&sum.to_le_bytes());
}

fn replay_wal(path: &Path, filter_len: usize) -> Result<Vec<(u64, BitVec)>> {
    let bytes = std::fs::read(path).map_err(|e| io_err(path, "reading", e))?;
    let mut r = Reader::new(&bytes, "wal");
    let magic = r.u32()?;
    if magic != WAL_MAGIC {
        return Err(storage_err(format!("not a wal file (magic {magic:#x})")));
    }
    let version = r.u16()?;
    if version != WAL_VERSION {
        return Err(storage_err(format!("unsupported wal version {version}")));
    }
    let flen = r.u32()? as usize;
    if flen != filter_len {
        return Err(storage_err(format!(
            "wal declares {flen}-bit filters, index expects {filter_len}"
        )));
    }
    let filter_bytes = filter_len.div_ceil(8);
    let entry_len = 8 + filter_bytes;
    let mut records = Vec::new();
    while r.pos() < bytes.len() {
        let start = r.pos();
        let declared = r.u32()? as usize;
        if declared != entry_len {
            return Err(storage_err(format!(
                "wal entry at offset {start}: length prefix {declared}, expected {entry_len}"
            )));
        }
        let id = r.u64()?;
        let bits = r.take(filter_bytes)?;
        let filter = BitVec::from_bytes(bits, filter_len)
            .map_err(|e| storage_err(format!("wal entry at offset {start}: {e}")))?;
        let declared_sum = r.u64()?;
        let actual = fnv1a(&bytes[start..start + 4 + entry_len]);
        if declared_sum != actual {
            return Err(storage_err(format!(
                "wal entry at offset {start}: checksum mismatch"
            )));
        }
        records.push((id, filter));
    }
    Ok(records)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("pprl-index-store-{tag}"));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn filters(n: usize, len: usize) -> Vec<(u64, BitVec)> {
        use pprl_core::rng::SplitMix64;
        let mut rng = SplitMix64::new(42);
        (0..n)
            .map(|i| {
                let ones: Vec<usize> = (0..len)
                    .filter(|_| rng.next_u64().is_multiple_of(4))
                    .collect();
                (i as u64, BitVec::from_positions(len, &ones).unwrap())
            })
            .collect()
    }

    #[test]
    fn create_open_round_trip_with_wal_replay() {
        let dir = temp_dir("reopen");
        let records = filters(20, 128);
        {
            let mut store = IndexStore::create(&dir, IndexConfig::new(128, 4)).unwrap();
            store.insert_batch(&records[..10]).unwrap();
            store.flush().unwrap();
            store.insert_batch(&records[10..]).unwrap();
            // No flush: the last 10 live only in the log.
        }
        let store = IndexStore::open(&dir).unwrap();
        assert_eq!(store.pending_len(), 10);
        let reader = store.reader().unwrap();
        assert_eq!(reader.len(), 20);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn create_refuses_existing_index() {
        let dir = temp_dir("exists");
        IndexStore::create(&dir, IndexConfig::new(64, 2)).unwrap();
        let err = IndexStore::create(&dir, IndexConfig::new(64, 2)).unwrap_err();
        assert!(matches!(err, PprlError::Storage(_)), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn wrong_filter_length_rejected() {
        let dir = temp_dir("flen");
        let mut store = IndexStore::create(&dir, IndexConfig::new(64, 2)).unwrap();
        let err = store.insert_batch(&[(0, BitVec::zeros(32))]).unwrap_err();
        assert!(matches!(err, PprlError::ShapeMismatch { .. }), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn shard_routing_is_stable_and_in_range() {
        let dir = temp_dir("routing");
        let store = IndexStore::create(&dir, IndexConfig::new(256, 8)).unwrap();
        let records = filters(50, 256);
        for (_, f) in &records {
            let s = store.shard_of(f).unwrap();
            assert!(s < 8);
            assert_eq!(s, store.shard_of(f).unwrap());
        }
        // Routing survives reopen (positions derive from the manifest seed).
        let reopened = IndexStore::open(&dir).unwrap();
        for (_, f) in &records {
            assert_eq!(store.shard_of(f).unwrap(), reopened.shard_of(f).unwrap());
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn compact_merges_segments_and_preserves_records() {
        let dir = temp_dir("compact");
        let mut store = IndexStore::create(&dir, IndexConfig::new(128, 2)).unwrap();
        let records = filters(30, 128);
        for chunk in records.chunks(10) {
            store.insert_batch(chunk).unwrap();
            store.flush().unwrap();
        }
        let before = store.stats().unwrap();
        assert!(before.segments > 2, "expected several segments");
        let reclaimed = store.compact().unwrap();
        assert!(reclaimed > 0);
        let after = store.stats().unwrap();
        assert!(after.segments <= 2, "one segment per shard after compact");
        assert_eq!(after.persisted_records, 30);
        assert_eq!(after.pending_records, 0);
        // No orphaned files: every seg-*.seg is in the manifest.
        let on_disk = std::fs::read_dir(&dir)
            .unwrap()
            .filter(|e| {
                e.as_ref()
                    .unwrap()
                    .file_name()
                    .to_string_lossy()
                    .ends_with(".seg")
            })
            .count();
        assert_eq!(on_disk, after.segments);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn open_missing_or_truncated_manifest_is_typed_error() {
        // Missing directory entirely.
        let dir = temp_dir("no-index");
        let err = IndexStore::open(&dir).unwrap_err();
        assert!(matches!(err, PprlError::Storage(_)), "{err}");
        assert!(err.to_string().contains("MANIFEST missing"), "{err}");
        // Directory exists but was never an index.
        std::fs::create_dir_all(&dir).unwrap();
        let err = IndexStore::open(&dir).unwrap_err();
        assert!(err.to_string().contains("MANIFEST missing"), "{err}");
        // A real index whose manifest got truncated.
        IndexStore::create(&dir, IndexConfig::new(64, 2)).unwrap();
        let path = dir.join(MANIFEST_FILE);
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
        let err = IndexStore::open(&dir).unwrap_err();
        assert!(matches!(err, PprlError::Storage(_)), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn tiered_compaction_merges_full_tiers_and_defers_reclaim() {
        let dir = temp_dir("tiered");
        let mut store = IndexStore::create(&dir, IndexConfig::new(128, 1)).unwrap();
        let records = filters(40, 128);
        // Four similar-sized segments in one shard: one full tier.
        for chunk in records.chunks(10) {
            store.insert_batch(chunk).unwrap();
            store.flush().unwrap();
        }
        let policy = TieredPolicy {
            min_segments: 4,
            ..TieredPolicy::default()
        };
        let before = store.reader().unwrap();
        let query = records[7].1.clone();
        let expected = before.top_k(&query, 5, 1).unwrap();

        let outcome = store.compact_tiered(&policy).unwrap();
        assert_eq!(outcome.merged_segments, 4);
        assert_eq!(outcome.new_segments, 1);
        assert_eq!(outcome.records_rewritten, 40);
        assert_eq!(outcome.obsolete.len(), 4);
        // Old files are NOT deleted until the caller reclaims them.
        for path in &outcome.obsolete {
            assert!(path.exists(), "{} reclaimed too early", path.display());
        }
        // The new manifest answers bit-for-bit identically.
        let after = store.reader().unwrap();
        assert_eq!(after.top_k(&query, 5, 1).unwrap(), expected);
        assert_eq!(after.len(), 40);

        assert_eq!(reclaim(&outcome.obsolete).unwrap(), 4);
        for path in &outcome.obsolete {
            assert!(!path.exists());
        }
        // Double reclaim is a clean no-op, and the store still reads.
        assert_eq!(reclaim(&outcome.obsolete).unwrap(), 0);
        let reopened = IndexStore::open(&dir).unwrap();
        assert_eq!(
            reopened.reader().unwrap().top_k(&query, 5, 1).unwrap(),
            expected
        );

        // A second step with nothing mergeable is a no-op.
        let noop = store.compact_tiered(&policy).unwrap();
        assert!(noop.is_noop());
        assert!(noop.obsolete.is_empty());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn tiered_policy_separates_size_tiers() {
        let policy = TieredPolicy {
            min_segments: 2,
            growth: 4,
            min_bytes: 1024,
        };
        assert_eq!(policy.tier(0), 0);
        assert_eq!(policy.tier(1023), 0);
        assert_eq!(policy.tier(1024), 1);
        assert_eq!(policy.tier(4095), 1);
        assert_eq!(policy.tier(4096), 2);
        assert!(TieredPolicy::default().validate().is_ok());
        assert!(TieredPolicy {
            min_segments: 1,
            ..TieredPolicy::default()
        }
        .validate()
        .is_err());
        assert!(TieredPolicy {
            growth: 1,
            ..TieredPolicy::default()
        }
        .validate()
        .is_err());
        assert!(TieredPolicy {
            min_bytes: 0,
            ..TieredPolicy::default()
        }
        .validate()
        .is_err());
    }

    #[test]
    fn tiered_compaction_spares_segments_of_a_different_tier() {
        let dir = temp_dir("tiered-spare");
        let mut store = IndexStore::create(&dir, IndexConfig::new(128, 1)).unwrap();
        let records = filters(64, 128);
        // One big segment …
        store.insert_batch(&records[..60]).unwrap();
        store.flush().unwrap();
        // … plus two tiny ones: with min_bytes small enough to separate
        // them into different tiers, only the tiny tier merges.
        store.insert_batch(&records[60..62]).unwrap();
        store.flush().unwrap();
        store.insert_batch(&records[62..]).unwrap();
        store.flush().unwrap();
        let policy = TieredPolicy {
            min_segments: 2,
            growth: 4,
            min_bytes: 256,
        };
        let outcome = store.compact_tiered(&policy).unwrap();
        assert_eq!(outcome.merged_segments, 2, "only the small tier merges");
        assert_eq!(outcome.records_rewritten, 4);
        let stats = store.stats().unwrap();
        assert_eq!(stats.persisted_records, 64);
        assert_eq!(stats.segments, 2, "big segment + merged small segment");
        reclaim(&outcome.obsolete).unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_wal_tail_is_typed_error() {
        let dir = temp_dir("torn");
        let mut store = IndexStore::create(&dir, IndexConfig::new(64, 2)).unwrap();
        store.insert_batch(&filters(3, 64)).unwrap();
        drop(store);
        let wal = dir.join(WAL_FILE);
        let bytes = std::fs::read(&wal).unwrap();
        // Tear mid-entry and flip a byte: both must be typed errors.
        std::fs::write(&wal, &bytes[..bytes.len() - 5]).unwrap();
        let err = IndexStore::open(&dir).unwrap_err();
        assert!(matches!(err, PprlError::Storage(_)), "{err}");
        let mut flipped = bytes.clone();
        let last = flipped.len() - 1;
        flipped[last] ^= 0x40;
        std::fs::write(&wal, &flipped).unwrap();
        let err = IndexStore::open(&dir).unwrap_err();
        assert!(matches!(err, PprlError::Storage(_)), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn popcount_pruned_reader_skips_disjoint_segments() {
        let dir = temp_dir("prune");
        let mut store = IndexStore::create(&dir, IndexConfig::new(128, 1)).unwrap();
        // Two flushes with disjoint popcount ranges: sparse (~8 ones) and
        // dense (~64 ones) segments in the same shard.
        let sparse: Vec<(u64, BitVec)> = (0..5u64)
            .map(|i| {
                let ones: Vec<usize> = (0..8).map(|k| (k * 16 + i as usize) % 128).collect();
                (i, BitVec::from_positions(128, &ones).unwrap())
            })
            .collect();
        let dense: Vec<(u64, BitVec)> = (0..5u64)
            .map(|i| {
                let ones: Vec<usize> = (0..64).map(|k| (k * 2 + i as usize) % 128).collect();
                (100 + i, BitVec::from_positions(128, &ones).unwrap())
            })
            .collect();
        store.insert_batch(&sparse).unwrap();
        store.flush().unwrap();
        store.insert_batch(&dense).unwrap();
        store.flush().unwrap();

        let (full, full_stats) = store.reader_for_popcounts(0, usize::MAX).unwrap();
        assert_eq!(full.len(), 10);
        assert_eq!(full_stats.segments_read, 2);
        assert_eq!(full_stats.segments_skipped, 0);

        // Only the sparse range: the dense segment is never opened.
        let (pruned, stats) = store.reader_for_popcounts(0, 20).unwrap();
        assert_eq!(pruned.len(), 5);
        assert_eq!(stats.segments_read, 1);
        assert_eq!(stats.segments_skipped, 1);
        assert!(stats.bytes_read < full_stats.bytes_read);

        // Pending records are always included, even outside the range.
        store
            .insert_batch(&[(200, BitVec::from_positions(128, &[0]).unwrap())])
            .unwrap();
        let (with_pending, _) = store.reader_for_popcounts(50, 70).unwrap();
        assert_eq!(with_pending.len(), 6, "dense segment + pending record");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn lazy_reader_matches_eager_reader_bit_for_bit() {
        let dir = temp_dir("lazy-eq");
        let mut store = IndexStore::create(&dir, IndexConfig::new(128, 2)).unwrap();
        let records = filters(45, 128);
        for chunk in records[..40].chunks(10) {
            store.insert_batch(chunk).unwrap();
            store.flush().unwrap();
        }
        // Leave 5 records pending in the log.
        store.insert_batch(&records[40..]).unwrap();
        let eager = store.reader().unwrap();
        let lazy = store.lazy_reader().unwrap();
        assert_eq!(lazy.len(), eager.len());
        assert_eq!(lazy.num_shards(), eager.num_shards());
        for (_, query) in &records[..10] {
            for k in [1, 5, 50] {
                let expected = eager.top_k(query, k, 1).unwrap();
                assert_eq!(lazy.top_k(query, k, 2).unwrap(), expected, "k={k}");
                let mut thresholded = expected.clone();
                thresholded.retain(|h| h.score >= 0.7);
                assert_eq!(
                    lazy.top_k_batch(&[query], k, 1, Some(0.7)).unwrap()[0],
                    thresholded,
                    "k={k} with min_score"
                );
            }
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn lazy_reader_defers_segment_reads_and_prunes_by_popcount() {
        let dir = temp_dir("lazy-prune");
        let mut store = IndexStore::create(&dir, IndexConfig::new(128, 1)).unwrap();
        let sparse: Vec<(u64, BitVec)> = (0..5u64)
            .map(|i| {
                let ones: Vec<usize> = (0..8).map(|k| (k * 16 + i as usize) % 128).collect();
                (i, BitVec::from_positions(128, &ones).unwrap())
            })
            .collect();
        let dense: Vec<(u64, BitVec)> = (0..5u64)
            .map(|i| {
                let ones: Vec<usize> = (0..64).map(|k| (k * 2 + i as usize) % 128).collect();
                (100 + i, BitVec::from_positions(128, &ones).unwrap())
            })
            .collect();
        store.insert_batch(&sparse).unwrap();
        store.flush().unwrap();
        store.insert_batch(&dense).unwrap();
        store.flush().unwrap();

        let lazy = store.lazy_reader().unwrap();
        let fresh = lazy.read_stats();
        assert_eq!(fresh.segments_read, 0, "nothing read before any query");
        assert_eq!(fresh.bytes_read, 0);
        assert_eq!(fresh.segments_skipped, 2);

        // A sparse probe at a high threshold: the dense segment's popcount
        // upper bound (2·8/(8+64) ≈ 0.22) cannot reach 0.8, so its file is
        // never opened.
        let probe = &sparse[0].1;
        let hits = lazy.top_k_batch(&[probe], 3, 1, Some(0.8)).unwrap();
        assert_eq!(hits[0][0].id, 0);
        let stats = lazy.read_stats();
        assert_eq!(stats.segments_read, 1);
        assert_eq!(stats.segments_skipped, 1);
        assert!(stats.bytes_read > 0);

        // Forcing materialisation reads the rest.
        lazy.materialise_all().unwrap();
        assert_eq!(lazy.read_stats().segments_read, 2);
        assert_eq!(lazy.read_stats().segments_skipped, 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn lazy_reader_surfaces_corruption_when_segment_is_needed() {
        let dir = temp_dir("lazy-corrupt");
        let mut store = IndexStore::create(&dir, IndexConfig::new(64, 1)).unwrap();
        store.insert_batch(&filters(8, 64)).unwrap();
        store.flush().unwrap();
        let seg = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().path())
            .find(|p| p.extension().is_some_and(|e| e == "seg"))
            .unwrap();
        let mut bytes = std::fs::read(&seg).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x10;
        std::fs::write(&seg, &bytes).unwrap();
        // Constructing the lazy reader succeeds (nothing is read) …
        let lazy = store.lazy_reader().unwrap();
        // … but touching the segment is a typed error, not silence.
        let err = lazy.materialise_all().unwrap_err();
        assert!(matches!(err, PprlError::Storage(_)), "{err}");
        let err = lazy.top_k(&filters(1, 64)[0].1, 3, 1).unwrap_err();
        assert!(matches!(err, PprlError::Storage(_)), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn stats_counts_everything() {
        let dir = temp_dir("stats");
        let mut store = IndexStore::create(&dir, IndexConfig::new(64, 4)).unwrap();
        let records = filters(12, 64);
        store.insert_batch(&records[..8]).unwrap();
        store.flush().unwrap();
        store.insert_batch(&records[8..]).unwrap();
        let stats = store.stats().unwrap();
        assert_eq!(stats.persisted_records, 8);
        assert_eq!(stats.pending_records, 4);
        assert_eq!(stats.filter_len, 64);
        assert!(stats.disk_bytes > 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
