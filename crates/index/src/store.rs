//! The persistent index store: WAL-backed inserts, manifest-coordinated
//! segment flushes, and background-style compaction.
//!
//! An [`IndexStore`] owns one index directory. Inserts are appended to a
//! write-ahead log (`wal.log`, per-entry checksums) and — under the
//! default [`DurabilityMode::Always`] — fsynced before the call
//! returns, so an acked insert survives a crash before the next flush;
//! [`IndexStore::flush`] groups pending records by shard, writes (and
//! fsyncs) one immutable segment per non-empty shard, syncs the
//! directory, commits the new catalogue to the manifest (fsynced tmp +
//! rename + directory fsync) and then resets the log under a new flush
//! epoch. [`IndexStore::compact`] merges each shard's segments into a
//! single popcount-sorted segment, which keeps per-shard file counts
//! bounded under incremental insert workloads.
//!
//! All file IO goes through an injectable [`Vfs`] (see
//! [`StoreOptions`]), so the crash-recovery property tests drive the
//! identical code paths against a deterministic in-memory
//! [`crate::vfs::FaultVfs`]. Recovery distinguishes benign crash
//! artefacts (a torn WAL tail, a stale-epoch log left by a crash
//! between the manifest swap and the WAL reset — both repaired
//! silently on open) from real corruption (a flipped byte mid-file is
//! a typed [`PprlError::Storage`] error naming the byte offset). A
//! catalogued segment that fails verification at open is moved to the
//! `quarantine/` subdirectory and recorded in the manifest's health
//! ledger, so the surviving index still opens and serves degraded
//! reads instead of refusing entirely.
//!
//! Records are routed to shards by the FNV-1a hash of their Hamming-LSH
//! band key (table 0 of a [`pprl_blocking::lsh::HammingLsh`] built from
//! the manifest's routing seed), so Hamming-similar filters tend to
//! co-locate and the routing is stable across process restarts.

use crate::arena::{ArenaBuilder, FilterArena};
use crate::format::{fnv1a, io_err, storage_err, Reader};
use crate::manifest::{segment_path, Manifest, SegmentEntry};
use crate::query::{IndexReader, SlotSpec};
use crate::segment::{
    read_segment_arena_with, read_segment_with, record_count_for_size, write_segment_arena_with,
};
use crate::summary::{band_keys_words_into, summary_positions, BandKeySummary};
use crate::vfs::{std_vfs, Vfs};
use pprl_blocking::lsh::HammingLsh;
use pprl_core::bitvec::BitVec;
use pprl_core::error::{PprlError, Result};
use std::path::{Path, PathBuf};
use std::sync::Arc;

pub use crate::manifest::{IndexConfig, QuarantinedSegment, MANIFEST_FILE};

/// WAL file name inside an index directory.
pub const WAL_FILE: &str = "wal.log";

/// Subdirectory segments that fail verification at open are moved to.
pub const QUARANTINE_DIR: &str = "quarantine";

/// WAL file magic ("PWL1").
const WAL_MAGIC: u32 = 0x314c_5750;
/// Current WAL format version (2 = flush epoch + header checksum).
const WAL_VERSION: u16 = 2;
/// Version-1 WAL header bytes (`magic u32 | version u16 | flen u32`).
const WAL_HEADER_LEN_V1: usize = 10;
/// Version-2 WAL header bytes: `magic u32 | version u16 | flen u32 |
/// flush_epoch u64 | fnv1a u64`, the checksum covering the preceding 18
/// bytes. A flipped header byte is therefore a typed error, while a
/// short header can only be a torn creation — benign and repairable.
const WAL_HEADER_LEN: usize = 26;

/// Summary of an index's on-disk and in-log state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IndexStats {
    /// Filter length in bits.
    pub filter_len: usize,
    /// Configured shard count.
    pub num_shards: u32,
    /// Number of segment files.
    pub segments: usize,
    /// Records persisted in segments.
    pub persisted_records: usize,
    /// Records pending in the write-ahead log.
    pub pending_records: usize,
    /// Total bytes of segment + log + manifest files.
    pub disk_bytes: u64,
    /// Segments quarantined at open (0 = healthy; > 0 = the index
    /// serves degraded reads over the surviving segments).
    pub quarantined_segments: usize,
}

/// What building an [`IndexReader`] actually read from disk.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReadStats {
    /// Bytes read (manifest + log + loaded segment files).
    pub bytes_read: u64,
    /// Segments decoded.
    pub segments_read: usize,
    /// Segments skipped by popcount pruning (not read at all).
    pub segments_skipped: usize,
    /// Name of the dispatched scan-kernel path serving these reads
    /// (`"scalar"`, `"avx2"`, …; empty in a default-constructed value).
    pub kernel: &'static str,
}

/// When the WAL is fsynced relative to acking an insert.
///
/// The trade-off is the classic one: `Always` makes every acked insert
/// crash-durable at the cost of one fsync per batch; `Interval(n)`
/// amortises the fsync over `n` records and bounds the crash-loss
/// window to at most `n` acked records; `Never` leaves durability to
/// the next [`IndexStore::flush`] (or the OS), the fastest and least
/// safe setting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DurabilityMode {
    /// Fsync the WAL before every [`IndexStore::insert_batch`] returns.
    #[default]
    Always,
    /// Fsync once at least this many records have been appended since
    /// the last sync.
    Interval(u32),
    /// Never fsync the WAL on insert; segments and the manifest are
    /// still fsynced on flush.
    Never,
}

/// How an [`IndexStore`] talks to storage: the durability policy and
/// the [`Vfs`] implementation every file operation is routed through.
#[derive(Debug, Clone)]
pub struct StoreOptions {
    /// WAL fsync policy (default [`DurabilityMode::Always`]).
    pub durability: DurabilityMode,
    /// IO layer (default [`crate::vfs::StdVfs`]).
    pub vfs: Arc<dyn Vfs>,
}

impl Default for StoreOptions {
    fn default() -> Self {
        StoreOptions {
            durability: DurabilityMode::Always,
            vfs: std_vfs(),
        }
    }
}

impl StoreOptions {
    /// Default durability on the given VFS — the common harness setup.
    pub fn with_vfs(vfs: Arc<dyn Vfs>) -> Self {
        StoreOptions {
            durability: DurabilityMode::Always,
            vfs,
        }
    }
}

/// Policy for [`IndexStore::compact_tiered`]: segments are grouped into
/// size tiers (tier `t` covers files of `min_bytes·growth^t` up to
/// `min_bytes·growth^(t+1)` bytes) and a tier is merged only once it
/// accumulates `min_segments` files. Small fresh segments therefore merge
/// often and cheaply, while a large settled segment is rewritten only
/// when enough peers of its own size exist — the classic size-tiered
/// bound on write amplification, which keeps individual compaction steps
/// short enough to run on a maintenance thread between queries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TieredPolicy {
    /// Segments a tier must hold before it is merged (≥ 2).
    pub min_segments: usize,
    /// Size ratio between consecutive tiers (≥ 2).
    pub growth: u64,
    /// Floor of tier 0 in bytes; files smaller than this share a tier.
    pub min_bytes: u64,
}

impl Default for TieredPolicy {
    fn default() -> Self {
        TieredPolicy {
            min_segments: 4,
            growth: 4,
            min_bytes: 4096,
        }
    }
}

impl TieredPolicy {
    /// Validates the policy parameters.
    pub fn validate(&self) -> Result<()> {
        if self.min_segments < 2 {
            return Err(PprlError::invalid("min_segments", "must be at least 2"));
        }
        if self.growth < 2 {
            return Err(PprlError::invalid("growth", "must be at least 2"));
        }
        if self.min_bytes == 0 {
            return Err(PprlError::invalid("min_bytes", "must be positive"));
        }
        Ok(())
    }

    /// The size tier a segment of `bytes` belongs to.
    fn tier(&self, bytes: u64) -> u32 {
        let mut tier = 0u32;
        let mut ceiling = self.min_bytes;
        while bytes >= ceiling && tier < 63 {
            tier += 1;
            ceiling = ceiling.saturating_mul(self.growth);
        }
        tier
    }
}

/// What one [`IndexStore::compact_tiered`] step did. The rewritten
/// segment files in `obsolete` are **not** deleted by the store — they
/// stay on disk until the caller decides every reader of the previous
/// manifest generation has drained, then removes them via [`reclaim`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CompactionOutcome {
    /// Segments merged away (inputs of merges).
    pub merged_segments: usize,
    /// Replacement segments written.
    pub new_segments: usize,
    /// Records rewritten into the new segments.
    pub records_rewritten: usize,
    /// Old segment files superseded by the new manifest, awaiting
    /// [`reclaim`] once readers of the old generation drain.
    pub obsolete: Vec<PathBuf>,
}

impl CompactionOutcome {
    /// True when this step changed nothing (no tier was full).
    pub fn is_noop(&self) -> bool {
        self.merged_segments == 0
    }
}

/// What [`IndexStore::export_snapshot`] shipped.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SnapshotStats {
    /// Sealed segment files copied.
    pub segments: usize,
    /// Records the snapshot holds (sealed + WAL tail).
    pub records: usize,
    /// Segment bytes copied (excludes manifest and WAL image).
    pub bytes: u64,
}

/// Deletes segment files superseded by a compaction, once the caller
/// knows no reader of the old manifest generation remains. Returns how
/// many files were removed; a file already gone is not an error (crash
/// between manifest swap and reclaim leaves orphans that a later pass
/// may have cleaned).
pub fn reclaim(paths: &[PathBuf]) -> Result<usize> {
    reclaim_with(&crate::vfs::StdVfs, paths)
}

/// [`reclaim`] through an injectable [`Vfs`].
pub fn reclaim_with(vfs: &dyn Vfs, paths: &[PathBuf]) -> Result<usize> {
    let mut removed = 0usize;
    for path in paths {
        match vfs.remove_file(path) {
            Ok(()) => removed += 1,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => return Err(io_err(path, "reclaiming", e)),
        }
    }
    Ok(removed)
}

/// A persistent, sharded store of Bloom-filter-encoded records.
#[derive(Debug)]
pub struct IndexStore {
    dir: PathBuf,
    manifest: Manifest,
    /// Replayed + newly appended records not yet flushed to segments,
    /// held columnar (flat words + ids) in append order — the write
    /// path never materialises a per-record `BitVec`.
    pending: ArenaBuilder,
    /// Cached LSH bit positions (table 0) used for shard routing.
    routing_positions: Vec<usize>,
    /// Cached disjoint band-key position tables for segment summaries
    /// (empty when summaries are disabled).
    band_positions: Vec<Vec<usize>>,
    /// IO layer every file operation goes through.
    vfs: Arc<dyn Vfs>,
    /// WAL fsync policy.
    durability: DurabilityMode,
    /// Records appended since the last WAL fsync (Interval mode).
    wal_unsynced: u64,
    /// False after a failed WAL write: the on-disk log may be torn or
    /// carry a stale epoch, so it is rewritten from `pending` before
    /// the next append.
    wal_ok: bool,
}

impl IndexStore {
    /// Creates a new, empty index in `dir` (which must not already hold
    /// one). The directory is created if missing.
    pub fn create(dir: &Path, config: IndexConfig) -> Result<IndexStore> {
        Self::create_with(dir, config, StoreOptions::default())
    }

    /// [`IndexStore::create`] with an explicit durability policy and
    /// IO layer.
    pub fn create_with(
        dir: &Path,
        config: IndexConfig,
        options: StoreOptions,
    ) -> Result<IndexStore> {
        config.validate()?;
        let vfs = options.vfs;
        vfs.create_dir_all(dir)
            .map_err(|e| io_err(dir, "creating", e))?;
        if vfs.exists(&dir.join(MANIFEST_FILE)) {
            return Err(storage_err(format!(
                "{} already holds an index (MANIFEST exists)",
                dir.display()
            )));
        }
        let manifest = Manifest::new(config);
        let wal = dir.join(WAL_FILE);
        let image = encode_wal_image(
            config.filter_len,
            manifest.flush_epoch,
            &ArenaBuilder::new(config.filter_len),
        );
        vfs.write(&wal, &image)
            .map_err(|e| io_err(&wal, "writing", e))?;
        vfs.sync_file(&wal)
            .map_err(|e| io_err(&wal, "syncing", e))?;
        // save_with ends in a directory fsync, which also persists the
        // fresh WAL's directory entry.
        manifest.save_with(&*vfs, dir)?;
        Ok(IndexStore {
            dir: dir.to_path_buf(),
            routing_positions: routing_positions(&config)?,
            band_positions: summary_positions(config.lsh_seed, config.filter_len, config.summary),
            manifest,
            pending: ArenaBuilder::new(config.filter_len),
            vfs,
            durability: options.durability,
            wal_unsynced: 0,
            wal_ok: true,
        })
    }

    /// Opens an existing index, replaying any pending log entries.
    ///
    /// A directory without a `MANIFEST` is reported as a typed
    /// [`PprlError::Storage`] error naming the directory — not a panic,
    /// and not a bare "file not found" that hides *which* file an index
    /// was expected to provide. A truncated or corrupted manifest
    /// likewise surfaces as a typed error from [`Manifest::load`].
    ///
    /// Open is also where crash recovery happens: a missing, torn, or
    /// stale-epoch WAL is repaired (rewritten with exactly the entries
    /// that survive the recovery rules; see [`DurabilityMode`] and the
    /// module docs), and every catalogued segment is fully verified —
    /// one that fails its checksum, length, or shard/geometry checks is
    /// moved to `quarantine/` and recorded in the manifest's health
    /// ledger rather than refusing the open. Check
    /// [`IndexStore::is_degraded`] after opening.
    pub fn open(dir: &Path) -> Result<IndexStore> {
        Self::open_with(dir, StoreOptions::default())
    }

    /// [`IndexStore::open`] with an explicit durability policy and IO
    /// layer.
    pub fn open_with(dir: &Path, options: StoreOptions) -> Result<IndexStore> {
        let vfs = options.vfs;
        if !vfs.exists(&dir.join(MANIFEST_FILE)) {
            return Err(storage_err(format!(
                "no index at {}: MANIFEST missing (not an index directory, \
                 or the manifest was deleted)",
                dir.display()
            )));
        }
        let mut manifest = Manifest::load_with(&*vfs, dir)?;
        let replay = replay_wal_with(
            &*vfs,
            &dir.join(WAL_FILE),
            manifest.config.filter_len,
            manifest.flush_epoch,
        )?;
        // Verify every catalogued segment up front; quarantine failures
        // instead of refusing to open. The full read costs one pass over
        // the index, paid once per open, and is what makes "the store
        // opened" mean "every segment it will serve is intact".
        let mut newly_quarantined = false;
        let mut kept = Vec::with_capacity(manifest.segments.len());
        for entry in std::mem::take(&mut manifest.segments) {
            match verify_segment(&*vfs, dir, &entry, manifest.config.filter_len) {
                Ok(()) => kept.push(entry),
                Err(_) => {
                    quarantine_segment(&*vfs, dir, entry.id)?;
                    manifest.quarantined.push(QuarantinedSegment {
                        shard: entry.shard,
                        id: entry.id,
                    });
                    newly_quarantined = true;
                }
            }
        }
        manifest.segments = kept;
        if newly_quarantined {
            manifest.save_with(&*vfs, dir)?;
        }
        let mut store = IndexStore {
            dir: dir.to_path_buf(),
            routing_positions: routing_positions(&manifest.config)?,
            band_positions: summary_positions(
                manifest.config.lsh_seed,
                manifest.config.filter_len,
                manifest.config.summary,
            ),
            manifest,
            pending: replay.records,
            vfs,
            durability: options.durability,
            wal_unsynced: 0,
            wal_ok: true,
        };
        if replay.repair {
            // Rewrite the log so the torn/stale bytes are gone before
            // any new append lands after them.
            store.rewrite_wal()?;
            store
                .vfs
                .sync_dir(dir)
                .map_err(|e| io_err(dir, "syncing directory", e))?;
        }
        Ok(store)
    }

    /// The index configuration.
    pub fn config(&self) -> &IndexConfig {
        &self.manifest.config
    }

    /// The index directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Records pending in the log, not yet flushed to segments.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// The WAL-resident records themselves, columnar, in append order.
    /// Exactly what a reopen after a crash would replay.
    pub fn pending(&self) -> &ArenaBuilder {
        &self.pending
    }

    /// Shard a filter routes to (stable across restarts).
    pub fn shard_of(&self, filter: &BitVec) -> Result<u32> {
        // `sample` also validates the positions are in range for this
        // filter; the word-slice fast path assumes store-length rows.
        filter.sample(&self.routing_positions)?;
        Ok(self.shard_of_words(filter.as_words()))
    }

    /// [`shard_of`] over a filter's backing words: builds the same LSH
    /// band-key bytes `BitVec::sample(..).to_bytes()` would (bit `j` of
    /// the key = filter bit `routing_positions[j]`) without allocating
    /// the intermediate `BitVec`, so routing stays bit-identical.
    ///
    /// [`shard_of`]: IndexStore::shard_of
    fn shard_of_words(&self, row: &[u64]) -> u32 {
        let mut key = vec![0u8; self.routing_positions.len().div_ceil(8)];
        for (j, &p) in self.routing_positions.iter().enumerate() {
            if (row[p / 64] >> (p % 64)) & 1 == 1 {
                key[j / 8] |= 1 << (j % 8);
            }
        }
        (fnv1a(&key) % u64::from(self.manifest.config.num_shards)) as u32
    }

    /// Appends records to the write-ahead log. Under
    /// [`DurabilityMode::Always`] (the default) the log is fsynced before
    /// this returns, so an acked batch survives a crash; see
    /// [`DurabilityMode`] for the weaker settings. Records become
    /// segment-resident on the next [`flush`].
    ///
    /// [`flush`]: IndexStore::flush
    pub fn insert_batch(&mut self, records: &[(u64, BitVec)]) -> Result<()> {
        let flen = self.manifest.config.filter_len;
        for (id, filter) in records {
            if filter.len() != flen {
                return Err(PprlError::shape(
                    format!("{flen} bits"),
                    format!("{} bits for record {id}", filter.len()),
                ));
            }
        }
        let path = self.dir.join(WAL_FILE);
        if !self.wal_ok {
            // A previous write failed, so the on-disk log may be torn:
            // rebuild it from the authoritative in-memory pending set
            // before appending anything after the damage.
            self.rewrite_wal()?;
        }
        let mut buf = Vec::new();
        for (id, filter) in records {
            encode_wal_entry(&mut buf, *id, filter);
        }
        if let Err(e) = self.vfs.append(&path, &buf) {
            // The append may have half-landed (short write, crash,
            // ENOSPC). Best-effort repair now; if the disk is still
            // failing the flag makes the next insert retry the repair.
            self.wal_ok = false;
            if self.rewrite_wal().is_ok() {
                self.wal_ok = true;
            }
            return Err(io_err(&path, "appending to", e));
        }
        match self.durability {
            DurabilityMode::Always => {
                self.vfs
                    .sync_file(&path)
                    .map_err(|e| io_err(&path, "syncing", e))?;
            }
            DurabilityMode::Interval(n) => {
                self.wal_unsynced += records.len() as u64;
                if self.wal_unsynced >= u64::from(n.max(1)) {
                    self.vfs
                        .sync_file(&path)
                        .map_err(|e| io_err(&path, "syncing", e))?;
                    self.wal_unsynced = 0;
                }
            }
            DurabilityMode::Never => {}
        }
        for (id, filter) in records {
            self.pending
                .push_filter(*id, filter)
                .expect("length validated above; BitVec tail bits are zero by invariant");
        }
        Ok(())
    }

    /// Rewrites the log from scratch — header at the current flush epoch
    /// plus every pending record — and fsyncs it.
    fn rewrite_wal(&mut self) -> Result<()> {
        let path = self.dir.join(WAL_FILE);
        let image = encode_wal_image(
            self.manifest.config.filter_len,
            self.manifest.flush_epoch,
            &self.pending,
        );
        self.vfs
            .write(&path, &image)
            .map_err(|e| io_err(&path, "rewriting", e))?;
        self.vfs
            .sync_file(&path)
            .map_err(|e| io_err(&path, "syncing", e))?;
        self.wal_ok = true;
        self.wal_unsynced = 0;
        Ok(())
    }

    /// Flushes pending records into immutable segments: one new segment
    /// per non-empty shard, committed via the manifest, after which the
    /// log is reset. A no-op when nothing is pending.
    ///
    /// Barrier order: segment contents are fsynced by the segment
    /// writer, the directory is fsynced so their entries are durable
    /// *before* the manifest names them, the manifest commits under a
    /// bumped flush epoch (fsynced tmp + rename + dir fsync), and only
    /// then is the log reset under the new epoch. A crash anywhere in
    /// between leaves either the old manifest + intact WAL (the flush
    /// simply never happened) or the new manifest + a stale-epoch WAL
    /// that replay discards — never a double replay of flushed records.
    pub fn flush(&mut self) -> Result<()> {
        if self.pending.is_empty() {
            return Ok(());
        }
        let num_shards = self.manifest.config.num_shards;
        let flen = self.manifest.config.filter_len;
        // Route pending rows to shards by index — no per-record BitVec.
        let mut by_shard: Vec<Vec<u32>> = vec![Vec::new(); num_shards as usize];
        for i in 0..self.pending.len() {
            let shard = self.shard_of_words(self.pending.row(i));
            by_shard[shard as usize].push(i as u32);
        }
        let mut new_segments = Vec::new();
        for (shard, rows) in by_shard.iter().enumerate() {
            if rows.is_empty() {
                continue;
            }
            let mut builder = ArenaBuilder::with_capacity(flen, rows.len());
            for &i in rows {
                builder.push(self.pending.id(i as usize), self.pending.row(i as usize))?;
            }
            // Segments are written popcount-sorted, the arena's native
            // order, so later decodes and merges skip re-sorting.
            let arena = builder.finish();
            let seg_id = self.manifest.next_segment_id + new_segments.len() as u64;
            write_segment_arena_with(
                &*self.vfs,
                &segment_path(&self.dir, seg_id),
                shard as u32,
                &arena,
            )?;
            new_segments.push(entry_with_bounds_arena(
                shard as u32,
                seg_id,
                &arena,
                &self.band_positions,
            )?);
        }
        self.vfs
            .sync_dir(&self.dir)
            .map_err(|e| io_err(&self.dir, "syncing directory", e))?;
        // Commit on a scratch manifest so a failed save leaves the
        // in-memory state (and the next segment id) untouched; the
        // orphaned segment files are simply overwritten by a retry.
        let mut next = self.manifest.clone();
        next.next_segment_id += new_segments.len() as u64;
        next.segments.extend(new_segments);
        next.flush_epoch += 1;
        next.save_with(&*self.vfs, &self.dir)?;
        self.manifest = next;
        self.pending.clear();
        self.rewrite_wal()
    }

    /// Flushes, then merges every shard with more than one segment into a
    /// single popcount-sorted segment. Returns the number of segments
    /// reclaimed.
    pub fn compact(&mut self) -> Result<usize> {
        self.flush()?;
        let num_shards = self.manifest.config.num_shards;
        let mut catalogue = Vec::new();
        let mut removed_paths = Vec::new();
        let mut reclaimed = 0usize;
        for shard in 0..num_shards {
            let entries = self.manifest.shard_segments(shard);
            if entries.len() < 2 {
                catalogue.extend(entries);
                continue;
            }
            let (entry, _) = self.merge_segments(shard, &entries)?;
            catalogue.push(entry);
            reclaimed += entries.len() - 1;
            removed_paths.extend(entries.iter().map(|e| segment_path(&self.dir, e.id)));
        }
        self.vfs
            .sync_dir(&self.dir)
            .map_err(|e| io_err(&self.dir, "syncing directory", e))?;
        self.manifest.segments = catalogue;
        self.manifest.save_with(&*self.vfs, &self.dir)?;
        // Only after the manifest commit is it safe to reclaim old files.
        for path in removed_paths {
            self.vfs
                .remove_file(&path)
                .map_err(|e| io_err(&path, "removing", e))?;
        }
        Ok(reclaimed)
    }

    /// One size-tiered compaction step: in every shard, each size tier
    /// (see [`TieredPolicy`]) holding at least `policy.min_segments`
    /// segments is merged into a single popcount-sorted segment. Unlike
    /// [`compact`], pending log records are left alone (flushing is the
    /// caller's cadence, not compaction's) and superseded segment files
    /// are **not** deleted — they are listed in
    /// [`CompactionOutcome::obsolete`] so a serving layer can hold them
    /// until every reader pinned to the previous manifest generation has
    /// drained, then [`reclaim`] them. The manifest swap itself is atomic
    /// (tmp + rename), so a crash at any point leaves a readable index.
    ///
    /// [`compact`]: IndexStore::compact
    pub fn compact_tiered(&mut self, policy: &TieredPolicy) -> Result<CompactionOutcome> {
        policy.validate()?;
        let num_shards = self.manifest.config.num_shards;
        let mut catalogue = Vec::new();
        let mut outcome = CompactionOutcome::default();
        for shard in 0..num_shards {
            let entries = self.manifest.shard_segments(shard);
            if entries.len() < policy.min_segments {
                catalogue.extend(entries);
                continue;
            }
            // Group this shard's segments into size tiers.
            let mut tiers: std::collections::BTreeMap<u32, Vec<SegmentEntry>> =
                std::collections::BTreeMap::new();
            for entry in entries {
                let bytes = file_size_with(&*self.vfs, &segment_path(&self.dir, entry.id))?;
                tiers.entry(policy.tier(bytes)).or_default().push(entry);
            }
            for (_, members) in tiers {
                if members.len() < policy.min_segments {
                    catalogue.extend(members);
                    continue;
                }
                let (entry, records) = self.merge_segments(shard, &members)?;
                catalogue.push(entry);
                outcome.merged_segments += members.len();
                outcome.new_segments += 1;
                outcome.records_rewritten += records;
                outcome
                    .obsolete
                    .extend(members.iter().map(|e| segment_path(&self.dir, e.id)));
            }
        }
        if outcome.is_noop() {
            return Ok(outcome);
        }
        self.vfs
            .sync_dir(&self.dir)
            .map_err(|e| io_err(&self.dir, "syncing directory", e))?;
        self.manifest.segments = catalogue;
        self.manifest.save_with(&*self.vfs, &self.dir)?;
        Ok(outcome)
    }

    /// Loads `entries` (all of `shard`) as popcount-sorted arena runs
    /// and k-way merges them by `(popcount, id)` straight into one new
    /// segment file — rows stream from run slices into the output
    /// builder with no per-record `BitVec` and no re-sort (the merged
    /// order is already the arena order, so `finish` is a move).
    /// Returns the new manifest entry plus the row count. The old files
    /// are left untouched.
    ///
    /// Output bytes are identical to the old concatenate-then-
    /// stable-sort merge: the heap key ends with the run index, which
    /// reproduces a stable sort's tie-breaking by original (segment,
    /// entry) order.
    fn merge_segments(
        &mut self,
        shard: u32,
        entries: &[SegmentEntry],
    ) -> Result<(SegmentEntry, usize)> {
        let flen = self.manifest.config.filter_len;
        let mut runs = Vec::with_capacity(entries.len());
        for entry in entries {
            runs.push(self.load_segment_arena(entry.id, shard)?);
        }
        let total = runs.iter().map(|a| a.len()).sum();
        let mut builder = ArenaBuilder::with_capacity(flen, total);
        let mut cursor = vec![0usize; runs.len()];
        let mut heap = std::collections::BinaryHeap::with_capacity(runs.len());
        for (r, run) in runs.iter().enumerate() {
            if !run.is_empty() {
                heap.push(std::cmp::Reverse((run.popcount(0), run.id(0), r)));
            }
        }
        while let Some(std::cmp::Reverse((_, _, r))) = heap.pop() {
            let run = &runs[r];
            let i = cursor[r];
            builder.push(run.id(i), run.row(i))?;
            cursor[r] = i + 1;
            if i + 1 < run.len() {
                heap.push(std::cmp::Reverse((run.popcount(i + 1), run.id(i + 1), r)));
            }
        }
        let arena = builder.finish();
        let new_id = self.manifest.next_segment_id;
        self.manifest.next_segment_id += 1;
        write_segment_arena_with(&*self.vfs, &segment_path(&self.dir, new_id), shard, &arena)?;
        let entry = entry_with_bounds_arena(shard, new_id, &arena, &self.band_positions)?;
        Ok((entry, arena.len()))
    }

    /// Loads every segment plus pending records into an in-memory
    /// [`IndexReader`] for querying.
    pub fn reader(&self) -> Result<IndexReader> {
        Ok(self.reader_for_popcounts(0, usize::MAX)?.0)
    }

    /// Like [`reader`], but skips segments whose manifest popcount range
    /// `[pc_min, pc_max]` does not intersect `[lo, hi]` — those segment
    /// files are never opened. Pending (log-resident) records are always
    /// included, since the manifest holds no bounds for them. The returned
    /// [`ReadStats`] report what was actually read versus pruned.
    ///
    /// Pruning is lossless for queries whose candidates all have popcounts
    /// in `[lo, hi]` (e.g. the Dice length bound at a score threshold).
    ///
    /// [`reader`]: IndexStore::reader
    pub fn reader_for_popcounts(&self, lo: usize, hi: usize) -> Result<(IndexReader, ReadStats)> {
        let num_shards = self.manifest.config.num_shards as usize;
        let flen = self.manifest.config.filter_len;
        let mut stats = ReadStats {
            bytes_read: file_size_with(&*self.vfs, &self.dir.join(MANIFEST_FILE))?
                + file_size_with(&*self.vfs, &self.dir.join(WAL_FILE))?,
            kernel: pprl_similarity::kernel::kernel_name(),
            ..ReadStats::default()
        };
        // Each surviving segment decodes straight into its own arena
        // slot; per-shard builders gather the pending rows. No
        // per-record BitVec is materialised anywhere on this path.
        let mut specs = Vec::with_capacity(self.manifest.segments.len() + num_shards);
        for entry in &self.manifest.segments {
            if !entry.intersects(lo, hi) {
                stats.segments_skipped += 1;
                continue;
            }
            let arena = self.load_segment_arena(entry.id, entry.shard)?;
            stats.segments_read += 1;
            stats.bytes_read += file_size_with(&*self.vfs, &segment_path(&self.dir, entry.id))?;
            specs.push(SlotSpec::Memory(arena));
        }
        for builder in self.pending_by_shard()? {
            if !builder.is_empty() {
                specs.push(SlotSpec::Memory(builder.finish()));
            }
        }
        let mut reader =
            IndexReader::from_specs(specs, flen, num_shards, Vec::new(), Arc::clone(&self.vfs))?;
        reader.set_quarantined(self.manifest.quarantined.len());
        Ok((reader, stats))
    }

    /// Splits the pending buffer into one builder per shard (row order
    /// preserved within a shard).
    fn pending_by_shard(&self) -> Result<Vec<ArenaBuilder>> {
        let flen = self.manifest.config.filter_len;
        let num_shards = self.manifest.config.num_shards as usize;
        let mut out: Vec<ArenaBuilder> = (0..num_shards).map(|_| ArenaBuilder::new(flen)).collect();
        for i in 0..self.pending.len() {
            let shard = self.shard_of_words(self.pending.row(i)) as usize;
            out[shard].push(self.pending.id(i), self.pending.row(i))?;
        }
        Ok(out)
    }

    /// A reader that defers segment loading to query time: every segment
    /// becomes a lazily-materialised slot carrying its manifest popcount
    /// bounds and band-key summary, so a segment every query of a batch
    /// can prune (by length, content, or a full top-k) is never read at
    /// all. Pending records are memory-resident from the start. Unlike
    /// [`reader`], disk corruption in a pruned segment goes unnoticed
    /// until some query actually needs it — call
    /// [`IndexReader::materialise_all`] to force full verification.
    ///
    /// [`reader`]: IndexStore::reader
    pub fn lazy_reader(&self) -> Result<IndexReader> {
        let flen = self.manifest.config.filter_len;
        let num_shards = self.manifest.config.num_shards as usize;
        let mut specs = Vec::with_capacity(self.manifest.segments.len() + num_shards);
        for entry in &self.manifest.segments {
            let path = segment_path(&self.dir, entry.id);
            let bytes = file_size_with(&*self.vfs, &path)?;
            specs.push(SlotSpec::File {
                path,
                shard: entry.shard,
                seg_id: entry.id,
                bytes,
                rows: record_count_for_size(bytes, flen),
                pc_min: entry.pc_min as usize,
                pc_max: entry.pc_max as usize,
                summary: entry.summary.clone(),
            });
        }
        for builder in self.pending_by_shard()? {
            if !builder.is_empty() {
                specs.push(SlotSpec::Memory(builder.finish()));
            }
        }
        let mut reader = IndexReader::from_specs(
            specs,
            flen,
            num_shards,
            self.band_positions.clone(),
            Arc::clone(&self.vfs),
        )?;
        reader.set_quarantined(self.manifest.quarantined.len());
        Ok(reader)
    }

    /// Total records in the index (segment-resident + pending), derived
    /// from segment file sizes without decoding any segment. Structural
    /// only: corruption inside a segment surfaces when it is actually
    /// read, not here.
    pub fn record_count(&self) -> Result<usize> {
        let flen = self.manifest.config.filter_len;
        let mut n = self.pending.len();
        for entry in &self.manifest.segments {
            let bytes = file_size_with(&*self.vfs, &segment_path(&self.dir, entry.id))?;
            n += crate::segment::record_count_for_size(bytes, flen);
        }
        Ok(n)
    }

    /// Verifies and summarises the index: every segment is fully decoded,
    /// so corruption anywhere surfaces here as a typed error.
    pub fn stats(&self) -> Result<IndexStats> {
        let mut persisted = 0usize;
        let mut disk_bytes = file_size_with(&*self.vfs, &self.dir.join(MANIFEST_FILE))?
            + file_size_with(&*self.vfs, &self.dir.join(WAL_FILE))?;
        for entry in &self.manifest.segments {
            let seg = self.load_segment(entry.id, entry.shard)?;
            persisted += seg.records.len();
            disk_bytes += file_size_with(&*self.vfs, &segment_path(&self.dir, entry.id))?;
        }
        Ok(IndexStats {
            filter_len: self.manifest.config.filter_len,
            num_shards: self.manifest.config.num_shards,
            segments: self.manifest.segments.len(),
            persisted_records: persisted,
            pending_records: self.pending.len(),
            disk_bytes,
            quarantined_segments: self.manifest.quarantined.len(),
        })
    }

    /// Segments quarantined at open, from the manifest's health ledger.
    pub fn quarantined(&self) -> &[QuarantinedSegment] {
        &self.manifest.quarantined
    }

    /// True when any segment has been quarantined: the index serves
    /// reads over the survivors only.
    pub fn is_degraded(&self) -> bool {
        !self.manifest.quarantined.is_empty()
    }

    /// Flush epochs committed so far (bumped once per non-empty flush).
    pub fn flush_epoch(&self) -> u64 {
        self.manifest.flush_epoch
    }

    /// The IO layer this store routes file operations through.
    pub fn vfs(&self) -> Arc<dyn Vfs> {
        Arc::clone(&self.vfs)
    }

    /// Exports a complete, self-contained snapshot of this index into
    /// `dest`: every sealed segment file is copied byte-for-byte
    /// (segments are immutable and carry their own checksums), a WAL
    /// image holding the not-yet-flushed tail is written at the
    /// manifest's flush epoch, and the manifest itself lands last via
    /// its usual tmp+fsync+rename swap — whose closing directory fsync
    /// also persists everything copied before it. Opening the copy
    /// replays the WAL tail and re-verifies every segment, so the
    /// replica is bit-identical to the donor at export time.
    ///
    /// This is the shipping half of cluster replication/rebalancing: a
    /// fresh shard node starts by receiving such a snapshot directory.
    /// A degraded donor (quarantined segments) is refused — replicas
    /// must be built from intact data — as is a `dest` that already
    /// holds an index.
    pub fn export_snapshot(&self, dest: &Path) -> Result<SnapshotStats> {
        if self.is_degraded() {
            return Err(storage_err(format!(
                "refusing to export a snapshot of a degraded index ({} \
                 quarantined segment(s) at {})",
                self.manifest.quarantined.len(),
                self.dir.display()
            )));
        }
        if self.vfs.exists(&dest.join(MANIFEST_FILE)) {
            return Err(storage_err(format!(
                "{} already holds an index (MANIFEST exists)",
                dest.display()
            )));
        }
        self.vfs
            .create_dir_all(dest)
            .map_err(|e| io_err(dest, "creating", e))?;
        let mut bytes = 0u64;
        for entry in &self.manifest.segments {
            let src = segment_path(&self.dir, entry.id);
            let data = self
                .vfs
                .read(&src)
                .map_err(|e| io_err(&src, "reading", e))?;
            bytes += data.len() as u64;
            let dst = segment_path(dest, entry.id);
            self.vfs
                .write(&dst, &data)
                .map_err(|e| io_err(&dst, "writing", e))?;
            self.vfs
                .sync_file(&dst)
                .map_err(|e| io_err(&dst, "syncing", e))?;
        }
        let image = encode_wal_image(
            self.manifest.config.filter_len,
            self.manifest.flush_epoch,
            &self.pending,
        );
        let wal = dest.join(WAL_FILE);
        self.vfs
            .write(&wal, &image)
            .map_err(|e| io_err(&wal, "writing", e))?;
        self.vfs
            .sync_file(&wal)
            .map_err(|e| io_err(&wal, "syncing", e))?;
        self.manifest.save_with(&*self.vfs, dest)?;
        Ok(SnapshotStats {
            segments: self.manifest.segments.len(),
            records: self.record_count()?,
            bytes,
        })
    }

    /// Opens a shipped snapshot directory, insisting it verifies clean:
    /// the usual open-time checks run (WAL replay, full segment
    /// verification), and any segment that fails — i.e. was corrupted
    /// in transit — turns the whole import into a typed
    /// [`PprlError::Storage`] error instead of a silently degraded
    /// replica. Use [`IndexStore::open`] for the forgiving behaviour.
    pub fn import_snapshot(dir: &Path) -> Result<IndexStore> {
        Self::import_snapshot_with(dir, StoreOptions::default())
    }

    /// [`IndexStore::import_snapshot`] with an explicit IO layer and
    /// durability policy.
    pub fn import_snapshot_with(dir: &Path, options: StoreOptions) -> Result<IndexStore> {
        let store = Self::open_with(dir, options)?;
        if store.is_degraded() {
            return Err(storage_err(format!(
                "snapshot at {} failed verification: {} segment(s) \
                 quarantined at open",
                dir.display(),
                store.quarantined().len()
            )));
        }
        Ok(store)
    }

    fn load_segment(&self, seg_id: u64, shard: u32) -> Result<crate::segment::Segment> {
        let seg = read_segment_with(&*self.vfs, &segment_path(&self.dir, seg_id))?;
        if seg.shard != shard {
            return Err(storage_err(format!(
                "segment {seg_id} claims shard {}, manifest says {shard}",
                seg.shard
            )));
        }
        if seg.filter_len != self.manifest.config.filter_len {
            return Err(storage_err(format!(
                "segment {seg_id} has {}-bit filters, index expects {}",
                seg.filter_len, self.manifest.config.filter_len
            )));
        }
        Ok(seg)
    }

    /// [`load_segment`] decoding straight into a columnar arena, with
    /// the same shard and geometry checks.
    ///
    /// [`load_segment`]: IndexStore::load_segment
    fn load_segment_arena(&self, seg_id: u64, shard: u32) -> Result<FilterArena> {
        let (seg_shard, arena) =
            read_segment_arena_with(&*self.vfs, &segment_path(&self.dir, seg_id))?;
        if seg_shard != shard {
            return Err(storage_err(format!(
                "segment {seg_id} claims shard {seg_shard}, manifest says {shard}"
            )));
        }
        if arena.filter_len() != self.manifest.config.filter_len {
            return Err(storage_err(format!(
                "segment {seg_id} has {}-bit filters, index expects {}",
                arena.filter_len(),
                self.manifest.config.filter_len
            )));
        }
        Ok(arena)
    }
}

fn routing_positions(config: &IndexConfig) -> Result<Vec<usize>> {
    let lsh = HammingLsh::new(1, config.lsh_bits as usize, config.lsh_seed)?;
    Ok(lsh.sampled_positions(config.filter_len).swap_remove(0))
}

/// Builds a manifest entry for a freshly written arena-backed segment:
/// the popcount bounds come straight off the sorted arena's ends, and
/// the band-key Bloom summary (when `positions` is non-empty) is built
/// from each row's word slice — no per-record `BitVec`.
fn entry_with_bounds_arena(
    shard: u32,
    id: u64,
    arena: &FilterArena,
    positions: &[Vec<usize>],
) -> Result<SegmentEntry> {
    debug_assert!(!arena.is_empty(), "segments are never empty");
    let mut summary = if positions.is_empty() {
        None
    } else {
        Some(BandKeySummary::with_capacity(arena.len(), positions.len()))
    };
    if let Some(summary) = &mut summary {
        let mut keys = Vec::with_capacity(positions.len());
        for i in 0..arena.len() {
            band_keys_words_into(arena.row(i), positions, &mut keys);
            for (table, &key) in keys.iter().enumerate() {
                summary.insert(table, key);
            }
        }
    }
    Ok(SegmentEntry {
        shard,
        id,
        pc_min: arena.pc_min().unwrap_or(0),
        pc_max: arena.pc_max().unwrap_or(0),
        summary,
    })
}

fn file_size_with(vfs: &dyn Vfs, path: &Path) -> Result<u64> {
    vfs.file_size(path)
        .map_err(|e| io_err(path, "inspecting", e))
}

/// Fully decodes one catalogued segment and checks its shard and filter
/// geometry against the manifest — the open-time health check behind
/// quarantining.
fn verify_segment(
    vfs: &dyn Vfs,
    dir: &Path,
    entry: &SegmentEntry,
    filter_len: usize,
) -> Result<()> {
    let seg = read_segment_with(vfs, &segment_path(dir, entry.id))?;
    if seg.shard != entry.shard {
        return Err(storage_err(format!(
            "segment {} claims shard {}, manifest says {}",
            entry.id, seg.shard, entry.shard
        )));
    }
    if seg.filter_len != filter_len {
        return Err(storage_err(format!(
            "segment {} has {}-bit filters, index expects {filter_len}",
            entry.id, seg.filter_len
        )));
    }
    Ok(())
}

/// Moves a failed segment file into the `quarantine/` subdirectory so a
/// later forensic pass can inspect it. A file that is already missing is
/// quarantined by ledger record alone.
fn quarantine_segment(vfs: &dyn Vfs, dir: &Path, seg_id: u64) -> Result<()> {
    let src = segment_path(dir, seg_id);
    if !vfs.exists(&src) {
        return Ok(());
    }
    let qdir = dir.join(QUARANTINE_DIR);
    vfs.create_dir_all(&qdir)
        .map_err(|e| io_err(&qdir, "creating", e))?;
    let dst = qdir.join(format!("seg-{seg_id}.seg"));
    vfs.rename(&src, &dst)
        .map_err(|e| io_err(&dst, "quarantining segment into", e))?;
    vfs.sync_dir(&qdir)
        .map_err(|e| io_err(&qdir, "syncing directory", e))?;
    vfs.sync_dir(dir)
        .map_err(|e| io_err(dir, "syncing directory", e))
}

/// A complete WAL image: header at `flush_epoch` followed by the
/// pending rows in append order. Byte-identical to the log the appends
/// originally produced (word rows serialise to the same little-endian
/// bytes `BitVec::to_bytes` emits).
fn encode_wal_image(filter_len: usize, flush_epoch: u64, records: &ArenaBuilder) -> Vec<u8> {
    let mut out = Vec::with_capacity(WAL_HEADER_LEN);
    out.extend_from_slice(&WAL_MAGIC.to_le_bytes());
    out.extend_from_slice(&WAL_VERSION.to_le_bytes());
    out.extend_from_slice(&(filter_len as u32).to_le_bytes());
    out.extend_from_slice(&flush_epoch.to_le_bytes());
    let hsum = fnv1a(&out);
    out.extend_from_slice(&hsum.to_le_bytes());
    for i in 0..records.len() {
        encode_wal_entry_words(&mut out, records.id(i), records.row(i), filter_len);
    }
    out
}

/// One log entry: `elen u32 | id u64 | bits | fnv1a u64` where the
/// checksum covers the length prefix, id and filter bytes. A torn or
/// flipped tail therefore fails verification on replay.
fn encode_wal_entry(out: &mut Vec<u8>, id: u64, filter: &BitVec) {
    let start = out.len();
    let bits = filter.to_bytes();
    out.extend_from_slice(&((8 + bits.len()) as u32).to_le_bytes());
    out.extend_from_slice(&id.to_le_bytes());
    out.extend_from_slice(&bits);
    let sum = fnv1a(&out[start..]);
    out.extend_from_slice(&sum.to_le_bytes());
}

/// [`encode_wal_entry`] from a filter's backing words — the same bytes,
/// read off the word slice instead of an owned `BitVec`.
fn encode_wal_entry_words(out: &mut Vec<u8>, id: u64, row: &[u64], filter_len: usize) {
    let start = out.len();
    let nbytes = filter_len.div_ceil(8);
    out.extend_from_slice(&((8 + nbytes) as u32).to_le_bytes());
    out.extend_from_slice(&id.to_le_bytes());
    for b in 0..nbytes {
        out.push((row[b / 8] >> ((b % 8) * 8)) as u8);
    }
    let sum = fnv1a(&out[start..]);
    out.extend_from_slice(&sum.to_le_bytes());
}

/// What [`replay_wal_with`] recovered, plus whether the on-disk log
/// needs rewriting (missing file, torn header or tail, stale epoch).
struct WalReplay {
    records: ArenaBuilder,
    repair: bool,
}

impl WalReplay {
    fn repaired(records: ArenaBuilder) -> WalReplay {
        WalReplay {
            records,
            repair: true,
        }
    }
}

/// Replays the log, distinguishing three outcomes per the recovery
/// state machine (DESIGN.md):
///
/// - **Benign crash artefacts** — a missing log, a header shorter than
///   its fixed length, a tail that is a proper prefix of a well-formed
///   entry, or a header epoch *behind* the manifest (crash between the
///   manifest swap and the WAL reset — the entries are already
///   segment-resident): recovered silently, `repair` set so the caller
///   rewrites the log.
/// - **Corruption** — bad magic/version, a header or entry checksum
///   mismatch, a wrong length prefix with its bytes fully present, or
///   an epoch *ahead* of the manifest: a typed [`PprlError::Storage`]
///   error naming the byte offset. Flipped bits never replay silently.
/// - **Clean** — every entry verifies; `repair` is false.
fn replay_wal_with(
    vfs: &dyn Vfs,
    path: &Path,
    filter_len: usize,
    manifest_epoch: u64,
) -> Result<WalReplay> {
    let bytes = match vfs.read(path) {
        Ok(bytes) => bytes,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            return Ok(WalReplay::repaired(ArenaBuilder::new(filter_len)))
        }
        Err(e) => return Err(io_err(path, "reading", e)),
    };
    // A header shorter than the version-1 fixed length can only be a
    // torn creation or reset: nothing was logged yet.
    if bytes.len() < WAL_HEADER_LEN_V1 {
        return Ok(WalReplay::repaired(ArenaBuilder::new(filter_len)));
    }
    let mut r = Reader::new(&bytes, "wal");
    let magic = r.u32()?;
    if magic != WAL_MAGIC {
        return Err(storage_err(format!("not a wal file (magic {magic:#x})")));
    }
    let version = r.u16()?;
    let epoch = match version {
        // Version-1 logs (pre-durability) carry no epoch; they pair
        // with manifests whose flush_epoch decodes as 0.
        1 => {
            let _flen = r.u32()?;
            0
        }
        2 => {
            if bytes.len() < WAL_HEADER_LEN {
                // Torn mid-header: the reset crashed before the epoch
                // and checksum landed. Nothing was logged after it.
                return Ok(WalReplay::repaired(ArenaBuilder::new(filter_len)));
            }
            let _flen = r.u32()?;
            let epoch = r.u64()?;
            let declared = r.u64()?;
            let actual = fnv1a(&bytes[..WAL_HEADER_LEN - 8]);
            if declared != actual {
                return Err(storage_err(format!(
                    "wal header checksum mismatch ({declared:#x} declared, {actual:#x} actual)"
                )));
            }
            epoch
        }
        v => return Err(storage_err(format!("unsupported wal version {v}"))),
    };
    let flen = u32::from_le_bytes(bytes[6..10].try_into().expect("length checked")) as usize;
    if flen != filter_len {
        return Err(storage_err(format!(
            "wal declares {flen}-bit filters, index expects {filter_len}"
        )));
    }
    if epoch < manifest_epoch {
        // Stale log: a flush committed the manifest but crashed before
        // resetting the WAL. Replaying it would duplicate records that
        // are already segment-resident, so discard it.
        return Ok(WalReplay::repaired(ArenaBuilder::new(filter_len)));
    }
    if epoch > manifest_epoch {
        return Err(storage_err(format!(
            "wal flush epoch {epoch} is ahead of manifest epoch {manifest_epoch}: \
             this log does not pair with this manifest"
        )));
    }
    let filter_bytes = filter_len.div_ceil(8);
    let entry_len = 8 + filter_bytes;
    let frame_len = 4 + entry_len + 8;
    let mut records = ArenaBuilder::new(filter_len);
    let mut row = vec![0u64; records.stride()];
    while r.pos() < bytes.len() {
        let start = r.pos();
        let remaining = bytes.len() - start;
        if remaining < frame_len {
            // Short tail. It is a benign torn append only if what *is*
            // present is a prefix of a well-formed entry; a fully
            // present length prefix that disagrees is corruption.
            if remaining >= 4 {
                let declared =
                    u32::from_le_bytes(bytes[start..start + 4].try_into().expect("4 bytes"))
                        as usize;
                if declared != entry_len {
                    return Err(storage_err(format!(
                        "wal entry at offset {start}: length prefix {declared}, \
                         expected {entry_len}"
                    )));
                }
            }
            return Ok(WalReplay::repaired(records));
        }
        let declared = r.u32()? as usize;
        if declared != entry_len {
            return Err(storage_err(format!(
                "wal entry at offset {start}: length prefix {declared}, expected {entry_len}"
            )));
        }
        let id = r.u64()?;
        let bits = r.take(filter_bytes)?;
        row.fill(0);
        for (b, &byte) in bits.iter().enumerate() {
            row[b / 8] |= (byte as u64) << ((b % 8) * 8);
        }
        records
            .push(id, &row)
            .map_err(|e| storage_err(format!("wal entry at offset {start}: {e}")))?;
        let declared_sum = r.u64()?;
        let actual = fnv1a(&bytes[start..start + 4 + entry_len]);
        if declared_sum != actual {
            return Err(storage_err(format!(
                "wal entry at offset {start}: checksum mismatch"
            )));
        }
    }
    Ok(WalReplay {
        records,
        repair: false,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("pprl-index-store-{tag}"));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn filters(n: usize, len: usize) -> Vec<(u64, BitVec)> {
        use pprl_core::rng::SplitMix64;
        let mut rng = SplitMix64::new(42);
        (0..n)
            .map(|i| {
                let ones: Vec<usize> = (0..len)
                    .filter(|_| rng.next_u64().is_multiple_of(4))
                    .collect();
                (i as u64, BitVec::from_positions(len, &ones).unwrap())
            })
            .collect()
    }

    #[test]
    fn create_open_round_trip_with_wal_replay() {
        let dir = temp_dir("reopen");
        let records = filters(20, 128);
        {
            let mut store = IndexStore::create(&dir, IndexConfig::new(128, 4)).unwrap();
            store.insert_batch(&records[..10]).unwrap();
            store.flush().unwrap();
            store.insert_batch(&records[10..]).unwrap();
            // No flush: the last 10 live only in the log.
        }
        let store = IndexStore::open(&dir).unwrap();
        assert_eq!(store.pending_len(), 10);
        let reader = store.reader().unwrap();
        assert_eq!(reader.len(), 20);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn create_refuses_existing_index() {
        let dir = temp_dir("exists");
        IndexStore::create(&dir, IndexConfig::new(64, 2)).unwrap();
        let err = IndexStore::create(&dir, IndexConfig::new(64, 2)).unwrap_err();
        assert!(matches!(err, PprlError::Storage(_)), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn wrong_filter_length_rejected() {
        let dir = temp_dir("flen");
        let mut store = IndexStore::create(&dir, IndexConfig::new(64, 2)).unwrap();
        let err = store.insert_batch(&[(0, BitVec::zeros(32))]).unwrap_err();
        assert!(matches!(err, PprlError::ShapeMismatch { .. }), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn shard_routing_is_stable_and_in_range() {
        let dir = temp_dir("routing");
        let store = IndexStore::create(&dir, IndexConfig::new(256, 8)).unwrap();
        let records = filters(50, 256);
        for (_, f) in &records {
            let s = store.shard_of(f).unwrap();
            assert!(s < 8);
            assert_eq!(s, store.shard_of(f).unwrap());
        }
        // Routing survives reopen (positions derive from the manifest seed).
        let reopened = IndexStore::open(&dir).unwrap();
        for (_, f) in &records {
            assert_eq!(store.shard_of(f).unwrap(), reopened.shard_of(f).unwrap());
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn compact_merges_segments_and_preserves_records() {
        let dir = temp_dir("compact");
        let mut store = IndexStore::create(&dir, IndexConfig::new(128, 2)).unwrap();
        let records = filters(30, 128);
        for chunk in records.chunks(10) {
            store.insert_batch(chunk).unwrap();
            store.flush().unwrap();
        }
        let before = store.stats().unwrap();
        assert!(before.segments > 2, "expected several segments");
        let reclaimed = store.compact().unwrap();
        assert!(reclaimed > 0);
        let after = store.stats().unwrap();
        assert!(after.segments <= 2, "one segment per shard after compact");
        assert_eq!(after.persisted_records, 30);
        assert_eq!(after.pending_records, 0);
        // No orphaned files: every seg-*.seg is in the manifest.
        let on_disk = std::fs::read_dir(&dir)
            .unwrap()
            .filter(|e| {
                e.as_ref()
                    .unwrap()
                    .file_name()
                    .to_string_lossy()
                    .ends_with(".seg")
            })
            .count();
        assert_eq!(on_disk, after.segments);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn open_missing_or_truncated_manifest_is_typed_error() {
        // Missing directory entirely.
        let dir = temp_dir("no-index");
        let err = IndexStore::open(&dir).unwrap_err();
        assert!(matches!(err, PprlError::Storage(_)), "{err}");
        assert!(err.to_string().contains("MANIFEST missing"), "{err}");
        // Directory exists but was never an index.
        std::fs::create_dir_all(&dir).unwrap();
        let err = IndexStore::open(&dir).unwrap_err();
        assert!(err.to_string().contains("MANIFEST missing"), "{err}");
        // A real index whose manifest got truncated.
        IndexStore::create(&dir, IndexConfig::new(64, 2)).unwrap();
        let path = dir.join(MANIFEST_FILE);
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
        let err = IndexStore::open(&dir).unwrap_err();
        assert!(matches!(err, PprlError::Storage(_)), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn tiered_compaction_merges_full_tiers_and_defers_reclaim() {
        let dir = temp_dir("tiered");
        let mut store = IndexStore::create(&dir, IndexConfig::new(128, 1)).unwrap();
        let records = filters(40, 128);
        // Four similar-sized segments in one shard: one full tier.
        for chunk in records.chunks(10) {
            store.insert_batch(chunk).unwrap();
            store.flush().unwrap();
        }
        let policy = TieredPolicy {
            min_segments: 4,
            ..TieredPolicy::default()
        };
        let before = store.reader().unwrap();
        let query = records[7].1.clone();
        let expected = before.top_k(&query, 5, 1).unwrap();

        let outcome = store.compact_tiered(&policy).unwrap();
        assert_eq!(outcome.merged_segments, 4);
        assert_eq!(outcome.new_segments, 1);
        assert_eq!(outcome.records_rewritten, 40);
        assert_eq!(outcome.obsolete.len(), 4);
        // Old files are NOT deleted until the caller reclaims them.
        for path in &outcome.obsolete {
            assert!(path.exists(), "{} reclaimed too early", path.display());
        }
        // The new manifest answers bit-for-bit identically.
        let after = store.reader().unwrap();
        assert_eq!(after.top_k(&query, 5, 1).unwrap(), expected);
        assert_eq!(after.len(), 40);

        assert_eq!(reclaim(&outcome.obsolete).unwrap(), 4);
        for path in &outcome.obsolete {
            assert!(!path.exists());
        }
        // Double reclaim is a clean no-op, and the store still reads.
        assert_eq!(reclaim(&outcome.obsolete).unwrap(), 0);
        let reopened = IndexStore::open(&dir).unwrap();
        assert_eq!(
            reopened.reader().unwrap().top_k(&query, 5, 1).unwrap(),
            expected
        );

        // A second step with nothing mergeable is a no-op.
        let noop = store.compact_tiered(&policy).unwrap();
        assert!(noop.is_noop());
        assert!(noop.obsolete.is_empty());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn tiered_policy_separates_size_tiers() {
        let policy = TieredPolicy {
            min_segments: 2,
            growth: 4,
            min_bytes: 1024,
        };
        assert_eq!(policy.tier(0), 0);
        assert_eq!(policy.tier(1023), 0);
        assert_eq!(policy.tier(1024), 1);
        assert_eq!(policy.tier(4095), 1);
        assert_eq!(policy.tier(4096), 2);
        assert!(TieredPolicy::default().validate().is_ok());
        assert!(TieredPolicy {
            min_segments: 1,
            ..TieredPolicy::default()
        }
        .validate()
        .is_err());
        assert!(TieredPolicy {
            growth: 1,
            ..TieredPolicy::default()
        }
        .validate()
        .is_err());
        assert!(TieredPolicy {
            min_bytes: 0,
            ..TieredPolicy::default()
        }
        .validate()
        .is_err());
    }

    #[test]
    fn tiered_compaction_spares_segments_of_a_different_tier() {
        let dir = temp_dir("tiered-spare");
        let mut store = IndexStore::create(&dir, IndexConfig::new(128, 1)).unwrap();
        let records = filters(64, 128);
        // One big segment …
        store.insert_batch(&records[..60]).unwrap();
        store.flush().unwrap();
        // … plus two tiny ones: with min_bytes small enough to separate
        // them into different tiers, only the tiny tier merges.
        store.insert_batch(&records[60..62]).unwrap();
        store.flush().unwrap();
        store.insert_batch(&records[62..]).unwrap();
        store.flush().unwrap();
        let policy = TieredPolicy {
            min_segments: 2,
            growth: 4,
            min_bytes: 256,
        };
        let outcome = store.compact_tiered(&policy).unwrap();
        assert_eq!(outcome.merged_segments, 2, "only the small tier merges");
        assert_eq!(outcome.records_rewritten, 4);
        let stats = store.stats().unwrap();
        assert_eq!(stats.persisted_records, 64);
        assert_eq!(stats.segments, 2, "big segment + merged small segment");
        reclaim(&outcome.obsolete).unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_wal_tail_recovers_prefix_but_flipped_byte_is_typed_error() {
        let dir = temp_dir("torn");
        let mut store = IndexStore::create(&dir, IndexConfig::new(64, 2)).unwrap();
        store.insert_batch(&filters(3, 64)).unwrap();
        drop(store);
        let wal = dir.join(WAL_FILE);
        let bytes = std::fs::read(&wal).unwrap();
        // A tear mid-entry is a benign crash artefact: open recovers
        // exactly the entries before it and repairs the log in place.
        std::fs::write(&wal, &bytes[..bytes.len() - 5]).unwrap();
        let store = IndexStore::open(&dir).unwrap();
        assert_eq!(store.record_count().unwrap(), 2, "entries before the tear");
        let repaired = std::fs::read(&wal).unwrap();
        assert_eq!(
            repaired.len(),
            bytes.len() - (bytes.len() - WAL_HEADER_LEN) / 3,
            "repair drops exactly the torn frame"
        );
        drop(store);
        // A flipped byte mid-file is corruption, not a crash: typed error.
        let mut flipped = bytes.clone();
        let last = flipped.len() - 1;
        flipped[last] ^= 0x40;
        std::fs::write(&wal, &flipped).unwrap();
        let err = IndexStore::open(&dir).unwrap_err();
        assert!(matches!(err, PprlError::Storage(_)), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn popcount_pruned_reader_skips_disjoint_segments() {
        let dir = temp_dir("prune");
        let mut store = IndexStore::create(&dir, IndexConfig::new(128, 1)).unwrap();
        // Two flushes with disjoint popcount ranges: sparse (~8 ones) and
        // dense (~64 ones) segments in the same shard.
        let sparse: Vec<(u64, BitVec)> = (0..5u64)
            .map(|i| {
                let ones: Vec<usize> = (0..8).map(|k| (k * 16 + i as usize) % 128).collect();
                (i, BitVec::from_positions(128, &ones).unwrap())
            })
            .collect();
        let dense: Vec<(u64, BitVec)> = (0..5u64)
            .map(|i| {
                let ones: Vec<usize> = (0..64).map(|k| (k * 2 + i as usize) % 128).collect();
                (100 + i, BitVec::from_positions(128, &ones).unwrap())
            })
            .collect();
        store.insert_batch(&sparse).unwrap();
        store.flush().unwrap();
        store.insert_batch(&dense).unwrap();
        store.flush().unwrap();

        let (full, full_stats) = store.reader_for_popcounts(0, usize::MAX).unwrap();
        assert_eq!(full.len(), 10);
        assert_eq!(full_stats.segments_read, 2);
        assert_eq!(full_stats.segments_skipped, 0);

        // Only the sparse range: the dense segment is never opened.
        let (pruned, stats) = store.reader_for_popcounts(0, 20).unwrap();
        assert_eq!(pruned.len(), 5);
        assert_eq!(stats.segments_read, 1);
        assert_eq!(stats.segments_skipped, 1);
        assert!(stats.bytes_read < full_stats.bytes_read);

        // Pending records are always included, even outside the range.
        store
            .insert_batch(&[(200, BitVec::from_positions(128, &[0]).unwrap())])
            .unwrap();
        let (with_pending, _) = store.reader_for_popcounts(50, 70).unwrap();
        assert_eq!(with_pending.len(), 6, "dense segment + pending record");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn lazy_reader_matches_eager_reader_bit_for_bit() {
        let dir = temp_dir("lazy-eq");
        let mut store = IndexStore::create(&dir, IndexConfig::new(128, 2)).unwrap();
        let records = filters(45, 128);
        for chunk in records[..40].chunks(10) {
            store.insert_batch(chunk).unwrap();
            store.flush().unwrap();
        }
        // Leave 5 records pending in the log.
        store.insert_batch(&records[40..]).unwrap();
        let eager = store.reader().unwrap();
        let lazy = store.lazy_reader().unwrap();
        assert_eq!(lazy.len(), eager.len());
        assert_eq!(lazy.num_shards(), eager.num_shards());
        for (_, query) in &records[..10] {
            for k in [1, 5, 50] {
                let expected = eager.top_k(query, k, 1).unwrap();
                assert_eq!(lazy.top_k(query, k, 2).unwrap(), expected, "k={k}");
                let mut thresholded = expected.clone();
                thresholded.retain(|h| h.score >= 0.7);
                assert_eq!(
                    lazy.top_k_batch(&[query], k, 1, Some(0.7)).unwrap()[0],
                    thresholded,
                    "k={k} with min_score"
                );
            }
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn lazy_reader_defers_segment_reads_and_prunes_by_popcount() {
        let dir = temp_dir("lazy-prune");
        let mut store = IndexStore::create(&dir, IndexConfig::new(128, 1)).unwrap();
        let sparse: Vec<(u64, BitVec)> = (0..5u64)
            .map(|i| {
                let ones: Vec<usize> = (0..8).map(|k| (k * 16 + i as usize) % 128).collect();
                (i, BitVec::from_positions(128, &ones).unwrap())
            })
            .collect();
        let dense: Vec<(u64, BitVec)> = (0..5u64)
            .map(|i| {
                let ones: Vec<usize> = (0..64).map(|k| (k * 2 + i as usize) % 128).collect();
                (100 + i, BitVec::from_positions(128, &ones).unwrap())
            })
            .collect();
        store.insert_batch(&sparse).unwrap();
        store.flush().unwrap();
        store.insert_batch(&dense).unwrap();
        store.flush().unwrap();

        let lazy = store.lazy_reader().unwrap();
        let fresh = lazy.read_stats();
        assert_eq!(fresh.segments_read, 0, "nothing read before any query");
        assert_eq!(fresh.bytes_read, 0);
        assert_eq!(fresh.segments_skipped, 2);

        // A sparse probe at a high threshold: the dense segment's popcount
        // upper bound (2·8/(8+64) ≈ 0.22) cannot reach 0.8, so its file is
        // never opened.
        let probe = &sparse[0].1;
        let hits = lazy.top_k_batch(&[probe], 3, 1, Some(0.8)).unwrap();
        assert_eq!(hits[0][0].id, 0);
        let stats = lazy.read_stats();
        assert_eq!(stats.segments_read, 1);
        assert_eq!(stats.segments_skipped, 1);
        assert!(stats.bytes_read > 0);

        // Forcing materialisation reads the rest.
        lazy.materialise_all().unwrap();
        assert_eq!(lazy.read_stats().segments_read, 2);
        assert_eq!(lazy.read_stats().segments_skipped, 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn lazy_reader_surfaces_corruption_when_segment_is_needed() {
        let dir = temp_dir("lazy-corrupt");
        let mut store = IndexStore::create(&dir, IndexConfig::new(64, 1)).unwrap();
        store.insert_batch(&filters(8, 64)).unwrap();
        store.flush().unwrap();
        let seg = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().path())
            .find(|p| p.extension().is_some_and(|e| e == "seg"))
            .unwrap();
        let mut bytes = std::fs::read(&seg).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x10;
        std::fs::write(&seg, &bytes).unwrap();
        // Constructing the lazy reader succeeds (nothing is read) …
        let lazy = store.lazy_reader().unwrap();
        // … but touching the segment is a typed error, not silence.
        let err = lazy.materialise_all().unwrap_err();
        assert!(matches!(err, PprlError::Storage(_)), "{err}");
        let err = lazy.top_k(&filters(1, 64)[0].1, 3, 1).unwrap_err();
        assert!(matches!(err, PprlError::Storage(_)), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn stats_counts_everything() {
        let dir = temp_dir("stats");
        let mut store = IndexStore::create(&dir, IndexConfig::new(64, 4)).unwrap();
        let records = filters(12, 64);
        store.insert_batch(&records[..8]).unwrap();
        store.flush().unwrap();
        store.insert_batch(&records[8..]).unwrap();
        let stats = store.stats().unwrap();
        assert_eq!(stats.persisted_records, 8);
        assert_eq!(stats.pending_records, 4);
        assert_eq!(stats.filter_len, 64);
        assert!(stats.disk_bytes > 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn snapshot_ships_sealed_segments_and_wal_tail() {
        let dir = temp_dir("snap-src");
        let dest = temp_dir("snap-dst");
        let mut store = IndexStore::create(&dir, IndexConfig::new(128, 2)).unwrap();
        let records = filters(30, 128);
        // Two sealed segments plus a pending WAL tail at export time.
        store.insert_batch(&records[..12]).unwrap();
        store.flush().unwrap();
        store.insert_batch(&records[12..24]).unwrap();
        store.flush().unwrap();
        store.insert_batch(&records[24..]).unwrap();
        let shipped = store.export_snapshot(&dest).unwrap();
        assert_eq!(shipped.records, 30);
        assert!(shipped.segments >= 2);
        assert!(shipped.bytes > 0);
        // The replica opens clean and answers queries bit-identically.
        let replica = IndexStore::import_snapshot(&dest).unwrap();
        assert_eq!(replica.record_count().unwrap(), 30);
        assert_eq!(replica.flush_epoch(), store.flush_epoch());
        let donor_reader = store.reader().unwrap();
        let replica_reader = replica.reader().unwrap();
        for (_, probe) in &records[..6] {
            assert_eq!(
                replica_reader.top_k(probe, 5, 1).unwrap(),
                donor_reader.top_k(probe, 5, 1).unwrap()
            );
        }
        // Exporting onto an existing index is refused.
        let err = store.export_snapshot(&dest).unwrap_err();
        assert!(matches!(err, PprlError::Storage(_)), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
        std::fs::remove_dir_all(&dest).unwrap();
    }

    #[test]
    fn snapshot_import_rejects_a_corrupted_copy() {
        let dir = temp_dir("snap-corrupt-src");
        let dest = temp_dir("snap-corrupt-dst");
        let mut store = IndexStore::create(&dir, IndexConfig::new(64, 1)).unwrap();
        store.insert_batch(&filters(10, 64)).unwrap();
        store.flush().unwrap();
        store.export_snapshot(&dest).unwrap();
        // Flip a byte in the shipped segment: the open-time verification
        // must turn the import into a typed error, not a degraded
        // replica that silently misses records.
        let seg = std::fs::read_dir(&dest)
            .unwrap()
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .find(|p| p.extension().is_some_and(|x| x == "seg"))
            .expect("shipped segment");
        let mut bytes = std::fs::read(&seg).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x04;
        std::fs::write(&seg, &bytes).unwrap();
        let err = IndexStore::import_snapshot(&dest).unwrap_err();
        assert!(matches!(err, PprlError::Storage(_)), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
        std::fs::remove_dir_all(&dest).unwrap();
    }

    #[test]
    fn degraded_donor_refuses_to_export() {
        let dir = temp_dir("snap-degraded");
        let dest = temp_dir("snap-degraded-dst");
        let mut store = IndexStore::create(&dir, IndexConfig::new(64, 1)).unwrap();
        store.insert_batch(&filters(8, 64)).unwrap();
        store.flush().unwrap();
        // Corrupt the only segment so reopening quarantines it.
        let seg = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .find(|p| p.extension().is_some_and(|x| x == "seg"))
            .expect("segment");
        let mut bytes = std::fs::read(&seg).unwrap();
        bytes[10] ^= 0xff;
        std::fs::write(&seg, &bytes).unwrap();
        drop(store);
        let store = IndexStore::open(&dir).unwrap();
        assert!(store.is_degraded());
        let err = store.export_snapshot(&dest).unwrap_err();
        assert!(matches!(err, PprlError::Storage(_)), "{err}");
        assert!(!dest.join(MANIFEST_FILE).exists());
        std::fs::remove_dir_all(&dir).unwrap();
        let _ = std::fs::remove_dir_all(&dest);
    }
}
