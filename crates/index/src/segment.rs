//! Immutable segment files of Bloom-filter-encoded records.
//!
//! A segment is the unit of persistent storage: one shard's worth of
//! `(record id, filter)` entries written once and never modified (updates
//! happen by writing new segments and compacting). The layout is
//!
//! ```text
//! magic   u32   "PSG1"
//! version u16   1
//! shard   u32   owning shard
//! flen    u32   filter length in bits
//! count   u32   number of entries
//! entry × count:
//!   elen  u32   length prefix (= 8 + ⌈flen/8⌉)
//!   id    u64   record id
//!   bits  ⌈flen/8⌉ bytes, little-endian bit order
//! fnv1a   u64   checksum of everything above
//! ```
//!
//! Decoding validates the declared sizes *exactly* before trusting any
//! entry, so every truncation is detected deterministically, and verifies
//! the trailing FNV-1a checksum, so every byte flip is detected — both as
//! typed [`PprlError::Storage`] errors.

use crate::arena::{ArenaBuilder, FilterArena};
use crate::format::{append_checksum, checked_body, io_err, storage_err, Reader};
use crate::vfs::{StdVfs, Vfs};
use pprl_core::bitvec::BitVec;
use pprl_core::error::{PprlError, Result};
use std::path::Path;

/// Segment file magic ("PSG1").
const SEGMENT_MAGIC: u32 = 0x3147_5350;
/// Current segment format version.
const SEGMENT_VERSION: u16 = 1;
/// Header bytes before the entries.
const HEADER_LEN: usize = 18;

/// One stored record: id plus encoded filter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegmentRecord {
    /// Caller-assigned record id (unique across the index by convention).
    pub id: u64,
    /// The Bloom-filter encoding.
    pub filter: BitVec,
}

/// Decoded segment: shard ownership, filter geometry, entries.
#[derive(Debug, Clone)]
pub struct Segment {
    /// Owning shard.
    pub shard: u32,
    /// Filter length in bits.
    pub filter_len: usize,
    /// Stored records.
    pub records: Vec<SegmentRecord>,
}

/// Number of records a well-formed segment file of `bytes` length holds
/// for `filter_len`-bit filters, derived purely from the file size (the
/// layout is fixed: header, `count` equal-length entries, checksum).
pub fn record_count_for_size(bytes: u64, filter_len: usize) -> usize {
    let entry = (4 + 8 + filter_len.div_ceil(8)) as u64;
    (bytes.saturating_sub((HEADER_LEN + 8) as u64) / entry) as usize
}

/// Serialises a segment to its file image.
pub fn encode_segment(
    shard: u32,
    filter_len: usize,
    records: &[(u64, &BitVec)],
) -> Result<Vec<u8>> {
    let filter_bytes = filter_len.div_ceil(8);
    let count = u32::try_from(records.len())
        .map_err(|_| PprlError::invalid("records", "segment exceeds u32 entries"))?;
    let flen = u32::try_from(filter_len)
        .map_err(|_| PprlError::invalid("filter_len", "exceeds u32 bits"))?;
    let entry_len = 8 + filter_bytes;
    let mut out = Vec::with_capacity(HEADER_LEN + records.len() * (4 + entry_len) + 8);
    out.extend_from_slice(&SEGMENT_MAGIC.to_le_bytes());
    out.extend_from_slice(&SEGMENT_VERSION.to_le_bytes());
    out.extend_from_slice(&shard.to_le_bytes());
    out.extend_from_slice(&flen.to_le_bytes());
    out.extend_from_slice(&count.to_le_bytes());
    for (id, filter) in records {
        if filter.len() != filter_len {
            return Err(PprlError::shape(
                format!("{filter_len} bits"),
                format!("{} bits", filter.len()),
            ));
        }
        out.extend_from_slice(&(entry_len as u32).to_le_bytes());
        out.extend_from_slice(&id.to_le_bytes());
        out.extend_from_slice(&filter.to_bytes());
    }
    append_checksum(&mut out);
    Ok(out)
}

/// Parses and verifies a segment file image. Any byte flip, truncation,
/// or structural malformation yields a typed [`PprlError::Storage`].
pub fn decode_segment(bytes: &[u8]) -> Result<Segment> {
    if bytes.len() < HEADER_LEN + 8 {
        return Err(storage_err(format!(
            "segment too short: {} bytes",
            bytes.len()
        )));
    }
    // Structural validation first: header sizes determine the exact file
    // length, so truncation (and flips inside the size fields) are caught
    // deterministically before the checksum is even consulted.
    let mut header = Reader::new(&bytes[..HEADER_LEN], "segment header");
    let magic = header.u32()?;
    if magic != SEGMENT_MAGIC {
        return Err(storage_err(format!(
            "not a segment file (magic {magic:#x})"
        )));
    }
    let version = header.u16()?;
    if version != SEGMENT_VERSION {
        return Err(storage_err(format!(
            "unsupported segment version {version}"
        )));
    }
    let shard = header.u32()?;
    let filter_len = header.u32()? as usize;
    let count = header.u32()? as usize;
    let filter_bytes = filter_len.div_ceil(8);
    let entry_len = 8 + filter_bytes;
    let expected = HEADER_LEN
        .checked_add(
            count
                .checked_mul(4 + entry_len)
                .ok_or_else(|| storage_err(format!("segment entry count {count} overflows")))?,
        )
        .and_then(|n| n.checked_add(8))
        .ok_or_else(|| storage_err(format!("segment entry count {count} overflows")))?;
    if bytes.len() != expected {
        return Err(storage_err(format!(
            "segment size mismatch: header declares {count} entries of {entry_len} bytes \
             ({expected} bytes total), file has {}",
            bytes.len()
        )));
    }
    let body = checked_body(bytes, "segment")?;
    let mut r = Reader::new(&body[HEADER_LEN..], "segment entries");
    let mut records = Vec::with_capacity(count);
    for i in 0..count {
        let declared = r.u32()? as usize;
        if declared != entry_len {
            return Err(storage_err(format!(
                "segment entry {i} length prefix {declared}, expected {entry_len}"
            )));
        }
        let id = r.u64()?;
        let filter = BitVec::from_bytes(r.take(filter_bytes)?, filter_len)
            .map_err(|e| storage_err(format!("segment entry {i}: {e}")))?;
        records.push(SegmentRecord { id, filter });
    }
    r.finish()?;
    Ok(Segment {
        shard,
        filter_len,
        records,
    })
}

/// Serialises a segment file image straight from an arena's rows, in
/// arena row order, without materialising a `BitVec` per record. The
/// output is byte-identical to [`encode_segment`] over the same rows in
/// the same order: a filter's wire bytes are the little-endian bytes of
/// its backing words truncated to `⌈flen/8⌉` (the `BitVec::to_bytes`
/// contract), which is read here directly off each row's word slice.
pub fn encode_segment_from_arena(shard: u32, arena: &FilterArena) -> Result<Vec<u8>> {
    let filter_len = arena.filter_len();
    let filter_bytes = filter_len.div_ceil(8);
    let count = u32::try_from(arena.len())
        .map_err(|_| PprlError::invalid("records", "segment exceeds u32 entries"))?;
    let flen = u32::try_from(filter_len)
        .map_err(|_| PprlError::invalid("filter_len", "exceeds u32 bits"))?;
    let entry_len = 8 + filter_bytes;
    let mut out = Vec::with_capacity(HEADER_LEN + arena.len() * (4 + entry_len) + 8);
    out.extend_from_slice(&SEGMENT_MAGIC.to_le_bytes());
    out.extend_from_slice(&SEGMENT_VERSION.to_le_bytes());
    out.extend_from_slice(&shard.to_le_bytes());
    out.extend_from_slice(&flen.to_le_bytes());
    out.extend_from_slice(&count.to_le_bytes());
    for i in 0..arena.len() {
        out.extend_from_slice(&(entry_len as u32).to_le_bytes());
        out.extend_from_slice(&arena.id(i).to_le_bytes());
        let row = arena.row(i);
        for b in 0..filter_bytes {
            out.push((row[b / 8] >> ((b % 8) * 8)) as u8);
        }
    }
    append_checksum(&mut out);
    Ok(out)
}

/// Parses and verifies a segment file image directly into a columnar
/// [`FilterArena`] — one builder push per entry instead of one `BitVec`
/// heap allocation per record. Validation is identical to
/// [`decode_segment`]: exact structural sizes, the trailing FNV-1a
/// checksum, per-entry length prefixes, and rejection of set bits beyond
/// the declared filter length. Returns the owning shard alongside the
/// arena (rows sorted by `(popcount, id)`; a segment already written in
/// that order — the arena-native flush/compaction output — skips the
/// sort entirely).
pub fn decode_segment_arena(bytes: &[u8]) -> Result<(u32, FilterArena)> {
    if bytes.len() < HEADER_LEN + 8 {
        return Err(storage_err(format!(
            "segment too short: {} bytes",
            bytes.len()
        )));
    }
    let mut header = Reader::new(&bytes[..HEADER_LEN], "segment header");
    let magic = header.u32()?;
    if magic != SEGMENT_MAGIC {
        return Err(storage_err(format!(
            "not a segment file (magic {magic:#x})"
        )));
    }
    let version = header.u16()?;
    if version != SEGMENT_VERSION {
        return Err(storage_err(format!(
            "unsupported segment version {version}"
        )));
    }
    let shard = header.u32()?;
    let filter_len = header.u32()? as usize;
    let count = header.u32()? as usize;
    let filter_bytes = filter_len.div_ceil(8);
    let entry_len = 8 + filter_bytes;
    let expected = HEADER_LEN
        .checked_add(
            count
                .checked_mul(4 + entry_len)
                .ok_or_else(|| storage_err(format!("segment entry count {count} overflows")))?,
        )
        .and_then(|n| n.checked_add(8))
        .ok_or_else(|| storage_err(format!("segment entry count {count} overflows")))?;
    if bytes.len() != expected {
        return Err(storage_err(format!(
            "segment size mismatch: header declares {count} entries of {entry_len} bytes \
             ({expected} bytes total), file has {}",
            bytes.len()
        )));
    }
    let body = checked_body(bytes, "segment")?;
    let mut r = Reader::new(&body[HEADER_LEN..], "segment entries");
    let stride = BitVec::words_for_len(filter_len);
    let mut builder = ArenaBuilder::with_capacity(filter_len, count);
    let mut row = vec![0u64; stride];
    for i in 0..count {
        let declared = r.u32()? as usize;
        if declared != entry_len {
            return Err(storage_err(format!(
                "segment entry {i} length prefix {declared}, expected {entry_len}"
            )));
        }
        let id = r.u64()?;
        let raw = r.take(filter_bytes)?;
        row.iter_mut().for_each(|w| *w = 0);
        for (b, &byte) in raw.iter().enumerate() {
            row[b / 8] |= (byte as u64) << ((b % 8) * 8);
        }
        // `push` re-checks the tail-bit invariant, matching
        // `BitVec::from_bytes`' rejection of bits set beyond filter_len.
        builder
            .push(id, &row)
            .map_err(|e| storage_err(format!("segment entry {i}: {e}")))?;
    }
    r.finish()?;
    Ok((shard, builder.finish()))
}

/// Writes a segment file (whole-file write; segments are immutable).
pub fn write_segment(
    path: &Path,
    shard: u32,
    filter_len: usize,
    records: &[(u64, &BitVec)],
) -> Result<()> {
    write_segment_with(&StdVfs, path, shard, filter_len, records)
}

/// [`write_segment`] through an injectable [`Vfs`]. Durably persists the
/// file's *content* (write + fsync); making its directory entry durable
/// is the caller's barrier (`sync_dir` once per batch of segments).
pub fn write_segment_with(
    vfs: &dyn Vfs,
    path: &Path,
    shard: u32,
    filter_len: usize,
    records: &[(u64, &BitVec)],
) -> Result<()> {
    let bytes = encode_segment(shard, filter_len, records)?;
    vfs.write(path, &bytes)
        .map_err(|e| io_err(path, "writing", e))?;
    vfs.sync_file(path).map_err(|e| io_err(path, "syncing", e))
}

/// Writes a segment file straight from an arena's rows through an
/// injectable [`Vfs`] (content write + fsync; the directory barrier is
/// the caller's, as with [`write_segment_with`]).
pub fn write_segment_arena_with(
    vfs: &dyn Vfs,
    path: &Path,
    shard: u32,
    arena: &FilterArena,
) -> Result<()> {
    let bytes = encode_segment_from_arena(shard, arena)?;
    vfs.write(path, &bytes)
        .map_err(|e| io_err(path, "writing", e))?;
    vfs.sync_file(path).map_err(|e| io_err(path, "syncing", e))
}

/// Reads and verifies a segment file.
pub fn read_segment(path: &Path) -> Result<Segment> {
    read_segment_with(&StdVfs, path)
}

/// [`read_segment`] through an injectable [`Vfs`].
pub fn read_segment_with(vfs: &dyn Vfs, path: &Path) -> Result<Segment> {
    let bytes = vfs.read(path).map_err(|e| io_err(path, "reading", e))?;
    decode_segment(&bytes).map_err(|e| storage_err(format!("{}: {e}", path.display())))
}

/// Reads and verifies a segment file directly into a columnar arena.
pub fn read_segment_arena_with(vfs: &dyn Vfs, path: &Path) -> Result<(u32, FilterArena)> {
    let bytes = vfs.read(path).map_err(|e| io_err(path, "reading", e))?;
    decode_segment_arena(&bytes).map_err(|e| storage_err(format!("{}: {e}", path.display())))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_records(n: usize, len: usize) -> Vec<(u64, BitVec)> {
        (0..n)
            .map(|i| {
                let ones: Vec<usize> = (0..len).filter(|p| (p + i) % 7 == 0).collect();
                (
                    i as u64 * 3 + 1,
                    BitVec::from_positions(len, &ones).unwrap(),
                )
            })
            .collect()
    }

    fn refs(records: &[(u64, BitVec)]) -> Vec<(u64, &BitVec)> {
        records.iter().map(|(id, f)| (*id, f)).collect()
    }

    #[test]
    fn round_trip_preserves_everything() {
        let records = sample_records(5, 100);
        let bytes = encode_segment(3, 100, &refs(&records)).unwrap();
        let seg = decode_segment(&bytes).unwrap();
        assert_eq!(seg.shard, 3);
        assert_eq!(seg.filter_len, 100);
        assert_eq!(seg.records.len(), 5);
        for ((id, filter), rec) in records.iter().zip(&seg.records) {
            assert_eq!(*id, rec.id);
            assert_eq!(*filter, rec.filter);
        }
    }

    #[test]
    fn empty_segment_round_trips() {
        let bytes = encode_segment(0, 64, &[]).unwrap();
        let seg = decode_segment(&bytes).unwrap();
        assert!(seg.records.is_empty());
        assert_eq!(seg.filter_len, 64);
    }

    #[test]
    fn every_single_byte_flip_is_detected() {
        let records = sample_records(3, 80);
        let bytes = encode_segment(1, 80, &refs(&records)).unwrap();
        for pos in 0..bytes.len() {
            for bit in 0..8 {
                let mut bad = bytes.clone();
                bad[pos] ^= 1u8 << bit;
                let err = decode_segment(&bad).expect_err(&format!("byte {pos} bit {bit}"));
                assert!(
                    matches!(err, PprlError::Storage(_)),
                    "byte {pos} bit {bit}: {err}"
                );
            }
        }
    }

    #[test]
    fn every_truncation_is_detected() {
        let records = sample_records(4, 64);
        let bytes = encode_segment(0, 64, &refs(&records)).unwrap();
        for cut in 0..bytes.len() {
            let err = decode_segment(&bytes[..cut]).expect_err(&format!("cut at {cut}"));
            assert!(matches!(err, PprlError::Storage(_)), "cut {cut}: {err}");
        }
    }

    #[test]
    fn extension_is_detected() {
        let records = sample_records(2, 64);
        let mut bytes = encode_segment(0, 64, &refs(&records)).unwrap();
        bytes.push(0);
        assert!(matches!(
            decode_segment(&bytes).unwrap_err(),
            PprlError::Storage(_)
        ));
    }

    #[test]
    fn filter_length_mismatch_rejected_at_encode() {
        let f = BitVec::zeros(32);
        let err = encode_segment(0, 64, &[(1, &f)]).unwrap_err();
        assert!(matches!(err, PprlError::ShapeMismatch { .. }), "{err}");
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("pprl-index-segment-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("seg-0.seg");
        let records = sample_records(6, 120);
        write_segment(&path, 2, 120, &refs(&records)).unwrap();
        let seg = read_segment(&path).unwrap();
        assert_eq!(seg.records.len(), 6);
        assert_eq!(seg.shard, 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_file_is_storage_error() {
        let err = read_segment(Path::new("/nonexistent/seg.seg")).unwrap_err();
        assert!(matches!(err, PprlError::Storage(_)), "{err}");
    }

    #[test]
    fn arena_encode_is_byte_identical_to_record_encode() {
        for len in [63usize, 64, 80, 100, 129] {
            let mut records = sample_records(9, len);
            // Arena row order is (popcount, id); feed the record encoder
            // the same order so the images must match byte for byte.
            records.sort_by_key(|(id, f)| (f.count_ones(), *id));
            let via_records = encode_segment(5, len, &refs(&records)).unwrap();
            let arena = crate::arena::FilterArena::from_records(records, len).unwrap();
            let via_arena = encode_segment_from_arena(5, &arena).unwrap();
            assert_eq!(via_records, via_arena, "len={len}");
        }
    }

    #[test]
    fn arena_decode_round_trips_and_matches_record_decode() {
        for len in [63usize, 64, 100, 130] {
            let records = sample_records(7, len);
            let bytes = encode_segment(2, len, &refs(&records)).unwrap();
            let seg = decode_segment(&bytes).unwrap();
            let (shard, arena) = decode_segment_arena(&bytes).unwrap();
            assert_eq!(shard, 2);
            assert_eq!(arena.filter_len(), len);
            assert_eq!(arena.len(), seg.records.len());
            let mut expect: Vec<(u64, BitVec)> =
                seg.records.into_iter().map(|r| (r.id, r.filter)).collect();
            expect.sort_by_key(|(id, f)| (f.count_ones(), *id));
            for (i, (id, filter)) in expect.iter().enumerate() {
                let (got_id, got_filter) = arena.get(i).unwrap();
                assert_eq!(got_id, *id, "len={len} row {i}");
                assert_eq!(&got_filter, filter, "len={len} row {i}");
            }
            // Decode→encode of an already-sorted image is the identity.
            let sorted_bytes = encode_segment_from_arena(2, &arena).unwrap();
            let (_, again) = decode_segment_arena(&sorted_bytes).unwrap();
            assert_eq!(
                encode_segment_from_arena(2, &again).unwrap(),
                sorted_bytes,
                "len={len}"
            );
        }
    }

    #[test]
    fn arena_decode_detects_every_byte_flip_and_truncation() {
        let records = sample_records(3, 80);
        let bytes = encode_segment(1, 80, &refs(&records)).unwrap();
        for pos in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[pos] ^= 0x10;
            let err = decode_segment_arena(&bad).expect_err(&format!("byte {pos}"));
            assert!(matches!(err, PprlError::Storage(_)), "byte {pos}: {err}");
        }
        for cut in 0..bytes.len() {
            let err = decode_segment_arena(&bytes[..cut]).expect_err(&format!("cut at {cut}"));
            assert!(matches!(err, PprlError::Storage(_)), "cut {cut}: {err}");
        }
    }
}
