//! Per-segment band-key Bloom summaries for content-based pruning.
//!
//! Popcount bounds prune segments whose filters are the wrong *length*
//! for a Dice threshold; summaries prune segments with the wrong
//! *content*. The construction keeps pruning lossless for exact top-k:
//!
//! * `tables` pairwise-**disjoint** sets of `bits` filter positions are
//!   sampled deterministically from the manifest's LSH seed
//!   ([`summary_positions`]).
//! * Each stored filter contributes one `bits`-wide key per table (the
//!   filter's bits at that table's positions); every `(table, key)` pair
//!   is inserted into a small per-segment Bloom filter
//!   ([`BandKeySummary`]). Blooms have no false negatives, so "key
//!   absent" is a proof.
//! * At query time, if the query's key misses in **all** `tables`
//!   tables, every record in the segment differs from the query in at
//!   least one position *per table*; the position sets are disjoint, so
//!   the Hamming distance is at least `tables`. Substituting
//!   `H = q + x − 2·|a∧b|` into Dice gives
//!   `dice = (q + x − H)/(q + x) ≤ (q + x − tables)/(q + x)`, which is
//!   increasing in `x` — evaluate it at the segment's `pc_max` and a
//!   sound upper bound for the whole segment falls out
//!   ([`no_match_dice_bound`]). If that bound is below the current
//!   threshold, the segment cannot contribute a hit and its arena is
//!   never materialised.

use pprl_core::bitvec::BitVec;
use pprl_core::rng::SplitMix64;

/// Stream id used when forking the summary position RNG off the
/// manifest's LSH seed (keeps it independent of shard routing, which
/// forks with a different stream).
const SUMMARY_STREAM: u64 = 0x5355_4d52; // "SUMR"
/// Bloom probes per inserted key.
const BLOOM_PROBES: u32 = 4;
/// Target Bloom bits per inserted `(table, key)` pair.
const BLOOM_BITS_PER_KEY: usize = 16;
/// Smallest Bloom size in bits (power of two).
const BLOOM_MIN_BITS: usize = 1024;
/// Largest Bloom size in bits (power of two) — 16 KiB per segment.
const BLOOM_MAX_BITS: usize = 131_072;

/// Band-key summary geometry, fixed per index in the manifest.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SummaryConfig {
    /// Number of disjoint position tables (0 disables summaries).
    pub tables: u16,
    /// Sampled filter positions per table.
    pub bits: u16,
}

impl SummaryConfig {
    /// Default geometry: 8 tables × 16 bits = 128 disjoint positions.
    pub const DEFAULT: SummaryConfig = SummaryConfig {
        tables: 8,
        bits: 16,
    };

    /// Summaries switched off (what v1/v2 manifests decode to).
    pub const DISABLED: SummaryConfig = SummaryConfig { tables: 0, bits: 0 };

    /// The default geometry when the filter is long enough to donate
    /// `tables × bits` disjoint positions, otherwise disabled.
    pub fn for_filter_len(filter_len: usize) -> SummaryConfig {
        let need = Self::DEFAULT.tables as usize * Self::DEFAULT.bits as usize;
        if filter_len >= need {
            Self::DEFAULT
        } else {
            Self::DISABLED
        }
    }

    /// True when summaries are built and consulted.
    pub fn enabled(&self) -> bool {
        self.tables > 0 && self.bits > 0
    }
}

/// Samples `tables` pairwise-disjoint sets of `bits` positions in
/// `0..filter_len`, deterministically from `seed`. Returns an empty
/// vector when the config is disabled or the filter is too short.
pub fn summary_positions(seed: u64, filter_len: usize, config: SummaryConfig) -> Vec<Vec<usize>> {
    let tables = config.tables as usize;
    let bits = config.bits as usize;
    if !config.enabled() || filter_len < tables * bits {
        return Vec::new();
    }
    let mut rng = SplitMix64::new(seed).fork(SUMMARY_STREAM);
    let perm = rng.permutation(filter_len);
    perm.chunks(bits)
        .take(tables)
        .map(|chunk| chunk.to_vec())
        .collect()
}

/// The query/record key for each table: bit `j` of table `t`'s key is
/// the filter bit at `positions[t][j]`.
pub fn band_keys(filter: &BitVec, positions: &[Vec<usize>]) -> Vec<u64> {
    band_keys_words(filter.as_words(), positions)
}

/// [`band_keys`] over a filter's backing words (little-endian bit
/// order), for callers holding arena rows rather than `BitVec`s. Every
/// position must be within the words' bit span; positions come from
/// [`summary_positions`], which samples below the filter length.
pub fn band_keys_words(words: &[u64], positions: &[Vec<usize>]) -> Vec<u64> {
    let mut keys = Vec::with_capacity(positions.len());
    band_keys_words_into(words, positions, &mut keys);
    keys
}

/// [`band_keys_words`] into a caller-owned buffer (cleared first), so
/// per-record loops — segment sealing walks every arena row — can reuse
/// one allocation across the whole segment.
pub fn band_keys_words_into(words: &[u64], positions: &[Vec<usize>], keys: &mut Vec<u64>) {
    keys.clear();
    keys.extend(positions.iter().map(|table| {
        let mut key = 0u64;
        for (j, &pos) in table.iter().enumerate() {
            if (words[pos / 64] >> (pos % 64)) & 1 == 1 {
                key |= 1u64 << j;
            }
        }
        key
    }));
}

/// Sound Dice upper bound for a query (popcount `q`) against any record
/// in a segment whose keys missed the summary in all `tables` tables and
/// whose largest popcount is `pc_max`: Hamming distance is at least
/// `tables`, so `dice ≤ (q + pc_max − tables)/(q + pc_max)`.
pub fn no_match_dice_bound(q: usize, pc_max: usize, tables: usize) -> f64 {
    let denom = q + pc_max;
    if denom == 0 {
        // Both sides empty: dice is 1.0 by convention (and the all-zero
        // key would have been found in the summary anyway).
        return 1.0;
    }
    (denom.saturating_sub(tables)) as f64 / denom as f64
}

/// A per-segment Bloom filter over `(table, key)` pairs.
///
/// Power-of-two sized, 4 probes per key via double hashing. No false
/// negatives, so [`BandKeySummary::contains_any`] returning `false` is a
/// proof that no stored record shares a band key with the query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BandKeySummary {
    words: Vec<u64>,
}

impl BandKeySummary {
    /// An empty summary sized for `records` stored filters (16 bits per
    /// expected key, power-of-two clamped to `[1024, 131072]` bits).
    pub fn with_capacity(records: usize, tables: usize) -> BandKeySummary {
        let want = records
            .saturating_mul(tables)
            .saturating_mul(BLOOM_BITS_PER_KEY)
            .clamp(BLOOM_MIN_BITS, BLOOM_MAX_BITS);
        let bits = want.next_power_of_two().min(BLOOM_MAX_BITS);
        BandKeySummary {
            words: vec![0u64; bits / 64],
        }
    }

    /// Reconstructs a summary from its stored words (must be a non-empty
    /// power-of-two word count; callers validate via the manifest codec).
    pub fn from_words(words: Vec<u64>) -> BandKeySummary {
        BandKeySummary { words }
    }

    /// The backing words (for serialisation).
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Double-hashing probe positions for `(table, key)`.
    fn probes(&self, table: usize, key: u64) -> [usize; BLOOM_PROBES as usize] {
        let mask = self.words.len() * 64 - 1;
        // SplitMix64-style finalisers keep h1/h2 well mixed and cheap.
        let mut x = key
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(table as u64 + 1);
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        let h1 = x ^ (x >> 31);
        // h2 must not be a low-bits function of h1: `h1 * C | 1` would
        // make `h2 mod m` collide whenever `h1 mod m` does (multiplication
        // preserves low bits), turning every h1 collision into a full
        // 4-probe collision. The high half of h1 is independent of
        // `h1 mod m` for any power-of-two m ≤ 2^32. Odd, so probes cycle.
        let h2 = (h1 >> 32) | 1;
        let mut out = [0usize; BLOOM_PROBES as usize];
        for (i, slot) in out.iter_mut().enumerate() {
            *slot = (h1.wrapping_add(h2.wrapping_mul(i as u64)) as usize) & mask;
        }
        out
    }

    /// Inserts the `(table, key)` pair.
    pub fn insert(&mut self, table: usize, key: u64) {
        for bit in self.probes(table, key) {
            self.words[bit / 64] |= 1u64 << (bit % 64);
        }
    }

    /// True when the pair may have been inserted (false is a proof of
    /// absence).
    pub fn contains(&self, table: usize, key: u64) -> bool {
        self.probes(table, key)
            .iter()
            .all(|&bit| self.words[bit / 64] & (1u64 << (bit % 64)) != 0)
    }

    /// True when `keys[t]` may be present in table `t` for *any* table —
    /// i.e. false means the query missed every table and the
    /// [`no_match_dice_bound`] applies to the whole segment.
    pub fn contains_any(&self, keys: &[u64]) -> bool {
        keys.iter()
            .enumerate()
            .any(|(table, &key)| self.contains(table, key))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn random_filter(len: usize, rng: &mut SplitMix64) -> BitVec {
        let ones: Vec<usize> = (0..len)
            .filter(|_| rng.next_u64().is_multiple_of(3))
            .collect();
        BitVec::from_positions(len, &ones).unwrap()
    }

    #[test]
    fn positions_are_disjoint_deterministic_and_sized() {
        let cfg = SummaryConfig::DEFAULT;
        let pos = summary_positions(0x5eed, 1000, cfg);
        assert_eq!(pos.len(), cfg.tables as usize);
        let mut seen = std::collections::HashSet::new();
        for table in &pos {
            assert_eq!(table.len(), cfg.bits as usize);
            for &p in table {
                assert!(p < 1000);
                assert!(seen.insert(p), "position {p} appears in two tables");
            }
        }
        assert_eq!(pos, summary_positions(0x5eed, 1000, cfg));
        assert_ne!(pos, summary_positions(0x5eee, 1000, cfg));
        // Too-short filters and disabled configs sample nothing.
        assert!(summary_positions(0x5eed, 100, cfg).is_empty());
        assert!(summary_positions(0x5eed, 1000, SummaryConfig::DISABLED).is_empty());
    }

    #[test]
    fn config_gates_on_filter_len() {
        assert!(SummaryConfig::for_filter_len(1000).enabled());
        assert_eq!(SummaryConfig::for_filter_len(128), SummaryConfig::DEFAULT);
        assert!(!SummaryConfig::for_filter_len(127).enabled());
        assert!(!SummaryConfig::DISABLED.enabled());
    }

    #[test]
    fn no_false_negatives_ever() {
        // The load-bearing Bloom property: every inserted record's keys
        // are found by contains_any, no matter the fill level.
        let mut rng = SplitMix64::new(77);
        let pos = summary_positions(0x5eed, 1000, SummaryConfig::DEFAULT);
        let filters: Vec<BitVec> = (0..500).map(|_| random_filter(1000, &mut rng)).collect();
        let mut summary = BandKeySummary::with_capacity(filters.len(), pos.len());
        for f in &filters {
            for (t, key) in band_keys(f, &pos).iter().enumerate() {
                summary.insert(t, *key);
            }
        }
        for f in &filters {
            let keys = band_keys(f, &pos);
            assert!(summary.contains_any(&keys));
            for (t, &key) in keys.iter().enumerate() {
                assert!(summary.contains(t, key));
            }
        }
    }

    #[test]
    fn unrelated_keys_mostly_miss() {
        let mut rng = SplitMix64::new(3);
        let pos = summary_positions(0x5eed, 1000, SummaryConfig::DEFAULT);
        let mut summary = BandKeySummary::with_capacity(20, pos.len());
        for _ in 0..20 {
            let f = random_filter(1000, &mut rng);
            for (t, key) in band_keys(&f, &pos).iter().enumerate() {
                summary.insert(t, *key);
            }
        }
        // Random 16-bit keys against a sparse summary: the vast majority
        // of probes must miss, or pruning would never fire.
        let misses = (0..200)
            .filter(|_| {
                let keys: Vec<u64> = (0..8).map(|_| rng.next_u64() & 0xffff).collect();
                !summary.contains_any(&keys)
            })
            .count();
        assert!(misses > 150, "only {misses}/200 random key sets missed");
    }

    #[test]
    fn dice_bound_is_sound_and_tight() {
        // Hamming ≥ T means dice ≤ (q+x−T)/(q+x); check against explicit
        // worst cases.
        assert_eq!(no_match_dice_bound(0, 0, 8), 1.0);
        assert_eq!(no_match_dice_bound(4, 0, 8), 0.0); // saturates
        let b = no_match_dice_bound(100, 100, 8);
        assert!((b - 192.0 / 200.0).abs() < 1e-12);
        // Monotonic in pc_max: larger filters weaken the bound.
        assert!(no_match_dice_bound(100, 200, 8) > b);
    }

    #[test]
    fn summary_words_round_trip() {
        let mut s = BandKeySummary::with_capacity(10, 8);
        s.insert(0, 42);
        s.insert(7, 99);
        let restored = BandKeySummary::from_words(s.words().to_vec());
        assert_eq!(restored, s);
        assert!(restored.contains(0, 42));
        assert!(restored.contains(7, 99));
    }
}
