//! Columnar filter arena: one shard slot's filters as a flat word array.
//!
//! Instead of a `Vec<BitVec>` (one heap allocation and pointer chase per
//! record), an arena stores every filter back-to-back in a single
//! contiguous `Vec<u64>` with a fixed words-per-filter `stride`, plus
//! parallel `ids` and `popcounts` arrays. Rows are sorted ascending by
//! `(popcount, id)`, so any contiguous row range supports the same
//! popcount-based Dice upper-bound reasoning as the old per-record
//! layout, and the scan kernel walks memory strictly linearly. Row `i`'s
//! words are `words[i * stride .. (i + 1) * stride]`; four consecutive
//! rows form one block for the batched `and_count4` kernel.

use crate::format::storage_err;
use pprl_core::bitvec::BitVec;
use pprl_core::error::Result;

/// A popcount-sorted, flat columnar store of equal-length filters.
#[derive(Debug, Default)]
pub struct FilterArena {
    /// Words per filter (`BitVec::words_for_len(filter_len)`).
    stride: usize,
    /// Filter length in bits.
    filter_len: usize,
    /// All filter words, row-major: row `i` at `i*stride..(i+1)*stride`.
    words: Vec<u64>,
    /// Record ids, parallel to rows.
    ids: Vec<u64>,
    /// Filter popcounts, parallel to rows, ascending.
    popcounts: Vec<u32>,
}

impl FilterArena {
    /// Builds an arena from `(id, filter)` records, sorting rows by
    /// `(popcount, id)`. Every filter must have `filter_len` bits.
    pub fn from_records(records: Vec<(u64, BitVec)>, filter_len: usize) -> Result<FilterArena> {
        let mut builder = ArenaBuilder::with_capacity(filter_len, records.len());
        for (id, filter) in &records {
            builder.push_filter(*id, filter)?;
        }
        Ok(builder.finish())
    }

    /// Number of rows (records).
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// True when the arena holds no rows.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Words per filter row.
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// Filter length in bits.
    pub fn filter_len(&self) -> usize {
        self.filter_len
    }

    /// Row `i`'s filter words.
    #[inline]
    pub fn row(&self, i: usize) -> &[u64] {
        &self.words[i * self.stride..(i + 1) * self.stride]
    }

    /// The whole word array (row-major).
    #[inline]
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Record id of row `i`.
    #[inline]
    pub fn id(&self, i: usize) -> u64 {
        self.ids[i]
    }

    /// Popcount of row `i`'s filter.
    #[inline]
    pub fn popcount(&self, i: usize) -> u32 {
        self.popcounts[i]
    }

    /// All row popcounts (ascending).
    #[inline]
    pub fn popcounts(&self) -> &[u32] {
        &self.popcounts
    }

    /// Smallest popcount in the arena (`None` when empty).
    pub fn pc_min(&self) -> Option<u32> {
        self.popcounts.first().copied()
    }

    /// Largest popcount in the arena (`None` when empty).
    pub fn pc_max(&self) -> Option<u32> {
        self.popcounts.last().copied()
    }

    /// Approximate heap footprint in bytes (words + ids + popcounts).
    pub fn bytes(&self) -> usize {
        self.words.len() * 8 + self.ids.len() * 8 + self.popcounts.len() * 4
    }

    /// Reconstructs row `i` as an owned `(id, BitVec)` pair.
    pub fn get(&self, i: usize) -> Result<(u64, BitVec)> {
        let filter = BitVec::from_words(self.row(i).to_vec(), self.filter_len)?;
        Ok((self.ids[i], filter))
    }
}

/// Streaming constructor for [`FilterArena`]: rows are pushed one at a
/// time as `(id, &[u64])` word slices (or `BitVec`s) with **no
/// per-record heap allocation** — each push appends to the builder's
/// three flat arrays. Rows may arrive in any order; [`finish`] sorts by
/// `(popcount, id)` only if the input was not already sorted, so a
/// k-way merge that pushes rows in key order pays nothing.
///
/// The builder doubles as the store's columnar `pending` buffer: it
/// preserves insertion order until `finish`, and exposes row accessors
/// so the WAL image and per-shard flush can iterate it in place.
///
/// [`finish`]: ArenaBuilder::finish
#[derive(Debug)]
pub struct ArenaBuilder {
    stride: usize,
    filter_len: usize,
    words: Vec<u64>,
    ids: Vec<u64>,
    popcounts: Vec<u32>,
    /// True while rows so far are ascending by `(popcount, id)`.
    sorted: bool,
}

impl ArenaBuilder {
    /// An empty builder for `filter_len`-bit rows.
    pub fn new(filter_len: usize) -> ArenaBuilder {
        ArenaBuilder::with_capacity(filter_len, 0)
    }

    /// An empty builder preallocated for `rows` rows.
    pub fn with_capacity(filter_len: usize, rows: usize) -> ArenaBuilder {
        let stride = BitVec::words_for_len(filter_len);
        ArenaBuilder {
            stride,
            filter_len,
            words: Vec::with_capacity(rows * stride),
            ids: Vec::with_capacity(rows),
            popcounts: Vec::with_capacity(rows),
            sorted: true,
        }
    }

    /// Appends one row from its backing words (little-endian bit order,
    /// as produced by [`BitVec::as_words`]). Rejects a wrong word count
    /// and set bits beyond `filter_len` — a poisoned popcount would
    /// silently break the sorted-arena pruning bounds.
    pub fn push(&mut self, id: u64, row: &[u64]) -> Result<()> {
        if row.len() != self.stride {
            return Err(storage_err(format!(
                "record {id} has {} words, arena expects {} ({} bits)",
                row.len(),
                self.stride,
                self.filter_len
            )));
        }
        let rem = self.filter_len % 64;
        if rem != 0 {
            if let Some(&last) = row.last() {
                if last & !((1u64 << rem) - 1) != 0 {
                    return Err(storage_err(format!(
                        "record {id} has bits set beyond its {} bit length",
                        self.filter_len
                    )));
                }
            }
        }
        let pc: u32 = row.iter().map(|w| w.count_ones()).sum();
        if self.sorted {
            if let (Some(&prev_pc), Some(&prev_id)) = (self.popcounts.last(), self.ids.last()) {
                if (pc, id) < (prev_pc, prev_id) {
                    self.sorted = false;
                }
            }
        }
        self.words.extend_from_slice(row);
        self.ids.push(id);
        self.popcounts.push(pc);
        Ok(())
    }

    /// Appends one row from a `BitVec` (must be `filter_len` bits).
    pub fn push_filter(&mut self, id: u64, filter: &BitVec) -> Result<()> {
        if filter.len() != self.filter_len {
            return Err(storage_err(format!(
                "record {id} has {} bits, arena expects {}",
                filter.len(),
                self.filter_len
            )));
        }
        self.push(id, filter.as_words())
    }

    /// Number of rows pushed so far.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// True when no rows have been pushed.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Words per row.
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// Row length in bits.
    pub fn filter_len(&self) -> usize {
        self.filter_len
    }

    /// Row `i`'s words, in insertion order.
    #[inline]
    pub fn row(&self, i: usize) -> &[u64] {
        &self.words[i * self.stride..(i + 1) * self.stride]
    }

    /// Record id of row `i`, in insertion order.
    #[inline]
    pub fn id(&self, i: usize) -> u64 {
        self.ids[i]
    }

    /// All record ids, in insertion order.
    #[inline]
    pub fn ids(&self) -> &[u64] {
        &self.ids
    }

    /// Popcount of row `i`.
    #[inline]
    pub fn popcount(&self, i: usize) -> u32 {
        self.popcounts[i]
    }

    /// Approximate heap footprint in bytes (words + ids + popcounts).
    pub fn bytes(&self) -> usize {
        self.words.len() * 8 + self.ids.len() * 8 + self.popcounts.len() * 4
    }

    /// Drops every row, keeping the allocations for reuse.
    pub fn clear(&mut self) {
        self.words.clear();
        self.ids.clear();
        self.popcounts.clear();
        self.sorted = true;
    }

    /// Reconstructs row `i` as an owned `(id, BitVec)` pair.
    pub fn get(&self, i: usize) -> Result<(u64, BitVec)> {
        let filter = BitVec::from_words(self.row(i).to_vec(), self.filter_len)?;
        Ok((self.ids[i], filter))
    }

    /// Finalises into a popcount-sorted [`FilterArena`]. When rows were
    /// pushed already sorted by `(popcount, id)` — the k-way merge and
    /// sorted-segment decode cases — this is a move with no copying; the
    /// sort (stable, so duplicate keys keep insertion order) runs only
    /// for genuinely unordered input.
    pub fn finish(self) -> FilterArena {
        if self.sorted {
            return FilterArena {
                stride: self.stride,
                filter_len: self.filter_len,
                words: self.words,
                ids: self.ids,
                popcounts: self.popcounts,
            };
        }
        let mut order: Vec<u32> = (0..self.ids.len() as u32).collect();
        order.sort_by_key(|&i| (self.popcounts[i as usize], self.ids[i as usize], i));
        let mut words = Vec::with_capacity(self.words.len());
        let mut ids = Vec::with_capacity(self.ids.len());
        let mut popcounts = Vec::with_capacity(self.popcounts.len());
        for &i in &order {
            let i = i as usize;
            words.extend_from_slice(&self.words[i * self.stride..(i + 1) * self.stride]);
            ids.push(self.ids[i]);
            popcounts.push(self.popcounts[i]);
        }
        FilterArena {
            stride: self.stride,
            filter_len: self.filter_len,
            words,
            ids,
            popcounts,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pprl_core::error::PprlError;
    use pprl_core::rng::SplitMix64;

    fn random_records(n: usize, len: usize, seed: u64) -> Vec<(u64, BitVec)> {
        let mut rng = SplitMix64::new(seed);
        (0..n)
            .map(|i| {
                let ones: Vec<usize> = (0..len)
                    .filter(|_| rng.next_u64().is_multiple_of(3))
                    .collect();
                (i as u64, BitVec::from_positions(len, &ones).unwrap())
            })
            .collect()
    }

    #[test]
    fn rows_are_popcount_sorted_and_round_trip() {
        let records = random_records(60, 100, 9);
        let arena = FilterArena::from_records(records.clone(), 100).unwrap();
        assert_eq!(arena.len(), 60);
        assert_eq!(arena.stride(), 2);
        assert_eq!(arena.words().len(), 120);
        let mut prev = (0u32, 0u64);
        let mut seen = std::collections::HashSet::new();
        for i in 0..arena.len() {
            let key = (arena.popcount(i), arena.id(i));
            assert!(i == 0 || key > prev, "rows not sorted at {i}");
            prev = key;
            let (id, filter) = arena.get(i).unwrap();
            let original = &records.iter().find(|(rid, _)| *rid == id).unwrap().1;
            assert_eq!(&filter, original, "row {i} round-trip");
            assert_eq!(arena.popcount(i) as usize, original.count_ones());
            seen.insert(id);
        }
        assert_eq!(seen.len(), 60, "every record present exactly once");
        assert_eq!(arena.pc_min(), Some(arena.popcount(0)));
        assert_eq!(arena.pc_max(), Some(arena.popcount(59)));
    }

    #[test]
    fn rejects_wrong_length_and_handles_empty() {
        let err = FilterArena::from_records(vec![(0, BitVec::zeros(32))], 64).unwrap_err();
        assert!(matches!(err, PprlError::Storage(_)), "{err}");
        let arena = FilterArena::from_records(Vec::new(), 64).unwrap();
        assert!(arena.is_empty());
        assert_eq!(arena.pc_min(), None);
        assert_eq!(arena.pc_max(), None);
    }

    #[test]
    fn builder_matches_from_records_in_any_insertion_order() {
        let records = random_records(80, 100, 41);
        let oracle = FilterArena::from_records(records.clone(), 100).unwrap();
        // Insertion order (unsorted input) and pre-sorted order must both
        // finish into the identical arena.
        let mut unsorted = ArenaBuilder::with_capacity(100, records.len());
        for (id, f) in &records {
            unsorted.push(*id, f.as_words()).unwrap();
        }
        let mut sorted_recs = records.clone();
        sorted_recs.sort_by_key(|(id, f)| (f.count_ones(), *id));
        let mut sorted = ArenaBuilder::new(100);
        for (id, f) in &sorted_recs {
            sorted.push_filter(*id, f).unwrap();
        }
        for arena in [unsorted.finish(), sorted.finish()] {
            assert_eq!(arena.words(), oracle.words());
            assert_eq!(arena.popcounts(), oracle.popcounts());
            assert_eq!(arena.len(), oracle.len());
            for i in 0..arena.len() {
                assert_eq!(arena.id(i), oracle.id(i));
            }
        }
    }

    #[test]
    fn builder_rejects_bad_stride_and_tail_bits() {
        let mut b = ArenaBuilder::new(100); // stride 2, 36 tail bits
        let err = b.push(7, &[0u64; 3]).unwrap_err();
        assert!(matches!(err, PprlError::Storage(_)), "{err}");
        // Bit 100 set (beyond filter_len) must be rejected, not counted.
        let err = b.push(8, &[0u64, 1u64 << 36]).unwrap_err();
        assert!(matches!(err, PprlError::Storage(_)), "{err}");
        assert!(b.is_empty());
        b.push(9, &[u64::MAX, (1u64 << 36) - 1]).unwrap();
        assert_eq!(b.popcount(0), 100);
        b.clear();
        assert!(b.is_empty());
    }
}
