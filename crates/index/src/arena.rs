//! Columnar filter arena: one shard slot's filters as a flat word array.
//!
//! Instead of a `Vec<BitVec>` (one heap allocation and pointer chase per
//! record), an arena stores every filter back-to-back in a single
//! contiguous `Vec<u64>` with a fixed words-per-filter `stride`, plus
//! parallel `ids` and `popcounts` arrays. Rows are sorted ascending by
//! `(popcount, id)`, so any contiguous row range supports the same
//! popcount-based Dice upper-bound reasoning as the old per-record
//! layout, and the scan kernel walks memory strictly linearly. Row `i`'s
//! words are `words[i * stride .. (i + 1) * stride]`; four consecutive
//! rows form one block for the batched `and_count4` kernel.

use crate::format::storage_err;
use pprl_core::bitvec::BitVec;
use pprl_core::error::Result;

/// A popcount-sorted, flat columnar store of equal-length filters.
#[derive(Debug, Default)]
pub struct FilterArena {
    /// Words per filter (`BitVec::words_for_len(filter_len)`).
    stride: usize,
    /// Filter length in bits.
    filter_len: usize,
    /// All filter words, row-major: row `i` at `i*stride..(i+1)*stride`.
    words: Vec<u64>,
    /// Record ids, parallel to rows.
    ids: Vec<u64>,
    /// Filter popcounts, parallel to rows, ascending.
    popcounts: Vec<u32>,
}

impl FilterArena {
    /// Builds an arena from `(id, filter)` records, sorting rows by
    /// `(popcount, id)`. Every filter must have `filter_len` bits.
    pub fn from_records(records: Vec<(u64, BitVec)>, filter_len: usize) -> Result<FilterArena> {
        let stride = BitVec::words_for_len(filter_len);
        let mut rows = Vec::with_capacity(records.len());
        for (id, filter) in records {
            if filter.len() != filter_len {
                return Err(storage_err(format!(
                    "record {id} has {} bits, arena expects {filter_len}",
                    filter.len()
                )));
            }
            rows.push((filter.count_ones() as u32, id, filter));
        }
        rows.sort_by_key(|&(pc, id, _)| (pc, id));
        let mut words = Vec::with_capacity(rows.len() * stride);
        let mut ids = Vec::with_capacity(rows.len());
        let mut popcounts = Vec::with_capacity(rows.len());
        for (pc, id, filter) in rows {
            words.extend_from_slice(filter.as_words());
            ids.push(id);
            popcounts.push(pc);
        }
        Ok(FilterArena {
            stride,
            filter_len,
            words,
            ids,
            popcounts,
        })
    }

    /// Number of rows (records).
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// True when the arena holds no rows.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Words per filter row.
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// Filter length in bits.
    pub fn filter_len(&self) -> usize {
        self.filter_len
    }

    /// Row `i`'s filter words.
    #[inline]
    pub fn row(&self, i: usize) -> &[u64] {
        &self.words[i * self.stride..(i + 1) * self.stride]
    }

    /// The whole word array (row-major).
    #[inline]
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Record id of row `i`.
    #[inline]
    pub fn id(&self, i: usize) -> u64 {
        self.ids[i]
    }

    /// Popcount of row `i`'s filter.
    #[inline]
    pub fn popcount(&self, i: usize) -> u32 {
        self.popcounts[i]
    }

    /// All row popcounts (ascending).
    #[inline]
    pub fn popcounts(&self) -> &[u32] {
        &self.popcounts
    }

    /// Smallest popcount in the arena (`None` when empty).
    pub fn pc_min(&self) -> Option<u32> {
        self.popcounts.first().copied()
    }

    /// Largest popcount in the arena (`None` when empty).
    pub fn pc_max(&self) -> Option<u32> {
        self.popcounts.last().copied()
    }

    /// Approximate heap footprint in bytes (words + ids + popcounts).
    pub fn bytes(&self) -> usize {
        self.words.len() * 8 + self.ids.len() * 8 + self.popcounts.len() * 4
    }

    /// Reconstructs row `i` as an owned `(id, BitVec)` pair.
    pub fn get(&self, i: usize) -> Result<(u64, BitVec)> {
        let filter = BitVec::from_words(self.row(i).to_vec(), self.filter_len)?;
        Ok((self.ids[i], filter))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pprl_core::error::PprlError;
    use pprl_core::rng::SplitMix64;

    fn random_records(n: usize, len: usize, seed: u64) -> Vec<(u64, BitVec)> {
        let mut rng = SplitMix64::new(seed);
        (0..n)
            .map(|i| {
                let ones: Vec<usize> = (0..len)
                    .filter(|_| rng.next_u64().is_multiple_of(3))
                    .collect();
                (i as u64, BitVec::from_positions(len, &ones).unwrap())
            })
            .collect()
    }

    #[test]
    fn rows_are_popcount_sorted_and_round_trip() {
        let records = random_records(60, 100, 9);
        let arena = FilterArena::from_records(records.clone(), 100).unwrap();
        assert_eq!(arena.len(), 60);
        assert_eq!(arena.stride(), 2);
        assert_eq!(arena.words().len(), 120);
        let mut prev = (0u32, 0u64);
        let mut seen = std::collections::HashSet::new();
        for i in 0..arena.len() {
            let key = (arena.popcount(i), arena.id(i));
            assert!(i == 0 || key > prev, "rows not sorted at {i}");
            prev = key;
            let (id, filter) = arena.get(i).unwrap();
            let original = &records.iter().find(|(rid, _)| *rid == id).unwrap().1;
            assert_eq!(&filter, original, "row {i} round-trip");
            assert_eq!(arena.popcount(i) as usize, original.count_ones());
            seen.insert(id);
        }
        assert_eq!(seen.len(), 60, "every record present exactly once");
        assert_eq!(arena.pc_min(), Some(arena.popcount(0)));
        assert_eq!(arena.pc_max(), Some(arena.popcount(59)));
    }

    #[test]
    fn rejects_wrong_length_and_handles_empty() {
        let err = FilterArena::from_records(vec![(0, BitVec::zeros(32))], 64).unwrap_err();
        assert!(matches!(err, PprlError::Storage(_)), "{err}");
        let arena = FilterArena::from_records(Vec::new(), 64).unwrap();
        assert!(arena.is_empty());
        assert_eq!(arena.pc_min(), None);
        assert_eq!(arena.pc_max(), None);
    }
}
