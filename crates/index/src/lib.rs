//! # pprl-index
//!
//! A persistent, sharded store of Bloom-filter-encoded records with a
//! concurrent top-k Dice-similarity query engine — the *volume* and
//! *velocity* answer of Figure 3 (§5.1): instead of re-encoding and
//! re-comparing everything in RAM per run, encoded records live on disk in
//! checksummed segment files and are served by a multi-threaded engine at
//! hardware speed.
//!
//! ## On-disk layout
//!
//! ```text
//! <dir>/MANIFEST         versioned, checksummed index of everything below
//! <dir>/wal.log          append log of not-yet-flushed inserts
//! <dir>/seg-<id>.seg     immutable segment files, one shard each
//! ```
//!
//! Every file follows the `protocols::transport` framing conventions: a
//! versioned header, length-prefixed entries and a trailing FNV-1a
//! checksum, so any corruption or truncation surfaces as a typed
//! [`pprl_core::error::PprlError::Storage`] error instead of silently
//! wrong query results.
//!
//! ## Sharding and querying
//!
//! Records are routed to shards by a Hamming-LSH band key (reused from
//! `pprl-blocking`), which keeps Hamming-similar filters co-located.
//! In memory each segment is a columnar [`arena::FilterArena`]: one
//! flat fixed-stride `Vec<u64>` of filter words sorted by `(popcount,
//! id)`, with parallel id and popcount arrays — scanned by the unrolled
//! slice kernels in `pprl-similarity` (4-row blocks score a whole query
//! batch per block load). Queries answer exact top-k Dice similarity:
//! segments whose popcount range or band-key Bloom summary (manifest
//! v3) proves a score ceiling below the running k-th score are skipped
//! — and with [`store::IndexStore::lazy_reader`] never even read from
//! disk — while surviving arenas are walked with per-block Dice
//! upper-bound cutoffs `2·min(q,x)/(q+x)`. All pruning is lossless:
//! results are bit-exact against a brute-force scan. Slots are split
//! into sub-ranges and fanned out over `std::thread::scope` workers.
//!
//! ```
//! use pprl_core::bitvec::BitVec;
//! use pprl_index::store::{IndexConfig, IndexStore};
//!
//! let dir = std::env::temp_dir().join("pprl-index-doc");
//! let _ = std::fs::remove_dir_all(&dir);
//! let mut store = IndexStore::create(&dir, IndexConfig::new(64, 2)).unwrap();
//! let a = BitVec::from_positions(64, &[1, 2, 3, 4]).unwrap();
//! let b = BitVec::from_positions(64, &[1, 2, 3, 9]).unwrap();
//! store.insert_batch(&[(0, a.clone()), (1, b)]).unwrap();
//! store.flush().unwrap();
//! let reader = store.reader().unwrap();
//! let hits = reader.top_k(&a, 1, 1).unwrap();
//! assert_eq!(hits[0].id, 0);
//! assert_eq!(hits[0].score, 1.0);
//! # std::fs::remove_dir_all(&dir).unwrap();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arena;
pub mod backend;
pub mod format;
pub mod manifest;
pub mod query;
pub mod segment;
pub mod store;
pub mod summary;
pub mod vfs;

pub use backend::IndexBackend;
