//! # pprl-index
//!
//! A persistent, sharded store of Bloom-filter-encoded records with a
//! concurrent top-k Dice-similarity query engine — the *volume* and
//! *velocity* answer of Figure 3 (§5.1): instead of re-encoding and
//! re-comparing everything in RAM per run, encoded records live on disk in
//! checksummed segment files and are served by a multi-threaded engine at
//! hardware speed.
//!
//! ## On-disk layout
//!
//! ```text
//! <dir>/MANIFEST         versioned, checksummed index of everything below
//! <dir>/wal.log          append log of not-yet-flushed inserts
//! <dir>/seg-<id>.seg     immutable segment files, one shard each
//! ```
//!
//! Every file follows the `protocols::transport` framing conventions: a
//! versioned header, length-prefixed entries and a trailing FNV-1a
//! checksum, so any corruption or truncation surfaces as a typed
//! [`pprl_core::error::PprlError::Storage`] error instead of silently
//! wrong query results.
//!
//! ## Sharding and querying
//!
//! Records are routed to shards by a Hamming-LSH band key (reused from
//! `pprl-blocking`), which keeps Hamming-similar filters co-located.
//! Queries answer exact top-k Dice similarity: per shard the candidate
//! list is sorted by filter cardinality (popcount) and scanned outward
//! from the query's own popcount, pruning with the Dice upper bound
//! `2·min(q,x)/(q+x)` — a lossless early exit, so results are bit-exact
//! against a brute-force scan. Shards are fanned out over
//! `std::thread::scope` workers.
//!
//! ```
//! use pprl_core::bitvec::BitVec;
//! use pprl_index::store::{IndexConfig, IndexStore};
//!
//! let dir = std::env::temp_dir().join("pprl-index-doc");
//! let _ = std::fs::remove_dir_all(&dir);
//! let mut store = IndexStore::create(&dir, IndexConfig::new(64, 2)).unwrap();
//! let a = BitVec::from_positions(64, &[1, 2, 3, 4]).unwrap();
//! let b = BitVec::from_positions(64, &[1, 2, 3, 9]).unwrap();
//! store.insert_batch(&[(0, a.clone()), (1, b)]).unwrap();
//! store.flush().unwrap();
//! let reader = store.reader().unwrap();
//! let hits = reader.top_k(&a, 1, 1).unwrap();
//! assert_eq!(hits[0].id, 0);
//! assert_eq!(hits[0].score, 1.0);
//! # std::fs::remove_dir_all(&dir).unwrap();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backend;
pub mod format;
pub mod manifest;
pub mod query;
pub mod segment;
pub mod store;

pub use backend::IndexBackend;
