//! Record-level comparison: per-field comparators composed into similarity
//! vectors.
//!
//! Classification (§3.4) operates on the *similarity vector* of a record
//! pair — one score per compared field. [`FieldComparator`] selects the
//! comparator per QID type; [`RecordComparator`] applies a weighted set of
//! them against a schema and yields vectors for threshold, rule-based,
//! Fellegi–Sunter, or learned classifiers.

use crate::edit::{damerau_similarity, lcs_similarity, levenshtein_similarity};
use crate::jaro::jaro_winkler;
use crate::monge_elkan::monge_elkan_jw;
use crate::numeric::{
    categorical_exact, date_similarity, date_similarity_swap_tolerant, numeric_absolute,
    numeric_percentage,
};
use crate::token::{qgram_similarity, SetSimilarity};
use pprl_core::error::{PprlError, Result};
use pprl_core::qgram::QGramConfig;
use pprl_core::record::Record;
use pprl_core::schema::Schema;
use pprl_core::value::Value;

/// A similarity function for one field.
#[derive(Debug, Clone)]
pub enum FieldComparator {
    /// Jaro–Winkler (names).
    JaroWinkler,
    /// Normalised Levenshtein.
    Levenshtein,
    /// Normalised Damerau–Levenshtein.
    Damerau,
    /// Longest-common-substring similarity.
    Lcs,
    /// Symmetric Monge–Elkan with Jaro–Winkler tokens (multi-word fields).
    MongeElkan,
    /// Q-gram set similarity with a coefficient.
    QGram {
        /// Tokenisation settings.
        config: QGramConfig,
        /// Coefficient applied to the token sets.
        coefficient: SetSimilarity,
    },
    /// Linear numeric similarity with absolute tolerance.
    NumericAbsolute {
        /// Distance at which similarity reaches zero.
        max_distance: f64,
    },
    /// Percentage-based numeric similarity.
    NumericPercentage {
        /// Fractional tolerance in (0, 1].
        pc: f64,
    },
    /// Date similarity by day window.
    DateDays {
        /// Day difference at which similarity reaches zero.
        max_days: u32,
        /// Also try day/month transposition.
        swap_tolerant: bool,
    },
    /// Exact categorical agreement.
    Exact,
}

impl FieldComparator {
    /// Compares two values. Missing values score 0.0 against anything
    /// (including another missing value), the standard conservative
    /// convention in record linkage.
    pub fn compare(&self, a: &Value, b: &Value) -> Result<f64> {
        if a.is_missing() || b.is_missing() {
            return Ok(0.0);
        }
        match self {
            FieldComparator::JaroWinkler => Ok(jaro_winkler(&a.as_text(), &b.as_text())),
            FieldComparator::Levenshtein => Ok(levenshtein_similarity(&a.as_text(), &b.as_text())),
            FieldComparator::Damerau => Ok(damerau_similarity(&a.as_text(), &b.as_text())),
            FieldComparator::Lcs => Ok(lcs_similarity(&a.as_text(), &b.as_text())),
            FieldComparator::MongeElkan => Ok(monge_elkan_jw(&a.as_text(), &b.as_text())),
            FieldComparator::QGram {
                config,
                coefficient,
            } => Ok(qgram_similarity(
                &a.as_text(),
                &b.as_text(),
                config,
                *coefficient,
            )),
            FieldComparator::NumericAbsolute { max_distance } => {
                numeric_absolute(a.as_f64()?, b.as_f64()?, *max_distance)
            }
            FieldComparator::NumericPercentage { pc } => {
                numeric_percentage(a.as_f64()?, b.as_f64()?, *pc)
            }
            FieldComparator::DateDays {
                max_days,
                swap_tolerant,
            } => match (a, b) {
                (Value::Date(da), Value::Date(db)) => {
                    if *swap_tolerant {
                        date_similarity_swap_tolerant(da, db, *max_days)
                    } else {
                        date_similarity(da, db, *max_days)
                    }
                }
                _ => Err(PprlError::ValueError(
                    "DateDays comparator needs Date values".into(),
                )),
            },
            FieldComparator::Exact => Ok(categorical_exact(&a.as_text(), &b.as_text())),
        }
    }
}

/// One rule of a record comparator: which field, how, and with what weight.
#[derive(Debug, Clone)]
pub struct FieldRule {
    /// Field name in the shared schema.
    pub field: String,
    /// Comparator to apply.
    pub comparator: FieldComparator,
    /// Non-negative weight for the weighted average.
    pub weight: f64,
}

impl FieldRule {
    /// Creates a rule with weight 1.0.
    pub fn new(field: impl Into<String>, comparator: FieldComparator) -> Self {
        FieldRule {
            field: field.into(),
            comparator,
            weight: 1.0,
        }
    }

    /// Sets the weight.
    pub fn weighted(mut self, weight: f64) -> Self {
        self.weight = weight;
        self
    }
}

/// Compares record pairs under a schema, producing similarity vectors.
#[derive(Debug, Clone)]
pub struct RecordComparator {
    rules: Vec<(usize, FieldRule)>,
    total_weight: f64,
}

impl RecordComparator {
    /// Resolves `rules` against `schema`. Errors on unknown fields or
    /// non-positive total weight.
    pub fn new(schema: &Schema, rules: Vec<FieldRule>) -> Result<Self> {
        if rules.is_empty() {
            return Err(PprlError::invalid("rules", "need at least one field rule"));
        }
        let mut resolved = Vec::with_capacity(rules.len());
        let mut total_weight = 0.0;
        for rule in rules {
            if !(rule.weight >= 0.0) || !rule.weight.is_finite() {
                return Err(PprlError::invalid(
                    "weight",
                    "must be non-negative and finite",
                ));
            }
            let idx = schema.index_of(&rule.field)?;
            total_weight += rule.weight;
            resolved.push((idx, rule));
        }
        if total_weight <= 0.0 {
            return Err(PprlError::invalid(
                "weight",
                "total weight must be positive",
            ));
        }
        Ok(RecordComparator {
            rules: resolved,
            total_weight,
        })
    }

    /// The default comparator for [`Schema::person`]: Jaro–Winkler names,
    /// q-gram Dice address fields, swap-tolerant date of birth, exact
    /// gender, absolute-tolerance age.
    pub fn person_default(schema: &Schema) -> Result<Self> {
        RecordComparator::new(
            schema,
            vec![
                FieldRule::new("first_name", FieldComparator::JaroWinkler).weighted(2.0),
                FieldRule::new("last_name", FieldComparator::JaroWinkler).weighted(2.0),
                FieldRule::new("street", FieldComparator::MongeElkan),
                FieldRule::new(
                    "city",
                    FieldComparator::QGram {
                        config: QGramConfig::default(),
                        coefficient: SetSimilarity::Dice,
                    },
                ),
                FieldRule::new("postcode", FieldComparator::Levenshtein),
                FieldRule::new(
                    "dob",
                    FieldComparator::DateDays {
                        max_days: 365,
                        swap_tolerant: true,
                    },
                )
                .weighted(2.0),
                FieldRule::new("gender", FieldComparator::Exact).weighted(0.5),
                FieldRule::new(
                    "age",
                    FieldComparator::NumericAbsolute { max_distance: 5.0 },
                )
                .weighted(0.5),
            ],
        )
    }

    /// Number of compared fields (length of similarity vectors).
    pub fn arity(&self) -> usize {
        self.rules.len()
    }

    /// Names of the compared fields, in vector order.
    pub fn field_names(&self) -> Vec<&str> {
        self.rules.iter().map(|(_, r)| r.field.as_str()).collect()
    }

    /// Computes the per-field similarity vector for a record pair.
    pub fn similarity_vector(&self, a: &Record, b: &Record) -> Result<Vec<f64>> {
        self.rules
            .iter()
            .map(|(idx, rule)| rule.comparator.compare(&a.values[*idx], &b.values[*idx]))
            .collect()
    }

    /// Weighted average similarity in `[0,1]`.
    pub fn weighted_similarity(&self, a: &Record, b: &Record) -> Result<f64> {
        let v = self.similarity_vector(a, b)?;
        Ok(self.weight_vector(&v))
    }

    /// Collapses a similarity vector with this comparator's weights.
    pub fn weight_vector(&self, vector: &[f64]) -> f64 {
        debug_assert_eq!(vector.len(), self.rules.len());
        let sum: f64 = vector
            .iter()
            .zip(&self.rules)
            .map(|(s, (_, r))| s * r.weight)
            .sum();
        sum / self.total_weight
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pprl_core::schema::{FieldDef, FieldType};
    use pprl_core::value::Date;

    fn schema() -> Schema {
        Schema::new(vec![
            FieldDef::qid("name", FieldType::Text),
            FieldDef::qid("age", FieldType::Integer),
            FieldDef::qid("dob", FieldType::Date),
            FieldDef::qid("gender", FieldType::Categorical),
        ])
        .unwrap()
    }

    fn rec(name: &str, age: i64, dob: (i32, u8, u8), g: &str) -> Record {
        Record::new(
            0,
            vec![
                Value::Text(name.into()),
                Value::Integer(age),
                Value::Date(Date::new(dob.0, dob.1, dob.2).unwrap()),
                Value::Categorical(g.into()),
            ],
        )
    }

    fn comparator() -> RecordComparator {
        RecordComparator::new(
            &schema(),
            vec![
                FieldRule::new("name", FieldComparator::JaroWinkler).weighted(2.0),
                FieldRule::new(
                    "age",
                    FieldComparator::NumericAbsolute { max_distance: 10.0 },
                ),
                FieldRule::new(
                    "dob",
                    FieldComparator::DateDays {
                        max_days: 30,
                        swap_tolerant: false,
                    },
                ),
                FieldRule::new("gender", FieldComparator::Exact),
            ],
        )
        .unwrap()
    }

    #[test]
    fn identical_records_score_one() {
        let c = comparator();
        let r = rec("anna", 30, (1990, 1, 1), "f");
        let v = c.similarity_vector(&r, &r).unwrap();
        assert_eq!(v, vec![1.0, 1.0, 1.0, 1.0]);
        assert_eq!(c.weighted_similarity(&r, &r).unwrap(), 1.0);
    }

    #[test]
    fn vector_reflects_field_differences() {
        let c = comparator();
        let a = rec("anna", 30, (1990, 1, 1), "f");
        let b = rec("anne", 35, (1990, 1, 16), "m");
        let v = c.similarity_vector(&a, &b).unwrap();
        assert!(v[0] > 0.8 && v[0] < 1.0, "name sim {}", v[0]);
        assert!((v[1] - 0.5).abs() < 1e-12, "age sim {}", v[1]);
        assert!((v[2] - 0.5).abs() < 1e-12, "dob sim {}", v[2]);
        assert_eq!(v[3], 0.0);
        let w = c.weighted_similarity(&a, &b).unwrap();
        assert!(w > 0.0 && w < 1.0);
    }

    #[test]
    fn weights_change_aggregate() {
        let s = schema();
        let heavy_name = RecordComparator::new(
            &s,
            vec![
                FieldRule::new("name", FieldComparator::JaroWinkler).weighted(10.0),
                FieldRule::new("gender", FieldComparator::Exact),
            ],
        )
        .unwrap();
        let light_name = RecordComparator::new(
            &s,
            vec![
                FieldRule::new("name", FieldComparator::JaroWinkler).weighted(0.1),
                FieldRule::new("gender", FieldComparator::Exact),
            ],
        )
        .unwrap();
        let a = rec("anna", 30, (1990, 1, 1), "f");
        let b = rec("anna", 30, (1990, 1, 1), "m"); // same name, diff gender
        assert!(
            heavy_name.weighted_similarity(&a, &b).unwrap()
                > light_name.weighted_similarity(&a, &b).unwrap()
        );
    }

    #[test]
    fn missing_values_score_zero() {
        let c = comparator();
        let a = rec("anna", 30, (1990, 1, 1), "f");
        let mut b = a.clone();
        b.values[0] = Value::Missing;
        let v = c.similarity_vector(&a, &b).unwrap();
        assert_eq!(v[0], 0.0);
        assert_eq!(v[1], 1.0);
    }

    #[test]
    fn bad_construction_rejected() {
        let s = schema();
        assert!(RecordComparator::new(&s, vec![]).is_err());
        assert!(
            RecordComparator::new(&s, vec![FieldRule::new("nope", FieldComparator::Exact)])
                .is_err()
        );
        assert!(RecordComparator::new(
            &s,
            vec![FieldRule::new("name", FieldComparator::Exact).weighted(-1.0)]
        )
        .is_err());
        assert!(RecordComparator::new(
            &s,
            vec![FieldRule::new("name", FieldComparator::Exact).weighted(0.0)]
        )
        .is_err());
    }

    #[test]
    fn date_comparator_type_checked() {
        let s = schema();
        let c = RecordComparator::new(
            &s,
            vec![FieldRule::new(
                "name",
                FieldComparator::DateDays {
                    max_days: 30,
                    swap_tolerant: false,
                },
            )],
        )
        .unwrap();
        let a = rec("anna", 30, (1990, 1, 1), "f");
        assert!(c.similarity_vector(&a, &a).is_err());
    }

    #[test]
    fn person_default_works_on_person_schema() {
        let s = Schema::person();
        let c = RecordComparator::person_default(&s).unwrap();
        assert_eq!(c.arity(), 8);
        assert_eq!(c.field_names()[0], "first_name");
    }

    #[test]
    fn all_text_comparators_run() {
        let a = Value::Text("jonathan".into());
        let b = Value::Text("johnathan".into());
        for cmp in [
            FieldComparator::JaroWinkler,
            FieldComparator::Levenshtein,
            FieldComparator::Damerau,
            FieldComparator::Lcs,
            FieldComparator::QGram {
                config: QGramConfig::default(),
                coefficient: SetSimilarity::Jaccard,
            },
            FieldComparator::Exact,
        ] {
            let s = cmp.compare(&a, &b).unwrap();
            assert!((0.0..=1.0).contains(&s), "{cmp:?} gave {s}");
        }
    }
}
