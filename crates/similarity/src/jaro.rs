//! Jaro and Jaro–Winkler string comparators.
//!
//! The Jaro family was designed at the US Census Bureau specifically for
//! person-name matching and is the classical comparator of probabilistic
//! record linkage. Jaro–Winkler boosts pairs sharing a prefix, reflecting
//! that name errors cluster at the end of strings.

/// Jaro similarity in `[0,1]`.
pub fn jaro(a: &str, b: &str) -> f64 {
    let av: Vec<char> = a.chars().collect();
    let bv: Vec<char> = b.chars().collect();
    if av.is_empty() && bv.is_empty() {
        return 1.0;
    }
    if av.is_empty() || bv.is_empty() {
        return 0.0;
    }
    let window = (av.len().max(bv.len()) / 2).saturating_sub(1);
    let mut b_matched = vec![false; bv.len()];
    let mut a_matches: Vec<char> = Vec::new();
    // Find matches within the window.
    for (i, &ca) in av.iter().enumerate() {
        let lo = i.saturating_sub(window);
        let hi = (i + window + 1).min(bv.len());
        for j in lo..hi {
            if !b_matched[j] && bv[j] == ca {
                b_matched[j] = true;
                a_matches.push(ca);
                break;
            }
        }
    }
    let m = a_matches.len();
    if m == 0 {
        return 0.0;
    }
    // Count transpositions against B's matched characters in order.
    let b_matches: Vec<char> = bv
        .iter()
        .zip(&b_matched)
        .filter(|(_, &used)| used)
        .map(|(&c, _)| c)
        .collect();
    let t = a_matches
        .iter()
        .zip(&b_matches)
        .filter(|(x, y)| x != y)
        .count() as f64
        / 2.0;
    let m = m as f64;
    (m / av.len() as f64 + m / bv.len() as f64 + (m - t) / m) / 3.0
}

/// Jaro–Winkler similarity with the standard scaling factor 0.1 and prefix
/// cap 4.
pub fn jaro_winkler(a: &str, b: &str) -> f64 {
    jaro_winkler_with(a, b, 0.1, 4)
}

/// Jaro–Winkler with explicit prefix `scaling` (≤ 0.25 to stay in `[0,1]`)
/// and maximum prefix length.
pub fn jaro_winkler_with(a: &str, b: &str, scaling: f64, max_prefix: usize) -> f64 {
    let j = jaro(a, b);
    let prefix = a
        .chars()
        .zip(b.chars())
        .take(max_prefix)
        .take_while(|(x, y)| x == y)
        .count() as f64;
    let scaling = scaling.clamp(0.0, 0.25);
    (j + prefix * scaling * (1.0 - j)).min(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-3
    }

    #[test]
    fn jaro_classic_values() {
        assert!(close(jaro("MARTHA", "MARHTA"), 0.944));
        assert!(close(jaro("DIXON", "DICKSONX"), 0.767));
        assert!(close(jaro("JELLYFISH", "SMELLYFISH"), 0.896));
    }

    #[test]
    fn jaro_winkler_classic_values() {
        assert!(close(jaro_winkler("MARTHA", "MARHTA"), 0.961));
        assert!(close(jaro_winkler("DIXON", "DICKSONX"), 0.813));
    }

    #[test]
    fn identical_and_disjoint() {
        assert_eq!(jaro("peter", "peter"), 1.0);
        assert_eq!(jaro_winkler("peter", "peter"), 1.0);
        assert_eq!(jaro("abc", "xyz"), 0.0);
        assert_eq!(jaro_winkler("abc", "xyz"), 0.0);
    }

    #[test]
    fn empty_string_conventions() {
        assert_eq!(jaro("", ""), 1.0);
        assert_eq!(jaro("a", ""), 0.0);
        assert_eq!(jaro("", "a"), 0.0);
    }

    #[test]
    fn winkler_boosts_shared_prefix() {
        let j = jaro("prefixed", "prefixes");
        let jw = jaro_winkler("prefixed", "prefixes");
        assert!(jw > j);
        // No shared prefix → no boost.
        let j2 = jaro("xavier", "savier");
        let jw2 = jaro_winkler("xavier", "savier");
        assert!(close(j2, jw2));
    }

    #[test]
    fn symmetry() {
        for (a, b) in [("martha", "marhta"), ("dwayne", "duane"), ("ab", "ba")] {
            assert!(close(jaro(a, b), jaro(b, a)));
            assert!(close(jaro_winkler(a, b), jaro_winkler(b, a)));
        }
    }

    #[test]
    fn in_unit_interval() {
        for (a, b) in [
            ("a", "abcdefgh"),
            ("short", "muchlongerstring"),
            ("xy", "yx"),
        ] {
            let s = jaro_winkler(a, b);
            assert!((0.0..=1.0).contains(&s));
        }
    }

    #[test]
    fn scaling_clamped() {
        // Oversized scaling must not push similarity beyond 1.
        let s = jaro_winkler_with("aaaa", "aaab", 0.9, 4);
        assert!(s <= 1.0);
    }
}
