//! Comparators for numeric, date, and categorical QIDs.
//!
//! Different QID data types need different similarity functions (§3.4 of
//! the paper). Numeric values use a tolerance-scaled linear similarity;
//! dates compare by day difference; categoricals by exact (or grouped)
//! agreement.

use pprl_core::error::{PprlError, Result};
use pprl_core::value::Date;

/// Linear numeric similarity with absolute tolerance:
/// `max(0, 1 − |a−b| / max_distance)`.
pub fn numeric_absolute(a: f64, b: f64, max_distance: f64) -> Result<f64> {
    if !(max_distance > 0.0) || !max_distance.is_finite() {
        return Err(PprlError::invalid(
            "max_distance",
            "must be positive and finite",
        ));
    }
    if !a.is_finite() || !b.is_finite() {
        return Err(PprlError::ValueError("non-finite numeric value".into()));
    }
    Ok((1.0 - (a - b).abs() / max_distance).max(0.0))
}

/// Percentage-based numeric similarity:
/// `max(0, 1 − |a−b| / (pc·max(|a|,|b|)))` with `pc` in (0, 1].
pub fn numeric_percentage(a: f64, b: f64, pc: f64) -> Result<f64> {
    if !(pc > 0.0 && pc <= 1.0) {
        return Err(PprlError::invalid("pc", "must be in (0, 1]"));
    }
    if !a.is_finite() || !b.is_finite() {
        return Err(PprlError::ValueError("non-finite numeric value".into()));
    }
    if a == b {
        return Ok(1.0);
    }
    let denom = pc * a.abs().max(b.abs());
    if denom == 0.0 {
        return Ok(0.0);
    }
    Ok((1.0 - (a - b).abs() / denom).max(0.0))
}

/// Date similarity by day difference with a tolerance window:
/// `max(0, 1 − days/max_days)`.
pub fn date_similarity(a: &Date, b: &Date, max_days: u32) -> Result<f64> {
    if max_days == 0 {
        return Err(PprlError::invalid("max_days", "must be positive"));
    }
    Ok((1.0 - a.days_between(b) as f64 / max_days as f64).max(0.0))
}

/// Date similarity tolerant of day/month swaps (a common data-entry error):
/// the maximum of the plain similarity and the similarity with `b`'s day and
/// month transposed (when that forms a valid date).
pub fn date_similarity_swap_tolerant(a: &Date, b: &Date, max_days: u32) -> Result<f64> {
    let plain = date_similarity(a, b, max_days)?;
    if let Ok(swapped) = Date::new(b.year(), b.day(), b.month()) {
        // Penalise the swap slightly so exact equality still wins.
        let sw = date_similarity(a, &swapped, max_days)? * 0.95;
        return Ok(plain.max(sw));
    }
    Ok(plain)
}

/// Exact categorical agreement: 1.0 if equal (case-insensitive), else 0.0.
pub fn categorical_exact(a: &str, b: &str) -> f64 {
    if a.eq_ignore_ascii_case(b) {
        1.0
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absolute_similarity_values() {
        assert_eq!(numeric_absolute(10.0, 10.0, 5.0).unwrap(), 1.0);
        assert!((numeric_absolute(10.0, 12.5, 5.0).unwrap() - 0.5).abs() < 1e-12);
        assert_eq!(numeric_absolute(0.0, 100.0, 5.0).unwrap(), 0.0);
        assert!(numeric_absolute(1.0, 2.0, 0.0).is_err());
        assert!(numeric_absolute(f64::NAN, 2.0, 1.0).is_err());
        assert!(numeric_absolute(1.0, f64::INFINITY, 1.0).is_err());
    }

    #[test]
    fn percentage_similarity_values() {
        assert_eq!(numeric_percentage(100.0, 100.0, 0.1).unwrap(), 1.0);
        // |100-95| / (0.1*100) = 0.5
        assert!((numeric_percentage(100.0, 95.0, 0.1).unwrap() - 0.5).abs() < 1e-12);
        assert_eq!(numeric_percentage(100.0, 50.0, 0.1).unwrap(), 0.0);
        assert_eq!(numeric_percentage(0.0, 0.0, 0.5).unwrap(), 1.0);
        assert_eq!(numeric_percentage(0.0, 1.0, 0.5).unwrap(), 0.0);
        assert!(numeric_percentage(1.0, 1.0, 0.0).is_err());
        assert!(numeric_percentage(1.0, 1.0, 1.5).is_err());
    }

    #[test]
    fn symmetry() {
        assert_eq!(
            numeric_absolute(3.0, 8.0, 10.0).unwrap(),
            numeric_absolute(8.0, 3.0, 10.0).unwrap()
        );
        assert_eq!(
            numeric_percentage(3.0, 8.0, 0.9).unwrap(),
            numeric_percentage(8.0, 3.0, 0.9).unwrap()
        );
    }

    #[test]
    fn date_similarity_values() {
        let a = Date::new(1987, 6, 5).unwrap();
        let b = Date::new(1987, 6, 20).unwrap();
        assert!((date_similarity(&a, &b, 30).unwrap() - 0.5).abs() < 1e-12);
        assert_eq!(date_similarity(&a, &a, 30).unwrap(), 1.0);
        let far = Date::new(1990, 1, 1).unwrap();
        assert_eq!(date_similarity(&a, &far, 30).unwrap(), 0.0);
        assert!(date_similarity(&a, &b, 0).is_err());
    }

    #[test]
    fn swap_tolerant_catches_daymonth_transposition() {
        let a = Date::new(1987, 6, 5).unwrap(); // 5 June
        let b = Date::new(1987, 5, 6).unwrap(); // 6 May — day/month swapped
        let plain = date_similarity(&a, &b, 30).unwrap();
        let tolerant = date_similarity_swap_tolerant(&a, &b, 30).unwrap();
        assert_eq!(plain, 0.0);
        assert!((tolerant - 0.95).abs() < 1e-12);
        // Exact equality still scores 1.0.
        assert_eq!(date_similarity_swap_tolerant(&a, &a, 30).unwrap(), 1.0);
    }

    #[test]
    fn swap_tolerant_handles_invalid_swap() {
        let a = Date::new(1987, 1, 25).unwrap();
        let b = Date::new(1987, 1, 26).unwrap(); // swap → month 26, invalid
        let s = date_similarity_swap_tolerant(&a, &b, 30).unwrap();
        assert!(s > 0.9);
    }

    #[test]
    fn categorical_agreement() {
        assert_eq!(categorical_exact("f", "F"), 1.0);
        assert_eq!(categorical_exact("m", "f"), 0.0);
        assert_eq!(categorical_exact("", ""), 1.0);
    }
}
