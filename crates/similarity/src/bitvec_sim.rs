//! Similarity functions on bit vectors (Bloom filters).
//!
//! After encoding, PPRL compares Bloom filters directly with token-style
//! coefficients computed on set bits (§3.4 of the paper, and its Figure 2).
//! The multi-filter Dice coefficient is the exact formula from the paper:
//!
//! `Dice(b₁…b_p) = p·c / Σ xⱼ`
//!
//! where `c` counts positions set in *all* p filters and `xⱼ` the set bits
//! of filter j.

use pprl_core::bitvec::BitVec;
use pprl_core::error::{PprlError, Result};

/// Dice coefficient of two equal-length bit vectors.
pub fn dice_bits(a: &BitVec, b: &BitVec) -> Result<f64> {
    check(a, b)?;
    let (xa, xb) = (a.count_ones(), b.count_ones());
    if xa + xb == 0 {
        return Ok(1.0);
    }
    Ok(2.0 * a.and_count(b) as f64 / (xa + xb) as f64)
}

/// Jaccard coefficient of two equal-length bit vectors.
pub fn jaccard_bits(a: &BitVec, b: &BitVec) -> Result<f64> {
    check(a, b)?;
    let union = a.or_count(b);
    if union == 0 {
        return Ok(1.0);
    }
    Ok(a.and_count(b) as f64 / union as f64)
}

/// Hamming *similarity*: `1 − hamming_distance / length`.
pub fn hamming_similarity(a: &BitVec, b: &BitVec) -> Result<f64> {
    check(a, b)?;
    if a.is_empty() {
        return Ok(1.0);
    }
    Ok(1.0 - a.xor_count(b) as f64 / a.len() as f64)
}

/// Cosine coefficient of two equal-length bit vectors.
pub fn cosine_bits(a: &BitVec, b: &BitVec) -> Result<f64> {
    check(a, b)?;
    let (xa, xb) = (a.count_ones(), b.count_ones());
    if xa == 0 && xb == 0 {
        return Ok(1.0);
    }
    if xa == 0 || xb == 0 {
        return Ok(0.0);
    }
    Ok(a.and_count(b) as f64 / ((xa * xb) as f64).sqrt())
}

/// Tversky index with parameters `alpha`, `beta` (Dice is α=β=0.5, Jaccard
/// is α=β=1).
pub fn tversky_bits(a: &BitVec, b: &BitVec, alpha: f64, beta: f64) -> Result<f64> {
    check(a, b)?;
    if !(alpha >= 0.0) || !(beta >= 0.0) {
        return Err(PprlError::invalid("alpha/beta", "must be non-negative"));
    }
    let inter = a.and_count(b) as f64;
    let only_a = (a.count_ones() as f64) - inter;
    let only_b = (b.count_ones() as f64) - inter;
    let denom = inter + alpha * only_a + beta * only_b;
    if denom == 0.0 {
        return Ok(1.0);
    }
    Ok(inter / denom)
}

/// Multi-party Dice coefficient over `p ≥ 2` Bloom filters — the paper's
/// formula `p·c / Σⱼ xⱼ`.
pub fn multi_dice(filters: &[&BitVec]) -> Result<f64> {
    if filters.len() < 2 {
        return Err(PprlError::invalid("filters", "need at least two filters"));
    }
    let len = filters[0].len();
    for f in filters {
        if f.len() != len {
            return Err(PprlError::shape(
                format!("{len} bits"),
                format!("{} bits", f.len()),
            ));
        }
    }
    let total: usize = filters.iter().map(|f| f.count_ones()).sum();
    if total == 0 {
        return Ok(1.0);
    }
    // Common set bits across all filters: fold with AND.
    let mut common = filters[0].clone();
    for f in &filters[1..] {
        common = common.and(f)?;
    }
    Ok(filters.len() as f64 * common.count_ones() as f64 / total as f64)
}

/// Bit-vector comparator choice for configurable pipelines.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BitSimilarity {
    /// Dice coefficient (PPRL default).
    Dice,
    /// Jaccard coefficient.
    Jaccard,
    /// Hamming similarity.
    Hamming,
    /// Cosine coefficient.
    Cosine,
}

impl BitSimilarity {
    /// Applies the selected coefficient.
    pub fn compute(&self, a: &BitVec, b: &BitVec) -> Result<f64> {
        match self {
            BitSimilarity::Dice => dice_bits(a, b),
            BitSimilarity::Jaccard => jaccard_bits(a, b),
            BitSimilarity::Hamming => hamming_similarity(a, b),
            BitSimilarity::Cosine => cosine_bits(a, b),
        }
    }
}

fn check(a: &BitVec, b: &BitVec) -> Result<()> {
    if a.len() != b.len() {
        return Err(PprlError::shape(
            format!("{} bits", a.len()),
            format!("{} bits", b.len()),
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bv(len: usize, ones: &[usize]) -> BitVec {
        BitVec::from_positions(len, ones).unwrap()
    }

    #[test]
    fn dice_known_value() {
        let a = bv(16, &[0, 1, 2, 3]);
        let b = bv(16, &[2, 3, 4, 5]);
        assert!((dice_bits(&a, &b).unwrap() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn jaccard_known_value() {
        let a = bv(16, &[0, 1, 2, 3]);
        let b = bv(16, &[2, 3, 4, 5]);
        assert!((jaccard_bits(&a, &b).unwrap() - 2.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn hamming_known_value() {
        let a = bv(8, &[0, 1]);
        let b = bv(8, &[1, 2]);
        assert!((hamming_similarity(&a, &b).unwrap() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn cosine_known_value() {
        let a = bv(16, &[0, 1, 2, 3]);
        let b = bv(16, &[2, 3, 4, 5]);
        assert!((cosine_bits(&a, &b).unwrap() - 0.5).abs() < 1e-12);
        assert_eq!(cosine_bits(&bv(8, &[]), &bv(8, &[1])).unwrap(), 0.0);
    }

    #[test]
    fn tversky_generalises_dice_and_jaccard() {
        let a = bv(32, &[0, 1, 2, 3, 10]);
        let b = bv(32, &[2, 3, 4, 5, 10]);
        let d = dice_bits(&a, &b).unwrap();
        let j = jaccard_bits(&a, &b).unwrap();
        assert!((tversky_bits(&a, &b, 0.5, 0.5).unwrap() - d).abs() < 1e-12);
        assert!((tversky_bits(&a, &b, 1.0, 1.0).unwrap() - j).abs() < 1e-12);
        assert!(tversky_bits(&a, &b, -1.0, 0.5).is_err());
    }

    #[test]
    fn empty_filters_count_as_identical() {
        let a = bv(8, &[]);
        let b = bv(8, &[]);
        for s in [
            BitSimilarity::Dice,
            BitSimilarity::Jaccard,
            BitSimilarity::Hamming,
            BitSimilarity::Cosine,
        ] {
            assert_eq!(s.compute(&a, &b).unwrap(), 1.0);
        }
    }

    #[test]
    fn length_mismatch_is_error() {
        let a = bv(8, &[0]);
        let b = bv(16, &[0]);
        assert!(dice_bits(&a, &b).is_err());
        assert!(multi_dice(&[&a, &b]).is_err());
    }

    #[test]
    fn multi_dice_two_filters_equals_dice() {
        let a = bv(32, &[1, 2, 3, 4]);
        let b = bv(32, &[3, 4, 5, 6]);
        let d2 = dice_bits(&a, &b).unwrap();
        let md = multi_dice(&[&a, &b]).unwrap();
        assert!((d2 - md).abs() < 1e-12);
    }

    #[test]
    fn multi_dice_three_filters() {
        // paper formula: p*c / sum(x_j)
        let a = bv(16, &[0, 1, 2, 3]); // x=4
        let b = bv(16, &[1, 2, 3, 4]); // x=4
        let c = bv(16, &[2, 3, 4, 5]); // x=4
                                       // common to all three: {2,3} → c=2; 3*2/12 = 0.5
        assert!((multi_dice(&[&a, &b, &c]).unwrap() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn multi_dice_needs_two() {
        let a = bv(8, &[0]);
        assert!(multi_dice(&[&a]).is_err());
    }

    #[test]
    fn identical_filters_are_one() {
        let a = bv(64, &[5, 17, 40]);
        assert_eq!(dice_bits(&a, &a).unwrap(), 1.0);
        assert_eq!(multi_dice(&[&a, &a, &a]).unwrap(), 1.0);
    }
}
