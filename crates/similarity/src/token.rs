//! Token-set similarity coefficients.
//!
//! Bloom-filter PPRL and q-gram based matching both reduce strings to token
//! sets; these coefficients compare such sets. All take sorted, deduplicated
//! slices and return values in `[0,1]` (two empty sets count as identical).

use pprl_core::qgram::{qgram_set, sorted_intersection_size, QGramConfig};

/// Dice coefficient `2|A∩B| / (|A|+|B|)`.
pub fn dice<T: Ord>(a: &[T], b: &[T]) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    2.0 * sorted_intersection_size(a, b) as f64 / (a.len() + b.len()) as f64
}

/// Jaccard coefficient `|A∩B| / |A∪B|`.
pub fn jaccard<T: Ord>(a: &[T], b: &[T]) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    let inter = sorted_intersection_size(a, b);
    let union = a.len() + b.len() - inter;
    if union == 0 {
        1.0
    } else {
        inter as f64 / union as f64
    }
}

/// Overlap coefficient `|A∩B| / min(|A|,|B|)`.
pub fn overlap<T: Ord>(a: &[T], b: &[T]) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    sorted_intersection_size(a, b) as f64 / a.len().min(b.len()) as f64
}

/// Cosine coefficient `|A∩B| / √(|A|·|B|)` (binary vectors).
pub fn cosine<T: Ord>(a: &[T], b: &[T]) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    sorted_intersection_size(a, b) as f64 / ((a.len() * b.len()) as f64).sqrt()
}

/// Token-set comparator choice, for configurable pipelines.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SetSimilarity {
    /// Dice coefficient.
    Dice,
    /// Jaccard coefficient.
    Jaccard,
    /// Overlap coefficient.
    Overlap,
    /// Cosine coefficient.
    Cosine,
}

impl SetSimilarity {
    /// Applies the selected coefficient.
    pub fn compute<T: Ord>(&self, a: &[T], b: &[T]) -> f64 {
        match self {
            SetSimilarity::Dice => dice(a, b),
            SetSimilarity::Jaccard => jaccard(a, b),
            SetSimilarity::Overlap => overlap(a, b),
            SetSimilarity::Cosine => cosine(a, b),
        }
    }
}

/// String similarity via q-gram sets with the chosen coefficient.
pub fn qgram_similarity(a: &str, b: &str, config: &QGramConfig, sim: SetSimilarity) -> f64 {
    let sa = qgram_set(a, config);
    let sb = qgram_set(b, config);
    sim.compute(&sa, &sb)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coefficients_on_known_sets() {
        let a = [1, 2, 3, 4];
        let b = [3, 4, 5, 6];
        assert!((dice(&a, &b) - 0.5).abs() < 1e-12);
        assert!((jaccard(&a, &b) - 2.0 / 6.0).abs() < 1e-12);
        assert!((overlap(&a, &b) - 0.5).abs() < 1e-12);
        assert!((cosine(&a, &b) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn identical_sets_are_one() {
        let a = ["x", "y"];
        for s in [
            SetSimilarity::Dice,
            SetSimilarity::Jaccard,
            SetSimilarity::Overlap,
            SetSimilarity::Cosine,
        ] {
            assert_eq!(s.compute(&a, &a), 1.0);
        }
    }

    #[test]
    fn disjoint_sets_are_zero() {
        let a = [1];
        let b = [2];
        for s in [
            SetSimilarity::Dice,
            SetSimilarity::Jaccard,
            SetSimilarity::Overlap,
            SetSimilarity::Cosine,
        ] {
            assert_eq!(s.compute(&a, &b), 0.0);
        }
    }

    #[test]
    fn empty_set_conventions() {
        let empty: [i32; 0] = [];
        let nonempty = [1];
        for s in [
            SetSimilarity::Dice,
            SetSimilarity::Jaccard,
            SetSimilarity::Overlap,
            SetSimilarity::Cosine,
        ] {
            assert_eq!(s.compute(&empty, &empty), 1.0);
            assert_eq!(s.compute(&empty, &nonempty), 0.0);
        }
    }

    #[test]
    fn subset_overlap_is_one() {
        let a = [1, 2];
        let b = [1, 2, 3, 4, 5];
        assert_eq!(overlap(&a, &b), 1.0);
        assert!(dice(&a, &b) < 1.0);
        assert!(jaccard(&a, &b) < 1.0);
    }

    #[test]
    fn ordering_jaccard_leq_dice() {
        let a = [1, 2, 3, 7, 9];
        let b = [2, 3, 4, 9];
        assert!(jaccard(&a, &b) <= dice(&a, &b));
    }

    #[test]
    fn qgram_similarity_wrapper() {
        let cfg = QGramConfig::bigrams();
        let d = qgram_similarity("smith", "smyth", &cfg, SetSimilarity::Dice);
        assert!((d - 0.5).abs() < 1e-12);
        assert_eq!(qgram_similarity("", "", &cfg, SetSimilarity::Jaccard), 1.0);
    }
}
