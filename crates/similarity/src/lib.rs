//! # pprl-similarity
//!
//! Similarity functions for record linkage: the edit-distance family, Jaro /
//! Jaro–Winkler, token-set coefficients (Dice, Jaccard, overlap, cosine),
//! bit-vector (Bloom filter) similarities including the multi-party Dice
//! coefficient from the paper, numeric/date/categorical comparators, and a
//! weighted record-level comparator producing similarity vectors for
//! classification.

// Unsafe is denied crate-wide and re-allowed only inside the
// target-feature kernel modules in `kernel`, where every block carries a
// safety comment tying it to runtime CPU-feature detection.
#![deny(unsafe_code)]
// `!(x > 0.0)`-style comparisons are deliberate: they reject NaN, which
// `x <= 0.0` would accept.
#![allow(clippy::neg_cmp_op_on_partial_ord)]
#![warn(missing_docs)]

pub mod bitvec_sim;
pub mod composite;
pub mod edit;
pub mod jaro;
pub mod kernel;
pub mod monge_elkan;
pub mod numeric;
pub mod token;

pub use bitvec_sim::{dice_bits, hamming_similarity, jaccard_bits, multi_dice, BitSimilarity};
pub use composite::{FieldComparator, FieldRule, RecordComparator};
pub use edit::{damerau_levenshtein, levenshtein, levenshtein_similarity};
pub use jaro::{jaro, jaro_winkler};
pub use monge_elkan::{monge_elkan, monge_elkan_jw};
pub use token::SetSimilarity;
