//! Edit-distance family of string comparators.
//!
//! Approximate matching of QIDs (§3.4 "linkage technologies") must tolerate
//! typographical errors. The edit-distance family counts the character
//! operations separating two strings: Levenshtein (insert/delete/substitute),
//! Damerau–Levenshtein in its optimal-string-alignment form (adds adjacent
//! transposition, the most common typing error), and the cheap *bag
//! distance* lower bound used as a filter.

/// Levenshtein distance (two-row Wagner–Fischer).
pub fn levenshtein(a: &str, b: &str) -> usize {
    let av: Vec<char> = a.chars().collect();
    let bv: Vec<char> = b.chars().collect();
    if av.is_empty() {
        return bv.len();
    }
    if bv.is_empty() {
        return av.len();
    }
    let mut prev: Vec<usize> = (0..=bv.len()).collect();
    let mut cur = vec![0usize; bv.len() + 1];
    for (i, &ca) in av.iter().enumerate() {
        cur[0] = i + 1;
        for (j, &cb) in bv.iter().enumerate() {
            let sub = prev[j] + usize::from(ca != cb);
            cur[j + 1] = sub.min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[bv.len()]
}

/// Damerau–Levenshtein distance (optimal string alignment variant:
/// adjacent transpositions count 1, but no substring is edited twice).
#[allow(clippy::needless_range_loop)] // indexes three arrays in lockstep
pub fn damerau_levenshtein(a: &str, b: &str) -> usize {
    let av: Vec<char> = a.chars().collect();
    let bv: Vec<char> = b.chars().collect();
    let (n, m) = (av.len(), bv.len());
    if n == 0 {
        return m;
    }
    if m == 0 {
        return n;
    }
    // Three rows needed for the transposition lookback.
    let mut d = vec![vec![0usize; m + 1]; n + 1];
    for (i, row) in d.iter_mut().enumerate() {
        row[0] = i;
    }
    for j in 0..=m {
        d[0][j] = j;
    }
    for i in 1..=n {
        for j in 1..=m {
            let cost = usize::from(av[i - 1] != bv[j - 1]);
            let mut best = (d[i - 1][j] + 1)
                .min(d[i][j - 1] + 1)
                .min(d[i - 1][j - 1] + cost);
            if i > 1 && j > 1 && av[i - 1] == bv[j - 2] && av[i - 2] == bv[j - 1] {
                best = best.min(d[i - 2][j - 2] + 1);
            }
            d[i][j] = best;
        }
    }
    d[n][m]
}

/// Bag distance: a cheap lower bound on Levenshtein computed from character
/// multisets. Useful as a pre-filter: if `bag_distance > threshold` then
/// `levenshtein > threshold` too.
pub fn bag_distance(a: &str, b: &str) -> usize {
    use std::collections::HashMap;
    let mut counts: HashMap<char, i64> = HashMap::new();
    for c in a.chars() {
        *counts.entry(c).or_insert(0) += 1;
    }
    for c in b.chars() {
        *counts.entry(c).or_insert(0) -= 1;
    }
    let pos: i64 = counts.values().filter(|&&v| v > 0).sum();
    let neg: i64 = -counts.values().filter(|&&v| v < 0).sum::<i64>();
    pos.max(neg) as usize
}

/// Normalises a distance to a similarity in `[0,1]`:
/// `1 − d / max(|a|, |b|)`; `1.0` for two empty strings.
fn normalise(d: usize, a: &str, b: &str) -> f64 {
    let max_len = a.chars().count().max(b.chars().count());
    if max_len == 0 {
        1.0
    } else {
        1.0 - d as f64 / max_len as f64
    }
}

/// Levenshtein similarity in `[0,1]`.
pub fn levenshtein_similarity(a: &str, b: &str) -> f64 {
    normalise(levenshtein(a, b), a, b)
}

/// Damerau–Levenshtein similarity in `[0,1]`.
pub fn damerau_similarity(a: &str, b: &str) -> f64 {
    normalise(damerau_levenshtein(a, b), a, b)
}

/// Longest common substring length (dynamic programming).
pub fn longest_common_substring(a: &str, b: &str) -> usize {
    let av: Vec<char> = a.chars().collect();
    let bv: Vec<char> = b.chars().collect();
    if av.is_empty() || bv.is_empty() {
        return 0;
    }
    let mut prev = vec![0usize; bv.len() + 1];
    let mut cur = vec![0usize; bv.len() + 1];
    let mut best = 0;
    for &ca in &av {
        for (j, &cb) in bv.iter().enumerate() {
            cur[j + 1] = if ca == cb { prev[j] + 1 } else { 0 };
            best = best.max(cur[j + 1]);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    best
}

/// Longest-common-substring similarity: `2·lcs / (|a|+|b|)`, `1.0` for two
/// empty strings.
pub fn lcs_similarity(a: &str, b: &str) -> f64 {
    let (la, lb) = (a.chars().count(), b.chars().count());
    if la + lb == 0 {
        return 1.0;
    }
    2.0 * longest_common_substring(a, b) as f64 / (la + lb) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levenshtein_known_values() {
        assert_eq!(levenshtein("kitten", "sitting"), 3);
        assert_eq!(levenshtein("flaw", "lawn"), 2);
        assert_eq!(levenshtein("", ""), 0);
        assert_eq!(levenshtein("abc", ""), 3);
        assert_eq!(levenshtein("", "abc"), 3);
        assert_eq!(levenshtein("same", "same"), 0);
    }

    #[test]
    fn damerau_counts_transpositions() {
        assert_eq!(levenshtein("ca", "ac"), 2);
        assert_eq!(damerau_levenshtein("ca", "ac"), 1);
        assert_eq!(damerau_levenshtein("smith", "smiht"), 1);
        assert_eq!(damerau_levenshtein("abc", "abc"), 0);
        assert_eq!(damerau_levenshtein("", "ab"), 2);
    }

    #[test]
    fn damerau_leq_levenshtein() {
        for (a, b) in [
            ("peter", "preet"),
            ("jonathan", "johnathan"),
            ("abcd", "dcba"),
        ] {
            assert!(damerau_levenshtein(a, b) <= levenshtein(a, b));
        }
    }

    #[test]
    fn bag_distance_lower_bounds_levenshtein() {
        for (a, b) in [
            ("kitten", "sitting"),
            ("smith", "smyth"),
            ("abcdef", "fedcba"),
            ("", "xyz"),
        ] {
            assert!(bag_distance(a, b) <= levenshtein(a, b), "{a} vs {b}");
        }
    }

    #[test]
    fn bag_distance_values() {
        assert_eq!(bag_distance("abc", "abc"), 0);
        assert_eq!(bag_distance("abc", "abd"), 1);
        assert_eq!(bag_distance("aab", "b"), 2);
    }

    #[test]
    fn similarities_in_unit_interval() {
        for (a, b) in [("smith", "smyth"), ("", ""), ("a", ""), ("xy", "yx")] {
            for s in [
                levenshtein_similarity(a, b),
                damerau_similarity(a, b),
                lcs_similarity(a, b),
            ] {
                assert!((0.0..=1.0).contains(&s), "{a}/{b} gave {s}");
            }
        }
        assert_eq!(levenshtein_similarity("", ""), 1.0);
        assert_eq!(levenshtein_similarity("ab", "ab"), 1.0);
        assert_eq!(levenshtein_similarity("ab", "cd"), 0.0);
    }

    #[test]
    fn lcs_known_values() {
        assert_eq!(longest_common_substring("abcdxyz", "xyzabcd"), 4);
        assert_eq!(longest_common_substring("abc", "def"), 0);
        assert_eq!(longest_common_substring("", "abc"), 0);
        assert!((lcs_similarity("abab", "baba") - 2.0 * 3.0 / 8.0).abs() < 1e-12);
    }

    #[test]
    fn symmetry() {
        for (a, b) in [("peter", "pedro"), ("ann", "anne"), ("x", "yz")] {
            assert_eq!(levenshtein(a, b), levenshtein(b, a));
            assert_eq!(damerau_levenshtein(a, b), damerau_levenshtein(b, a));
            assert_eq!(bag_distance(a, b), bag_distance(b, a));
            assert_eq!(
                longest_common_substring(a, b),
                longest_common_substring(b, a)
            );
        }
    }

    #[test]
    fn unicode_counted_by_chars() {
        assert_eq!(levenshtein("müller", "muller"), 1);
        assert_eq!(damerau_levenshtein("müller", "mülelr"), 1); // transposed l/e
    }
}
