//! Monge–Elkan similarity for multi-token fields.
//!
//! Address and full-name QIDs contain several words whose order varies
//! ("12 Main Street" vs "Main St 12"). Monge–Elkan scores each token of
//! one string by its *best* counterpart in the other under an inner
//! word-level similarity and averages — tolerant of token reordering,
//! insertion and per-word typos at once. The symmetric variant averages
//! both directions so the measure stays symmetric.

use crate::jaro::jaro_winkler;

/// Splits on whitespace into non-empty tokens.
fn tokens(s: &str) -> Vec<&str> {
    s.split_whitespace().filter(|t| !t.is_empty()).collect()
}

/// One-directional Monge–Elkan: mean over `a`'s tokens of the best inner
/// similarity to any token of `b`.
pub fn monge_elkan_directed<F>(a: &str, b: &str, inner: F) -> f64
where
    F: Fn(&str, &str) -> f64,
{
    let ta = tokens(a);
    let tb = tokens(b);
    if ta.is_empty() && tb.is_empty() {
        return 1.0;
    }
    if ta.is_empty() || tb.is_empty() {
        return 0.0;
    }
    let total: f64 = ta
        .iter()
        .map(|x| tb.iter().map(|y| inner(x, y)).fold(0.0f64, f64::max))
        .sum();
    total / ta.len() as f64
}

/// Symmetric Monge–Elkan: the mean of both directions.
pub fn monge_elkan<F>(a: &str, b: &str, inner: F) -> f64
where
    F: Fn(&str, &str) -> f64 + Copy,
{
    (monge_elkan_directed(a, b, inner) + monge_elkan_directed(b, a, inner)) / 2.0
}

/// Symmetric Monge–Elkan with Jaro–Winkler as the inner similarity — the
/// standard configuration for names and addresses.
pub fn monge_elkan_jw(a: &str, b: &str) -> f64 {
    monge_elkan(a, b, jaro_winkler)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_strings_score_one() {
        assert_eq!(monge_elkan_jw("main street", "main street"), 1.0);
        assert_eq!(monge_elkan_jw("", ""), 1.0);
    }

    #[test]
    fn token_reordering_is_free() {
        let reordered = monge_elkan_jw("12 main street", "street main 12");
        assert!((reordered - 1.0).abs() < 1e-12, "got {reordered}");
    }

    #[test]
    fn per_token_typos_tolerated() {
        let s = monge_elkan_jw("main street", "mian street");
        assert!(s > 0.9, "typo in one token: {s}");
        let disjoint = monge_elkan_jw("main street", "qqqq zzzz");
        assert!(disjoint < 0.5);
    }

    #[test]
    fn symmetric() {
        for (a, b) in [
            ("12 main st", "main street 12"),
            ("anna maria garcia", "garcia anna"),
            ("x", "x y z"),
        ] {
            let ab = monge_elkan_jw(a, b);
            let ba = monge_elkan_jw(b, a);
            assert!((ab - ba).abs() < 1e-12, "{a} vs {b}: {ab} != {ba}");
        }
    }

    #[test]
    fn directed_subset_scores_full() {
        // Every token of the short string appears in the long one.
        let d = monge_elkan_directed("anna garcia", "anna maria garcia lopez", jaro_winkler);
        assert_eq!(d, 1.0);
        // The reverse direction is penalised for the extra tokens.
        let r = monge_elkan_directed("anna maria garcia lopez", "anna garcia", jaro_winkler);
        assert!(r < 1.0);
    }

    #[test]
    fn empty_vs_nonempty_is_zero() {
        assert_eq!(monge_elkan_jw("", "main"), 0.0);
        assert_eq!(monge_elkan_jw("main", ""), 0.0);
        assert_eq!(monge_elkan_jw("   ", "main"), 0.0);
    }

    #[test]
    fn bounded() {
        for (a, b) in [("a b c", "d e"), ("main st", "st"), ("x y", "y x")] {
            let s = monge_elkan_jw(a, b);
            assert!((0.0..=1.0).contains(&s));
        }
    }

    #[test]
    fn custom_inner_similarity() {
        // Exact-match inner: Monge–Elkan degrades to token overlap ratio.
        let exact = |x: &str, y: &str| if x == y { 1.0 } else { 0.0 };
        let s = monge_elkan("a b c d", "a b x y", exact);
        assert!((s - 0.5).abs() < 1e-12);
    }
}
