//! Word-slice comparison kernels for the columnar scan path, with
//! runtime CPU-feature dispatch.
//!
//! The index query engine stores Bloom filters in flat `u64` arenas (see
//! `pprl-index`), so its hot loop works on `&[u64]` slices rather than
//! `BitVec`s. These kernels are the slice-level counterparts of
//! [`pprl_core::bitvec::BitVec::and_count`] and
//! [`crate::bitvec_sim::dice_bits`], with two throughput-oriented
//! variants:
//!
//! * [`and_count`] — one pair, four independent accumulators so the
//!   popcounts pipeline instead of serialising on one add chain;
//! * [`and_count4`] — one query against four rows stored contiguously,
//!   loading each query word once per *four* intersections, which is
//!   what makes the batched arena scan memory-bandwidth-friendly.
//!
//! # Dispatch
//!
//! Each kernel has several implementations, selected **once per process**
//! by runtime CPU-feature detection (`is_x86_feature_detected!` and the
//! aarch64 equivalent). The default x86-64 code model does not even
//! guarantee a hardware `popcnt` instruction, so the paths form a real
//! performance ladder:
//!
//! | name       | arch     | requires                  | technique                          |
//! |------------|----------|---------------------------|------------------------------------|
//! | `scalar`   | any      | —                         | unrolled loop, SWAR popcount       |
//! | `portable` | x86-64   | `popcnt`                  | same loop, hardware popcount       |
//! | `avx2`     | x86-64   | `avx2`                    | Muła nibble-LUT popcount, 256-bit  |
//! | `avx512`   | x86-64   | `avx512f+avx512vpopcntdq` | `vpopcntq`, 512-bit lanes          |
//! | `neon`     | aarch64  | `neon`                    | `cnt.16b` + widening adds, 128-bit |
//!
//! (`portable` is the portable-width stand-in for `std::simd`, which is
//! still nightly-only: the scalar loop recompiled with the baseline
//! popcount feature enabled, which the autovectoriser is free to widen.)
//!
//! The environment variable `PPRL_KERNEL` forces a path by name (`scalar`
//! included) for tests and benches; `auto` or unset picks the best
//! supported path. Forcing an *unsupported* path falls back to the best
//! supported one rather than executing illegal instructions — compare
//! [`requested_kernel`] with [`kernel_name`] (or call
//! [`requested_is_supported`]) to detect the fallback.
//!
//! Every kernel is exact: the intersection popcounts are integers and
//! [`dice_from_counts`] reproduces `dice_bits`' f64 expression term for
//! term, so scores computed through this module are bit-identical to the
//! scalar `BitVec` path. The property suite in
//! `crates/index/tests/kernel_equivalence.rs` checks every path available
//! on the host against the `BitVec` oracle, including odd tail lengths.

use std::sync::OnceLock;

/// One dispatchable implementation of the scan kernels.
///
/// Instances only come out of [`available_kernels`] / [`active_kernel`],
/// which guarantees the backing functions are safe to execute on this
/// CPU: the constructors are private and a `Kernel` is only built after
/// its required features were detected at runtime.
#[derive(Clone, Copy)]
pub struct Kernel {
    name: &'static str,
    and_count: fn(&[u64], &[u64]) -> usize,
    and_count4: fn(&[u64], &[u64]) -> [usize; 4],
}

impl Kernel {
    /// Path name as accepted by `PPRL_KERNEL` (e.g. `"avx2"`).
    #[inline]
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Intersection popcount of two equal-length word slices.
    ///
    /// The length check is a cheap release-mode assert: a mismatched pair
    /// means a corrupt arena stride, and silently mis-scoring records is
    /// strictly worse than aborting the scan.
    #[inline]
    pub fn and_count(&self, a: &[u64], b: &[u64]) -> usize {
        assert_eq!(
            a.len(),
            b.len(),
            "and_count: word-count mismatch (arena stride corrupt?)"
        );
        (self.and_count)(a, b)
    }

    /// Intersection popcounts of one query against four rows laid out
    /// back-to-back in `rows` (`rows.len() == 4 * query.len()`).
    ///
    /// As with [`Kernel::and_count`], the stride check stays on in
    /// release builds; it is one comparison per 4-row block.
    #[inline]
    pub fn and_count4(&self, query: &[u64], rows: &[u64]) -> [usize; 4] {
        assert_eq!(
            rows.len(),
            4 * query.len(),
            "and_count4: rows must hold exactly 4 query-width rows"
        );
        (self.and_count4)(query, rows)
    }
}

impl PartialEq for Kernel {
    fn eq(&self, other: &Self) -> bool {
        self.name == other.name
    }
}

impl std::fmt::Debug for Kernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Kernel").field("name", &self.name).finish()
    }
}

/// Intersection popcount of two equal-length word slices, through the
/// dispatched kernel. Equals
/// [`pprl_core::bitvec::BitVec::and_count`] on the backing words of two
/// equal-length vectors (trailing bits are zero by invariant).
#[inline]
pub fn and_count(a: &[u64], b: &[u64]) -> usize {
    active_kernel().and_count(a, b)
}

/// Intersection popcounts of one query against four contiguous rows,
/// through the dispatched kernel. See [`Kernel::and_count4`].
#[inline]
pub fn and_count4(query: &[u64], rows: &[u64]) -> [usize; 4] {
    active_kernel().and_count4(query, rows)
}

/// Dice coefficient from an intersection popcount and the two filter
/// cardinalities — the exact f64 expression of
/// [`crate::bitvec_sim::dice_bits`], so kernel-computed scores are
/// bit-identical to the scalar path (including the both-empty = 1.0
/// convention).
#[inline]
pub fn dice_from_counts(intersection: usize, ones_a: usize, ones_b: usize) -> f64 {
    if ones_a + ones_b == 0 {
        return 1.0;
    }
    2.0 * intersection as f64 / (ones_a + ones_b) as f64
}

// ---------------------------------------------------------------------------
// Scalar reference path (always available, any architecture).
// ---------------------------------------------------------------------------

mod scalar {
    #[inline]
    pub(super) fn and_count(a: &[u64], b: &[u64]) -> usize {
        debug_assert_eq!(a.len(), b.len());
        let mut acc = [0usize; 4];
        let mut chunks_a = a.chunks_exact(4);
        let mut chunks_b = b.chunks_exact(4);
        for (ca, cb) in chunks_a.by_ref().zip(chunks_b.by_ref()) {
            acc[0] += (ca[0] & cb[0]).count_ones() as usize;
            acc[1] += (ca[1] & cb[1]).count_ones() as usize;
            acc[2] += (ca[2] & cb[2]).count_ones() as usize;
            acc[3] += (ca[3] & cb[3]).count_ones() as usize;
        }
        let mut tail = 0usize;
        for (x, y) in chunks_a.remainder().iter().zip(chunks_b.remainder()) {
            tail += (x & y).count_ones() as usize;
        }
        acc[0] + acc[1] + acc[2] + acc[3] + tail
    }

    #[inline]
    pub(super) fn and_count4(query: &[u64], rows: &[u64]) -> [usize; 4] {
        let stride = query.len();
        debug_assert_eq!(rows.len(), 4 * stride);
        let (r0, rest) = rows.split_at(stride);
        let (r1, rest) = rest.split_at(stride);
        let (r2, r3) = rest.split_at(stride);
        let mut acc = [0usize; 4];
        for w in 0..stride {
            let q = query[w];
            acc[0] += (q & r0[w]).count_ones() as usize;
            acc[1] += (q & r1[w]).count_ones() as usize;
            acc[2] += (q & r2[w]).count_ones() as usize;
            acc[3] += (q & r3[w]).count_ones() as usize;
        }
        acc
    }
}

// ---------------------------------------------------------------------------
// x86-64 paths. Every `unsafe` here is justified by runtime feature
// detection: the wrappers are only ever reachable through a `Kernel`
// that `detect_kernels` constructed after the matching
// `is_x86_feature_detected!` returned true.
// ---------------------------------------------------------------------------

#[cfg(target_arch = "x86_64")]
#[allow(unsafe_code)]
mod x86 {
    use core::arch::x86_64::*;

    // ---- portable: the scalar loop with hardware popcount enabled ----
    //
    // The default x86-64 baseline predates `popcnt`, so release builds of
    // the scalar path emit a SWAR bit-count sequence per word. Recompiling
    // the same loop with the feature enabled replaces that with one
    // instruction — and leaves the autovectoriser free to widen it.

    #[target_feature(enable = "popcnt")]
    fn and_count_popcnt_impl(a: &[u64], b: &[u64]) -> usize {
        super::scalar::and_count(a, b)
    }

    #[target_feature(enable = "popcnt")]
    fn and_count4_popcnt_impl(query: &[u64], rows: &[u64]) -> [usize; 4] {
        super::scalar::and_count4(query, rows)
    }

    pub(super) fn and_count_portable(a: &[u64], b: &[u64]) -> usize {
        // SAFETY: reachable only via a Kernel built after
        // is_x86_feature_detected!("popcnt") succeeded.
        unsafe { and_count_popcnt_impl(a, b) }
    }

    pub(super) fn and_count4_portable(query: &[u64], rows: &[u64]) -> [usize; 4] {
        // SAFETY: as above — popcnt was detected at runtime.
        unsafe { and_count4_popcnt_impl(query, rows) }
    }

    // ---- avx2: Muła nibble-LUT popcount over 256-bit lanes ----
    //
    // No popcount instruction exists at 256 bits, so each byte is split
    // into nibbles looked up in an in-register table (`vpshufb`), and the
    // byte counts are folded into u64 lanes with `vpsadbw` — the classic
    // Muła/Kurz/Lemire harley-seal building block.

    #[inline]
    #[target_feature(enable = "avx2")]
    fn popcnt_bytes_avx2(v: __m256i) -> __m256i {
        let lookup = _mm256_setr_epi8(
            0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4, 0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2,
            3, 3, 4,
        );
        let low_mask = _mm256_set1_epi8(0x0f);
        let lo = _mm256_and_si256(v, low_mask);
        let hi = _mm256_and_si256(_mm256_srli_epi16(v, 4), low_mask);
        _mm256_add_epi8(
            _mm256_shuffle_epi8(lookup, lo),
            _mm256_shuffle_epi8(lookup, hi),
        )
    }

    #[inline]
    #[target_feature(enable = "avx2")]
    fn hsum_epi64_avx2(v: __m256i) -> usize {
        let mut lanes = [0u64; 4];
        // SAFETY: `lanes` is a 32-byte writable buffer; storeu has no
        // alignment requirement.
        unsafe { _mm256_storeu_si256(lanes.as_mut_ptr().cast(), v) };
        (lanes[0] + lanes[1] + lanes[2] + lanes[3]) as usize
    }

    #[target_feature(enable = "avx2")]
    fn and_count_avx2_impl(a: &[u64], b: &[u64]) -> usize {
        let n = a.len();
        let zero = _mm256_setzero_si256();
        let mut acc = zero;
        let mut i = 0usize;
        while i + 4 <= n {
            // SAFETY: i + 4 <= n, so 32 bytes starting at offset i are in
            // bounds for both slices; loadu tolerates any alignment.
            let v = unsafe {
                let va = _mm256_loadu_si256(a.as_ptr().add(i).cast());
                let vb = _mm256_loadu_si256(b.as_ptr().add(i).cast());
                _mm256_and_si256(va, vb)
            };
            acc = _mm256_add_epi64(acc, _mm256_sad_epu8(popcnt_bytes_avx2(v), zero));
            i += 4;
        }
        let mut total = hsum_epi64_avx2(acc);
        while i < n {
            total += (a[i] & b[i]).count_ones() as usize;
            i += 1;
        }
        total
    }

    #[target_feature(enable = "avx2")]
    fn and_count4_avx2_impl(query: &[u64], rows: &[u64]) -> [usize; 4] {
        let stride = query.len();
        let (r0, rest) = rows.split_at(stride);
        let (r1, rest) = rest.split_at(stride);
        let (r2, r3) = rest.split_at(stride);
        let zero = _mm256_setzero_si256();
        let mut acc = [zero; 4];
        let mut i = 0usize;
        while i + 4 <= stride {
            // SAFETY: i + 4 <= stride keeps all five 32-byte loads in
            // bounds of their respective stride-length slices.
            unsafe {
                let q = _mm256_loadu_si256(query.as_ptr().add(i).cast());
                for (lane, r) in [r0, r1, r2, r3].into_iter().enumerate() {
                    let v = _mm256_and_si256(q, _mm256_loadu_si256(r.as_ptr().add(i).cast()));
                    acc[lane] =
                        _mm256_add_epi64(acc[lane], _mm256_sad_epu8(popcnt_bytes_avx2(v), zero));
                }
            }
            i += 4;
        }
        let mut out = [
            hsum_epi64_avx2(acc[0]),
            hsum_epi64_avx2(acc[1]),
            hsum_epi64_avx2(acc[2]),
            hsum_epi64_avx2(acc[3]),
        ];
        while i < stride {
            let q = query[i];
            out[0] += (q & r0[i]).count_ones() as usize;
            out[1] += (q & r1[i]).count_ones() as usize;
            out[2] += (q & r2[i]).count_ones() as usize;
            out[3] += (q & r3[i]).count_ones() as usize;
            i += 1;
        }
        out
    }

    pub(super) fn and_count_avx2(a: &[u64], b: &[u64]) -> usize {
        // SAFETY: reachable only via a Kernel built after
        // is_x86_feature_detected!("avx2") succeeded.
        unsafe { and_count_avx2_impl(a, b) }
    }

    pub(super) fn and_count4_avx2(query: &[u64], rows: &[u64]) -> [usize; 4] {
        // SAFETY: as above — avx2 was detected at runtime.
        unsafe { and_count4_avx2_impl(query, rows) }
    }

    // ---- avx512: native 64-bit-lane popcount (VPOPCNTDQ) ----

    #[target_feature(enable = "avx512f,avx512vpopcntdq")]
    fn and_count_avx512_impl(a: &[u64], b: &[u64]) -> usize {
        let n = a.len();
        let mut acc = _mm512_setzero_si512();
        let mut i = 0usize;
        while i + 8 <= n {
            // SAFETY: i + 8 <= n keeps both 64-byte loads in bounds;
            // loadu tolerates any alignment.
            let v = unsafe {
                let va = _mm512_loadu_si512(a.as_ptr().add(i).cast());
                let vb = _mm512_loadu_si512(b.as_ptr().add(i).cast());
                _mm512_and_si512(va, vb)
            };
            acc = _mm512_add_epi64(acc, _mm512_popcnt_epi64(v));
            i += 8;
        }
        let mut total = _mm512_reduce_add_epi64(acc) as usize;
        while i < n {
            total += (a[i] & b[i]).count_ones() as usize;
            i += 1;
        }
        total
    }

    #[target_feature(enable = "avx512f,avx512vpopcntdq")]
    fn and_count4_avx512_impl(query: &[u64], rows: &[u64]) -> [usize; 4] {
        let stride = query.len();
        let (r0, rest) = rows.split_at(stride);
        let (r1, rest) = rest.split_at(stride);
        let (r2, r3) = rest.split_at(stride);
        let mut acc = [_mm512_setzero_si512(); 4];
        let mut i = 0usize;
        while i + 8 <= stride {
            // SAFETY: i + 8 <= stride keeps all five 64-byte loads in
            // bounds of their respective stride-length slices.
            unsafe {
                let q = _mm512_loadu_si512(query.as_ptr().add(i).cast());
                for (lane, r) in [r0, r1, r2, r3].into_iter().enumerate() {
                    let v = _mm512_and_si512(q, _mm512_loadu_si512(r.as_ptr().add(i).cast()));
                    acc[lane] = _mm512_add_epi64(acc[lane], _mm512_popcnt_epi64(v));
                }
            }
            i += 8;
        }
        let mut out = [
            _mm512_reduce_add_epi64(acc[0]) as usize,
            _mm512_reduce_add_epi64(acc[1]) as usize,
            _mm512_reduce_add_epi64(acc[2]) as usize,
            _mm512_reduce_add_epi64(acc[3]) as usize,
        ];
        while i < stride {
            let q = query[i];
            out[0] += (q & r0[i]).count_ones() as usize;
            out[1] += (q & r1[i]).count_ones() as usize;
            out[2] += (q & r2[i]).count_ones() as usize;
            out[3] += (q & r3[i]).count_ones() as usize;
            i += 1;
        }
        out
    }

    pub(super) fn and_count_avx512(a: &[u64], b: &[u64]) -> usize {
        // SAFETY: reachable only via a Kernel built after
        // is_x86_feature_detected! confirmed avx512f + avx512vpopcntdq.
        unsafe { and_count_avx512_impl(a, b) }
    }

    pub(super) fn and_count4_avx512(query: &[u64], rows: &[u64]) -> [usize; 4] {
        // SAFETY: as above — avx512f + avx512vpopcntdq were detected.
        unsafe { and_count4_avx512_impl(query, rows) }
    }
}

// ---------------------------------------------------------------------------
// aarch64 path: `cnt.16b` counts bits per byte, then three widening
// pairwise adds fold bytes → u64 lanes.
// ---------------------------------------------------------------------------

#[cfg(target_arch = "aarch64")]
#[allow(unsafe_code)]
mod arm {
    use core::arch::aarch64::*;

    #[target_feature(enable = "neon")]
    fn and_count_neon_impl(a: &[u64], b: &[u64]) -> usize {
        let n = a.len();
        let mut acc = vdupq_n_u64(0);
        let mut i = 0usize;
        while i + 2 <= n {
            // SAFETY: i + 2 <= n keeps both 16-byte loads in bounds.
            let v = unsafe {
                let va = vld1q_u64(a.as_ptr().add(i));
                let vb = vld1q_u64(b.as_ptr().add(i));
                vandq_u64(va, vb)
            };
            let cnt = vcntq_u8(vreinterpretq_u8_u64(v));
            acc = vaddq_u64(acc, vpaddlq_u32(vpaddlq_u16(vpaddlq_u8(cnt))));
            i += 2;
        }
        let mut total = (vgetq_lane_u64(acc, 0) + vgetq_lane_u64(acc, 1)) as usize;
        while i < n {
            total += (a[i] & b[i]).count_ones() as usize;
            i += 1;
        }
        total
    }

    #[target_feature(enable = "neon")]
    fn and_count4_neon_impl(query: &[u64], rows: &[u64]) -> [usize; 4] {
        let stride = query.len();
        let (r0, rest) = rows.split_at(stride);
        let (r1, rest) = rest.split_at(stride);
        let (r2, r3) = rest.split_at(stride);
        let mut acc = [vdupq_n_u64(0); 4];
        let mut i = 0usize;
        while i + 2 <= stride {
            // SAFETY: i + 2 <= stride keeps all five 16-byte loads in
            // bounds of their respective stride-length slices.
            unsafe {
                let q = vld1q_u64(query.as_ptr().add(i));
                for (lane, r) in [r0, r1, r2, r3].into_iter().enumerate() {
                    let v = vandq_u64(q, vld1q_u64(r.as_ptr().add(i)));
                    let cnt = vcntq_u8(vreinterpretq_u8_u64(v));
                    acc[lane] = vaddq_u64(acc[lane], vpaddlq_u32(vpaddlq_u16(vpaddlq_u8(cnt))));
                }
            }
            i += 2;
        }
        let fold = |v: uint64x2_t| (vgetq_lane_u64(v, 0) + vgetq_lane_u64(v, 1)) as usize;
        let mut out = [fold(acc[0]), fold(acc[1]), fold(acc[2]), fold(acc[3])];
        while i < stride {
            let q = query[i];
            out[0] += (q & r0[i]).count_ones() as usize;
            out[1] += (q & r1[i]).count_ones() as usize;
            out[2] += (q & r2[i]).count_ones() as usize;
            out[3] += (q & r3[i]).count_ones() as usize;
            i += 1;
        }
        out
    }

    pub(super) fn and_count_neon(a: &[u64], b: &[u64]) -> usize {
        // SAFETY: reachable only via a Kernel built after the aarch64
        // runtime detection of "neon" succeeded.
        unsafe { and_count_neon_impl(a, b) }
    }

    pub(super) fn and_count4_neon(query: &[u64], rows: &[u64]) -> [usize; 4] {
        // SAFETY: as above — neon was detected at runtime.
        unsafe { and_count4_neon_impl(query, rows) }
    }
}

// ---------------------------------------------------------------------------
// Dispatch: one-time detection + PPRL_KERNEL override.
// ---------------------------------------------------------------------------

const SCALAR: Kernel = Kernel {
    name: "scalar",
    and_count: scalar::and_count,
    and_count4: scalar::and_count4,
};

/// Detect what this CPU supports, worst path first / best path last.
fn detect_kernels() -> Vec<Kernel> {
    #[allow(unused_mut)]
    let mut v = vec![SCALAR];
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("popcnt") {
            v.push(Kernel {
                name: "portable",
                and_count: x86::and_count_portable,
                and_count4: x86::and_count4_portable,
            });
        }
        if std::arch::is_x86_feature_detected!("avx2") {
            v.push(Kernel {
                name: "avx2",
                and_count: x86::and_count_avx2,
                and_count4: x86::and_count4_avx2,
            });
        }
        if std::arch::is_x86_feature_detected!("avx512f")
            && std::arch::is_x86_feature_detected!("avx512vpopcntdq")
        {
            v.push(Kernel {
                name: "avx512",
                and_count: x86::and_count_avx512,
                and_count4: x86::and_count4_avx512,
            });
        }
    }
    #[cfg(target_arch = "aarch64")]
    {
        if std::arch::is_aarch64_feature_detected!("neon") {
            v.push(Kernel {
                name: "neon",
                and_count: arm::and_count_neon,
                and_count4: arm::and_count4_neon,
            });
        }
    }
    v
}

/// Every kernel path this CPU can execute, worst first, best last.
/// `scalar` is always present. Detection runs once per process.
pub fn available_kernels() -> &'static [Kernel] {
    static KERNELS: OnceLock<Vec<Kernel>> = OnceLock::new();
    KERNELS.get_or_init(detect_kernels)
}

struct Dispatch {
    active: Kernel,
    requested: Option<String>,
}

/// Pure selection rule, factored out so it is testable without touching
/// process-global environment: `None` / `"auto"` pick the best available
/// path; a known name picks that path; an unknown or unsupported name
/// falls back to the best path (the caller can detect this via
/// [`requested_is_supported`]).
fn select_kernel(requested: Option<&str>, kernels: &[Kernel]) -> Kernel {
    let best = *kernels.last().expect("scalar kernel is always available");
    match requested {
        None | Some("auto") => best,
        Some(name) => kernels
            .iter()
            .find(|k| k.name == name)
            .copied()
            .unwrap_or(best),
    }
}

fn dispatch() -> &'static Dispatch {
    static DISPATCH: OnceLock<Dispatch> = OnceLock::new();
    DISPATCH.get_or_init(|| {
        let requested = std::env::var("PPRL_KERNEL")
            .ok()
            .map(|s| s.trim().to_ascii_lowercase())
            .filter(|s| !s.is_empty());
        let active = select_kernel(requested.as_deref(), available_kernels());
        Dispatch { active, requested }
    })
}

/// The kernel every [`and_count`] / [`and_count4`] call dispatches to.
/// Resolved once per process from CPU detection and `PPRL_KERNEL`.
#[inline]
pub fn active_kernel() -> Kernel {
    dispatch().active
}

/// Name of the active kernel path (`"scalar"`, `"avx512"`, …).
#[inline]
pub fn kernel_name() -> &'static str {
    dispatch().active.name
}

/// The normalised `PPRL_KERNEL` value, if one was set (including
/// `"auto"` and unsupported names that fell back to the best path).
pub fn requested_kernel() -> Option<&'static str> {
    dispatch().requested.as_deref()
}

/// False iff `PPRL_KERNEL` named a path this host cannot run (the
/// dispatcher then fell back to the best supported path). CI uses this
/// to fail fast instead of silently benchmarking the wrong kernel.
pub fn requested_is_supported() -> bool {
    match requested_kernel() {
        None => true,
        Some("auto") => true,
        Some(name) => name == kernel_name(),
    }
}

/// The kernel-relevant CPU features detected on this host, for
/// recording in benchmark output so cross-machine numbers stay
/// interpretable.
pub fn cpu_features() -> Vec<&'static str> {
    #[allow(unused_mut)]
    let mut v = Vec::new();
    #[cfg(target_arch = "x86_64")]
    {
        for (name, hit) in [
            ("popcnt", std::arch::is_x86_feature_detected!("popcnt")),
            ("avx2", std::arch::is_x86_feature_detected!("avx2")),
            ("avx512f", std::arch::is_x86_feature_detected!("avx512f")),
            (
                "avx512vpopcntdq",
                std::arch::is_x86_feature_detected!("avx512vpopcntdq"),
            ),
        ] {
            if hit {
                v.push(name);
            }
        }
    }
    #[cfg(target_arch = "aarch64")]
    {
        if std::arch::is_aarch64_feature_detected!("neon") {
            v.push("neon");
        }
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bitvec_sim::dice_bits;
    use pprl_core::bitvec::BitVec;
    use pprl_core::rng::SplitMix64;

    fn random_filter(len: usize, denom: u64, rng: &mut SplitMix64) -> BitVec {
        let ones: Vec<usize> = (0..len)
            .filter(|_| rng.next_u64().is_multiple_of(denom))
            .collect();
        BitVec::from_positions(len, &ones).unwrap()
    }

    #[test]
    fn and_count_matches_bitvec_over_random_filters() {
        let mut rng = SplitMix64::new(0xA11D);
        for len in [1usize, 7, 63, 64, 65, 256, 1000, 2048] {
            for denom in [1u64, 2, 5, 17] {
                let a = random_filter(len, denom, &mut rng);
                let b = random_filter(len, denom, &mut rng);
                assert_eq!(
                    and_count(a.as_words(), b.as_words()),
                    a.and_count(&b),
                    "len={len} denom={denom}"
                );
            }
            // Edge cases: empty against everything, all-ones pairs.
            let zero = BitVec::zeros(len);
            let ones = BitVec::ones(len);
            assert_eq!(and_count(zero.as_words(), ones.as_words()), 0);
            assert_eq!(and_count(ones.as_words(), ones.as_words()), len);
        }
    }

    #[test]
    fn and_count4_matches_four_scalar_calls() {
        let mut rng = SplitMix64::new(0xB10C);
        for len in [64usize, 100, 1000] {
            let q = random_filter(len, 3, &mut rng);
            let rows: Vec<BitVec> = (0..4).map(|_| random_filter(len, 3, &mut rng)).collect();
            let mut flat = Vec::new();
            for r in &rows {
                flat.extend_from_slice(r.as_words());
            }
            let got = and_count4(q.as_words(), &flat);
            for (i, r) in rows.iter().enumerate() {
                assert_eq!(got[i], q.and_count(r), "len={len} row={i}");
            }
        }
    }

    #[test]
    fn every_available_path_matches_the_scalar_oracle() {
        // Lengths chosen so the word count mod the widest vector width
        // (8 words) covers every tail size, including 0.
        let mut rng = SplitMix64::new(0x51D);
        for len in [
            1usize, 63, 64, 65, 127, 128, 129, 191, 192, 193, 255, 256, 257, 320, 321, 448, 449,
            512, 513, 1000, 2048,
        ] {
            for denom in [1u64, 2, 7] {
                let a = random_filter(len, denom, &mut rng);
                let b = random_filter(len, denom, &mut rng);
                let rows: Vec<BitVec> = (0..4)
                    .map(|_| random_filter(len, denom, &mut rng))
                    .collect();
                let mut flat = Vec::new();
                for r in &rows {
                    flat.extend_from_slice(r.as_words());
                }
                let want1 = a.and_count(&b);
                let want4: Vec<usize> = rows.iter().map(|r| a.and_count(r)).collect();
                for k in available_kernels() {
                    assert_eq!(
                        k.and_count(a.as_words(), b.as_words()),
                        want1,
                        "kernel={} len={len} denom={denom}",
                        k.name()
                    );
                    assert_eq!(
                        k.and_count4(a.as_words(), &flat).to_vec(),
                        want4,
                        "kernel={} len={len} denom={denom}",
                        k.name()
                    );
                }
            }
        }
    }

    #[test]
    fn select_kernel_honors_names_and_falls_back() {
        let kernels = available_kernels();
        let best = kernels.last().unwrap();
        // Unset and "auto" pick the best path.
        assert_eq!(select_kernel(None, kernels).name(), best.name());
        assert_eq!(select_kernel(Some("auto"), kernels).name(), best.name());
        // Every supported name picks exactly that path.
        for k in kernels {
            assert_eq!(select_kernel(Some(k.name()), kernels).name(), k.name());
        }
        // Unknown names fall back to the best path instead of panicking.
        assert_eq!(select_kernel(Some("quantum"), kernels).name(), best.name());
    }

    #[test]
    fn scalar_is_always_available_and_first() {
        let kernels = available_kernels();
        assert_eq!(kernels[0].name(), "scalar");
        // The active kernel is always one of the available paths.
        assert!(kernels.iter().any(|k| k.name() == kernel_name()));
    }

    #[test]
    #[should_panic(expected = "and_count4")]
    fn mismatched_stride_panics_in_release_too() {
        let q = [0u64; 4];
        let rows = [0u64; 12]; // 3 rows, not 4
        active_kernel().and_count4(&q, &rows);
    }

    #[test]
    fn dice_from_counts_is_bit_identical_to_dice_bits() {
        let mut rng = SplitMix64::new(0xD1CE);
        for _ in 0..200 {
            let a = random_filter(512, 1 + rng.next_u64() % 6, &mut rng);
            let b = random_filter(512, 1 + rng.next_u64() % 6, &mut rng);
            let inter = and_count(a.as_words(), b.as_words());
            let got = dice_from_counts(inter, a.count_ones(), b.count_ones());
            let want = dice_bits(&a, &b).unwrap();
            assert!(got == want, "kernel {got} != scalar {want}");
        }
        // Both-empty convention.
        assert_eq!(dice_from_counts(0, 0, 0), 1.0);
    }
}
