//! Word-slice comparison kernels for the columnar scan path.
//!
//! The index query engine stores Bloom filters in flat `u64` arenas (see
//! `pprl-index`), so its hot loop works on `&[u64]` slices rather than
//! `BitVec`s. These kernels are the slice-level counterparts of
//! [`pprl_core::bitvec::BitVec::and_count`] and
//! [`crate::bitvec_sim::dice_bits`], with two throughput-oriented
//! variants:
//!
//! * [`and_count`] — one pair, four independent accumulators so the
//!   popcounts pipeline instead of serialising on one add chain;
//! * [`and_count4`] — one query against four rows stored contiguously,
//!   loading each query word once per *four* intersections, which is
//!   what makes the batched arena scan memory-bandwidth-friendly.
//!
//! Every kernel is exact: the intersection popcounts are integers and
//! [`dice_from_counts`] reproduces `dice_bits`' f64 expression term for
//! term, so scores computed through this module are bit-identical to the
//! scalar `BitVec` path.

/// Intersection popcount of two equal-length word slices, unrolled into
/// four accumulators.
///
/// Equals [`pprl_core::bitvec::BitVec::and_count`] on the backing words
/// of two equal-length vectors (trailing bits are zero by invariant).
#[inline]
pub fn and_count(a: &[u64], b: &[u64]) -> usize {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = [0usize; 4];
    let mut chunks_a = a.chunks_exact(4);
    let mut chunks_b = b.chunks_exact(4);
    for (ca, cb) in chunks_a.by_ref().zip(chunks_b.by_ref()) {
        acc[0] += (ca[0] & cb[0]).count_ones() as usize;
        acc[1] += (ca[1] & cb[1]).count_ones() as usize;
        acc[2] += (ca[2] & cb[2]).count_ones() as usize;
        acc[3] += (ca[3] & cb[3]).count_ones() as usize;
    }
    let mut tail = 0usize;
    for (x, y) in chunks_a.remainder().iter().zip(chunks_b.remainder()) {
        tail += (x & y).count_ones() as usize;
    }
    acc[0] + acc[1] + acc[2] + acc[3] + tail
}

/// Intersection popcounts of one query against four rows laid out
/// back-to-back in `rows` (`rows.len() == 4 * query.len()`). Each query
/// word is loaded once and ANDed against all four rows, so a batched
/// arena scan touches every arena word exactly once per block.
#[inline]
pub fn and_count4(query: &[u64], rows: &[u64]) -> [usize; 4] {
    let stride = query.len();
    debug_assert_eq!(rows.len(), 4 * stride);
    let (r0, rest) = rows.split_at(stride);
    let (r1, rest) = rest.split_at(stride);
    let (r2, r3) = rest.split_at(stride);
    let mut acc = [0usize; 4];
    for w in 0..stride {
        let q = query[w];
        acc[0] += (q & r0[w]).count_ones() as usize;
        acc[1] += (q & r1[w]).count_ones() as usize;
        acc[2] += (q & r2[w]).count_ones() as usize;
        acc[3] += (q & r3[w]).count_ones() as usize;
    }
    acc
}

/// Dice coefficient from an intersection popcount and the two filter
/// cardinalities — the exact f64 expression of
/// [`crate::bitvec_sim::dice_bits`], so kernel-computed scores are
/// bit-identical to the scalar path (including the both-empty = 1.0
/// convention).
#[inline]
pub fn dice_from_counts(intersection: usize, ones_a: usize, ones_b: usize) -> f64 {
    if ones_a + ones_b == 0 {
        return 1.0;
    }
    2.0 * intersection as f64 / (ones_a + ones_b) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bitvec_sim::dice_bits;
    use pprl_core::bitvec::BitVec;
    use pprl_core::rng::SplitMix64;

    fn random_filter(len: usize, denom: u64, rng: &mut SplitMix64) -> BitVec {
        let ones: Vec<usize> = (0..len)
            .filter(|_| rng.next_u64().is_multiple_of(denom))
            .collect();
        BitVec::from_positions(len, &ones).unwrap()
    }

    #[test]
    fn and_count_matches_bitvec_over_random_filters() {
        let mut rng = SplitMix64::new(0xA11D);
        for len in [1usize, 7, 63, 64, 65, 256, 1000, 2048] {
            for denom in [1u64, 2, 5, 17] {
                let a = random_filter(len, denom, &mut rng);
                let b = random_filter(len, denom, &mut rng);
                assert_eq!(
                    and_count(a.as_words(), b.as_words()),
                    a.and_count(&b),
                    "len={len} denom={denom}"
                );
            }
            // Edge cases: empty against everything, all-ones pairs.
            let zero = BitVec::zeros(len);
            let ones = BitVec::ones(len);
            assert_eq!(and_count(zero.as_words(), ones.as_words()), 0);
            assert_eq!(and_count(ones.as_words(), ones.as_words()), len);
        }
    }

    #[test]
    fn and_count4_matches_four_scalar_calls() {
        let mut rng = SplitMix64::new(0xB10C);
        for len in [64usize, 100, 1000] {
            let q = random_filter(len, 3, &mut rng);
            let rows: Vec<BitVec> = (0..4).map(|_| random_filter(len, 3, &mut rng)).collect();
            let mut flat = Vec::new();
            for r in &rows {
                flat.extend_from_slice(r.as_words());
            }
            let got = and_count4(q.as_words(), &flat);
            for (i, r) in rows.iter().enumerate() {
                assert_eq!(got[i], q.and_count(r), "len={len} row={i}");
            }
        }
    }

    #[test]
    fn dice_from_counts_is_bit_identical_to_dice_bits() {
        let mut rng = SplitMix64::new(0xD1CE);
        for _ in 0..200 {
            let a = random_filter(512, 1 + rng.next_u64() % 6, &mut rng);
            let b = random_filter(512, 1 + rng.next_u64() % 6, &mut rng);
            let inter = and_count(a.as_words(), b.as_words());
            let got = dice_from_counts(inter, a.count_ones(), b.count_ones());
            let want = dice_bits(&a, &b).unwrap();
            assert!(got == want, "kernel {got} != scalar {want}");
        }
        // Both-empty convention.
        assert_eq!(dice_from_counts(0, 0, 0), 1.0);
    }
}
