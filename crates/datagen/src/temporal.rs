//! Temporal record evolution for streaming experiments.
//!
//! The *velocity* challenge (Figure 3 / §5.1) is not just arrival rate:
//! real identities change over time — people move house, change surnames,
//! and age. A linker that indexed a person last year must still match this
//! year's record. This module evolves records through time steps with
//! configurable event probabilities and produces timestamped arrival
//! streams with ground truth.

use crate::generator::Generator;
use crate::lookup::{CITIES, LAST_NAMES, STREETS};
use pprl_core::error::{PprlError, Result};
use pprl_core::record::Record;
use pprl_core::rng::SplitMix64;
use pprl_core::value::Value;

/// Probabilities of life events per time step.
#[derive(Debug, Clone, Copy)]
pub struct EvolutionConfig {
    /// Probability of moving (street, possibly city/postcode change).
    pub move_rate: f64,
    /// Probability of a surname change (marriage/divorce).
    pub surname_change_rate: f64,
    /// Ages advance by one year per `steps_per_year` steps.
    pub steps_per_year: usize,
}

impl Default for EvolutionConfig {
    fn default() -> Self {
        EvolutionConfig {
            move_rate: 0.08,
            surname_change_rate: 0.02,
            steps_per_year: 1,
        }
    }
}

impl EvolutionConfig {
    fn validate(&self) -> Result<()> {
        for (name, v) in [
            ("move_rate", self.move_rate),
            ("surname_change_rate", self.surname_change_rate),
        ] {
            if !(0.0..=1.0).contains(&v) {
                return Err(PprlError::invalid(
                    "rate",
                    format!("{name} must be in [0,1]"),
                ));
            }
        }
        if self.steps_per_year == 0 {
            return Err(PprlError::invalid("steps_per_year", "must be positive"));
        }
        Ok(())
    }
}

/// One timestamped arrival in an evolution stream.
#[derive(Debug, Clone)]
pub struct TimedRecord {
    /// Time step of the observation.
    pub step: usize,
    /// The observed record (entity_id carries ground truth).
    pub record: Record,
}

/// Evolves `record` by one time step. `step` drives ageing.
pub fn evolve_step(
    record: &Record,
    config: &EvolutionConfig,
    step: usize,
    rng: &mut SplitMix64,
) -> Result<Record> {
    config.validate()?;
    let mut out = record.clone();
    // Move: new street number + street; sometimes a new city/postcode too.
    if rng.next_bool(config.move_rate) {
        let house = 1 + rng.next_below(200);
        let street = STREETS[rng.next_below(STREETS.len() as u64) as usize];
        out.values[2] = Value::Text(format!("{house} {street}"));
        if rng.next_bool(0.4) {
            out.values[3] =
                Value::Text(CITIES[rng.next_below(CITIES.len() as u64) as usize].to_string());
            out.values[4] = Value::Text(format!("{:04}", 1000 + rng.next_below(9000)));
        }
    }
    // Surname change.
    if rng.next_bool(config.surname_change_rate) {
        out.values[1] =
            Value::Text(LAST_NAMES[rng.next_below(LAST_NAMES.len() as u64) as usize].to_string());
    }
    // Ageing: +1 year every steps_per_year steps.
    if step > 0 && step.is_multiple_of(config.steps_per_year) {
        if let Value::Integer(age) = out.values[7] {
            out.values[7] = Value::Integer(age + 1);
        }
    }
    Ok(out)
}

/// Builds a timestamped stream: `population` entities observed once per
/// step over `steps` steps, each observation evolved from the previous one
/// and then corrupted by the generator's error model.
pub fn evolution_stream(
    generator: &mut Generator,
    population: usize,
    steps: usize,
    config: &EvolutionConfig,
    seed: u64,
) -> Result<Vec<TimedRecord>> {
    config.validate()?;
    if steps == 0 || population == 0 {
        return Err(PprlError::invalid("population/steps", "must be positive"));
    }
    let mut rng = SplitMix64::new(seed);
    let mut current: Vec<Record> = generator.population(population);
    let mut stream = Vec::with_capacity(population * steps);
    for step in 0..steps {
        for person in current.iter_mut() {
            if step > 0 {
                *person = evolve_step(person, config, step, &mut rng)?;
            }
            stream.push(TimedRecord {
                step,
                record: generator.corrupt_record(person),
            });
        }
    }
    Ok(stream)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::GeneratorConfig;

    fn generator(seed: u64) -> Generator {
        Generator::new(GeneratorConfig {
            seed,
            corruption_rate: 0.05,
            ..GeneratorConfig::default()
        })
        .expect("valid")
    }

    #[test]
    fn validation() {
        let bad = EvolutionConfig {
            move_rate: 1.5,
            ..EvolutionConfig::default()
        };
        assert!(bad.validate().is_err());
        let bad = EvolutionConfig {
            steps_per_year: 0,
            ..EvolutionConfig::default()
        };
        assert!(bad.validate().is_err());
        let mut g = generator(1);
        assert!(evolution_stream(&mut g, 0, 3, &EvolutionConfig::default(), 1).is_err());
        assert!(evolution_stream(&mut g, 3, 0, &EvolutionConfig::default(), 1).is_err());
    }

    #[test]
    fn stream_has_expected_shape() {
        let mut g = generator(2);
        let stream = evolution_stream(&mut g, 20, 5, &EvolutionConfig::default(), 7).unwrap();
        assert_eq!(stream.len(), 100);
        assert_eq!(stream.iter().filter(|t| t.step == 0).count(), 20);
        assert_eq!(stream.last().unwrap().step, 4);
        // Entities repeat across steps.
        let ids: std::collections::HashSet<u64> =
            stream.iter().map(|t| t.record.entity_id).collect();
        assert_eq!(ids.len(), 20);
    }

    #[test]
    fn certain_move_changes_address() {
        let mut g = generator(3);
        let base = g.entity(1);
        let cfg = EvolutionConfig {
            move_rate: 1.0,
            surname_change_rate: 0.0,
            steps_per_year: 1,
        };
        let mut rng = SplitMix64::new(5);
        let moved = evolve_step(&base, &cfg, 1, &mut rng).unwrap();
        assert_ne!(moved.values[2], base.values[2], "street should change");
        assert_eq!(moved.values[0], base.values[0], "first name stable");
        assert_eq!(moved.entity_id, base.entity_id);
    }

    #[test]
    fn zero_rates_only_age() {
        let mut g = generator(4);
        let base = g.entity(1);
        let cfg = EvolutionConfig {
            move_rate: 0.0,
            surname_change_rate: 0.0,
            steps_per_year: 1,
        };
        let mut rng = SplitMix64::new(6);
        let evolved = evolve_step(&base, &cfg, 3, &mut rng).unwrap();
        // Only age moved.
        for (i, (a, b)) in base.values.iter().zip(&evolved.values).enumerate() {
            if i == 7 {
                assert_ne!(a, b);
            } else {
                assert_eq!(a, b, "field {i} should be unchanged");
            }
        }
    }

    #[test]
    fn evolved_records_remain_linkable_mostly() {
        // After one gentle step, the CLK should still match its ancestor
        // for most entities (the property streaming linkage depends on).
        use pprl_core::record::Dataset;
        use pprl_core::schema::Schema;
        use pprl_encoding::encoder::{RecordEncoder, RecordEncoderConfig};
        let mut g = generator(5);
        let cfg = EvolutionConfig::default();
        let mut rng = SplitMix64::new(9);
        let originals: Vec<Record> = g.population(60);
        let evolved: Vec<Record> = originals
            .iter()
            .map(|r| evolve_step(r, &cfg, 1, &mut rng).unwrap())
            .collect();
        let schema = Schema::person();
        let enc =
            RecordEncoder::new(RecordEncoderConfig::person_clk(b"t".to_vec()), &schema).unwrap();
        let ds_a = Dataset::from_records(schema.clone(), originals).unwrap();
        let ds_b = Dataset::from_records(schema, evolved).unwrap();
        let ea = enc.encode_dataset(&ds_a).unwrap();
        let eb = enc.encode_dataset(&ds_b).unwrap();
        let still_linkable = (0..60)
            .filter(|&i| ea.records[i].dice(&eb.records[i]).unwrap() >= 0.8)
            .count();
        assert!(
            still_linkable >= 48,
            "most evolved records should still match: {still_linkable}/60"
        );
    }
}
