//! # pprl-datagen
//!
//! GeCo-style synthetic person-data generation and corruption (ref \[37] of
//! the paper): embedded frequency-ranked dictionaries, Zipf-skewed value
//! sampling, type-aware corruption models (keyboard typos, OCR confusions,
//! phonetic rewrites, date swaps, missing values), and dataset constructors
//! with exact ground truth for two-party, multi-party and deduplication
//! experiments.
//!
//! The paper notes (§5.3) that synthetic data with real-data characteristics
//! is the standard substitute for unavailable benchmark datasets; this crate
//! is that substitute for the whole workspace.

#![forbid(unsafe_code)]
// `!(x > 0.0)`-style comparisons are deliberate: they reject NaN, which
// `x <= 0.0` would accept.
#![allow(clippy::neg_cmp_op_on_partial_ord)]
#![warn(missing_docs)]

pub mod corruptor;
pub mod generator;
pub mod households;
pub mod lookup;
pub mod temporal;

pub use corruptor::{corrupt_string, corrupt_value, StringCorruption};
pub use generator::{Generator, GeneratorConfig};
pub use households::{generate_households, HouseholdConfig};
pub use temporal::{evolution_stream, evolve_step, EvolutionConfig, TimedRecord};
