//! Embedded lookup dictionaries for synthetic person data.
//!
//! GeCo (Tran, Vatsalan & Christen, ref \[37] of the paper) generates
//! synthetic data from frequency tables of real attribute values. We embed
//! compact dictionaries of common Anglophone given names, surnames, street
//! names and localities; sampling is Zipf-skewed so value frequencies mimic
//! real name distributions (which is what frequency attacks exploit).

/// Common given names, ordered by (approximate) descending real-world
/// frequency so Zipf sampling matches rank.
pub const FIRST_NAMES: &[&str] = &[
    "james", "mary", "john", "patricia", "robert", "jennifer", "michael", "linda", "william",
    "elizabeth", "david", "barbara", "richard", "susan", "joseph", "jessica", "thomas", "sarah",
    "charles", "karen", "christopher", "nancy", "daniel", "lisa", "matthew", "margaret",
    "anthony", "betty", "mark", "sandra", "donald", "ashley", "steven", "dorothy", "paul",
    "kimberly", "andrew", "emily", "joshua", "donna", "kenneth", "michelle", "kevin", "carol",
    "brian", "amanda", "george", "melissa", "edward", "deborah", "ronald", "stephanie",
    "timothy", "rebecca", "jason", "laura", "jeffrey", "sharon", "ryan", "cynthia", "jacob",
    "kathleen", "gary", "amy", "nicholas", "shirley", "eric", "angela", "jonathan", "helen",
    "stephen", "anna", "larry", "brenda", "justin", "pamela", "scott", "nicole", "brandon",
    "samantha", "benjamin", "katherine", "samuel", "emma", "gregory", "ruth", "frank", "christine",
    "alexander", "catherine", "raymond", "debra", "patrick", "rachel", "jack", "carolyn",
    "dennis", "janet", "jerry", "virginia",
];

/// Common surnames, frequency-ranked.
pub const LAST_NAMES: &[&str] = &[
    "smith", "johnson", "williams", "brown", "jones", "garcia", "miller", "davis", "rodriguez",
    "martinez", "hernandez", "lopez", "gonzalez", "wilson", "anderson", "thomas", "taylor",
    "moore", "jackson", "martin", "lee", "perez", "thompson", "white", "harris", "sanchez",
    "clark", "ramirez", "lewis", "robinson", "walker", "young", "allen", "king", "wright",
    "scott", "torres", "nguyen", "hill", "flores", "green", "adams", "nelson", "baker", "hall",
    "rivera", "campbell", "mitchell", "carter", "roberts", "gomez", "phillips", "evans",
    "turner", "diaz", "parker", "cruz", "edwards", "collins", "reyes", "stewart", "morris",
    "morales", "murphy", "cook", "rogers", "gutierrez", "ortiz", "morgan", "cooper", "peterson",
    "bailey", "reed", "kelly", "howard", "ramos", "kim", "cox", "ward", "richardson", "watson",
    "brooks", "chavez", "wood", "james", "bennett", "gray", "mendoza", "ruiz", "hughes",
    "price", "alvarez", "castillo", "sanders", "patel", "myers", "long", "ross", "foster",
    "jimenez",
];

/// Street names (without numbers).
pub const STREETS: &[&str] = &[
    "main street", "high street", "church road", "park avenue", "station road", "victoria road",
    "green lane", "manor road", "kings road", "queens road", "new street", "grange road",
    "north street", "south street", "west street", "east street", "mill lane", "school lane",
    "the avenue", "windsor road", "albert road", "york road", "springfield road", "george street",
    "park road", "richmond road", "london road", "alexandra road", "the crescent", "stanley road",
    "chester road", "chapel street", "market street", "oak avenue", "elm grove", "cedar close",
    "maple drive", "willow way", "birch road", "poplar avenue",
];

/// City / locality names.
pub const CITIES: &[&str] = &[
    "springfield", "riverside", "franklin", "greenville", "bristol", "clinton", "fairview",
    "salem", "madison", "georgetown", "arlington", "ashland", "burlington", "manchester",
    "milton", "auburn", "centerville", "clayton", "dayton", "dover", "hudson", "kingston",
    "lebanon", "milford", "newport", "oakland", "oxford", "princeton", "richmond", "winchester",
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dictionaries_are_nonempty_and_lowercase() {
        for dict in [FIRST_NAMES, LAST_NAMES, STREETS, CITIES] {
            assert!(dict.len() >= 30);
            for v in dict {
                assert!(!v.is_empty());
                assert_eq!(v.to_lowercase(), **v, "`{v}` must be lowercase");
            }
        }
    }

    #[test]
    fn no_duplicates() {
        for dict in [FIRST_NAMES, LAST_NAMES, STREETS, CITIES] {
            let set: std::collections::HashSet<_> = dict.iter().collect();
            assert_eq!(set.len(), dict.len());
        }
    }
}
