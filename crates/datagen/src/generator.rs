//! Synthetic dataset generation with ground truth (the "Ge" of GeCo).
//!
//! Generates a population of entities with Zipf-skewed attribute values,
//! then materialises per-party datasets with a configurable overlap
//! fraction, duplicate rate, and corruption level. Every record carries the
//! hidden `entity_id` ground truth used only by evaluation.

use crate::corruptor::corrupt_value;
use crate::lookup::{CITIES, FIRST_NAMES, LAST_NAMES, STREETS};
use pprl_core::error::{PprlError, Result};
use pprl_core::record::{Dataset, Record};
use pprl_core::rng::SplitMix64;
use pprl_core::schema::Schema;
use pprl_core::value::{Date, Value};

/// Configuration of the synthetic-data generator.
#[derive(Debug, Clone)]
pub struct GeneratorConfig {
    /// Zipf skew exponent for value sampling (0 = uniform; ~1 realistic).
    pub zipf_exponent: f64,
    /// Probability that each QID value of a duplicate record is corrupted.
    pub corruption_rate: f64,
    /// Probability that a corrupted value becomes missing instead.
    pub missing_rate: f64,
    /// Random seed.
    pub seed: u64,
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        GeneratorConfig {
            zipf_exponent: 1.0,
            corruption_rate: 0.2,
            missing_rate: 0.02,
            seed: 42,
        }
    }
}

/// Generates populations and party datasets.
#[derive(Debug)]
pub struct Generator {
    config: GeneratorConfig,
    rng: SplitMix64,
    /// Precomputed Zipf CDFs per dictionary size.
    cdf_cache: std::collections::HashMap<usize, Vec<f64>>,
}

impl Generator {
    /// Creates a generator, validating rates.
    pub fn new(config: GeneratorConfig) -> Result<Self> {
        for (name, v) in [
            ("corruption_rate", config.corruption_rate),
            ("missing_rate", config.missing_rate),
        ] {
            if !(0.0..=1.0).contains(&v) {
                return Err(PprlError::invalid(
                    "rate",
                    format!("{name} must be in [0,1], got {v}"),
                ));
            }
        }
        if !(config.zipf_exponent >= 0.0) {
            return Err(PprlError::invalid("zipf_exponent", "must be non-negative"));
        }
        let rng = SplitMix64::new(config.seed);
        Ok(Generator {
            config,
            rng,
            cdf_cache: std::collections::HashMap::new(),
        })
    }

    fn zipf_pick(&mut self, n: usize) -> usize {
        let s = self.config.zipf_exponent;
        let cdf = self.cdf_cache.entry(n).or_insert_with(|| {
            let weights: Vec<f64> = (1..=n).map(|r| 1.0 / (r as f64).powf(s)).collect();
            let total: f64 = weights.iter().sum();
            let mut acc = 0.0;
            weights
                .iter()
                .map(|w| {
                    acc += w / total;
                    acc
                })
                .collect()
        });
        let u = self.rng.next_f64();
        match cdf.binary_search_by(|p| p.total_cmp(&u)) {
            Ok(i) | Err(i) => i.min(n - 1),
        }
    }

    /// Generates one clean entity record under [`Schema::person`].
    pub fn entity(&mut self, entity_id: u64) -> Record {
        let first = FIRST_NAMES[self.zipf_pick(FIRST_NAMES.len())];
        let last = LAST_NAMES[self.zipf_pick(LAST_NAMES.len())];
        let street_name = STREETS[self.zipf_pick(STREETS.len())];
        let house = 1 + self.rng.next_below(200);
        let city = CITIES[self.zipf_pick(CITIES.len())];
        let postcode = format!("{:04}", 1000 + self.rng.next_below(9000));
        let year = 1930 + self.rng.next_below(85) as i32;
        let month = 1 + self.rng.next_below(12) as u8;
        let day = 1 + self.rng.next_below(Date::days_in_month(year, month) as u64) as u8;
        // Day is drawn within days_in_month, so construction cannot fail;
        // fall back to the epoch rather than panic if that ever changes.
        let dob = Date::new(year, month, day).unwrap_or_else(|_| Date::from_epoch_days(0));
        let gender = if self.rng.next_bool(0.5) { "f" } else { "m" };
        let age = (2026 - year) as i64;
        Record::new(
            entity_id,
            vec![
                Value::Text(first.to_string()),
                Value::Text(last.to_string()),
                Value::Text(format!("{house} {street_name}")),
                Value::Text(city.to_string()),
                Value::Text(postcode),
                Value::Date(dob),
                Value::Categorical(gender.to_string()),
                Value::Integer(age),
            ],
        )
    }

    /// Generates a clean population of `n` entities.
    pub fn population(&mut self, n: usize) -> Vec<Record> {
        (0..n as u64).map(|id| self.entity(id)).collect()
    }

    /// Produces a corrupted copy of `record`: each value independently
    /// corrupted with `corruption_rate` (and within that, possibly missing).
    pub fn corrupt_record(&mut self, record: &Record) -> Record {
        let values = record
            .values
            .iter()
            .map(|v| {
                if self.rng.next_bool(self.config.corruption_rate) {
                    corrupt_value(v, self.config.missing_rate, &mut self.rng)
                } else {
                    v.clone()
                }
            })
            .collect();
        Record::new(record.entity_id, values)
    }

    /// Generates a linked pair of datasets:
    /// * dataset A holds `size_a` entities (clean),
    /// * dataset B holds `size_b` records of which `overlap` entities also
    ///   appear in A — those B-side copies are corrupted duplicates.
    ///
    /// Errors if `overlap > min(size_a, size_b)`.
    pub fn dataset_pair(
        &mut self,
        size_a: usize,
        size_b: usize,
        overlap: usize,
    ) -> Result<(Dataset, Dataset)> {
        if overlap > size_a.min(size_b) {
            return Err(PprlError::invalid(
                "overlap",
                format!("overlap {overlap} exceeds min({size_a}, {size_b})"),
            ));
        }
        let schema = Schema::person();
        // Entities 0..size_a live in A; B reuses the first `overlap` of them
        // and draws the rest fresh.
        let population_a = self.population(size_a);
        let mut records_b = Vec::with_capacity(size_b);
        for r in population_a.iter().take(overlap) {
            records_b.push(self.corrupt_record(r));
        }
        for i in 0..(size_b - overlap) {
            records_b.push(self.entity(size_a as u64 + i as u64));
        }
        // Shuffle B so overlap rows are not all at the front.
        let perm = self.rng.permutation(records_b.len());
        let records_b: Vec<Record> = perm.into_iter().map(|i| records_b[i].clone()).collect();
        Ok((
            Dataset::from_records(schema.clone(), population_a)?,
            Dataset::from_records(schema, records_b)?,
        ))
    }

    /// Generates `parties` datasets over a shared population such that the
    /// first `common` entities appear (corrupted) in *every* dataset and
    /// each dataset additionally holds `unique_per_party` entities of its
    /// own. Used by multi-party and subset-matching experiments.
    pub fn multi_party(
        &mut self,
        parties: usize,
        common: usize,
        unique_per_party: usize,
    ) -> Result<Vec<Dataset>> {
        if parties < 2 {
            return Err(PprlError::invalid("parties", "need at least two parties"));
        }
        let schema = Schema::person();
        let shared = self.population(common);
        let mut next_id = common as u64;
        let mut out = Vec::with_capacity(parties);
        for _ in 0..parties {
            let mut records: Vec<Record> = shared.iter().map(|r| self.corrupt_record(r)).collect();
            for _ in 0..unique_per_party {
                records.push(self.entity(next_id));
                next_id += 1;
            }
            let perm = self.rng.permutation(records.len());
            let records: Vec<Record> = perm.into_iter().map(|i| records[i].clone()).collect();
            out.push(Dataset::from_records(schema.clone(), records)?);
        }
        Ok(out)
    }

    /// Generates a dataset containing internal duplicates: `entities`
    /// entities, each duplicated `1 + extra` times where `extra` is
    /// geometric with mean `dup_rate` (so `dup_rate = 0` means no
    /// duplicates). Used by de-duplication / many-to-many experiments.
    ///
    /// Entity ids start at 0 and are local to this call: do not evaluate
    /// this dataset against datasets from *other* generator calls, whose
    /// ids share the same namespace but denote different people.
    pub fn with_duplicates(&mut self, entities: usize, dup_rate: f64) -> Result<Dataset> {
        if !(0.0..1.0).contains(&dup_rate) {
            return Err(PprlError::invalid("dup_rate", "must be in [0,1)"));
        }
        let schema = Schema::person();
        let mut records = Vec::new();
        for id in 0..entities as u64 {
            let base = self.entity(id);
            records.push(base.clone());
            while self.rng.next_bool(dup_rate) {
                records.push(self.corrupt_record(&base));
            }
        }
        let perm = self.rng.permutation(records.len());
        let records: Vec<Record> = perm.into_iter().map(|i| records[i].clone()).collect();
        Dataset::from_records(schema, records)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn generator(seed: u64) -> Generator {
        Generator::new(GeneratorConfig {
            seed,
            ..GeneratorConfig::default()
        })
        .unwrap()
    }

    #[test]
    fn config_validated() {
        assert!(Generator::new(GeneratorConfig {
            corruption_rate: 1.5,
            ..GeneratorConfig::default()
        })
        .is_err());
        assert!(Generator::new(GeneratorConfig {
            missing_rate: -0.1,
            ..GeneratorConfig::default()
        })
        .is_err());
        assert!(Generator::new(GeneratorConfig {
            zipf_exponent: f64::NAN,
            ..GeneratorConfig::default()
        })
        .is_err());
    }

    #[test]
    fn entities_conform_to_schema() {
        let mut g = generator(1);
        let schema = Schema::person();
        for id in 0..50 {
            let r = g.entity(id);
            assert_eq!(r.values.len(), schema.len());
            assert_eq!(r.entity_id, id);
            match &r.values[5] {
                Value::Date(_) => {}
                other => panic!("dob should be a date, got {other:?}"),
            }
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = generator(7).population(20);
        let b = generator(7).population(20);
        assert_eq!(a, b);
        let c = generator(8).population(20);
        assert_ne!(a, c);
    }

    #[test]
    fn zipf_skews_towards_frequent_values() {
        let mut g = Generator::new(GeneratorConfig {
            zipf_exponent: 1.2,
            seed: 3,
            ..GeneratorConfig::default()
        })
        .unwrap();
        let pop = g.population(2000);
        let smiths = pop
            .iter()
            .filter(|r| r.values[1].as_text() == "smith")
            .count();
        let rare = pop
            .iter()
            .filter(|r| r.values[1].as_text() == "jimenez")
            .count();
        assert!(
            smiths > rare * 3,
            "rank-1 surname ({smiths}) should dominate rank-100 ({rare})"
        );
    }

    #[test]
    fn dataset_pair_overlap_and_ground_truth() {
        let mut g = generator(4);
        let (a, b) = g.dataset_pair(100, 80, 30).unwrap();
        assert_eq!(a.len(), 100);
        assert_eq!(b.len(), 80);
        let pairs = a.ground_truth_pairs(&b);
        assert_eq!(pairs.len(), 30);
        // Overlap validation.
        assert!(g.dataset_pair(10, 5, 6).is_err());
    }

    #[test]
    fn corrupted_duplicates_differ_but_share_entity() {
        let mut g = Generator::new(GeneratorConfig {
            corruption_rate: 1.0,
            missing_rate: 0.0,
            seed: 5,
            ..GeneratorConfig::default()
        })
        .unwrap();
        let base = g.entity(9);
        let dup = g.corrupt_record(&base);
        assert_eq!(dup.entity_id, 9);
        assert_ne!(dup.values, base.values);
    }

    #[test]
    fn zero_corruption_produces_identical_duplicates() {
        let mut g = Generator::new(GeneratorConfig {
            corruption_rate: 0.0,
            seed: 6,
            ..GeneratorConfig::default()
        })
        .unwrap();
        let base = g.entity(1);
        assert_eq!(g.corrupt_record(&base).values, base.values);
    }

    #[test]
    fn multi_party_shares_common_entities() {
        let mut g = generator(7);
        let datasets = g.multi_party(4, 20, 10).unwrap();
        assert_eq!(datasets.len(), 4);
        for ds in &datasets {
            assert_eq!(ds.len(), 30);
            // all 20 common entities present
            let common_count = ds.records().iter().filter(|r| r.entity_id < 20).count();
            assert_eq!(common_count, 20);
        }
        assert!(g.multi_party(1, 5, 5).is_err());
    }

    #[test]
    fn duplicates_dataset_contains_clusters() {
        let mut g = generator(8);
        let ds = g.with_duplicates(50, 0.5).unwrap();
        assert!(
            ds.len() > 50,
            "expected duplicates beyond 50, got {}",
            ds.len()
        );
        assert!(ds.len() < 200);
        assert!(g.with_duplicates(5, 1.5).is_err());
        // dup_rate 0 → exactly the entities
        let clean = generator(9).with_duplicates(10, 0.0).unwrap();
        assert_eq!(clean.len(), 10);
    }
}
