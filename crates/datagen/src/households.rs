//! Household generation: families sharing surname and address.
//!
//! Real person registers contain *households* — several distinct people
//! sharing a surname, street address, city and postcode. They are the
//! canonical stress test for linkage: a surname+address blocking key puts
//! whole families in one block, and naive classifiers confuse siblings.
//! This module extends the generator with household structure so blocking
//! and classification experiments face realistic hard negatives.

use crate::generator::Generator;
use pprl_core::error::{PprlError, Result};
use pprl_core::record::{Dataset, Record};
use pprl_core::rng::SplitMix64;
use pprl_core::schema::Schema;
use pprl_core::value::Value;

/// Configuration of household structure.
#[derive(Debug, Clone, Copy)]
pub struct HouseholdConfig {
    /// Number of households.
    pub households: usize,
    /// Minimum members per household (≥ 1).
    pub min_size: usize,
    /// Maximum members per household (≥ min_size).
    pub max_size: usize,
}

impl HouseholdConfig {
    fn validate(&self) -> Result<()> {
        if self.households == 0 {
            return Err(PprlError::invalid(
                "households",
                "need at least one household",
            ));
        }
        if self.min_size == 0 || self.max_size < self.min_size {
            return Err(PprlError::invalid(
                "min_size/max_size",
                "need 1 <= min_size <= max_size",
            ));
        }
        Ok(())
    }
}

/// Generates a dataset of households: members of one household share the
/// surname, street, city and postcode but differ in first name, dob, age
/// and gender. Entity ids remain globally unique; the returned vector maps
/// each household to its member row indices.
pub fn generate_households(
    generator: &mut Generator,
    config: &HouseholdConfig,
    seed: u64,
) -> Result<(Dataset, Vec<Vec<usize>>)> {
    config.validate()?;
    let mut rng = SplitMix64::new(seed);
    let schema = Schema::person();
    let mut records: Vec<Record> = Vec::new();
    let mut members: Vec<Vec<usize>> = Vec::with_capacity(config.households);
    let mut next_entity = 0u64;
    for _ in 0..config.households {
        let size = config.min_size
            + rng.next_below((config.max_size - config.min_size + 1) as u64) as usize;
        // The head of household fixes the shared fields.
        let head = generator.entity(next_entity);
        next_entity += 1;
        let shared_last = head.values[1].clone();
        let shared_street = head.values[2].clone();
        let shared_city = head.values[3].clone();
        let shared_postcode = head.values[4].clone();
        let mut rows = vec![records.len()];
        records.push(head);
        for _ in 1..size {
            let mut member = generator.entity(next_entity);
            next_entity += 1;
            member.values[1] = shared_last.clone();
            member.values[2] = shared_street.clone();
            member.values[3] = shared_city.clone();
            member.values[4] = shared_postcode.clone();
            rows.push(records.len());
            records.push(member);
        }
        members.push(rows);
    }
    Ok((Dataset::from_records(schema, records)?, members))
}

/// Convenience check used by tests and experiments: true when two rows of
/// `dataset` share all household fields (surname, street, city, postcode).
pub fn same_household_fields(dataset: &Dataset, a: usize, b: usize) -> Result<bool> {
    for field in ["last_name", "street", "city", "postcode"] {
        let va = dataset.value(a, field)?;
        let vb = dataset.value(b, field)?;
        if let (Value::Missing, _) | (_, Value::Missing) = (va, vb) {
            return Ok(false);
        }
        if va.as_text() != vb.as_text() {
            return Ok(false);
        }
    }
    Ok(true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::GeneratorConfig;

    fn generator(seed: u64) -> Generator {
        Generator::new(GeneratorConfig {
            seed,
            ..GeneratorConfig::default()
        })
        .expect("valid")
    }

    #[test]
    fn validation() {
        let mut g = generator(1);
        let bad = HouseholdConfig {
            households: 0,
            min_size: 1,
            max_size: 3,
        };
        assert!(generate_households(&mut g, &bad, 1).is_err());
        let bad = HouseholdConfig {
            households: 5,
            min_size: 3,
            max_size: 2,
        };
        assert!(generate_households(&mut g, &bad, 1).is_err());
        let bad = HouseholdConfig {
            households: 5,
            min_size: 0,
            max_size: 2,
        };
        assert!(generate_households(&mut g, &bad, 1).is_err());
    }

    #[test]
    fn members_share_household_fields_not_identity() {
        let mut g = generator(2);
        let cfg = HouseholdConfig {
            households: 20,
            min_size: 2,
            max_size: 5,
        };
        let (ds, members) = generate_households(&mut g, &cfg, 7).unwrap();
        assert_eq!(members.len(), 20);
        for rows in &members {
            assert!(rows.len() >= 2 && rows.len() <= 5);
            for w in rows.windows(2) {
                assert!(same_household_fields(&ds, w[0], w[1]).unwrap());
                // distinct entities
                assert_ne!(ds.records()[w[0]].entity_id, ds.records()[w[1]].entity_id);
            }
        }
    }

    #[test]
    fn entity_ids_globally_unique() {
        let mut g = generator(3);
        let cfg = HouseholdConfig {
            households: 30,
            min_size: 1,
            max_size: 4,
        };
        let (ds, _) = generate_households(&mut g, &cfg, 9).unwrap();
        let ids: std::collections::HashSet<u64> =
            ds.records().iter().map(|r| r.entity_id).collect();
        assert_eq!(ids.len(), ds.len());
    }

    #[test]
    fn households_are_hard_negatives_for_linkage() {
        // Siblings share the blocking fields but must NOT match under the
        // CLK pipeline at a sane threshold.
        use pprl_encoding::encoder::{RecordEncoder, RecordEncoderConfig};
        let mut g = generator(4);
        let cfg = HouseholdConfig {
            households: 10,
            min_size: 2,
            max_size: 2,
        };
        let (ds, members) = generate_households(&mut g, &cfg, 11).unwrap();
        let enc = RecordEncoder::new(RecordEncoderConfig::person_clk(b"hh".to_vec()), ds.schema())
            .unwrap();
        let encoded = enc.encode_dataset(&ds).unwrap();
        let mut sibling_sims = Vec::new();
        for rows in &members {
            let s = encoded.records[rows[0]]
                .dice(&encoded.records[rows[1]])
                .unwrap();
            sibling_sims.push(s);
        }
        // Siblings are similar (shared fields) but below the match bar.
        let max = sibling_sims.iter().cloned().fold(0.0, f64::max);
        let min = sibling_sims.iter().cloned().fold(1.0, f64::min);
        assert!(min > 0.3, "siblings share half the record: {min}");
        assert!(max < 0.9, "siblings must not look identical: {max}");
    }

    #[test]
    fn same_household_fields_rejects_missing() {
        let mut g = generator(5);
        let cfg = HouseholdConfig {
            households: 1,
            min_size: 2,
            max_size: 2,
        };
        let (mut ds, members) = generate_households(&mut g, &cfg, 13).unwrap();
        let rows = &members[0];
        assert!(same_household_fields(&ds, rows[0], rows[1]).unwrap());
        // Knock out a field on one side.
        let mut records: Vec<Record> = ds.records().to_vec();
        records[rows[0]].values[1] = Value::Missing;
        ds = Dataset::from_records(ds.schema().clone(), records).unwrap();
        assert!(!same_household_fields(&ds, rows[0], rows[1]).unwrap());
        assert!(same_household_fields(&ds, rows[0], 99).is_err());
    }
}
