//! Value corruption models (the "Co" of GeCo, ref \[37]).
//!
//! Realistic linkage data contain typographical, OCR, phonetic and
//! structural errors; the corruptor injects them with configurable rates so
//! experiments can sweep data quality (the *veracity* axis of Figure 3).

use pprl_core::rng::SplitMix64;
use pprl_core::value::{Date, Value};

/// QWERTY neighbourhoods for realistic substitution typos.
fn keyboard_neighbours(c: char) -> &'static str {
    match c {
        'a' => "qwsz",
        'b' => "vghn",
        'c' => "xdfv",
        'd' => "serfcx",
        'e' => "wsdr",
        'f' => "drtgvc",
        'g' => "ftyhbv",
        'h' => "gyujnb",
        'i' => "ujko",
        'j' => "huikmn",
        'k' => "jiolm",
        'l' => "kop",
        'm' => "njk",
        'n' => "bhjm",
        'o' => "iklp",
        'p' => "ol",
        'q' => "wa",
        'r' => "edft",
        's' => "awedxz",
        't' => "rfgy",
        'u' => "yhji",
        'v' => "cfgb",
        'w' => "qase",
        'x' => "zsdc",
        'y' => "tghu",
        'z' => "asx",
        _ => "etaoin",
    }
}

/// OCR confusion pairs (scanner misreads).
const OCR_PAIRS: &[(char, char)] = &[
    ('0', 'o'),
    ('1', 'l'),
    ('5', 's'),
    ('8', 'b'),
    ('2', 'z'),
    ('6', 'g'),
];

/// Phonetic substitution rules applied to substrings.
const PHONETIC_RULES: &[(&str, &str)] = &[
    ("ph", "f"),
    ("f", "ph"),
    ("ck", "k"),
    ("k", "c"),
    ("ee", "ea"),
    ("y", "i"),
    ("i", "y"),
    ("mb", "m"),
    ("dt", "tt"),
    ("th", "t"),
];

/// One kind of corruption applied to a string.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StringCorruption {
    /// Insert a random character at a random position.
    Insert,
    /// Delete a random character.
    Delete,
    /// Substitute a character with a keyboard neighbour.
    Substitute,
    /// Transpose two adjacent characters.
    Transpose,
    /// Apply one phonetic rewrite rule.
    Phonetic,
    /// Apply an OCR confusion.
    Ocr,
}

/// Applies one string corruption; returns the corrupted string (which may
/// equal the input when the corruption is inapplicable, e.g. deleting from
/// an empty string).
pub fn corrupt_string(s: &str, kind: StringCorruption, rng: &mut SplitMix64) -> String {
    let chars: Vec<char> = s.chars().collect();
    match kind {
        StringCorruption::Insert => {
            let pos = rng.next_below(chars.len() as u64 + 1) as usize;
            const ALPHABET: &[u8] = b"abcdefghijklmnopqrstuvwxyz";
            let c = ALPHABET[rng.next_below(ALPHABET.len() as u64) as usize] as char;
            let mut out = chars.clone();
            out.insert(pos, c);
            out.into_iter().collect()
        }
        StringCorruption::Delete => {
            if chars.is_empty() {
                return s.to_string();
            }
            let pos = rng.next_below(chars.len() as u64) as usize;
            let mut out = chars.clone();
            out.remove(pos);
            out.into_iter().collect()
        }
        StringCorruption::Substitute => {
            if chars.is_empty() {
                return s.to_string();
            }
            let pos = rng.next_below(chars.len() as u64) as usize;
            let neigh = keyboard_neighbours(chars[pos]);
            let nc: Vec<char> = neigh.chars().collect();
            let c = nc[rng.next_below(nc.len() as u64) as usize];
            let mut out = chars.clone();
            out[pos] = c;
            out.into_iter().collect()
        }
        StringCorruption::Transpose => {
            if chars.len() < 2 {
                return s.to_string();
            }
            let pos = rng.next_below(chars.len() as u64 - 1) as usize;
            let mut out = chars.clone();
            out.swap(pos, pos + 1);
            out.into_iter().collect()
        }
        StringCorruption::Phonetic => {
            // Try rules in a random rotation; apply the first that matches.
            let start = rng.next_below(PHONETIC_RULES.len() as u64) as usize;
            for i in 0..PHONETIC_RULES.len() {
                let (from, to) = PHONETIC_RULES[(start + i) % PHONETIC_RULES.len()];
                if let Some(idx) = s.find(from) {
                    let mut out = String::with_capacity(s.len());
                    out.push_str(&s[..idx]);
                    out.push_str(to);
                    out.push_str(&s[idx + from.len()..]);
                    return out;
                }
            }
            s.to_string()
        }
        StringCorruption::Ocr => {
            // 'm' ↔ 'rn' plus single-character confusions.
            if let Some(idx) = s.find('m') {
                if rng.next_bool(0.5) {
                    let mut out = String::with_capacity(s.len() + 1);
                    out.push_str(&s[..idx]);
                    out.push_str("rn");
                    out.push_str(&s[idx + 1..]);
                    return out;
                }
            }
            if let Some(idx) = s.find("rn") {
                let mut out = String::with_capacity(s.len());
                out.push_str(&s[..idx]);
                out.push('m');
                out.push_str(&s[idx + 2..]);
                return out;
            }
            for &(a, b) in OCR_PAIRS {
                if let Some(idx) = s.find(a) {
                    let mut out: Vec<char> = s.chars().collect();
                    // find() returned a byte index on ASCII content; the
                    // dictionaries are ASCII so char index == byte index.
                    out[idx] = b;
                    return out.into_iter().collect();
                }
            }
            s.to_string()
        }
    }
}

/// Picks a random string corruption kind.
pub fn random_string_corruption(rng: &mut SplitMix64) -> StringCorruption {
    match rng.next_below(6) {
        0 => StringCorruption::Insert,
        1 => StringCorruption::Delete,
        2 => StringCorruption::Substitute,
        3 => StringCorruption::Transpose,
        4 => StringCorruption::Phonetic,
        _ => StringCorruption::Ocr,
    }
}

/// Corrupts a typed value in a type-appropriate way:
/// strings get a random typo class; dates get day/month swaps, off-by-a-few
/// days, or year typos; integers drift by ±1–3; categoricals flip;
/// occasionally (per `missing_rate`) any value becomes missing.
pub fn corrupt_value(value: &Value, missing_rate: f64, rng: &mut SplitMix64) -> Value {
    if rng.next_bool(missing_rate) {
        return Value::Missing;
    }
    match value {
        Value::Text(s) => {
            let kind = random_string_corruption(rng);
            Value::Text(corrupt_string(s, kind, rng))
        }
        Value::Categorical(s) => {
            // Flip to a different category for binary-ish codes, else typo.
            let flipped = match s.as_str() {
                "m" => "f",
                "f" => "m",
                other => other,
            };
            Value::Categorical(flipped.to_string())
        }
        Value::Integer(i) => {
            let delta = 1 + rng.next_below(3) as i64;
            Value::Integer(if rng.next_bool(0.5) {
                i + delta
            } else {
                i - delta
            })
        }
        Value::Float(x) => {
            let delta = (rng.next_f64() - 0.5) * 0.1 * x.abs().max(1.0);
            Value::Float(x + delta)
        }
        Value::Date(d) => {
            match rng.next_below(3) {
                // Day/month swap (when valid).
                0 => Date::new(d.year(), d.day(), d.month())
                    .map(Value::Date)
                    .unwrap_or(Value::Date(*d)),
                // Off by a few days.
                1 => {
                    let shift = 1 + rng.next_below(5) as i64;
                    let days = d.to_epoch_days() + if rng.next_bool(0.5) { shift } else { -shift };
                    Value::Date(Date::from_epoch_days(days))
                }
                // Year typo: last digit change = ±1..9 years.
                _ => {
                    let dy = 1 + rng.next_below(9) as i32;
                    let y = if rng.next_bool(0.5) {
                        d.year() + dy
                    } else {
                        d.year() - dy
                    };
                    Date::new(y, d.month(), d.day().min(28))
                        .map(Value::Date)
                        .unwrap_or(Value::Date(*d))
                }
            }
        }
        Value::Missing => Value::Missing,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_lengthens_delete_shortens() {
        let mut rng = SplitMix64::new(1);
        let s = "smith";
        assert_eq!(
            corrupt_string(s, StringCorruption::Insert, &mut rng)
                .chars()
                .count(),
            6
        );
        assert_eq!(
            corrupt_string(s, StringCorruption::Delete, &mut rng)
                .chars()
                .count(),
            4
        );
    }

    #[test]
    fn substitute_keeps_length_changes_content() {
        let mut rng = SplitMix64::new(2);
        let out = corrupt_string("smith", StringCorruption::Substitute, &mut rng);
        assert_eq!(out.len(), 5);
        assert_ne!(out, "smith");
    }

    #[test]
    fn transpose_is_permutation() {
        let mut rng = SplitMix64::new(3);
        let out = corrupt_string("abcdef", StringCorruption::Transpose, &mut rng);
        let mut a: Vec<char> = out.chars().collect();
        let mut b: Vec<char> = "abcdef".chars().collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn empty_string_edge_cases() {
        let mut rng = SplitMix64::new(4);
        assert_eq!(corrupt_string("", StringCorruption::Delete, &mut rng), "");
        assert_eq!(
            corrupt_string("", StringCorruption::Substitute, &mut rng),
            ""
        );
        assert_eq!(
            corrupt_string("", StringCorruption::Transpose, &mut rng),
            ""
        );
        assert_eq!(
            corrupt_string("", StringCorruption::Insert, &mut rng).len(),
            1
        );
        assert_eq!(
            corrupt_string("x", StringCorruption::Transpose, &mut rng),
            "x"
        );
    }

    #[test]
    fn phonetic_applies_a_rule() {
        let mut rng = SplitMix64::new(5);
        let out = corrupt_string("philip", StringCorruption::Phonetic, &mut rng);
        assert_ne!(out, "philip");
        // Inapplicable input returned unchanged.
        assert_eq!(
            corrupt_string("zzz", StringCorruption::Phonetic, &mut rng),
            "zzz"
        );
    }

    #[test]
    fn ocr_m_rn_confusion() {
        let mut rng = SplitMix64::new(6);
        let out = corrupt_string("barn", StringCorruption::Ocr, &mut rng);
        assert_eq!(out, "bam");
    }

    #[test]
    fn corrupt_value_respects_missing_rate() {
        let mut rng = SplitMix64::new(7);
        let v = Value::Text("smith".into());
        assert_eq!(corrupt_value(&v, 1.0, &mut rng), Value::Missing);
        let kept = corrupt_value(&v, 0.0, &mut rng);
        assert!(!kept.is_missing());
    }

    #[test]
    fn corrupt_integer_drifts() {
        let mut rng = SplitMix64::new(8);
        match corrupt_value(&Value::Integer(30), 0.0, &mut rng) {
            Value::Integer(i) => assert!((27..=33).contains(&i) && i != 30),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn corrupt_gender_flips() {
        let mut rng = SplitMix64::new(9);
        assert_eq!(
            corrupt_value(&Value::Categorical("m".into()), 0.0, &mut rng),
            Value::Categorical("f".into())
        );
    }

    #[test]
    fn corrupt_date_stays_valid() {
        let mut rng = SplitMix64::new(10);
        let d = Value::Date(Date::new(1987, 6, 5).unwrap());
        for _ in 0..50 {
            match corrupt_value(&d, 0.0, &mut rng) {
                Value::Date(_) => {}
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn corruption_is_deterministic_per_seed() {
        let a = corrupt_string(
            "jonathan",
            StringCorruption::Substitute,
            &mut SplitMix64::new(42),
        );
        let b = corrupt_string(
            "jonathan",
            StringCorruption::Substitute,
            &mut SplitMix64::new(42),
        );
        assert_eq!(a, b);
    }
}
