//! Cross-crate integration tests: full pipelines from synthetic data to
//! evaluated linkage results, spanning datagen → encoding → blocking →
//! matching → eval.

use pprl::blocking::keys::BlockingKey;
use pprl::core::schema::Schema;
use pprl::datagen::generator::{Generator, GeneratorConfig};
use pprl::encoding::encoder::EncodingMode;
use pprl::encoding::hardening::Hardening;
use pprl::eval::quality::{auc, blocking_quality, Confusion};
use pprl::pipeline::batch::{link, BlockingChoice, PipelineConfig};

fn generator(seed: u64, corruption: f64) -> Generator {
    Generator::new(GeneratorConfig {
        seed,
        corruption_rate: corruption,
        ..GeneratorConfig::default()
    })
    .expect("valid config")
}

#[test]
fn clean_data_links_perfectly() {
    let (a, b) = generator(1, 0.0).dataset_pair(300, 300, 100).unwrap();
    let cfg = PipelineConfig::standard(b"k".to_vec()).unwrap();
    let r = link(&a, &b, &cfg).unwrap();
    let q = Confusion::from_pairs(&r.pairs(), &a.ground_truth_pairs(&b));
    assert_eq!(q.precision(), 1.0);
    assert_eq!(q.recall(), 1.0);
}

#[test]
fn quality_degrades_gracefully_with_corruption() {
    let cfg = PipelineConfig::standard(b"k".to_vec()).unwrap();
    let mut last_f1 = 1.1;
    for corruption in [0.0, 0.3, 0.6] {
        let (a, b) = generator(2, corruption).dataset_pair(200, 200, 60).unwrap();
        let r = link(&a, &b, &cfg).unwrap();
        let q = Confusion::from_pairs(&r.pairs(), &a.ground_truth_pairs(&b));
        assert!(
            q.f1() <= last_f1 + 0.02,
            "f1 should not improve with corruption: {} then {}",
            last_f1,
            q.f1()
        );
        last_f1 = q.f1();
    }
    assert!(last_f1 < 0.9, "heavy corruption should hurt, f1 {last_f1}");
}

#[test]
fn encoded_linkage_close_to_plaintext_linkage() {
    // The paper's headline claim (ref [30]): probabilistic encodings can
    // match unencoded linkage quality. Compare Dice on CLKs against a
    // plaintext record comparator at the same pipeline settings.
    use pprl::similarity::composite::RecordComparator;
    let (a, b) = generator(3, 0.2).dataset_pair(250, 250, 80).unwrap();
    let truth = a.ground_truth_pairs(&b);

    // Encoded pipeline.
    let cfg = PipelineConfig::standard(b"k".to_vec()).unwrap();
    let encoded = link(&a, &b, &cfg).unwrap();
    let q_enc = Confusion::from_pairs(&encoded.pairs(), &truth);

    // Plaintext comparator over the same candidate space (full product,
    // threshold tuned to its scale).
    let cmp = RecordComparator::person_default(a.schema()).unwrap();
    let mut plain_matches = Vec::new();
    for (i, ra) in a.records().iter().enumerate() {
        for (j, rb) in b.records().iter().enumerate() {
            let s = cmp.weighted_similarity(ra, rb).unwrap();
            if s >= 0.8 {
                plain_matches.push((i, j));
            }
        }
    }
    let q_plain = Confusion::from_pairs(&plain_matches, &truth);
    assert!(
        q_enc.f1() >= q_plain.f1() - 0.1,
        "encoded f1 {} should be within 0.1 of plaintext f1 {}",
        q_enc.f1(),
        q_plain.f1()
    );
}

#[test]
fn hardening_costs_modest_quality() {
    let (a, b) = generator(4, 0.2).dataset_pair(200, 200, 60).unwrap();
    let truth = a.ground_truth_pairs(&b);
    let plain_cfg = PipelineConfig::standard(b"k".to_vec()).unwrap();
    let plain = Confusion::from_pairs(&link(&a, &b, &plain_cfg).unwrap().pairs(), &truth);

    let mut hard_cfg = PipelineConfig::standard(b"k".to_vec()).unwrap();
    hard_cfg.encoder.hardening = vec![Hardening::XorFold];
    hard_cfg.threshold = 0.7; // folding compresses similarity scale
    let hard = Confusion::from_pairs(&link(&a, &b, &hard_cfg).unwrap().pairs(), &truth);

    assert!(plain.f1() > 0.7);
    assert!(
        hard.f1() > plain.f1() - 0.35,
        "xor-fold f1 {} vs plain {}",
        hard.f1(),
        plain.f1()
    );
}

#[test]
fn field_level_encoding_links_too() {
    let (a, b) = generator(5, 0.15).dataset_pair(150, 150, 50).unwrap();
    let mut cfg = PipelineConfig::standard(b"k".to_vec()).unwrap();
    cfg.encoder.mode = EncodingMode::FieldLevel;
    // Field-level has no CLK for LSH; use standard blocking instead.
    cfg.blocking = BlockingChoice::Standard(BlockingKey::person_default());
    // Field-level mean-of-dice has a different scale.
    let err = link(&a, &b, &cfg);
    // The batch pipeline requires CLKs; field-level goes through the
    // lower-level APIs. Assert the pipeline reports this clearly.
    assert!(err.is_err(), "pipeline should reject field-level encoding");
}

#[test]
fn auc_of_scored_pipeline_is_high() {
    let (a, b) = generator(6, 0.2).dataset_pair(150, 150, 50).unwrap();
    let mut cfg = PipelineConfig::standard(b"k".to_vec()).unwrap();
    cfg.blocking = BlockingChoice::Full;
    cfg.threshold = 0.0; // keep all scores
    cfg.one_to_one = false;
    let r = link(&a, &b, &cfg).unwrap();
    let truth = a.ground_truth_pairs(&b);
    let a_value = auc(&r.matches, &truth).unwrap();
    assert!(a_value > 0.95, "AUC {a_value}");
}

#[test]
fn blocking_quality_metrics_consistent_with_pipeline() {
    let (a, b) = generator(7, 0.2).dataset_pair(200, 200, 60).unwrap();
    let cfg = PipelineConfig::standard(b"k".to_vec()).unwrap();
    let r = link(&a, &b, &cfg).unwrap();
    let q = blocking_quality(&r.pairs(), &a.ground_truth_pairs(&b), a.len(), b.len()).unwrap();
    assert!(q.reduction_ratio > 0.9);
    assert!(q.pairs_completeness > 0.5);
    assert!((0.0..=1.0).contains(&q.pairs_quality));
}

#[test]
fn schema_agreement_before_linkage() {
    // Schema matching step: two schemas agree on the common QIDs.
    let s1 = Schema::person();
    let s2 = Schema::person();
    let common = s1.common_qids(&s2);
    assert_eq!(common.len(), 8);
}

#[test]
fn ground_truth_free_quality_estimation_tracks_reality() {
    // §5.2 of the paper: estimating linkage quality without ground truth.
    // Fit Fellegi–Sunter by EM (no labels), estimate precision/recall from
    // the posteriors alone, then check against the actual ground truth.
    use pprl::eval::estimate::estimate_quality;
    use pprl::matching::fellegi_sunter::FellegiSunter;
    use pprl::similarity::composite::RecordComparator;

    let (a, b) = generator(42, 0.25).dataset_pair(150, 150, 50).unwrap();
    let cmp = RecordComparator::person_default(a.schema()).unwrap();
    let mut pairs = Vec::new();
    let mut vectors = Vec::new();
    for (i, ra) in a.records().iter().enumerate() {
        for (j, rb) in b.records().iter().enumerate() {
            pairs.push((i, j));
            vectors.push(cmp.similarity_vector(ra, rb).unwrap());
        }
    }
    let patterns = FellegiSunter::binarise(&vectors, 0.8);
    let model = FellegiSunter::fit_em(&patterns, 40, 0.01).unwrap();
    let posteriors: Vec<f64> = patterns
        .iter()
        .map(|p| model.posterior(p).unwrap())
        .collect();

    let threshold = 0.5;
    let estimated = estimate_quality(&posteriors, threshold).unwrap();

    // Actual quality of the same decision rule.
    let predicted: Vec<(usize, usize)> = pairs
        .iter()
        .zip(&posteriors)
        .filter(|(_, &p)| p >= threshold)
        .map(|(&pr, _)| pr)
        .collect();
    let actual = Confusion::from_pairs(&predicted, &a.ground_truth_pairs(&b));

    assert!(
        (estimated.precision() - actual.precision()).abs() < 0.1,
        "estimated P {:.3} vs actual {:.3}",
        estimated.precision(),
        actual.precision()
    );
    assert!(
        (estimated.f1() - actual.f1()).abs() < 0.15,
        "estimated F1 {:.3} vs actual {:.3}",
        estimated.f1(),
        actual.f1()
    );
    assert!(actual.f1() > 0.8, "the linkage itself should be good");
}
