//! Failure-injection tests: every layer must reject bad input with a typed
//! error — never panic, never silently produce garbage.

use pprl::blocking::keys::{BlockingKey, KeyPart};
use pprl::blocking::lsh::HammingLsh;
use pprl::core::bitvec::BitVec;
use pprl::core::error::PprlError;
use pprl::core::record::{Dataset, Record};
use pprl::core::schema::{FieldDef, FieldType, Schema};
use pprl::core::value::{Date, Value};
use pprl::crypto::bigint::BigUint;
use pprl::datagen::generator::{Generator, GeneratorConfig};
use pprl::encoding::encoder::{RecordEncoder, RecordEncoderConfig};
use pprl::pipeline::batch::{link, PipelineConfig};
use pprl::pipeline::streaming::StreamingLinker;
use pprl::protocols::transport::{Crash, FaultPlan};
use pprl::protocols::{
    multi_party_linkage, two_party_linkage, MultiPartyConfig, RetryPolicy, TwoPartyConfig,
};

fn person_pair(seed: u64) -> (Dataset, Dataset) {
    let mut g = Generator::new(GeneratorConfig {
        seed,
        ..GeneratorConfig::default()
    })
    .expect("valid");
    g.dataset_pair(30, 30, 10).expect("valid")
}

#[test]
fn empty_datasets_link_cleanly() {
    let empty = Dataset::new(Schema::person());
    let cfg = PipelineConfig::standard(b"k".to_vec()).unwrap();
    let r = link(&empty, &empty, &cfg).unwrap();
    assert!(r.matches.is_empty());
    assert_eq!(r.comparisons, 0);
}

#[test]
fn one_sided_empty_dataset() {
    let (a, _) = person_pair(1);
    let empty = Dataset::new(Schema::person());
    let cfg = PipelineConfig::standard(b"k".to_vec()).unwrap();
    let r = link(&a, &empty, &cfg).unwrap();
    assert!(r.matches.is_empty());
}

#[test]
fn all_missing_records_produce_no_false_matches() {
    let schema = Schema::person();
    let blank = Record::new(0, vec![Value::Missing; schema.len()]);
    let ds = Dataset::from_records(schema.clone(), vec![blank.clone(), blank]).unwrap();
    let cfg = PipelineConfig::standard(b"k".to_vec()).unwrap();
    // All-missing records have empty filters and empty blocking keys; they
    // must not match anything (Dice of empty filters is defined as 1, so
    // the blocker must exclude them — verify it does).
    let r = link(&ds, &ds, &cfg).unwrap();
    assert!(
        r.matches.is_empty(),
        "all-missing records carry no evidence and must not match"
    );
}

#[test]
fn schema_field_type_mismatch_is_a_typed_error() {
    // A "dob" column carrying text instead of a date must fail encoding
    // with PprlError, not panic.
    let schema = Schema::person();
    let mut values = vec![Value::Missing; schema.len()];
    values[5] = Value::Text("not-a-date".into());
    let ds = Dataset::from_records(schema.clone(), vec![Record::new(0, values)]).unwrap();
    let enc = RecordEncoder::new(RecordEncoderConfig::person_clk(b"k".to_vec()), &schema).unwrap();
    let err = enc.encode_dataset(&ds);
    assert!(err.is_err());
}

#[test]
fn streaming_linker_survives_error_then_continues() {
    let mut g = Generator::new(GeneratorConfig::default()).unwrap();
    let mut linker = StreamingLinker::new(
        Schema::person(),
        RecordEncoderConfig::person_clk(b"k".to_vec()),
        BlockingKey::person_default(),
        0.8,
    )
    .unwrap();
    // Bad record (wrong width) rejected without corrupting state…
    let bad = Record::new(0, vec![Value::Missing]);
    assert!(linker.insert(0, &bad).is_err());
    assert!(linker.is_empty());
    // …then a good record still works.
    let good = g.entity(1);
    assert!(linker.insert(0, &good).is_ok());
    assert_eq!(linker.len(), 1);
}

#[test]
fn lsh_rejects_mixed_filter_lengths() {
    let lsh = HammingLsh::new(4, 8, 1).unwrap();
    let a = BitVec::zeros(64);
    let b = BitVec::zeros(128);
    assert!(lsh.candidates(&[&a], &[&b]).is_err());
}

#[test]
fn blocking_key_on_wrong_schema_is_typed_error() {
    let other = Schema::new(vec![FieldDef::qid("only_field", FieldType::Text)]).unwrap();
    let ds = Dataset::new(other);
    let key = BlockingKey::new(vec![KeyPart::Soundex("last_name".into())]);
    assert!(key.extract(&ds).is_err());
}

#[test]
fn bigint_division_by_zero_and_underflow() {
    let a = BigUint::from_u64(5);
    assert!(a.divrem(&BigUint::zero()).is_err());
    assert!(BigUint::zero().sub(&a).is_err());
    assert!(a.modpow(&a, &BigUint::zero()).is_err());
}

#[test]
fn date_arithmetic_rejects_impossible_dates() {
    assert!(Date::new(2021, 2, 29).is_err());
    assert!(Date::parse("2021-13-01").is_err());
    assert!(Date::parse("garbage").is_err());
}

#[test]
fn csv_with_wrong_types_reports_line() {
    let csv = "first_name,last_name,street,city,postcode,dob,gender,age\n\
               ann,smith,1 x st,oxford,1234,1990-01-02,f,notanumber\n";
    let err = Dataset::from_csv(csv, Schema::person()).unwrap_err();
    assert!(err.to_string().contains("notanumber"));
}

#[test]
fn cross_key_linkage_finds_nothing() {
    // Parties that failed to agree on the secret key must not leak
    // accidental matches.
    let (a, b) = person_pair(2);
    let mut cfg = PipelineConfig::standard(b"key-one".to_vec()).unwrap();
    let r_same = link(&a, &b, &cfg).unwrap();
    assert!(
        !r_same.matches.is_empty(),
        "same key should find the overlap"
    );
    // Re-encode b with a different key by linking a-vs-a under different
    // keys: emulate by changing the key and relinking; recall collapses.
    cfg.encoder.params.key = b"key-two".to_vec();
    let enc1 = RecordEncoder::new(
        RecordEncoderConfig::person_clk(b"key-one".to_vec()),
        a.schema(),
    )
    .unwrap();
    let enc2 = RecordEncoder::new(cfg.encoder.clone(), a.schema()).unwrap();
    let f1 = enc1.encode_dataset(&a).unwrap();
    let f2 = enc2.encode_dataset(&a).unwrap();
    let same_record_cross_key =
        pprl::similarity::bitvec_sim::dice_bits(f1.clks().unwrap()[0], f2.clks().unwrap()[0])
            .unwrap();
    assert!(
        same_record_cross_key < 0.6,
        "cross-key similarity must be near chance: {same_record_cross_key}"
    );
}

#[test]
fn crash_mid_aggregation_recovers_or_aborts_typed() {
    let mut g = Generator::new(GeneratorConfig {
        seed: 11,
        corruption_rate: 0.1,
        ..GeneratorConfig::default()
    })
    .unwrap();
    let ds = g.multi_party(4, 12, 4).unwrap();
    // Party 2 dies a few rounds in — mid-aggregation, not at a tuple
    // boundary. With the default quorum the run degrades to the three
    // survivors…
    let mut cfg = MultiPartyConfig::standard(b"k".to_vec());
    cfg.fault_plan.crash = Some(Crash {
        party: 2,
        at_round: 3,
    });
    let out = multi_party_linkage(&ds, &cfg).unwrap();
    assert_eq!(out.failed_parties, vec![2]);
    assert!(out
        .matches
        .iter()
        .all(|m| m.members.iter().all(|r| r.party.0 != 2)));
    // …and with a full quorum demanded, the same crash is a typed abort.
    cfg.min_parties = 4;
    let err = multi_party_linkage(&ds, &cfg).unwrap_err();
    assert!(
        matches!(err, PprlError::ProtocolError(ref m) if m.contains("quorum")),
        "{err}"
    );
}

#[test]
fn retry_exhaustion_is_a_typed_timeout_never_a_panic() {
    let mut g = Generator::new(GeneratorConfig {
        seed: 12,
        ..GeneratorConfig::default()
    })
    .unwrap();
    let (a, b) = g.dataset_pair(15, 15, 5).unwrap();
    // A network this lossy exhausts any small retry budget.
    let mut cfg = TwoPartyConfig::standard(b"k".to_vec()).unwrap();
    cfg.fault_plan = FaultPlan::with_drop_rate(0.97);
    cfg.retry = RetryPolicy {
        max_retries: 1,
        ..RetryPolicy::default()
    };
    let err = two_party_linkage(&a, &b, &cfg).unwrap_err();
    assert!(matches!(err, PprlError::Timeout(_)), "{err}");
}

#[test]
fn restored_streaming_linker_equals_pre_crash_state() {
    // Feed the same stream to a continuously-running linker and to one
    // that "crashes" halfway and is rebuilt from its checkpoint: every
    // post-restore answer must be identical.
    let records: Vec<_> = {
        let mut g = Generator::new(GeneratorConfig {
            seed: 13,
            corruption_rate: 0.1,
            ..GeneratorConfig::default()
        })
        .unwrap();
        (0..60).map(|id| g.entity(id % 20)).collect()
    };
    let new_linker = || {
        StreamingLinker::new(
            Schema::person(),
            RecordEncoderConfig::person_clk(b"k".to_vec()),
            BlockingKey::person_default(),
            0.8,
        )
        .unwrap()
    };
    let mut uninterrupted = new_linker();
    let mut crashing = new_linker();
    for r in &records[..30] {
        uninterrupted.insert(0, r).unwrap();
        crashing.insert(0, r).unwrap();
    }
    let checkpoint = crashing.snapshot().unwrap();
    drop(crashing); // the crash
    let mut restored = StreamingLinker::restore(
        Schema::person(),
        RecordEncoderConfig::person_clk(b"k".to_vec()),
        BlockingKey::person_default(),
        &checkpoint,
    )
    .unwrap();
    assert_eq!(restored.clusters(), uninterrupted.clusters());
    for r in &records[30..] {
        let expect = uninterrupted.insert(1, r).unwrap();
        let got = restored.insert(1, r).unwrap();
        assert_eq!(expect.matches, got.matches);
        assert_eq!(expect.cluster, got.cluster);
        assert_eq!(expect.inserted, got.inserted);
    }
    assert_eq!(restored.clusters(), uninterrupted.clusters());
}

#[test]
fn generator_rejects_nonsense_configs() {
    assert!(Generator::new(GeneratorConfig {
        corruption_rate: -0.1,
        ..GeneratorConfig::default()
    })
    .is_err());
    let mut g = Generator::new(GeneratorConfig::default()).unwrap();
    assert!(g.dataset_pair(10, 10, 11).is_err());
    assert!(g.multi_party(1, 10, 10).is_err());
}
