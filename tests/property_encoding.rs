//! Randomized property tests over the encoding, CSV, matching and protocol
//! layers: round trips, invariants, and structural guarantees under
//! arbitrary inputs.
//!
//! Ported from `proptest` to the in-repo deterministic `SplitMix64`
//! harness (zero external crates); each property runs a fixed number of
//! seeded random cases.

use pprl::core::bitvec::BitVec;
use pprl::core::record::{Dataset, Record};
use pprl::core::rng::SplitMix64;
use pprl::core::schema::{FieldDef, FieldType, Schema};
use pprl::core::value::{Date, Value};
use pprl::crypto::secure_sum::{sum_additive_shares, sum_masked_ring};
use pprl::encoding::hardening::Hardening;
use pprl::matching::assignment::{greedy_one_to_one, hungarian_one_to_one};
use pprl::matching::collective::{collective_refine, CollectiveConfig};

const CASES: usize = 48;

fn small_schema() -> Schema {
    Schema::new(vec![
        FieldDef::qid("name", FieldType::Text),
        FieldDef::qid("age", FieldType::Integer),
        FieldDef::qid("dob", FieldType::Date),
        FieldDef::qid("gender", FieldType::Categorical),
    ])
    .expect("unique names")
}

/// Text including CSV-hostile characters (commas, quotes, newlines).
fn value_text(rng: &mut SplitMix64) -> String {
    const ALPHABET: &[char] = &['a', 'b', 'c', 'x', 'y', 'z', ' ', ',', '"', '\n', '\''];
    let len = rng.next_below(17) as usize;
    (0..len)
        .map(|_| ALPHABET[rng.next_below(ALPHABET.len() as u64) as usize])
        .collect()
}

fn arb_record(rng: &mut SplitMix64) -> Record {
    let name = value_text(rng);
    let age = rng.next_below(120) as i64;
    let y = 1940 + rng.next_below(80) as i32;
    let m = 1 + rng.next_below(12) as u8;
    let d = 1 + rng.next_below(28) as u8;
    let g = ["m", "f", "x"][rng.next_below(3) as usize];
    Record::new(
        rng.next_u64(),
        vec![
            Value::Text(name),
            Value::Integer(age),
            Value::Date(Date::new(y, m, d).expect("day < 29 always valid")),
            Value::Categorical(g.to_string()),
        ],
    )
}

fn positions(rng: &mut SplitMix64, len: usize) -> Vec<usize> {
    let n = rng.next_below(len as u64 / 2) as usize;
    (0..n)
        .map(|_| rng.next_below(len as u64) as usize)
        .collect()
}

/// Random scored pairs `(a, b, s)` over small index ranges.
fn scored_pairs(rng: &mut SplitMix64, max_idx: u64, max_len: u64) -> Vec<(usize, usize, f64)> {
    let n = 1 + rng.next_below(max_len) as usize;
    (0..n)
        .map(|_| {
            (
                rng.next_below(max_idx) as usize,
                rng.next_below(max_idx) as usize,
                rng.next_f64(),
            )
        })
        .collect()
}

// ---------- CSV round trip ----------

#[test]
fn csv_round_trips_arbitrary_datasets() {
    let mut rng = SplitMix64::new(0xC1);
    for case in 0..CASES {
        let n = rng.next_below(20) as usize;
        let records: Vec<Record> = (0..n).map(|_| arb_record(&mut rng)).collect();
        let ds = Dataset::from_records(small_schema(), records).expect("valid widths");
        let csv = ds.to_csv();
        let back = Dataset::from_csv(&csv, small_schema()).expect("parses own output");
        assert_eq!(back.len(), ds.len(), "case {case}");
        for (a, b) in ds.records().iter().zip(back.records()) {
            assert_eq!(a.entity_id, b.entity_id);
            // Text round-trips modulo the reader's documented trim
            // semantics (cells are trimmed; all-whitespace becomes Missing).
            for (va, vb) in a.values.iter().zip(&b.values) {
                let (ta, tb) = (va.as_text(), vb.as_text());
                assert_eq!(ta.trim(), tb.trim(), "case {case}");
            }
        }
    }
}

// ---------- hardening invariants ----------

#[test]
fn hardening_output_lengths_match_contract() {
    let mut rng = SplitMix64::new(0xC2);
    for case in 0..CASES {
        let ones = positions(&mut rng, 128);
        let nonce = rng.next_u64();
        let f = BitVec::from_positions(128, &ones).expect("in range");
        for h in [
            Hardening::Balance,
            Hardening::XorFold,
            Hardening::Rule90,
            Hardening::Blip { epsilon: 2.0 },
            Hardening::Permute { seed: 5 },
        ] {
            let out = h.apply(&f, nonce).expect("valid");
            assert_eq!(out.len(), h.output_len(128), "case {case}: {h:?}");
        }
        // Balance always yields exactly half the bits set.
        let b = Hardening::Balance.apply(&f, nonce).expect("valid");
        assert_eq!(b.count_ones(), 128, "case {case}");
        // Permutation preserves weight.
        let p = Hardening::Permute { seed: 9 }
            .apply(&f, nonce)
            .expect("valid");
        assert_eq!(p.count_ones(), f.count_ones(), "case {case}");
    }
}

// ---------- assignment invariants ----------

#[test]
fn hungarian_never_worse_than_greedy() {
    let mut rng = SplitMix64::new(0xC3);
    for case in 0..CASES {
        let raw = scored_pairs(&mut rng, 8, 24);
        let greedy: f64 = greedy_one_to_one(&raw).iter().map(|p| p.2).sum();
        let optimal: f64 = hungarian_one_to_one(&raw)
            .expect("valid scores")
            .iter()
            .map(|p| p.2)
            .sum();
        assert!(
            optimal >= greedy - 1e-9,
            "case {case}: hungarian {optimal} < greedy {greedy}"
        );
    }
}

#[test]
fn assignments_are_one_to_one() {
    let mut rng = SplitMix64::new(0xC4);
    for case in 0..CASES {
        let raw = scored_pairs(&mut rng, 6, 20);
        for out in [
            greedy_one_to_one(&raw),
            hungarian_one_to_one(&raw).expect("valid"),
        ] {
            let rows_a: std::collections::HashSet<_> = out.iter().map(|p| p.0).collect();
            let rows_b: std::collections::HashSet<_> = out.iter().map(|p| p.1).collect();
            assert_eq!(rows_a.len(), out.len(), "case {case}");
            assert_eq!(rows_b.len(), out.len(), "case {case}");
        }
    }
}

// ---------- collective refinement invariants ----------

#[test]
fn collective_refinement_never_raises_scores() {
    let mut rng = SplitMix64::new(0xC5);
    for case in 0..CASES {
        let raw = scored_pairs(&mut rng, 6, 20);
        let cfg = CollectiveConfig {
            threshold: 0.0,
            ..CollectiveConfig::default()
        };
        let refined = collective_refine(&raw, &cfg).expect("valid scores");
        // exclusivity ≤ 1 ⇒ refined score ≤ raw score for every pair kept
        let raw_best: std::collections::HashMap<(usize, usize), f64> = raw
            .iter()
            .map(|&(a, b, s)| ((a, b), s))
            .fold(std::collections::HashMap::new(), |mut m, (k, s)| {
                let e = m.entry(k).or_insert(0.0);
                if s > *e {
                    *e = s;
                }
                m
            });
        for (a, b, s) in refined {
            assert!(s <= raw_best[&(a, b)] + 1e-9, "case {case}");
            assert!(s >= 0.0, "case {case}");
        }
    }
}

// ---------- secure summation agreement ----------

#[test]
fn secure_sum_protocols_agree() {
    let mut rng = SplitMix64::new(0xC6);
    for case in 0..CASES {
        let n = 2 + rng.next_below(5) as usize;
        let values: Vec<u64> = (0..n).map(|_| rng.next_below(1_000_000)).collect();
        let expected: u64 = values.iter().sum();
        let ring = sum_masked_ring(&values, &mut rng).expect("valid inputs");
        let shares = sum_additive_shares(&values, &mut rng).expect("valid inputs");
        assert_eq!(ring.sum, expected, "case {case}");
        assert_eq!(shares.sum, expected, "case {case}");
    }
}
