//! Property-based tests over the encoding, CSV, matching and protocol
//! layers: round trips, invariants, and structural guarantees under
//! arbitrary inputs.

use proptest::prelude::*;

use pprl::core::record::{Dataset, Record};
use pprl::core::schema::{FieldDef, FieldType, Schema};
use pprl::core::value::{Date, Value};
use pprl::crypto::secure_sum::{sum_additive_shares, sum_masked_ring};
use pprl::encoding::hardening::Hardening;
use pprl::matching::assignment::{greedy_one_to_one, hungarian_one_to_one};
use pprl::matching::collective::{collective_refine, CollectiveConfig};
use pprl::core::bitvec::BitVec;

fn small_schema() -> Schema {
    Schema::new(vec![
        FieldDef::qid("name", FieldType::Text),
        FieldDef::qid("age", FieldType::Integer),
        FieldDef::qid("dob", FieldType::Date),
        FieldDef::qid("gender", FieldType::Categorical),
    ])
    .expect("unique names")
}

fn value_text() -> impl Strategy<Value = String> {
    // Text including CSV-hostile characters.
    proptest::string::string_regex("[a-z ,\"\n']{0,16}").expect("valid regex")
}

fn arb_record() -> impl Strategy<Value = Record> {
    (
        value_text(),
        0i64..120,
        (1940i32..2020, 1u8..13, 1u8..29),
        prop_oneof![Just("m"), Just("f"), Just("x")],
        any::<u64>(),
    )
        .prop_map(|(name, age, (y, m, d), g, entity)| {
            Record::new(
                entity,
                vec![
                    Value::Text(name),
                    Value::Integer(age),
                    Value::Date(Date::new(y, m, d).expect("day < 29 always valid")),
                    Value::Categorical(g.to_string()),
                ],
            )
        })
}

fn positions(len: usize) -> impl Strategy<Value = Vec<usize>> {
    proptest::collection::vec(0..len, 0..len / 2)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    // ---------- CSV round trip ----------

    #[test]
    fn csv_round_trips_arbitrary_datasets(records in proptest::collection::vec(arb_record(), 0..20)) {
        let ds = Dataset::from_records(small_schema(), records).expect("valid widths");
        let csv = ds.to_csv();
        let back = Dataset::from_csv(&csv, small_schema()).expect("parses own output");
        prop_assert_eq!(back.len(), ds.len());
        for (a, b) in ds.records().iter().zip(back.records()) {
            prop_assert_eq!(a.entity_id, b.entity_id);
            // Text round-trips modulo the reader's documented trim
            // semantics (cells are trimmed; all-whitespace becomes Missing).
            for (va, vb) in a.values.iter().zip(&b.values) {
                let (ta, tb) = (va.as_text(), vb.as_text());
                prop_assert_eq!(ta.trim(), tb.trim());
            }
        }
    }

    // ---------- hardening invariants ----------

    #[test]
    fn hardening_output_lengths_match_contract(ones in positions(128), nonce in any::<u64>()) {
        let f = BitVec::from_positions(128, &ones).expect("in range");
        for h in [
            Hardening::Balance,
            Hardening::XorFold,
            Hardening::Rule90,
            Hardening::Blip { epsilon: 2.0 },
            Hardening::Permute { seed: 5 },
        ] {
            let out = h.apply(&f, nonce).expect("valid");
            prop_assert_eq!(out.len(), h.output_len(128));
        }
        // Balance always yields exactly half the bits set.
        let b = Hardening::Balance.apply(&f, nonce).expect("valid");
        prop_assert_eq!(b.count_ones(), 128);
        // Permutation preserves weight.
        let p = Hardening::Permute { seed: 9 }.apply(&f, nonce).expect("valid");
        prop_assert_eq!(p.count_ones(), f.count_ones());
    }

    // ---------- assignment invariants ----------

    #[test]
    fn hungarian_never_worse_than_greedy(
        raw in proptest::collection::vec((0usize..8, 0usize..8, 0.0f64..1.0), 1..24)
    ) {
        let greedy: f64 = greedy_one_to_one(&raw).iter().map(|p| p.2).sum();
        let optimal: f64 = hungarian_one_to_one(&raw)
            .expect("valid scores")
            .iter()
            .map(|p| p.2)
            .sum();
        prop_assert!(optimal >= greedy - 1e-9, "hungarian {optimal} < greedy {greedy}");
    }

    #[test]
    fn assignments_are_one_to_one(
        raw in proptest::collection::vec((0usize..6, 0usize..6, 0.0f64..1.0), 1..20)
    ) {
        for out in [greedy_one_to_one(&raw), hungarian_one_to_one(&raw).expect("valid")] {
            let rows_a: std::collections::HashSet<_> = out.iter().map(|p| p.0).collect();
            let rows_b: std::collections::HashSet<_> = out.iter().map(|p| p.1).collect();
            prop_assert_eq!(rows_a.len(), out.len());
            prop_assert_eq!(rows_b.len(), out.len());
        }
    }

    // ---------- collective refinement invariants ----------

    #[test]
    fn collective_refinement_never_raises_scores(
        raw in proptest::collection::vec((0usize..6, 0usize..6, 0.0f64..1.0), 1..20)
    ) {
        let cfg = CollectiveConfig {
            threshold: 0.0,
            ..CollectiveConfig::default()
        };
        let refined = collective_refine(&raw, &cfg).expect("valid scores");
        // exclusivity ≤ 1 ⇒ refined score ≤ raw score for every pair kept
        let raw_best: std::collections::HashMap<(usize, usize), f64> = raw
            .iter()
            .map(|&(a, b, s)| ((a, b), s))
            .fold(std::collections::HashMap::new(), |mut m, (k, s)| {
                let e = m.entry(k).or_insert(0.0);
                if s > *e {
                    *e = s;
                }
                m
            });
        for (a, b, s) in refined {
            prop_assert!(s <= raw_best[&(a, b)] + 1e-9);
            prop_assert!(s >= 0.0);
        }
    }

    // ---------- secure summation agreement ----------

    #[test]
    fn secure_sum_protocols_agree(values in proptest::collection::vec(0u64..1_000_000, 2..7), seed in any::<u64>()) {
        let mut rng = pprl::core::rng::SplitMix64::new(seed);
        let expected: u64 = values.iter().sum();
        let ring = sum_masked_ring(&values, &mut rng).expect("valid inputs");
        let shares = sum_additive_shares(&values, &mut rng).expect("valid inputs");
        prop_assert_eq!(ring.sum, expected);
        prop_assert_eq!(shares.sum, expected);
    }
}
