//! Property tests over the protocol session runtime: wire-frame
//! round-trips, guaranteed corruption detection, count-vector packing, and
//! the E5 invariant that the wire-measured communication cost of a
//! fault-free multi-party run equals the analytical pattern formulas.
//!
//! Uses the in-repo deterministic `SplitMix64` harness: each property runs
//! over seeded random cases, so failures reproduce exactly from the case
//! index.

use pprl::core::error::PprlError;
use pprl::core::rng::SplitMix64;
use pprl::crypto::cost::CommCost;
use pprl::datagen::generator::{Generator, GeneratorConfig};
use pprl::encoding::cbf::CountingBloomFilter;
use pprl::encoding::encoder::RecordEncoder;
use pprl::protocols::session::{pack_counts, unpack_counts};
use pprl::protocols::transport::{Frame, FrameKind};
use pprl::protocols::{multi_party_linkage, MultiPartyConfig, Pattern};

const CASES: usize = 64;

fn random_frame(rng: &mut SplitMix64) -> Frame {
    let len = rng.next_below(600) as usize;
    let payload: Vec<u8> = (0..len).map(|_| rng.next_below(256) as u8).collect();
    let seq = rng.next_u64() as u32;
    if rng.next_bool(0.5) {
        Frame::data(seq, payload)
    } else {
        Frame::ack(seq)
    }
}

#[test]
fn frame_encode_decode_round_trip() {
    let mut rng = SplitMix64::new(0xF4A3E);
    for case in 0..CASES {
        let frame = random_frame(&mut rng);
        let decoded = Frame::decode(&frame.encode())
            .unwrap_or_else(|e| panic!("case {case}: valid frame rejected: {e}"));
        assert_eq!(decoded, frame, "case {case}");
    }
}

#[test]
fn any_single_byte_flip_is_detected() {
    // The FNV-1a absorb step is a bijection on the running state for every
    // byte, so a single flipped byte can never cancel out: decode must
    // fail with a typed transport error at every position, for every
    // non-zero delta tried.
    let mut rng = SplitMix64::new(0xC0557);
    for case in 0..16 {
        let bytes = random_frame(&mut rng).encode();
        for pos in 0..bytes.len() {
            let delta = 1 + rng.next_below(255) as u8;
            let mut bad = bytes.clone();
            bad[pos] ^= delta;
            match Frame::decode(&bad) {
                Err(PprlError::Transport(_)) => {}
                other => {
                    panic!("case {case}: flip of byte {pos} by {delta:#04x} yielded {other:?}")
                }
            }
        }
    }
}

#[test]
fn truncated_and_oversized_frames_are_typed_errors() {
    let frame = Frame::data(7, vec![1, 2, 3, 4]);
    let bytes = frame.encode();
    for cut in 0..bytes.len() {
        assert!(
            matches!(Frame::decode(&bytes[..cut]), Err(PprlError::Transport(_))),
            "truncation to {cut} bytes must be a transport error"
        );
    }
    let mut padded = bytes.clone();
    padded.push(0);
    assert!(matches!(
        Frame::decode(&padded),
        Err(PprlError::Transport(_))
    ));
}

#[test]
fn count_vector_packing_round_trips() {
    // Nibble packing is exact for counts <= 15, which covers every
    // supported party count.
    let mut rng = SplitMix64::new(0x9ACC5);
    for case in 0..CASES {
        let len = 1 + rng.next_below(700) as usize;
        let counts: Vec<u32> = (0..len).map(|_| rng.next_below(16) as u32).collect();
        let cbf = CountingBloomFilter::from_counts(counts);
        let packed = pack_counts(&cbf).unwrap();
        assert_eq!(
            packed.len(),
            len.div_ceil(8) * 4,
            "case {case}: packed size must match the analytical payload"
        );
        let back = unpack_counts(&packed, len).unwrap();
        assert_eq!(back, cbf, "case {case}");
    }
}

#[test]
fn fault_free_multi_party_cost_is_exactly_analytical() {
    // The E5 invariant: with FaultPlan::none() the session-measured
    // CommCost of a full multi-party linkage equals the closed-form
    // aggregation cost, summed over the tuples actually scored.
    let mut g = Generator::new(GeneratorConfig {
        seed: 0xE5,
        corruption_rate: 0.1,
        ..GeneratorConfig::default()
    })
    .unwrap();
    let ds = g.multi_party(5, 12, 4).unwrap();
    for pattern in [
        Pattern::Sequential,
        Pattern::Ring,
        Pattern::Tree { fanout: 2 },
        Pattern::Tree { fanout: 3 },
        Pattern::Hierarchical { group_size: 2 },
    ] {
        let mut cfg = MultiPartyConfig::standard(b"e5".to_vec());
        cfg.pattern = pattern;
        let out = multi_party_linkage(&ds, &cfg).unwrap();
        let filter_len = RecordEncoder::new(cfg.encoder.clone(), ds[0].schema())
            .unwrap()
            .output_len();
        let payload = filter_len.div_ceil(8) * 4;
        let mut expected = CommCost::new();
        for _ in 0..out.tuples_compared {
            expected.merge(&pattern.aggregation_cost(5, payload).unwrap());
        }
        assert_eq!(out.cost, expected, "pattern {pattern:?}");
        assert_eq!(out.session_stats.retransmissions, 0, "pattern {pattern:?}");
        assert!(out.failed_parties.is_empty(), "pattern {pattern:?}");
    }
}

#[test]
fn ack_frames_carry_no_payload_but_are_counted() {
    let ack = Frame::ack(3);
    assert!(ack.payload.is_empty());
    assert_eq!(ack.kind, FrameKind::Ack);
    let decoded = Frame::decode(&ack.encode()).unwrap();
    assert_eq!(decoded.seq, 3);
}
